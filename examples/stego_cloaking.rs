//! Steganographic cloaking (§VI future work, implemented): a provider
//! that refuses to store content that "looks encrypted" can be satisfied
//! by re-coding the ciphertext as innocuous prose.
//!
//! Run with: `cargo run --example stego_cloaking`

use private_editing::extension::stego;
use private_editing::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Encrypt a document as usual.
    let key = DocumentKey::derive("password", &[9u8; 16], 1_000);
    let doc = RecbDocument::create(
        &key,
        SchemeParams::recb(8),
        b"the merger closes friday; tell no one",
        CtrDrbg::from_seed(7),
    )?;
    let ciphertext = doc.serialize();

    println!("raw ciphertext ({} chars):\n  {}…\n", ciphertext.len(), &ciphertext[..60]);
    println!(
        "a suspicious provider's detector says: looks_encrypted = {}\n",
        stego::looks_encrypted(&ciphertext)
    );

    // Cloak it as prose.
    let prose = stego::cloak(&ciphertext);
    let preview: String = prose.chars().take(120).collect();
    println!("cloaked as prose ({} chars, {:.1}x expansion):", prose.len(),
        prose.len() as f64 / ciphertext.len() as f64);
    println!("  {preview}…\n");
    println!(
        "the same detector now says: looks_encrypted = {}",
        stego::looks_encrypted(&prose)
    );

    // The cloaked document even passes the cloud editor's spell checker.
    let server = DocsServer::new();
    let resp = server.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
    let pairs = private_editing::crypto::form::parse_pairs(resp.body_text().unwrap())?;
    let doc_id = private_editing::crypto::form::first_value(&pairs, "docID").unwrap();
    let body =
        private_editing::crypto::form::encode_pairs(&[("docContents", prose.as_str())]);
    server.handle(&Request::post("/Doc", &[("docID", doc_id)], body));
    let spell = server.handle(&Request::post("/spell", &[("docID", doc_id)], ""));
    let pairs = private_editing::crypto::form::parse_pairs(spell.body_text().unwrap())?;
    let flagged = private_editing::crypto::form::first_value(&pairs, "misspelled").unwrap_or("?");
    println!("spell check on the cloaked document flags: {flagged:?} (nothing!)\n");

    // And it round-trips exactly.
    let recovered = stego::uncloak(&prose)?;
    assert_eq!(recovered, ciphertext);
    let reopened = RecbDocument::open(&key, &recovered, CtrDrbg::from_seed(0))?;
    println!(
        "uncloaked and decrypted: {:?}",
        String::from_utf8(reopened.decrypt()?)?
    );
    println!("\ntrade-off: ~{:.0}x total expansion over plaintext — why the paper",
        prose.len() as f64 / 37.0);
    println!("called this \"may be impractical\"; now it is measured, not speculated.");
    Ok(())
}
