//! Collaborative editing under the extension (§VII-A): sharing via
//! password works for passive readers; simultaneous writers conflict
//! because the extension blanks the server's coordination hash.
//!
//! Run with: `cargo run --example collaborative_editing`

use std::sync::Arc;

use private_editing::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let server = Arc::new(DocsServer::new());

    // Alice creates and shares the document; the password travels over
    // some other secure channel (the paper's assumption).
    let mut alice = DocsMediator::new(Arc::clone(&server), MediatorConfig::recb(8));
    let doc_id = alice.create_document("shared-password")?;
    alice.save_full(&doc_id, "Meeting notes: agenda below.")?;
    println!("Alice created {doc_id} and shared the password with Bob");

    // Bob, a passive reader, refreshes and sees every update.
    let mut bob = DocsMediator::new(Arc::clone(&server), MediatorConfig::recb(8));
    bob.register_password(&doc_id, "shared-password");
    println!("Bob reads: {:?}", bob.open_document(&doc_id)?);

    let mut edit = Delta::builder();
    edit.retain(15).insert("(v2) ");
    alice.save_delta(&doc_id, &edit.build())?;
    println!("Alice edits…");
    println!("Bob refreshes and reads: {:?}", bob.open_document(&doc_id)?);

    // Now Bob also writes, concurrently with Alice. His mediator's
    // ciphertext mirror is stale, so the collaboration degrades — the
    // partially-functional case the paper reports.
    let mut alice_edit = Delta::builder();
    alice_edit.insert("[Alice] ");
    alice.save_delta(&doc_id, &alice_edit.build())?;

    let mut bob_edit = Delta::builder();
    bob_edit.insert("[Bob] ");
    let result = bob.save_delta(&doc_id, &bob_edit.build());
    match result {
        Err(e) => println!("Bob's concurrent save failed cleanly: {e}"),
        Ok(mediated) if !mediated.response.is_success() => {
            println!("server rejected Bob's stale delta: {}", mediated.response.status)
        }
        Ok(_) => {
            // Even an "accepted" save leaves the shared document corrupted
            // for the next reader — there is no encrypted-domain merge.
            let mut carol = DocsMediator::new(Arc::clone(&server), MediatorConfig::recb(8));
            carol.register_password(&doc_id, "shared-password");
            match carol.open_document(&doc_id) {
                Ok(text) => println!(
                    "concurrent writes went through but the merge is wrong:\n  {text:?}"
                ),
                Err(e) => println!("document corrupted by concurrent writes: {e}"),
            }
        }
    }
    println!("\n→ collaborative editing is *partial* under the extension, as §VII-A reports.");
    println!("  (The SPORC line of work addresses this with a collaboration-aware server.)");

    // ── Beyond the paper: OT merge makes concurrent private writers
    //    converge (DocsClient::save_merging). ─────────────────────────
    println!("\n== with operational-transformation merge ==");
    let server = Arc::new(DocsServer::new());
    let mut setup = DocsMediator::new(Arc::clone(&server), MediatorConfig::recb(8));
    let doc_id = setup.create_document("merge-pw")?;
    setup.save_full(&doc_id, "shared agenda. ")?;

    let open_client = |seed: u64| {
        let mut m = DocsMediator::with_rng(
            Arc::clone(&server),
            MediatorConfig::recb(8),
            CtrDrbg::from_seed(seed),
        );
        m.register_password(&doc_id, "merge-pw");
        DocsClient::open(PrivateChannel(m), &doc_id).expect("open")
    };
    let mut alice = open_client(1);
    let mut bob = open_client(2);
    alice.editor().insert(0, "[alice] ");
    alice.save_merging(4);
    let bob_len = bob.content().len();
    bob.editor().insert(bob_len, "[bob]");
    bob.save_merging(4);

    let mut reader = DocsMediator::new(Arc::clone(&server), MediatorConfig::recb(8));
    reader.register_password(&doc_id, "merge-pw");
    let merged = reader.open_document(&doc_id)?;
    println!("converged encrypted document: {merged:?}");
    assert_eq!(merged, "[alice] shared agenda. [bob]");
    assert!(!server.stored_content(&doc_id).unwrap().contains("alice"));
    println!("…and the provider still only ever saw ciphertext ✓");
    Ok(())
}
