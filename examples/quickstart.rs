//! Quickstart: edit a document on an untrusted cloud service without the
//! provider ever seeing plaintext.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use private_editing::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The untrusted provider's word-processor backend.
    let server = Arc::new(DocsServer::new());

    // The user installs the privacy extension (the mediator) and picks a
    // per-document password. rECB mode with 8-character blocks is the
    // paper's recommended configuration for confidentiality.
    let mut mediator = DocsMediator::new(Arc::clone(&server), MediatorConfig::recb(8));
    let doc_id = mediator.create_document("correct horse battery staple")?;
    println!("created encrypted document {doc_id}");

    // First save: the whole document goes up, encrypted.
    mediator.save_full(&doc_id, "Dear diary, my plans are secret.")?;

    // Incremental edits travel as transformed deltas.
    let mut edit = Delta::builder();
    edit.retain(12).insert("(still) ");
    mediator.save_delta(&doc_id, &edit.build())?;

    println!("\nwhat the user sees:\n  {}", mediator.plaintext(&doc_id).unwrap());

    let stored = server.stored_content(&doc_id).unwrap();
    println!("\nwhat the provider stores ({} chars):\n  {}…", stored.len(), &stored[..70]);
    assert!(!stored.contains("secret"));
    assert!(!stored.contains("diary"));

    // Anyone with the password (and only them) can decrypt.
    let mut reader = DocsMediator::new(Arc::clone(&server), MediatorConfig::recb(8));
    reader.register_password(&doc_id, "correct horse battery staple");
    let recovered = reader.open_document(&doc_id)?;
    println!("\nrecovered with the password:\n  {recovered}");
    assert_eq!(recovered, "Dear diary, (still) my plans are secret.");

    let mut wrong = DocsMediator::new(Arc::clone(&server), MediatorConfig::recb(8));
    wrong.register_password(&doc_id, "kitten");
    assert!(wrong.open_document(&doc_id).is_err());
    println!("\nwrong password: rejected ✓");
    Ok(())
}
