//! The other two target applications (§III): Mozilla-Bespin-style code
//! hosting (whole-file PUT) and Adobe-Buzzword-style XML documents
//! (encrypt only the `<textRun>` bodies).
//!
//! Run with: `cargo run --example code_hosting`

use std::sync::Arc;

use private_editing::cloud::buzzword::text_runs;
use private_editing::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── Bespin: the server is pure storage; wrap PUT/GET. ──────────────
    let bespin = Arc::new(BespinServer::new());
    let mut editor = BespinMediator::new(Arc::clone(&bespin), MediatorConfig::recb(8));
    editor.register_password("src/secret_sauce.rs", "repo-password");

    let source = "pub fn proprietary_algorithm(x: u64) -> u64 { x.rotate_left(17) ^ 0xC0FFEE }";
    editor.put_file("src/secret_sauce.rs", source)?;

    let stored = String::from_utf8(bespin.stored("src/secret_sauce.rs").unwrap())?;
    println!("Bespin server stores: {}…", &stored[..60]);
    assert!(!stored.contains("proprietary"));
    assert_eq!(editor.get_file("src/secret_sauce.rs")?, source);
    println!("round-trip through encrypted code hosting ✓\n");

    // ── Buzzword: structured XML; only the text runs are user content. ─
    let buzzword = Arc::new(BuzzwordServer::new());
    let mut writer = BuzzwordMediator::new(Arc::clone(&buzzword), MediatorConfig::recb(8));
    writer.register_password("memo-1", "memo-password");

    let xml = "<doc style=\"serif\"><p><textRun>Quarterly numbers are bad.</textRun></p>\
               <p><textRun>Do not leak this.</textRun></p></doc>";
    writer.post_document("memo-1", xml)?;

    let stored = buzzword.stored("memo-1").unwrap();
    println!("Buzzword server stores {} text runs, all ciphertext:", text_runs(&stored).len());
    for run in text_runs(&stored) {
        println!("  <textRun>{}…</textRun>", &run[..40]);
        assert!(run.starts_with("PE1;"));
    }
    // Markup (styling) survives untouched — that is what keeps the
    // application functional.
    assert!(stored.contains("style=\"serif\""));

    assert_eq!(writer.get_document("memo-1")?, xml);
    println!("\nround-trip through encrypted XML documents ✓");
    Ok(())
}
