//! A full simulated editing session: a realistic client (editor +
//! autosave) working through the privacy extension, including what
//! happens to the server-side features (§VII-A).
//!
//! Run with: `cargo run --example private_docs_session`

use std::sync::Arc;

use private_editing::client::workload::{MacroOp, WorkloadGen};
use private_editing::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let server = Arc::new(DocsServer::new());

    // Integrity matters for this user: RPC mode (confidentiality +
    // integrity), 7-character blocks.
    let mut mediator = DocsMediator::new(Arc::clone(&server), MediatorConfig::rpc(7));
    let doc_id = mediator.create_document("session-password")?;

    // Seed the document, then run an editing session through the full
    // client stack (editor buffer → deltas → mediator → server).
    let mut workload = WorkloadGen::new(2026);
    let draft = workload.document(800);
    mediator.save_full(&doc_id, &draft)?;

    let mut client = DocsClient::open(PrivateChannel(mediator), &doc_id)
        .map_err(|resp| format!("open failed: {}", resp.status))?;
    println!("opened document: {} chars", client.content().len());

    for round in 1..=10 {
        for op in [MacroOp::InsertSentence, MacroOp::ReplaceSentence, MacroOp::DeleteSentence] {
            op.perform(client.editor(), &mut workload);
        }
        let outcome = client.save();
        println!("autosave {round}: {outcome:?}, document now {} chars", client.content().len());
        assert_eq!(outcome, SaveOutcome::Saved);
    }

    // What does the provider know? Only ciphertext and its length.
    let stored = server.stored_content(&doc_id).unwrap();
    println!("\nprovider's view: {} chars of Base32 records", stored.len());
    assert!(stored.starts_with("PE1;P;"));

    // Server-side features demonstrate §VII-A: spell check runs on the
    // ciphertext and flags garbage.
    let spell = server.handle(&Request::post("/spell", &[("docID", &doc_id)], ""));
    let flagged = spell.body_text().unwrap_or("").matches(',').count() + 1;
    println!("spell check on ciphertext flags ~{flagged} \"words\" — the feature is broken");

    // The session's final plaintext survives a fresh open with the
    // password, and RPC verifies integrity end to end.
    let expected = client.content().to_string();
    let mut reader = DocsMediator::new(Arc::clone(&server), MediatorConfig::rpc(7));
    reader.register_password(&doc_id, "session-password");
    assert_eq!(reader.open_document(&doc_id)?, expected);
    println!("\nreopened and verified (RPC integrity) ✓");
    Ok(())
}
