//! The malicious-client threat model (§VI-B): covert channels a hostile
//! client-side application can use, and the mediator countermeasures that
//! limit them.
//!
//! Run with: `cargo run --example covert_channel_defense`

use std::sync::Arc;

use private_editing::client::malicious::{self, LengthChannel, StorageObserver};
use private_editing::prelude::*;

/// Sends `bits` through the edit-pattern channel and returns how many the
/// observing server recovers.
fn run_edit_pattern_channel(canonicalize: bool, bits: &[bool]) -> usize {
    let server = Arc::new(DocsServer::new());
    let mut config = MediatorConfig::recb(8);
    config.canonicalize_deltas = canonicalize;
    let mut mediator = DocsMediator::new(Arc::clone(&server), config);
    let doc_id = mediator.create_document("pw").unwrap();
    mediator.save_full(&doc_id, "host document for the covert channel").unwrap();

    let mut observer = StorageObserver::new();
    observer.observe(&server.stored_content(&doc_id).unwrap());
    let mut recovered = 0;
    for &bit in bits {
        let plaintext = mediator.plaintext(&doc_id).unwrap().to_string();
        let delta = malicious::self_replace_bit(&plaintext, bit);
        mediator.save_delta(&doc_id, &delta).unwrap();
        let seen = observer.observe(&server.stored_content(&doc_id).unwrap()).unwrap();
        if seen == bit {
            recovered += 1;
        }
    }
    recovered
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let secret_bits = [true, false, true, true, false, false, true, false];

    println!("## Channel 1: edit-pattern (self-replace) channel\n");
    let leaked = run_edit_pattern_channel(false, &secret_bits);
    println!(
        "without canonicalization: server recovers {leaked}/{} bits — channel open",
        secret_bits.len()
    );
    assert_eq!(leaked, secret_bits.len());

    let leaked = run_edit_pattern_channel(true, &secret_bits);
    // With canonicalization, self-replaces collapse to identity deltas:
    // the ciphertext never changes, so the observer reads all-zero bits
    // and only matches the bits that happened to be 0.
    let zeros = secret_bits.iter().filter(|&&b| !b).count();
    println!(
        "with canonicalization:   server recovers {leaked}/{} bits (chance level) — channel closed",
        secret_bits.len()
    );
    assert_eq!(leaked, zeros);

    println!("\n## Channel 2: document-length channel\n");
    // A malicious client encodes letters as invisible padding growth. The
    // mediator cannot remove real insertions, but multi-character blocks
    // coarsen the signal (§VI-A).
    let channel = LengthChannel::new();
    for b in [1usize, 8] {
        let classes: std::collections::HashSet<usize> =
            (0..26).map(|s| channel.record_growth(s, b)).collect();
        let bits_per_symbol = (classes.len() as f64).log2();
        println!(
            "block size {b}: {} distinguishable size classes → {bits_per_symbol:.2} bits/symbol",
            classes.len()
        );
    }
    println!("\n→ canonicalization kills redundant-edit channels; multi-character");
    println!("  blocks shrink the length channel from 4.7 to 2 bits per symbol.");
    println!("  Complete elimination needs a trusted client, as the paper concludes.");
    Ok(())
}
