//! CRC-32 (IEEE 802.3, the zlib/gzip polynomial), slice-by-16.
//!
//! Every WAL frame and snapshot body carries one of these so replay can
//! tell a torn tail from good data. Not a cryptographic integrity check —
//! the ciphertext layers above carry their own MACs — just fast
//! corruption detection for the storage engine itself.
//!
//! The hot path is slice-by-16: sixteen precomputed tables let one loop
//! iteration fold sixteen message bytes into the state with sixteen
//! independent table loads, instead of the classic one-byte-per-iteration
//! Sarwate loop (kept as [`crc32_bytewise`], the parity oracle for tests).
//! [`Crc32`] is the streaming form used by the WAL encoder so the CRC is
//! computed in the same pass that copies the payload into the frame
//! buffer.

/// The reflected polynomial 0xEDB88320.
const POLY: u32 = 0xEDB8_8320;

/// How many bytes one slice-by-16 iteration consumes.
const SLICE: usize = 16;

const fn build_tables() -> [[u32; 256]; SLICE] {
    let mut tables = [[0u32; 256]; SLICE];
    // T[0] is the classic Sarwate table: CRC of the single byte `i`.
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    // T[k][i] is the CRC of byte `i` followed by k zero bytes — i.e. the
    // contribution of a byte that sits k positions before the end of the
    // chunk. Each table is the previous one advanced by one zero byte.
    let mut k = 1;
    while k < SLICE {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

static TABLES: [[u32; 256]; SLICE] = build_tables();

/// Folds `bytes` into a raw (pre-inverted) CRC state.
#[inline]
fn update(mut crc: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(SLICE);
    for chunk in &mut chunks {
        // The four state bytes combine with the first four message bytes;
        // the remaining twelve message bytes contribute independently.
        // Byte j of the chunk is SLICE-1-j positions from the chunk end,
        // so it indexes table T[SLICE-1-j].
        let state = crc.to_le_bytes();
        crc = TABLES[15][(state[0] ^ chunk[0]) as usize]
            ^ TABLES[14][(state[1] ^ chunk[1]) as usize]
            ^ TABLES[13][(state[2] ^ chunk[2]) as usize]
            ^ TABLES[12][(state[3] ^ chunk[3]) as usize]
            ^ TABLES[11][chunk[4] as usize]
            ^ TABLES[10][chunk[5] as usize]
            ^ TABLES[9][chunk[6] as usize]
            ^ TABLES[8][chunk[7] as usize]
            ^ TABLES[7][chunk[8] as usize]
            ^ TABLES[6][chunk[9] as usize]
            ^ TABLES[5][chunk[10] as usize]
            ^ TABLES[4][chunk[11] as usize]
            ^ TABLES[3][chunk[12] as usize]
            ^ TABLES[2][chunk[13] as usize]
            ^ TABLES[1][chunk[14] as usize]
            ^ TABLES[0][chunk[15] as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xff) as usize];
    }
    crc
}

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    !update(!0u32, bytes)
}

/// The classic one-byte-per-iteration loop this module used before
/// slice-by-16. Kept as the parity oracle for the fast path; not used on
/// any hot path.
pub fn crc32_bytewise(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// Streaming CRC-32: feed bytes in any number of [`Crc32::update`] calls
/// and read the digest with [`Crc32::finish`].
///
/// Byte-split invariant (pinned by proptest): any partition of the input
/// across `update` calls yields the same digest as one-shot [`crc32`].
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher (equivalent to `crc32(b"")` if finished at once).
    pub fn new() -> Crc32 {
        Crc32 { state: !0u32 }
    }

    /// Folds `bytes` into the running checksum.
    #[inline]
    pub fn update(&mut self, bytes: &[u8]) {
        self.state = update(self.state, bytes);
    }

    /// The CRC-32 of everything fed so far. Does not consume the hasher;
    /// further updates continue from the same state.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_answer_vectors() {
        // Standard CRC-32 test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn bytewise_known_answer_vectors() {
        assert_eq!(crc32_bytewise(b""), 0);
        assert_eq!(crc32_bytewise(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32_bytewise(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let data = b"write-ahead log frame payload".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit} undetected");
            }
        }
    }

    #[test]
    fn lengths_around_the_chunk_boundary() {
        // 0..64 covers the remainder-only, exactly-one-chunk, and
        // chunk-plus-remainder shapes of the slice-by-16 loop.
        let data: Vec<u8> = (0..64u8).map(|i| i.wrapping_mul(37).wrapping_add(11)).collect();
        for len in 0..=data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_bytewise(&data[..len]),
                "parity at len {len}"
            );
        }
    }

    proptest! {
        /// Slice-by-16 agrees with the bytewise oracle on arbitrary input.
        #[test]
        fn slice_by_16_matches_bytewise(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            prop_assert_eq!(crc32(&data), crc32_bytewise(&data));
        }

        /// The streaming hasher is split-invariant: chunking the input
        /// arbitrarily across update() calls never changes the digest.
        #[test]
        fn streaming_split_invariant(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                     splits in proptest::collection::vec(any::<usize>(), 0..8)) {
            let mut cuts: Vec<usize> = splits.iter().map(|s| s % (data.len() + 1)).collect();
            cuts.push(0);
            cuts.push(data.len());
            cuts.sort_unstable();

            let mut hasher = Crc32::new();
            for pair in cuts.windows(2) {
                hasher.update(&data[pair[0]..pair[1]]);
            }
            prop_assert_eq!(hasher.finish(), crc32(&data));
        }
    }
}
