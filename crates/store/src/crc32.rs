//! CRC-32 (IEEE 802.3, the zlib/gzip polynomial), table-driven.
//!
//! Every WAL frame and snapshot body carries one of these so replay can
//! tell a torn tail from good data. Not a cryptographic integrity check —
//! the ciphertext layers above carry their own MACs — just fast
//! corruption detection for the storage engine itself.

/// The reflected polynomial 0xEDB88320.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vectors() {
        // Standard CRC-32 test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let data = b"write-ahead log frame payload".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit} undetected");
            }
        }
    }
}
