//! The in-memory store: yesterday's `HashMap` behaviour behind today's
//! trait, for tests, benchmarks baselines, and ephemeral servers.

use crate::index::{Index, DEFAULT_SHARDS};
use crate::log::CompactionStats;
use crate::{DeltaLimits, DocState, DocStore, StoreError};

/// A purely in-memory [`DocStore`]. Nothing survives the process — which
/// is exactly the property benchmarks compare [`crate::LogStore`]
/// against.
#[derive(Debug)]
pub struct MemStore {
    index: Index,
    /// Serializes writers so the read-check-apply of a delta (and its
    /// [`DeltaLimits::base_version`] precondition) is atomic against
    /// concurrent saves, matching [`crate::LogStore`]'s write lock.
    write_lock: parking_lot::Mutex<()>,
}

impl MemStore {
    /// Creates an empty store with the default shard count.
    pub fn new() -> MemStore {
        MemStore { index: Index::new(DEFAULT_SHARDS), write_lock: parking_lot::Mutex::new(()) }
    }
}

impl Default for MemStore {
    fn default() -> MemStore {
        MemStore::new()
    }
}

/// Rejects the apply when a [`DeltaLimits::base_version`] precondition
/// does not match the document's current version. Callers must hold
/// their writer lock so the check is atomic with the write.
pub(crate) fn check_base_version(current: u64, limits: DeltaLimits) -> Result<(), StoreError> {
    match limits.base_version {
        Some(base) if base != current => Err(StoreError::Conflict(format!(
            "delta base version {base} is stale (document at {current})"
        ))),
        _ => Ok(()),
    }
}

/// Applies a delta against `current` under `limits`, shared by both
/// backends so their error behaviour is byte-identical.
pub(crate) fn apply_delta_checked(
    current: &[u8],
    delta: &pe_delta::Delta,
    limits: DeltaLimits,
) -> Result<Vec<u8>, StoreError> {
    let updated =
        delta.apply_bytes(current).map_err(|e| StoreError::Conflict(e.to_string()))?;
    if updated.len() > limits.max_len {
        return Err(StoreError::TooLarge { len: updated.len(), max: limits.max_len });
    }
    if limits.require_utf8 && std::str::from_utf8(&updated).is_err() {
        return Err(StoreError::InvalidUtf8);
    }
    Ok(updated)
}

impl DocStore for MemStore {
    fn get(&self, id: &str) -> Option<DocState> {
        self.index.get(id)
    }

    fn content(&self, id: &str) -> Option<Vec<u8>> {
        self.index.content(id)
    }

    fn contains(&self, id: &str) -> bool {
        self.index.contains(id)
    }

    fn list(&self) -> Vec<String> {
        self.index.list()
    }

    fn create(&self, id: &str) -> Result<bool, StoreError> {
        Ok(self.index.apply_create(id))
    }

    fn put_full(&self, id: &str, content: &[u8]) -> Result<u64, StoreError> {
        let _writers = self.write_lock.lock();
        Ok(self.index.apply_save(id, content.to_vec()))
    }

    fn apply_delta(
        &self,
        id: &str,
        delta: &pe_delta::Delta,
        limits: DeltaLimits,
    ) -> Result<DocState, StoreError> {
        let _writers = self.write_lock.lock();
        let current = self.index.content(id).ok_or(StoreError::NoSuchDocument)?;
        check_base_version(self.index.version(id).unwrap_or(0), limits)?;
        let updated = apply_delta_checked(&current, delta, limits)?;
        let version = self.index.apply_save(id, updated.clone());
        Ok(DocState { content: updated, version, revisions: Vec::new() })
    }

    fn remove(&self, id: &str) -> Result<bool, StoreError> {
        Ok(self.index.apply_remove(id))
    }

    fn meta(&self, key: &str) -> Option<u64> {
        self.index.meta_get(key)
    }

    fn set_meta(&self, key: &str, value: u64) -> Result<(), StoreError> {
        self.index.meta_set(key, value);
        Ok(())
    }

    fn bump_meta(&self, key: &str) -> Result<u64, StoreError> {
        Ok(self.index.meta_bump(key))
    }

    fn meta_entries(&self) -> Vec<(String, u64)> {
        self.index.meta_entries()
    }

    fn flush(&self) -> Result<(), StoreError> {
        Ok(())
    }

    fn compact(&self) -> Result<CompactionStats, StoreError> {
        Ok(CompactionStats::default())
    }

    fn name(&self) -> &'static str {
        "mem"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_delta::Delta;

    #[test]
    fn full_lifecycle() {
        let store = MemStore::new();
        assert!(store.create("d").unwrap());
        assert!(!store.create("d").unwrap());
        assert_eq!(store.put_full("d", b"abcdefg").unwrap(), 1);
        let delta = Delta::parse("=2\t-3\t+uv\t=2\t+w").unwrap();
        let state = store.apply_delta("d", &delta, DeltaLimits::none()).unwrap();
        assert_eq!(state.content, b"abuvfgw");
        assert_eq!(state.version, 2);
        let full = store.get("d").unwrap();
        assert_eq!(full.revisions, vec![Vec::new(), b"abcdefg".to_vec()]);
        assert!(store.remove("d").unwrap());
        assert!(store.get("d").is_none());
    }

    #[test]
    fn delta_limits_are_enforced_before_commit() {
        let store = MemStore::new();
        store.put_full("d", b"base").unwrap();
        let grow = Delta::parse("=4\t+xxxxxxxx").unwrap();
        let err = store
            .apply_delta("d", &grow, DeltaLimits { max_len: 8, ..DeltaLimits::none() })
            .unwrap_err();
        assert!(matches!(err, StoreError::TooLarge { len: 12, max: 8 }));
        assert_eq!(store.content("d").unwrap(), b"base", "nothing committed");
        assert_eq!(store.get("d").unwrap().version, 1);

        let conflict = Delta::parse("=100\t-1").unwrap();
        assert!(matches!(
            store.apply_delta("d", &conflict, DeltaLimits::none()),
            Err(StoreError::Conflict(_))
        ));
        assert!(matches!(
            store.apply_delta("missing", &grow, DeltaLimits::none()),
            Err(StoreError::NoSuchDocument)
        ));
    }

    #[test]
    fn utf8_requirement_blocks_byte_splits() {
        let store = MemStore::new();
        store.put_full("d", "héllo".as_bytes()).unwrap();
        // Delete one byte of the two-byte é.
        let split = Delta::parse("=1\t-1\t=4").unwrap();
        let err = store
            .apply_delta("d", &split, DeltaLimits { require_utf8: true, ..DeltaLimits::none() })
            .unwrap_err();
        assert!(matches!(err, StoreError::InvalidUtf8));
        // Without the requirement the same delta commits.
        assert!(store.apply_delta("d", &split, DeltaLimits::none()).is_ok());
    }

    #[test]
    fn base_version_precondition_rejects_stale_writers() {
        let store = MemStore::new();
        store.put_full("d", b"one").unwrap();
        let delta = Delta::parse("=3\t+ two").unwrap();
        // Fresh precondition commits and bumps the version.
        let state = store.apply_delta("d", &delta, DeltaLimits::none().at_version(1)).unwrap();
        assert_eq!(state.version, 2);
        // The same precondition is now stale: nothing commits.
        let err =
            store.apply_delta("d", &delta, DeltaLimits::none().at_version(1)).unwrap_err();
        assert!(matches!(err, StoreError::Conflict(_)));
        assert_eq!(store.content("d").unwrap(), b"one two");
    }

    #[test]
    fn meta_and_flush_are_trivial() {
        let store = MemStore::new();
        assert_eq!(store.bump_meta("n").unwrap(), 1);
        store.set_meta("n", 10).unwrap();
        assert_eq!(store.meta("n"), Some(10));
        store.flush().unwrap();
        assert_eq!(store.compact().unwrap(), CompactionStats::default());
        assert_eq!(store.name(), "mem");
    }
}
