//! Point-in-time snapshot files.
//!
//! A snapshot `snap-<seq>.snap` captures the entire index as of the end
//! of WAL segment `seq`. On-disk layout:
//!
//! ```text
//! magic "PESNAP1\n" (8 bytes)
//! body:
//!   covered_seq: u64
//!   meta count: u32, then (key: u16-len str, value: u64)*
//!   doc count:  u32, then per doc:
//!     id: u16-len str, version: u64,
//!     content: u32-len bytes,
//!     revision count: u32, then (u32-len bytes)*
//! crc32(body): u32
//! ```
//!
//! Snapshots are written to a `.tmp` file, fsynced, then atomically
//! renamed into place (and the directory fsynced), so a crash at any
//! point leaves either no snapshot or a complete one — never a partial
//! file with a valid name.

use std::io::Write;
use std::path::{Path, PathBuf};

use crate::crc32::crc32;
use crate::wal::sync_dir;
use crate::{DocState, StoreError};

const MAGIC: &[u8; 8] = b"PESNAP1\n";

/// Path of the snapshot covering segment `seq`.
pub fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snap-{seq:010}.snap"))
}

/// Parses a snapshot file name back into its covered sequence number.
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?.strip_suffix(".snap")?.parse().ok()
}

/// Serializes and writes the snapshot to its temporary file (fsynced).
/// Returns the temp path and the byte size.
///
/// # Errors
///
/// [`StoreError::Io`] on write failure.
pub fn write_snapshot_tmp(
    dir: &Path,
    seq: u64,
    docs: &[(String, DocState)],
    meta: &[(String, u64)],
) -> Result<(PathBuf, u64), StoreError> {
    let mut body = Vec::new();
    body.extend_from_slice(&seq.to_le_bytes());
    body.extend_from_slice(&(meta.len() as u32).to_le_bytes());
    for (key, value) in meta {
        put_str16(&mut body, key);
        body.extend_from_slice(&value.to_le_bytes());
    }
    body.extend_from_slice(&(docs.len() as u32).to_le_bytes());
    for (id, state) in docs {
        put_str16(&mut body, id);
        body.extend_from_slice(&state.version.to_le_bytes());
        put_bytes32(&mut body, &state.content);
        body.extend_from_slice(&(state.revisions.len() as u32).to_le_bytes());
        for revision in &state.revisions {
            put_bytes32(&mut body, revision);
        }
    }
    let tmp = dir.join(format!("snap-{seq:010}.tmp"));
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(MAGIC)?;
    file.write_all(&body)?;
    file.write_all(&crc32(&body).to_le_bytes())?;
    file.sync_all()?;
    let bytes = (MAGIC.len() + body.len() + 4) as u64;
    Ok((tmp, bytes))
}

/// Atomically publishes a temp snapshot under its final name.
///
/// # Errors
///
/// [`StoreError::Io`] on rename/fsync failure.
pub fn publish_snapshot(dir: &Path, tmp: &Path, seq: u64) -> Result<PathBuf, StoreError> {
    let final_path = snapshot_path(dir, seq);
    std::fs::rename(tmp, &final_path)?;
    sync_dir(dir)?;
    Ok(final_path)
}

/// A parsed snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotContents {
    /// Highest WAL segment the snapshot covers.
    pub covered_seq: u64,
    /// All documents, sorted by id.
    pub docs: Vec<(String, DocState)>,
    /// All metadata counters.
    pub meta: Vec<(String, u64)>,
}

/// Reads and validates a snapshot file.
///
/// # Errors
///
/// [`StoreError::Io`] on read failure, [`StoreError::Corrupt`] on bad
/// magic, bad CRC, or structural violations.
pub fn read_snapshot(path: &Path) -> Result<SnapshotContents, StoreError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < MAGIC.len() + 4 || &bytes[..MAGIC.len()] != MAGIC {
        return Err(StoreError::Corrupt(format!("{}: bad snapshot magic", path.display())));
    }
    let body = &bytes[MAGIC.len()..bytes.len() - 4];
    let stored_crc =
        u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    if crc32(body) != stored_crc {
        return Err(StoreError::Corrupt(format!("{}: snapshot CRC mismatch", path.display())));
    }
    let mut r = Reader { bytes: body, pos: 0 };
    let covered_seq = r.u64()?;
    let meta_count = r.u32()? as usize;
    let mut meta = Vec::with_capacity(meta_count.min(1024));
    for _ in 0..meta_count {
        let key = r.str16()?;
        let value = r.u64()?;
        meta.push((key, value));
    }
    let doc_count = r.u32()? as usize;
    let mut docs = Vec::with_capacity(doc_count.min(1024));
    for _ in 0..doc_count {
        let id = r.str16()?;
        let version = r.u64()?;
        let content = r.bytes32()?;
        let revision_count = r.u32()? as usize;
        let mut revisions = Vec::with_capacity(revision_count.min(1024));
        for _ in 0..revision_count {
            revisions.push(r.bytes32()?);
        }
        docs.push((id, DocState { content, version, revisions }));
    }
    if r.pos != body.len() {
        return Err(StoreError::Corrupt(format!(
            "{}: {} trailing snapshot bytes",
            path.display(),
            body.len() - r.pos
        )));
    }
    Ok(SnapshotContents { covered_seq, docs, meta })
}

fn put_str16(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes32(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| StoreError::Corrupt("snapshot body truncated".into()))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn str16(&mut self) -> Result<String, StoreError> {
        let len = u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")) as usize;
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| StoreError::Corrupt("snapshot id is not UTF-8".into()))
    }

    fn bytes32(&mut self) -> Result<Vec<u8>, StoreError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let path = std::env::temp_dir().join(format!(
                "pe-snap-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&path);
            std::fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    type SampleState = (Vec<(String, DocState)>, Vec<(String, u64)>);

    fn sample() -> SampleState {
        let docs = vec![
            (
                "doc1".to_string(),
                DocState {
                    content: b"cipher".to_vec(),
                    version: 3,
                    revisions: vec![Vec::new(), b"old".to_vec()],
                },
            ),
            ("doc2".to_string(), DocState::default()),
        ];
        let meta = vec![("next_doc".to_string(), 2), ("next_session".to_string(), 5)];
        (docs, meta)
    }

    #[test]
    fn write_publish_read_round_trips() {
        let dir = TempDir::new("roundtrip");
        let (docs, meta) = sample();
        let (tmp, bytes) = write_snapshot_tmp(&dir.0, 4, &docs, &meta).unwrap();
        assert!(tmp.exists());
        assert!(bytes > 0);
        let path = publish_snapshot(&dir.0, &tmp, 4).unwrap();
        assert!(!tmp.exists());
        let contents = read_snapshot(&path).unwrap();
        assert_eq!(contents.covered_seq, 4);
        assert_eq!(contents.docs, docs);
        assert_eq!(contents.meta, meta);
    }

    #[test]
    fn bit_flips_fail_the_crc() {
        let dir = TempDir::new("flip");
        let (docs, meta) = sample();
        let (tmp, _) = write_snapshot_tmp(&dir.0, 1, &docs, &meta).unwrap();
        let path = publish_snapshot(&dir.0, &tmp, 1).unwrap();
        let clean = std::fs::read(&path).unwrap();
        for pos in [0usize, MAGIC.len() + 3, clean.len() / 2, clean.len() - 1] {
            let mut bad = clean.clone();
            bad[pos] ^= 1;
            std::fs::write(&path, &bad).unwrap();
            assert!(read_snapshot(&path).is_err(), "flip at {pos} accepted");
        }
    }

    #[test]
    fn name_parsing_round_trips() {
        let path = snapshot_path(Path::new("/d"), 12);
        let name = path.file_name().unwrap().to_str().unwrap();
        assert_eq!(parse_snapshot_name(name), Some(12));
        assert_eq!(parse_snapshot_name("wal-0000000001.log"), None);
    }
}
