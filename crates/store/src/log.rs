//! The log-structured store: WAL in front, sharded index behind,
//! snapshots + compaction underneath.
//!
//! ## Write path
//!
//! Every mutation (1) serializes behind a short write lock just long
//! enough to read-modify-write the index and enqueue one CRC-framed
//! record into the group-commit buffer, then (2) releases the lock and
//! waits for durability via [`wal::GroupWal::sync_to`] — one *leader*
//! fsync covers every record that arrived while the previous sync was in
//! flight, so the per-record fsync cost amortizes across concurrent
//! writers. An `Ok` return *is* the acknowledgement: under
//! [`FsyncPolicy::Always`] the record is on disk before the caller hears
//! back.
//!
//! ## Open path
//!
//! [`LogStore::open`] loads the newest valid snapshot (if any), replays
//! every WAL segment after it in order, repairs a torn tail on the final
//! segment, and resumes appending. Replay applies records through the
//! exact same index functions the live write path uses, so recovery is
//! replaying history, not reimplementing it.
//!
//! ## Compaction
//!
//! [`LogStore::compact`] seals the live segment, writes a point-in-time
//! snapshot covering it (temp file → fsync → rename → dir fsync),
//! appends a snapshot-marker, and garbage-collects superseded segments
//! and older snapshots. A crash at any step leaves a recoverable
//! directory; the seeded [`StoreFaults`] injector proves each step.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::index::{Index, DEFAULT_SHARDS};
use crate::mem::{apply_delta_checked, check_base_version};
use crate::record::Record;
use crate::snapfile;
use crate::wal::{self, AppendAck, FsyncPolicy, GroupWal, SegmentWriter};
use crate::{CrashPoint, DeltaLimits, DocState, DocStore, StoreError, StoreFaults};

/// Documents plus meta entries, as one consistent cut.
pub(crate) type SnapshotState = (Vec<(String, DocState)>, Vec<(String, u64)>);

/// Configuration for [`LogStore::open`].
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Fsync policy for WAL appends.
    pub fsync: FsyncPolicy,
    /// Index shard count.
    pub shards: usize,
    /// When set, a background thread compacts the store once the live
    /// log grows past this many bytes since the last snapshot.
    pub compact_threshold_bytes: Option<u64>,
    /// Seeded crash-point plan (tests only).
    pub faults: Option<StoreFaults>,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            fsync: FsyncPolicy::Always,
            shards: DEFAULT_SHARDS,
            compact_threshold_bytes: None,
            faults: None,
        }
    }
}

/// What one compaction accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Highest WAL segment covered by the snapshot (0 when nothing ran).
    pub covered_seq: u64,
    /// Bytes in the snapshot file.
    pub snapshot_bytes: u64,
    /// WAL segment files deleted.
    pub segments_removed: u64,
    /// Older snapshot files deleted.
    pub snapshots_removed: u64,
    /// Documents captured.
    pub docs: u64,
}

struct LogInner {
    dir: PathBuf,
    index: Index,
    /// Serializes mutations: index read-modify-write + record enqueue
    /// happen under this lock; the fsync wait happens *outside* it.
    write_lock: Mutex<()>,
    wal: GroupWal,
    compact_lock: Mutex<()>,
    poisoned: AtomicBool,
    stop: AtomicBool,
    /// Live log bytes appended since the last snapshot (drives the
    /// background compactor).
    log_bytes: AtomicU64,
    compact_threshold: Option<u64>,
    faults: Option<StoreFaults>,
}

/// The durable log-structured [`DocStore`].
pub struct LogStore {
    inner: Arc<LogInner>,
    compactor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for LogStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogStore")
            .field("dir", &self.inner.dir)
            .field("docs", &self.inner.index.doc_count())
            .finish()
    }
}

/// Scans a store directory into (segments by seq, snapshot seqs
/// descending).
fn scan_dir(dir: &Path) -> Result<(BTreeMap<u64, PathBuf>, Vec<u64>), StoreError> {
    let mut segments = BTreeMap::new();
    let mut snapshots = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = wal::parse_segment_name(name) {
            segments.insert(seq, entry.path());
        } else if let Some(seq) = snapfile::parse_snapshot_name(name) {
            snapshots.push(seq);
        }
    }
    snapshots.sort_unstable_by(|a, b| b.cmp(a));
    Ok((segments, snapshots))
}

impl LogStore {
    /// Opens (or creates) the store at `dir`, rebuilding the index from
    /// the newest valid snapshot plus WAL replay.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures, [`StoreError::Corrupt`]
    /// when sealed log state fails validation (every snapshot invalid
    /// while segments are missing, a gap in the segment sequence, or a
    /// bad frame in a sealed segment).
    pub fn open(dir: impl AsRef<Path>, config: StoreConfig) -> Result<LogStore, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        if dir.join(crate::shard::MANIFEST_NAME).exists() {
            return Err(StoreError::Corrupt(format!(
                "{} is a sharded store root; open it with ShardedLogStore",
                dir.display()
            )));
        }

        // A crash mid-compaction can leave a half-written `.tmp`; it was
        // never published, so it is dead weight.
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "tmp") {
                std::fs::remove_file(&path)?;
            }
        }

        let (segments, snapshots) = scan_dir(&dir)?;
        let index = Index::new(config.shards);

        // Newest valid snapshot wins; older ones are only a fallback
        // while the segments they need still exist.
        let mut covered_seq = 0u64;
        let mut loaded = false;
        for &seq in &snapshots {
            match snapfile::read_snapshot(&snapfile::snapshot_path(&dir, seq)) {
                Ok(contents) => {
                    for (key, value) in contents.meta {
                        index.meta_set(&key, value);
                    }
                    for (id, state) in contents.docs {
                        index.install(id, state);
                    }
                    covered_seq = contents.covered_seq;
                    loaded = true;
                    break;
                }
                Err(StoreError::Corrupt(msg)) => {
                    pe_observe::static_counter!("store.snapshot_rejected").inc();
                    // Fall back to an older snapshot — valid only if no
                    // segment it needs has been garbage-collected, which
                    // the gap check below enforces.
                    let _ = msg;
                }
                Err(e) => return Err(e),
            }
        }
        if !loaded && !snapshots.is_empty() {
            // Every snapshot is bad. Full replay still works only if
            // segment 1 survives (GC would have removed it).
            if !segments.contains_key(&1) {
                return Err(StoreError::Corrupt(
                    "all snapshots invalid and early segments already compacted away".into(),
                ));
            }
        }

        // Replay everything after the snapshot, in order, with no gaps.
        let replay: Vec<(u64, PathBuf)> = segments
            .range(covered_seq + 1..)
            .map(|(&seq, path)| (seq, path.clone()))
            .collect();
        for window in replay.windows(2) {
            if window[1].0 != window[0].0 + 1 {
                return Err(StoreError::Corrupt(format!(
                    "segment gap: wal {} follows wal {}",
                    window[1].0, window[0].0
                )));
            }
        }
        if let Some(&(first, _)) = replay.first() {
            if first != covered_seq + 1 && loaded {
                return Err(StoreError::Corrupt(format!(
                    "snapshot covers wal {covered_seq} but replay starts at wal {first}"
                )));
            }
        }

        let mut live_bytes = 0u64;
        let mut tail = None; // (seq, validated length)
        let last_seq = replay.last().map(|&(seq, _)| seq);
        for (seq, path) in &replay {
            let mut records = 0u64;
            let stats = wal::replay_segment(path, |record| {
                records += 1;
                apply_record(&index, &record);
            })?;
            pe_observe::counter("store.replay_records").add(stats.records);
            pe_observe::counter("store.recovered_bytes").add(stats.valid_bytes);
            if stats.torn_bytes > 0 && Some(*seq) != last_seq {
                return Err(StoreError::Corrupt(format!(
                    "sealed segment wal {seq} has {} invalid bytes",
                    stats.torn_bytes
                )));
            }
            live_bytes += stats.valid_bytes;
            tail = Some((*seq, stats.valid_bytes));
        }

        // Resume appending: continue the final segment (repairing any
        // torn tail) or start the first segment after the snapshot.
        let (seq, start_len) = tail.unwrap_or((covered_seq + 1, 0));
        // The fault plan lives in the group layer (which owns append
        // ordinals); the raw writer stays uninstrumented.
        let writer = SegmentWriter::open(&dir, seq, start_len, config.fsync, None)?;

        let inner = Arc::new(LogInner {
            dir,
            index,
            write_lock: Mutex::new(()),
            wal: GroupWal::new(writer, config.fsync, config.faults),
            compact_lock: Mutex::new(()),
            poisoned: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            log_bytes: AtomicU64::new(live_bytes),
            compact_threshold: config.compact_threshold_bytes,
            faults: config.faults,
        });

        let compactor = config.compact_threshold_bytes.map(|_| {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("pe-store-compactor".into())
                .spawn(move || background_compactor(&inner))
                .expect("spawn compactor thread")
        });

        Ok(LogStore { inner, compactor: Mutex::new(compactor) })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// Live WAL bytes appended since the last snapshot.
    pub fn log_bytes(&self) -> u64 {
        self.inner.log_bytes.load(Ordering::Relaxed)
    }

    fn check(&self) -> Result<(), StoreError> {
        if self.inner.poisoned.load(Ordering::SeqCst) {
            Err(StoreError::Poisoned)
        } else {
            Ok(())
        }
    }

    /// Enqueues a record under the already-held write lock — the single
    /// funnel every mutation goes through. The caller holds the lock so
    /// its read-modify-write (version read, existence check) and index
    /// apply are atomic with record ordering; durability is settled
    /// afterwards by [`LogStore::finish_commit`], outside the lock.
    fn commit_locked(&self, record: &Record) -> Result<AppendAck, StoreError> {
        match self.inner.wal.append(record) {
            Ok(ack) => {
                self.inner.log_bytes.fetch_add(ack.frame_len, Ordering::Relaxed);
                Ok(ack)
            }
            Err(e) => {
                if matches!(e, StoreError::InjectedCrash(_)) {
                    self.inner.poisoned.store(true, Ordering::SeqCst);
                }
                Err(e)
            }
        }
    }

    /// Completes a commit after the write lock is released: joins the
    /// group fsync when the policy demands durability before the ack.
    /// An fsync failure voids durability promises made since the last
    /// successful sync, so it poisons the whole store.
    fn finish_commit(
        &self,
        ack: AppendAck,
        started: std::time::Instant,
    ) -> Result<(), StoreError> {
        if ack.needs_sync {
            if let Err(e) = self.inner.wal.sync_to(ack.end) {
                self.inner.poisoned.store(true, Ordering::SeqCst);
                return Err(e);
            }
        }
        pe_observe::static_histogram!("store.append_ns").record_duration(started.elapsed());
        Ok(())
    }

    /// Lifetime group-commit counters (appends, fsyncs, batch sizes).
    pub fn group_stats(&self) -> wal::GroupStats {
        self.inner.wal.stats()
    }

    /// A point-in-time copy of every document and meta entry — the
    /// migration source for converting a legacy store into shards.
    pub(crate) fn snapshot_state(&self) -> SnapshotState {
        (self.inner.index.snapshot_docs(), self.inner.index.meta_entries())
    }
}

/// Applies one record to the index — shared verbatim by the live write
/// path and crash recovery.
fn apply_record(index: &Index, record: &Record) {
    match record {
        Record::Create { id } => {
            index.apply_create(id);
        }
        Record::FullSave { id, version, content } => {
            // Idempotence guard: snapshots are cut on exact segment
            // boundaries, but a defensive skip keeps double-applies
            // harmless.
            if index.version(id).is_none_or(|v| *version > v) {
                index.apply_save(id, content.clone());
            }
        }
        Record::Delta { id, version, delta } => {
            if index.version(id).is_none_or(|v| *version > v) {
                if let Ok(parsed) = pe_delta::Delta::parse(delta) {
                    if let Some(current) = index.content(id) {
                        if let Ok(updated) = parsed.apply_bytes(&current) {
                            index.apply_save(id, updated);
                        }
                    }
                }
            }
        }
        Record::Delete { id } => {
            index.apply_remove(id);
        }
        Record::Meta { key, value } => {
            index.meta_set(key, *value);
        }
        Record::SnapshotMarker { .. } => {}
    }
}

fn background_compactor(inner: &LogInner) {
    let threshold = inner.compact_threshold.expect("compactor only runs with a threshold");
    while !inner.stop.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(25));
        if inner.poisoned.load(Ordering::SeqCst) {
            continue;
        }
        if inner.log_bytes.load(Ordering::Relaxed) >= threshold {
            // Failures surface on the foreground path (poisoned flag or
            // the next explicit compact); the background thread only
            // keeps trying.
            let _ = compact_inner(inner);
        }
    }
}

/// The compaction state machine. Holds the compaction lock so explicit
/// and background compactions never interleave.
fn compact_inner(inner: &LogInner) -> Result<CompactionStats, StoreError> {
    let _serialize = inner.compact_lock.lock();

    // Seal the live segment and cut a consistent copy of the index. The
    // write lock blocks writers for exactly the rotation + copy.
    let (sealed, docs, meta) = {
        let _writers = inner.write_lock.lock();
        let sealed = inner.wal.rotate()?;
        let docs = inner.index.snapshot_docs();
        let meta = inner.index.meta_entries();
        (sealed, docs, meta)
    };

    let (tmp, snapshot_bytes) = snapfile::write_snapshot_tmp(&inner.dir, sealed, &docs, &meta)?;

    if let Some(faults) = inner.faults {
        if faults.triggers_compaction(CrashPoint::SnapshotBeforeRename) {
            inner.poisoned.store(true, Ordering::SeqCst);
            return Err(StoreError::InjectedCrash(CrashPoint::SnapshotBeforeRename.name()));
        }
    }

    snapfile::publish_snapshot(&inner.dir, &tmp, sealed)?;

    if let Some(faults) = inner.faults {
        if faults.triggers_compaction(CrashPoint::SnapshotAfterRename) {
            inner.poisoned.store(true, Ordering::SeqCst);
            return Err(StoreError::InjectedCrash(CrashPoint::SnapshotAfterRename.name()));
        }
    }

    // Leave a marker in the live log, then garbage-collect everything
    // the snapshot supersedes.
    let marker = {
        let _writers = inner.write_lock.lock();
        let ack = inner.wal.append(&Record::SnapshotMarker { covered_seq: sealed })?;
        inner.log_bytes.store(inner.wal.live_len(), Ordering::Relaxed);
        ack
    };
    if marker.needs_sync {
        inner.wal.sync_to(marker.end)?;
    }
    let (segments, snapshots) = scan_dir(&inner.dir)?;
    let mut segments_removed = 0u64;
    for (&seq, path) in segments.range(..=sealed) {
        std::fs::remove_file(path)?;
        let _ = seq;
        segments_removed += 1;
    }
    let mut snapshots_removed = 0u64;
    for &seq in snapshots.iter().filter(|&&seq| seq < sealed) {
        std::fs::remove_file(snapfile::snapshot_path(&inner.dir, seq))?;
        snapshots_removed += 1;
    }
    wal::sync_dir(&inner.dir)?;

    pe_observe::static_counter!("store.compactions").inc();
    pe_observe::counter("store.snapshot_bytes").add(snapshot_bytes);
    pe_observe::counter("store.segments_removed").add(segments_removed);

    Ok(CompactionStats {
        covered_seq: sealed,
        snapshot_bytes,
        segments_removed,
        snapshots_removed,
        docs: docs.len() as u64,
    })
}

impl Drop for LogStore {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.compactor.lock().take() {
            let _ = handle.join();
        }
        // Best-effort durability on clean shutdown.
        if !self.inner.poisoned.load(Ordering::SeqCst) {
            let _ = self.inner.wal.flush();
        }
    }
}

impl DocStore for LogStore {
    fn get(&self, id: &str) -> Option<DocState> {
        self.inner.index.get(id)
    }

    fn content(&self, id: &str) -> Option<Vec<u8>> {
        self.inner.index.content(id)
    }

    fn contains(&self, id: &str) -> bool {
        self.inner.index.contains(id)
    }

    fn list(&self) -> Vec<String> {
        self.inner.index.list()
    }

    fn create(&self, id: &str) -> Result<bool, StoreError> {
        self.check()?;
        let started = std::time::Instant::now();
        let ack = {
            let _writers = self.inner.write_lock.lock();
            if self.inner.index.contains(id) {
                return Ok(false);
            }
            let ack = self.commit_locked(&Record::Create { id: id.to_string() })?;
            self.inner.index.apply_create(id);
            ack
        };
        self.finish_commit(ack, started)?;
        Ok(true)
    }

    fn put_full(&self, id: &str, content: &[u8]) -> Result<u64, StoreError> {
        self.check()?;
        let started = std::time::Instant::now();
        let (ack, version) = {
            let _writers = self.inner.write_lock.lock();
            let version = self.inner.index.version(id).unwrap_or(0) + 1;
            let record =
                Record::FullSave { id: id.to_string(), version, content: content.to_vec() };
            let ack = self.commit_locked(&record)?;
            let applied = self.inner.index.apply_save(id, content.to_vec());
            debug_assert_eq!(applied, version);
            (ack, version)
        };
        self.finish_commit(ack, started)?;
        Ok(version)
    }

    fn apply_delta(
        &self,
        id: &str,
        delta: &pe_delta::Delta,
        limits: DeltaLimits,
    ) -> Result<DocState, StoreError> {
        self.check()?;
        let started = std::time::Instant::now();
        let (ack, updated, version) = {
            let _writers = self.inner.write_lock.lock();
            let current = self.inner.index.content(id).ok_or(StoreError::NoSuchDocument)?;
            check_base_version(self.inner.index.version(id).unwrap_or(0), limits)?;
            let updated = apply_delta_checked(&current, delta, limits)?;
            let version = self.inner.index.version(id).unwrap_or(0) + 1;
            let record =
                Record::Delta { id: id.to_string(), version, delta: delta.serialize() };
            let ack = self.commit_locked(&record)?;
            let applied = self.inner.index.apply_save(id, updated.clone());
            debug_assert_eq!(applied, version);
            (ack, updated, version)
        };
        self.finish_commit(ack, started)?;
        Ok(DocState { content: updated, version, revisions: Vec::new() })
    }

    fn remove(&self, id: &str) -> Result<bool, StoreError> {
        self.check()?;
        let started = std::time::Instant::now();
        let ack = {
            let _writers = self.inner.write_lock.lock();
            if !self.inner.index.contains(id) {
                return Ok(false);
            }
            let ack = self.commit_locked(&Record::Delete { id: id.to_string() })?;
            self.inner.index.apply_remove(id);
            ack
        };
        self.finish_commit(ack, started)?;
        Ok(true)
    }

    fn meta(&self, key: &str) -> Option<u64> {
        self.inner.index.meta_get(key)
    }

    fn set_meta(&self, key: &str, value: u64) -> Result<(), StoreError> {
        self.check()?;
        let started = std::time::Instant::now();
        let ack = {
            let _writers = self.inner.write_lock.lock();
            let ack = self.commit_locked(&Record::Meta { key: key.to_string(), value })?;
            self.inner.index.meta_set(key, value);
            ack
        };
        self.finish_commit(ack, started)?;
        Ok(())
    }

    fn bump_meta(&self, key: &str) -> Result<u64, StoreError> {
        self.check()?;
        let started = std::time::Instant::now();
        let (ack, value) = {
            let _writers = self.inner.write_lock.lock();
            let value = self.inner.index.meta_get(key).unwrap_or(0) + 1;
            let ack = self.commit_locked(&Record::Meta { key: key.to_string(), value })?;
            self.inner.index.meta_set(key, value);
            (ack, value)
        };
        self.finish_commit(ack, started)?;
        Ok(value)
    }

    fn meta_entries(&self) -> Vec<(String, u64)> {
        self.inner.index.meta_entries()
    }

    fn flush(&self) -> Result<(), StoreError> {
        self.check()?;
        self.inner.wal.flush()
    }

    fn compact(&self) -> Result<CompactionStats, StoreError> {
        self.check()?;
        compact_inner(&self.inner)
    }

    fn name(&self) -> &'static str {
        "log"
    }
}

/// One segment's health, as seen by [`fsck`].
#[derive(Debug, Clone)]
pub struct SegmentReport {
    /// Segment sequence number.
    pub seq: u64,
    /// Valid records decoded.
    pub records: u64,
    /// Bytes of valid frames.
    pub valid_bytes: u64,
    /// Invalid trailing bytes (recoverable only on the final segment).
    pub torn_bytes: u64,
}

/// One snapshot's health, as seen by [`fsck`].
#[derive(Debug, Clone)]
pub struct SnapshotReport {
    /// Covered segment sequence number.
    pub seq: u64,
    /// Whether magic + CRC + structure all validated.
    pub valid: bool,
    /// Documents captured (0 when invalid).
    pub docs: u64,
}

/// The result of a read-only store verification.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Per-snapshot findings, newest first.
    pub snapshots: Vec<SnapshotReport>,
    /// Per-segment findings, oldest first.
    pub segments: Vec<SegmentReport>,
    /// Fatal problems that would make [`LogStore::open`] refuse or lose
    /// sealed data. Empty means the store opens cleanly.
    pub errors: Vec<String>,
    /// Non-fatal notes (e.g. a recoverable torn tail).
    pub warnings: Vec<String>,
    /// For a sharded root: one sub-report per shard (directory name,
    /// findings). Empty for a legacy single-directory store.
    pub shards: Vec<(String, FsckReport)>,
}

impl FsckReport {
    /// Whether the directory would open without data loss beyond a torn
    /// tail.
    pub fn is_healthy(&self) -> bool {
        self.errors.is_empty() && self.shards.iter().all(|(_, report)| report.is_healthy())
    }

    /// Human-readable rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, report) in &self.shards {
            let _ = writeln!(out, "[{name}]");
            for line in report.render_body().lines() {
                let _ = writeln!(out, "  {line}");
            }
        }
        out.push_str(&self.render_body());
        let _ = write!(
            out,
            "{}",
            if self.is_healthy() { "store healthy" } else { "STORE CORRUPT" }
        );
        out
    }

    /// Renders findings without the trailing verdict line.
    fn render_body(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for snap in &self.snapshots {
            let _ = writeln!(
                out,
                "snapshot snap-{:010}: {} ({} docs)",
                snap.seq,
                if snap.valid { "ok" } else { "INVALID" },
                snap.docs
            );
        }
        for seg in &self.segments {
            let _ = writeln!(
                out,
                "segment wal-{:010}: {} records, {} bytes{}",
                seg.seq,
                seg.records,
                seg.valid_bytes,
                if seg.torn_bytes > 0 {
                    format!(", {} torn tail bytes", seg.torn_bytes)
                } else {
                    String::new()
                }
            );
        }
        for warning in &self.warnings {
            let _ = writeln!(out, "warning: {warning}");
        }
        for error in &self.errors {
            let _ = writeln!(out, "error: {error}");
        }
        out
    }
}

/// Read-only verification of a store directory: validates every
/// snapshot's CRC and every WAL frame, without modifying anything.
/// Understands both layouts: a legacy single-directory store is checked
/// in place, while a sharded root (one carrying a
/// [`crate::MANIFEST_NAME`] manifest) gets one sub-report per shard and
/// is healthy only if every shard is.
///
/// # Errors
///
/// [`StoreError::Io`] only — validation findings land in the report, not
/// in the error channel.
pub fn fsck(dir: impl AsRef<Path>) -> Result<FsckReport, StoreError> {
    let dir = dir.as_ref();
    let mut report = FsckReport::default();
    if !dir.is_dir() {
        report.errors.push(format!("{} is not a store directory", dir.display()));
        return Ok(report);
    }
    if dir.join(crate::shard::MANIFEST_NAME).is_file() {
        match crate::shard::read_manifest(dir) {
            Ok(count) => {
                for shard in 0..count {
                    let sub = crate::shard::shard_dir(dir, shard);
                    let name = format!("shard-{shard:03}");
                    let shard_report = fsck_one(&sub)?;
                    report.shards.push((name, shard_report));
                }
            }
            Err(StoreError::Corrupt(msg)) => report.errors.push(msg),
            Err(e) => return Err(e),
        }
        return Ok(report);
    }
    fsck_one(dir)
}

/// Verifies one physical store directory (a legacy root or one shard).
fn fsck_one(dir: &Path) -> Result<FsckReport, StoreError> {
    let mut report = FsckReport::default();
    if !dir.is_dir() {
        report.errors.push(format!("{} is not a store directory", dir.display()));
        return Ok(report);
    }
    let (segments, snapshots) = scan_dir(dir)?;

    let mut best_snapshot = None;
    for &seq in &snapshots {
        match snapfile::read_snapshot(&snapfile::snapshot_path(dir, seq)) {
            Ok(contents) => {
                report.snapshots.push(SnapshotReport {
                    seq,
                    valid: true,
                    docs: contents.docs.len() as u64,
                });
                if best_snapshot.is_none() {
                    best_snapshot = Some(seq);
                }
            }
            Err(StoreError::Corrupt(msg)) => {
                report.snapshots.push(SnapshotReport { seq, valid: false, docs: 0 });
                report.errors.push(format!("snapshot snap-{seq:010}: {msg}"));
            }
            Err(e) => return Err(e),
        }
    }

    let covered = best_snapshot.unwrap_or(0);
    let replay: Vec<u64> = segments.range(covered + 1..).map(|(&seq, _)| seq).collect();
    for window in replay.windows(2) {
        if window[1] != window[0] + 1 {
            report
                .errors
                .push(format!("segment gap between wal {} and wal {}", window[0], window[1]));
        }
    }
    if let (Some(&first), Some(snap)) = (replay.first(), best_snapshot) {
        if first != snap + 1 {
            report.errors.push(format!(
                "snapshot covers wal {snap} but the next surviving segment is wal {first}"
            ));
        }
    }
    if best_snapshot.is_none() && !snapshots.is_empty() && !segments.contains_key(&1) {
        report
            .errors
            .push("all snapshots invalid and early segments already compacted away".into());
    }

    let last = segments.keys().next_back().copied();
    for (&seq, path) in &segments {
        match wal::replay_segment(path, |_| {}) {
            Ok(stats) => {
                if stats.torn_bytes > 0 {
                    if Some(seq) == last {
                        report.warnings.push(format!(
                            "segment wal {seq}: {} torn tail bytes (recoverable; open will truncate)",
                            stats.torn_bytes
                        ));
                    } else {
                        report.errors.push(format!(
                            "sealed segment wal {seq} has {} invalid bytes",
                            stats.torn_bytes
                        ));
                    }
                }
                report.segments.push(SegmentReport {
                    seq,
                    records: stats.records,
                    valid_bytes: stats.valid_bytes,
                    torn_bytes: stats.torn_bytes,
                });
            }
            Err(StoreError::Corrupt(msg)) => {
                report.errors.push(format!("segment wal {seq}: {msg}"));
                report.segments.push(SegmentReport {
                    seq,
                    records: 0,
                    valid_bytes: 0,
                    torn_bytes: 0,
                });
            }
            Err(e) => return Err(e),
        }
    }

    if segments.is_empty() && snapshots.is_empty() {
        report.warnings.push("store is empty (no segments, no snapshots)".into());
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) struct TempDir(pub PathBuf);

    impl TempDir {
        pub(crate) fn new(tag: &str) -> TempDir {
            let path = std::env::temp_dir().join(format!(
                "pe-log-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&path);
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn reopen(dir: &Path) -> LogStore {
        LogStore::open(dir, StoreConfig::default()).unwrap()
    }

    #[test]
    fn acknowledged_writes_survive_reopen() {
        let dir = TempDir::new("reopen");
        {
            let store = reopen(&dir.0);
            store.create("doc1").unwrap();
            store.put_full("doc1", b"v one").unwrap();
            store.put_full("doc1", b"v two").unwrap();
            store.set_meta("next_doc", 1).unwrap();
        }
        let store = reopen(&dir.0);
        let doc = store.get("doc1").unwrap();
        assert_eq!(doc.content, b"v two");
        assert_eq!(doc.version, 2);
        assert_eq!(doc.revisions, vec![Vec::new(), b"v one".to_vec()]);
        assert_eq!(store.meta("next_doc"), Some(1));
    }

    #[test]
    fn deltas_replay_to_the_same_state() {
        let dir = TempDir::new("delta");
        let expected;
        {
            let store = reopen(&dir.0);
            store.put_full("d", b"abcdefg").unwrap();
            let delta = pe_delta::Delta::parse("=2\t-3\t+uv\t=2\t+w").unwrap();
            expected = store.apply_delta("d", &delta, DeltaLimits::none()).unwrap();
            assert_eq!(expected.content, b"abuvfgw");
        }
        let store = reopen(&dir.0);
        assert_eq!(store.content("d").unwrap(), expected.content);
        assert_eq!(store.get("d").unwrap().version, 2);
    }

    #[test]
    fn removal_survives_reopen() {
        let dir = TempDir::new("remove");
        {
            let store = reopen(&dir.0);
            store.put_full("gone", b"x").unwrap();
            store.put_full("kept", b"y").unwrap();
            assert!(store.remove("gone").unwrap());
            assert!(!store.remove("never").unwrap());
        }
        let store = reopen(&dir.0);
        assert!(store.get("gone").is_none());
        assert_eq!(store.content("kept").unwrap(), b"y");
        assert_eq!(store.list(), vec!["kept"]);
    }

    #[test]
    fn compaction_snapshots_rotates_and_gcs() {
        let dir = TempDir::new("compact");
        {
            let store = reopen(&dir.0);
            for i in 0..20 {
                store.put_full(&format!("doc{}", i % 4), format!("body {i}").as_bytes()).unwrap();
            }
            let stats = store.compact().unwrap();
            assert_eq!(stats.covered_seq, 1);
            assert_eq!(stats.segments_removed, 1);
            assert_eq!(stats.docs, 4);
            // More writes after compaction land in the fresh segment.
            store.put_full("doc0", b"after compaction").unwrap();
            let again = store.compact().unwrap();
            assert_eq!(again.covered_seq, 2);
            assert_eq!(again.snapshots_removed, 1, "old snapshot GC'd");
        }
        let (segments, snapshots) = scan_dir(&dir.0).unwrap();
        assert_eq!(snapshots, vec![2]);
        assert!(segments.keys().all(|&s| s > 2));
        let store = reopen(&dir.0);
        assert_eq!(store.content("doc0").unwrap(), b"after compaction");
        assert_eq!(store.get("doc3").unwrap().content, b"body 19");
        // Revision history survives the snapshot round-trip: six saves
        // of doc0, the first creating it without a revision push.
        assert_eq!(store.get("doc0").unwrap().version, 6);
        assert_eq!(store.get("doc0").unwrap().revisions.len(), 5);
    }

    #[test]
    fn background_compactor_kicks_in() {
        let dir = TempDir::new("auto");
        let config = StoreConfig {
            compact_threshold_bytes: Some(2 * 1024),
            ..StoreConfig::default()
        };
        let store = LogStore::open(&dir.0, config).unwrap();
        for i in 0..200 {
            store.put_full("doc", format!("payload number {i:04}").as_bytes()).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let (_, snapshots) = scan_dir(&dir.0).unwrap();
            if !snapshots.is_empty() {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "compactor never ran");
            std::thread::sleep(Duration::from_millis(20));
        }
        drop(store);
        let store = reopen(&dir.0);
        assert_eq!(store.content("doc").unwrap(), b"payload number 0199");
    }

    #[test]
    fn fsck_reports_health_and_corruption() {
        let dir = TempDir::new("fsck");
        {
            let store = reopen(&dir.0);
            store.put_full("a", b"content a").unwrap();
            store.compact().unwrap();
            store.put_full("b", b"content b").unwrap();
        }
        let report = fsck(&dir.0).unwrap();
        assert!(report.is_healthy(), "{}", report.render());
        assert_eq!(report.snapshots.len(), 1);
        assert!(report.render().contains("store healthy"));

        // Flip a byte inside the snapshot: fsck must flag it.
        let snap = snapfile::snapshot_path(&dir.0, report.snapshots[0].seq);
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 1;
        std::fs::write(&snap, &bytes).unwrap();
        let report = fsck(&dir.0).unwrap();
        assert!(!report.is_healthy());
        assert!(report.render().contains("STORE CORRUPT"));
    }

    #[test]
    fn fsck_flags_missing_directory_and_torn_tail() {
        let missing = fsck("/nonexistent/pe-store-dir").unwrap();
        assert!(!missing.is_healthy());

        let dir = TempDir::new("fscktail");
        {
            let store = reopen(&dir.0);
            store.put_full("a", b"one").unwrap();
            store.put_full("a", b"two").unwrap();
        }
        // Tear the tail by hand.
        let path = wal::segment_path(&dir.0, 1);
        let len = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 2).unwrap();
        drop(f);
        let report = fsck(&dir.0).unwrap();
        assert!(report.is_healthy(), "torn tail is recoverable: {}", report.render());
        assert!(report.render().contains("torn tail"));
        // And open indeed recovers the prefix.
        let store = reopen(&dir.0);
        assert_eq!(store.content("a").unwrap(), b"one");
    }

    #[test]
    fn concurrent_writers_serialize_without_loss() {
        let dir = TempDir::new("concurrent");
        let store = std::sync::Arc::new(
            LogStore::open(&dir.0, StoreConfig { fsync: FsyncPolicy::Never, ..Default::default() })
                .unwrap(),
        );
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let store = std::sync::Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        store.put_full(&format!("doc{t}"), format!("{t}:{i}").as_bytes()).unwrap();
                        store.bump_meta("total").unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(store.meta("total"), Some(200));
        drop(std::sync::Arc::try_unwrap(store).unwrap());
        let store = reopen(&dir.0);
        assert_eq!(store.meta("total"), Some(200));
        for t in 0..4 {
            assert_eq!(store.get(&format!("doc{t}")).unwrap().version, 50);
        }
    }
}
