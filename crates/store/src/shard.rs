//! Document-sharded storage: N independent [`LogStore`]s behind one
//! [`DocStore`].
//!
//! ## Layout
//!
//! A sharded store root holds a manifest plus one subdirectory per
//! shard, each a fully self-contained log store (own WAL segments,
//! snapshots, index, background compactor):
//!
//! ```text
//! store/
//!   pe-shards          # manifest: shard count (routing depends on it)
//!   shard-000/wal-…    # independent WAL + snapshots
//!   shard-001/…
//! ```
//!
//! Documents route by `fnv1a(doc_id) % N` — the same hash the in-memory
//! index shards by — so two writers touching different documents
//! usually land on different WALs and different group-commit fsyncs.
//! Meta counters live on shard 0 (they are global, not per-document).
//!
//! ## Legacy stores
//!
//! A directory holding `wal-*.log`/`snap-*.snap` files directly (every
//! store created before sharding existed) opens in *legacy mode*: one
//! shard rooted at the directory itself, no manifest written. Migration
//! to a sharded layout is explicit ([`ShardedLogStore::migrate`],
//! surfaced as `pedit compact DIR --shards N`) and crash-safe: shard
//! snapshots are published first, the manifest second, and the legacy
//! files removed last — the manifest's existence is the commit point.
//!
//! ## Recovery
//!
//! Opening replays all shards in parallel (scoped threads, one per
//! shard); shards are independent by construction, so open time is
//! bounded by the largest shard, not the total log.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use crate::index::hash_id;
use crate::log::{CompactionStats, LogStore, StoreConfig};
use crate::snapfile;
use crate::wal::{self, GroupStats};
use crate::{DeltaLimits, DocState, DocStore, StoreError};

/// Manifest file name marking a directory as a sharded store root.
pub const MANIFEST_NAME: &str = "pe-shards";

/// Upper bound on the shard count — far above any sane configuration,
/// low enough to reject a garbage manifest before creating directories.
pub const MAX_SHARDS: usize = 256;

const MANIFEST_MAGIC: &str = "pe-sharded-store v1";

/// Subdirectory of shard `i` inside a sharded root.
pub fn shard_dir(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:03}"))
}

fn write_manifest(dir: &Path, shards: usize) -> Result<(), StoreError> {
    let tmp = dir.join("pe-shards.tmp");
    std::fs::write(&tmp, format!("{MANIFEST_MAGIC}\nshards={shards}\n"))?;
    let file = std::fs::File::open(&tmp)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, dir.join(MANIFEST_NAME))?;
    wal::sync_dir(dir)?;
    Ok(())
}

pub(crate) fn read_manifest(dir: &Path) -> Result<usize, StoreError> {
    let text = std::fs::read_to_string(dir.join(MANIFEST_NAME))?;
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_MAGIC) {
        return Err(StoreError::Corrupt(format!(
            "{}: bad shard manifest magic",
            dir.display()
        )));
    }
    let shards = lines
        .next()
        .and_then(|l| l.strip_prefix("shards="))
        .and_then(|n| n.parse::<usize>().ok())
        .filter(|&n| (1..=MAX_SHARDS).contains(&n))
        .ok_or_else(|| {
            StoreError::Corrupt(format!("{}: bad shard manifest count", dir.display()))
        })?;
    Ok(shards)
}

/// Whether `dir` holds legacy single-directory store files.
fn has_legacy_files(dir: &Path) -> Result<bool, StoreError> {
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if wal::parse_segment_name(name).is_some()
            || snapfile::parse_snapshot_name(name).is_some()
        {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Shard subdirectories present in `dir` (sorted by index).
fn existing_shard_dirs(dir: &Path) -> Result<Vec<PathBuf>, StoreError> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.strip_prefix("shard-").is_some_and(|n| n.parse::<usize>().is_ok())
            && entry.path().is_dir()
        {
            found.push(entry.path());
        }
    }
    found.sort();
    Ok(found)
}

fn remove_legacy_files(dir: &Path) -> Result<u64, StoreError> {
    let mut removed = 0u64;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if wal::parse_segment_name(name).is_some()
            || snapfile::parse_snapshot_name(name).is_some()
        {
            std::fs::remove_file(entry.path())?;
            removed += 1;
        }
    }
    if removed > 0 {
        wal::sync_dir(dir)?;
    }
    Ok(removed)
}

/// Opens all shard stores in parallel, one scoped thread per shard.
/// Per-shard replay time lands in the `store.shard.open_ns` histogram;
/// the first open error wins.
fn open_shards_parallel(
    dir: &Path,
    shards: usize,
    config: StoreConfig,
) -> Result<Vec<LogStore>, StoreError> {
    let mut slots: Vec<Option<Result<LogStore, StoreError>>> =
        (0..shards).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (i, slot) in slots.iter_mut().enumerate() {
            scope.spawn(move || {
                let started = Instant::now();
                let opened = LogStore::open(shard_dir(dir, i), config);
                pe_observe::static_histogram!("store.shard.open_ns")
                    .record_duration(started.elapsed());
                *slot = Some(opened);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every shard open thread fills its slot"))
        .collect()
}

/// A [`DocStore`] that routes documents across N independent
/// [`LogStore`] shards. See the module docs for layout and semantics.
pub struct ShardedLogStore {
    dir: PathBuf,
    shards: Vec<LogStore>,
    legacy: bool,
    /// Set when any shard reports an injected crash or fsync failure:
    /// a real process would have died whole, so the entire store
    /// refuses further work, not just the failed shard.
    poisoned: AtomicBool,
}

impl std::fmt::Debug for ShardedLogStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedLogStore")
            .field("dir", &self.dir)
            .field("shards", &self.shards.len())
            .field("legacy", &self.legacy)
            .finish()
    }
}

impl ShardedLogStore {
    /// Opens (or creates) the store at `dir`.
    ///
    /// - An existing sharded root (manifest present) opens with its
    ///   recorded shard count — `shards` is ignored; routing must match
    ///   the layout that wrote the data.
    /// - A legacy single-directory store opens in legacy mode (one
    ///   shard rooted at `dir` itself); see [`ShardedLogStore::migrate`].
    /// - A fresh directory is initialized with `shards` shards
    ///   (clamped to `1..=MAX_SHARDS`).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures, [`StoreError::Corrupt`]
    /// on a bad manifest, shard directories with no manifest, or any
    /// shard failing validation.
    pub fn open(
        dir: impl AsRef<Path>,
        shards: usize,
        config: StoreConfig,
    ) -> Result<ShardedLogStore, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let started = Instant::now();

        let store = if dir.join(MANIFEST_NAME).exists() {
            let count = read_manifest(&dir)?;
            // A crash between publishing the manifest and deleting the
            // legacy files leaves stale duplicates; the manifest is the
            // commit point, so finish the cleanup here.
            remove_legacy_files(&dir)?;
            let shards = open_shards_parallel(&dir, count, config)?;
            ShardedLogStore { dir, shards, legacy: false, poisoned: AtomicBool::new(false) }
        } else if has_legacy_files(&dir)? {
            let store = LogStore::open(&dir, config)?;
            ShardedLogStore {
                dir,
                shards: vec![store],
                legacy: true,
                poisoned: AtomicBool::new(false),
            }
        } else {
            if !existing_shard_dirs(&dir)?.is_empty() {
                return Err(StoreError::Corrupt(format!(
                    "{}: shard directories present but no {MANIFEST_NAME} manifest \
                     (interrupted migration? re-run migrate, or restore the manifest)",
                    dir.display()
                )));
            }
            let count = shards.clamp(1, MAX_SHARDS);
            write_manifest(&dir, count)?;
            let shards = open_shards_parallel(&dir, count, config)?;
            ShardedLogStore { dir, shards, legacy: false, poisoned: AtomicBool::new(false) }
        };

        pe_observe::gauge("store.shard.count").set(store.shards.len() as u64);
        pe_observe::static_histogram!("store.shard.parallel_open_ns")
            .record_duration(started.elapsed());
        Ok(store)
    }

    /// Converts a legacy single-directory store into an `shards`-way
    /// sharded layout, in place, and opens the result. A no-op (plain
    /// open) when `dir` is already sharded or fresh.
    ///
    /// Crash-safe ordering: per-shard snapshots are published and
    /// fsynced first, then the manifest (the commit point), then the
    /// legacy files are deleted. A crash before the manifest leaves the
    /// legacy store authoritative; after it, open finishes the cleanup.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] / [`StoreError::Corrupt`] from either layout.
    pub fn migrate(
        dir: impl AsRef<Path>,
        shards: usize,
        config: StoreConfig,
    ) -> Result<ShardedLogStore, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        if dir.join(MANIFEST_NAME).exists() || !has_legacy_files(&dir)? {
            return ShardedLogStore::open(&dir, shards, config);
        }

        // Stale shard dirs can only be debris from a migration that
        // crashed before its manifest; the legacy files are still the
        // truth, so start over.
        for stale in existing_shard_dirs(&dir)? {
            std::fs::remove_dir_all(&stale)?;
        }

        let count = shards.clamp(1, MAX_SHARDS);
        let (docs, meta) = {
            let legacy = LogStore::open(&dir, config)?;
            legacy.snapshot_state()
        };

        for shard in 0..count {
            let sub = shard_dir(&dir, shard);
            std::fs::create_dir_all(&sub)?;
            let own: Vec<(String, DocState)> = docs
                .iter()
                .filter(|(id, _)| (hash_id(id) % count as u64) as usize == shard)
                .cloned()
                .collect();
            // Meta is global state; it lives on shard 0.
            let own_meta = if shard == 0 { meta.clone() } else { Vec::new() };
            let (tmp, _bytes) = snapfile::write_snapshot_tmp(&sub, 0, &own, &own_meta)?;
            snapfile::publish_snapshot(&sub, &tmp, 0)?;
        }
        write_manifest(&dir, count)?;
        remove_legacy_files(&dir)?;
        pe_observe::static_counter!("store.shard.migrations").inc();

        ShardedLogStore::open(&dir, count, config)
    }

    /// The store root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of shards (1 in legacy mode).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether this opened as a legacy single-directory store.
    pub fn is_legacy(&self) -> bool {
        self.legacy
    }

    /// Shard index a document id routes to.
    pub fn shard_for(&self, id: &str) -> usize {
        (hash_id(id) % self.shards.len() as u64) as usize
    }

    /// Live WAL bytes across all shards.
    pub fn log_bytes(&self) -> u64 {
        self.shards.iter().map(LogStore::log_bytes).sum()
    }

    /// Group-commit counters summed across shards (`max_batch_records`
    /// is the max over shards).
    pub fn group_stats(&self) -> GroupStats {
        let mut total = GroupStats::default();
        for shard in &self.shards {
            let s = shard.group_stats();
            total.appends += s.appends;
            total.fsyncs += s.fsyncs;
            total.fsyncs_saved += s.fsyncs_saved;
            total.max_batch_records = total.max_batch_records.max(s.max_batch_records);
        }
        total
    }

    fn route(&self, id: &str) -> &LogStore {
        &self.shards[self.shard_for(id)]
    }

    fn check(&self) -> Result<(), StoreError> {
        if self.poisoned.load(Ordering::SeqCst) {
            Err(StoreError::Poisoned)
        } else {
            Ok(())
        }
    }

    /// Propagates a shard failure to the whole store: an injected crash
    /// (or poisoned shard) models the process dying, and a dead process
    /// serves nothing.
    fn escalate<T>(&self, result: Result<T, StoreError>) -> Result<T, StoreError> {
        if matches!(result, Err(StoreError::InjectedCrash(_)) | Err(StoreError::Poisoned)) {
            self.poisoned.store(true, Ordering::SeqCst);
        }
        result
    }
}

impl DocStore for ShardedLogStore {
    fn get(&self, id: &str) -> Option<DocState> {
        self.route(id).get(id)
    }

    fn content(&self, id: &str) -> Option<Vec<u8>> {
        self.route(id).content(id)
    }

    fn contains(&self, id: &str) -> bool {
        self.route(id).contains(id)
    }

    fn list(&self) -> Vec<String> {
        let mut all: Vec<String> = self.shards.iter().flat_map(DocStore::list).collect();
        all.sort_unstable();
        all
    }

    fn create(&self, id: &str) -> Result<bool, StoreError> {
        self.check()?;
        self.escalate(self.route(id).create(id))
    }

    fn put_full(&self, id: &str, content: &[u8]) -> Result<u64, StoreError> {
        self.check()?;
        self.escalate(self.route(id).put_full(id, content))
    }

    fn apply_delta(
        &self,
        id: &str,
        delta: &pe_delta::Delta,
        limits: DeltaLimits,
    ) -> Result<DocState, StoreError> {
        self.check()?;
        self.escalate(self.route(id).apply_delta(id, delta, limits))
    }

    fn remove(&self, id: &str) -> Result<bool, StoreError> {
        self.check()?;
        self.escalate(self.route(id).remove(id))
    }

    fn meta(&self, key: &str) -> Option<u64> {
        self.shards[0].meta(key)
    }

    fn set_meta(&self, key: &str, value: u64) -> Result<(), StoreError> {
        self.check()?;
        self.escalate(self.shards[0].set_meta(key, value))
    }

    fn bump_meta(&self, key: &str) -> Result<u64, StoreError> {
        self.check()?;
        self.escalate(self.shards[0].bump_meta(key))
    }

    fn meta_entries(&self) -> Vec<(String, u64)> {
        self.shards[0].meta_entries()
    }

    fn flush(&self) -> Result<(), StoreError> {
        self.check()?;
        for shard in &self.shards {
            self.escalate(shard.flush())?;
        }
        Ok(())
    }

    fn compact(&self) -> Result<CompactionStats, StoreError> {
        self.check()?;
        let mut total = CompactionStats::default();
        for shard in &self.shards {
            let stats = self.escalate(shard.compact())?;
            total.covered_seq = total.covered_seq.max(stats.covered_seq);
            total.snapshot_bytes += stats.snapshot_bytes;
            total.segments_removed += stats.segments_removed;
            total.snapshots_removed += stats.snapshots_removed;
            total.docs += stats.docs;
        }
        Ok(total)
    }

    fn name(&self) -> &'static str {
        "sharded-log"
    }
}
