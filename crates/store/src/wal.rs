//! Append-only write-ahead log segments.
//!
//! A store directory holds numbered segment files `wal-<seq>.log`. Each
//! record is framed as
//!
//! ```text
//! [payload len: u32 LE][crc32(payload): u32 LE][payload]
//! ```
//!
//! Replay walks frames until the file ends cleanly or a frame fails
//! validation. A bad frame in the **final** segment is a torn tail — the
//! expected disk state after a crash mid-append — and is truncated away;
//! a bad frame in any earlier (sealed) segment is real corruption and is
//! reported as such.

use std::fs::{File, OpenOptions};
use std::io::{IoSlice, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex, MutexGuard};

use crate::crc32::{crc32, Crc32};
use crate::record::Record;
use crate::{CrashPoint, StoreError, StoreFaults};

/// Framing header size: payload length + CRC.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Upper bound on one record payload. Documents are capped well below
/// this by the services; anything larger in a length field is garbage
/// (torn tail or foreign file).
pub const MAX_PAYLOAD_BYTES: u32 = 16 * 1024 * 1024;

/// When (and how often) appends reach the platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append: an acknowledged write is a durable
    /// write. The default, and the only policy under which the
    /// crash-recovery oracle promises zero acknowledged loss.
    Always,
    /// `fsync` every `n` appends (and on [`flush`](crate::DocStore::flush)
    /// / rotation). Bounds loss to the last `n-1` acknowledged writes.
    EveryN(u64),
    /// Never `fsync` on append (only on flush/rotation). Fastest;
    /// durability rides entirely on the OS page cache.
    Never,
}

impl FsyncPolicy {
    /// Parses `always`, `never`, or `every=N` (N ≥ 1).
    pub fn parse(text: &str) -> Option<FsyncPolicy> {
        match text {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            other => {
                let n: u64 = other.strip_prefix("every=")?.parse().ok()?;
                (n >= 1).then_some(FsyncPolicy::EveryN(n))
            }
        }
    }

    /// Stable name (`always`, `never`, `every=N`) for reports.
    pub fn label(&self) -> String {
        match self {
            FsyncPolicy::Always => "always".into(),
            FsyncPolicy::Never => "never".into(),
            FsyncPolicy::EveryN(n) => format!("every={n}"),
        }
    }
}

/// Path of segment `seq` inside `dir`.
pub fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:010}.log"))
}

/// Parses a segment file name back into its sequence number.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?.strip_suffix(".log")?.parse().ok()
}

/// Encodes `record` into `payload_buf` (cleared first) while folding the
/// bytes into a streaming CRC in the same pass, and returns the 8-byte
/// frame header `[payload len][crc]`.
///
/// This is the zero-copy core of [`SegmentWriter::append`]: the record —
/// including a megabyte `FullSave` body — is walked exactly once (copied
/// into the reused buffer and checksummed while hot in cache), and no
/// intermediate frame `Vec` is ever assembled; the header and payload go
/// to the file as two `IoSlice`s.
fn encode_payload(record: &Record, payload_buf: &mut Vec<u8>) -> [u8; FRAME_HEADER_BYTES] {
    payload_buf.clear();
    payload_buf.reserve(record.encoded_len());
    let mut hasher = Crc32::new();
    record.encode_parts(&mut |part| {
        hasher.update(part);
        payload_buf.extend_from_slice(part);
    });
    debug_assert!(payload_buf.len() as u32 <= MAX_PAYLOAD_BYTES);
    let mut header = [0u8; FRAME_HEADER_BYTES];
    header[..4].copy_from_slice(&(payload_buf.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&hasher.finish().to_le_bytes());
    header
}

/// Serializes one record with framing (length + CRC + payload).
///
/// The append hot path streams the header and payload separately (see
/// [`SegmentWriter::append`]); this contiguous form serves tests and
/// tooling that want frame bytes in hand.
pub fn encode_frame(record: &Record) -> Vec<u8> {
    let mut payload = Vec::new();
    let header = encode_payload(record, &mut payload);
    let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    frame.extend_from_slice(&header);
    frame.extend_from_slice(&payload);
    frame
}

/// What one segment replay saw.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Valid records decoded.
    pub records: u64,
    /// Bytes of valid frames (including headers).
    pub valid_bytes: u64,
    /// Trailing bytes that failed validation (0 for a clean segment).
    pub torn_bytes: u64,
}

/// Reads every valid frame of `path` into `sink`, stopping at the first
/// invalid frame.
///
/// Returns the replay stats; `torn_bytes > 0` means the file has an
/// invalid tail starting at offset `valid_bytes`. The caller decides
/// whether that tail is tolerable (final segment after a crash) or
/// corruption (sealed segment).
///
/// # Errors
///
/// [`StoreError::Io`] on read failure, [`StoreError::Corrupt`] if a
/// CRC-valid payload fails to decode (checksum collision or foreign
/// data — never produced by a torn write).
pub fn replay_segment(
    path: &Path,
    mut sink: impl FnMut(Record),
) -> Result<ReplayStats, StoreError> {
    let bytes = std::fs::read(path)?;
    let mut stats = ReplayStats::default();
    let mut pos = 0usize;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            break; // clean end
        }
        if rest.len() < FRAME_HEADER_BYTES {
            stats.torn_bytes = rest.len() as u64;
            break;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD_BYTES || rest.len() - FRAME_HEADER_BYTES < len as usize {
            stats.torn_bytes = rest.len() as u64;
            break;
        }
        let payload = &rest[FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + len as usize];
        if crc32(payload) != crc {
            stats.torn_bytes = rest.len() as u64;
            break;
        }
        let record = Record::decode(payload)?;
        sink(record);
        stats.records += 1;
        let frame_len = FRAME_HEADER_BYTES + len as usize;
        stats.valid_bytes += frame_len as u64;
        pos += frame_len;
    }
    Ok(stats)
}

/// The single-writer append end of the WAL.
///
/// Owned by the store behind its write lock; not internally
/// synchronized.
#[derive(Debug)]
pub struct SegmentWriter {
    dir: PathBuf,
    seq: u64,
    file: File,
    /// Current byte length of the open segment.
    len: u64,
    /// Byte length at the last fsync.
    durable_len: u64,
    policy: FsyncPolicy,
    appends_since_sync: u64,
    /// Lifetime append ordinal (1-based), across rotations — the fault
    /// injector counts these.
    total_appends: u64,
    faults: Option<StoreFaults>,
    /// Reused payload encode buffer: steady-state appends allocate
    /// nothing (the buffer keeps the high-water-mark capacity).
    payload_buf: Vec<u8>,
}

impl SegmentWriter {
    /// Opens segment `seq` for appending, creating it if missing.
    /// `start_len` must be the validated length (replay's `valid_bytes`);
    /// anything beyond it is truncated away (torn-tail repair).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on open/truncate failure.
    pub fn open(
        dir: &Path,
        seq: u64,
        start_len: u64,
        policy: FsyncPolicy,
        faults: Option<StoreFaults>,
    ) -> Result<SegmentWriter, StoreError> {
        let path = segment_path(dir, seq);
        // truncate(false): an existing segment is resumed, not clobbered
        // — the torn-tail cut below is the only truncation allowed.
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&path)?;
        let actual = file.metadata()?.len();
        if actual > start_len {
            file.set_len(start_len)?;
            file.sync_all()?;
            pe_observe::static_counter!("store.torn_tail_truncations").inc();
            pe_observe::counter("store.torn_bytes_discarded").add(actual - start_len);
        }
        file.seek(SeekFrom::Start(start_len))?;
        Ok(SegmentWriter {
            dir: dir.to_path_buf(),
            seq,
            file,
            len: start_len,
            durable_len: start_len,
            policy,
            appends_since_sync: 0,
            total_appends: 0,
            faults,
            payload_buf: Vec::new(),
        })
    }

    /// Current segment sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Bytes in the currently open segment.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the open segment holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one record, honouring the fsync policy and the fault
    /// plan. On `Ok`, the record is acknowledged (and durable under
    /// [`FsyncPolicy::Always`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::InjectedCrash`] when the fault plan fires (the
    /// write is **not** acknowledged and the disk is left in the
    /// crash-consistent state the fault models), or [`StoreError::Io`].
    pub fn append(&mut self, record: &Record) -> Result<(), StoreError> {
        // Take the reused buffer out of `self` so the fault-injection
        // path below can borrow `self` mutably; restored before return.
        let mut payload_buf = std::mem::take(&mut self.payload_buf);
        let header = encode_payload(record, &mut payload_buf);
        let frame_len = FRAME_HEADER_BYTES + payload_buf.len();
        self.total_appends += 1;
        if let Some(faults) = self.faults {
            if faults.triggers_append(self.total_appends) {
                let err = self.crash(&faults, &header, &payload_buf);
                self.payload_buf = payload_buf;
                return Err(err);
            }
        }
        let started = std::time::Instant::now();
        let wrote = write_all_vectored(&mut self.file, &header, &payload_buf);
        self.payload_buf = payload_buf;
        wrote?;
        self.len += frame_len as u64;
        self.appends_since_sync += 1;
        let sync = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.appends_since_sync >= n,
            FsyncPolicy::Never => false,
        };
        if sync {
            self.sync()?;
        }
        pe_observe::static_counter!("store.appends").inc();
        pe_observe::static_histogram!("store.append_bytes").record(frame_len as u64);
        pe_observe::static_histogram!("store.append_ns").record_duration(started.elapsed());
        Ok(())
    }

    /// Writes already-framed bytes straight to the segment without any
    /// policy bookkeeping — the group-commit leader's batch drain.
    fn write_raw(&mut self, frames: &[u8]) -> Result<(), StoreError> {
        if frames.is_empty() {
            return Ok(());
        }
        self.file.write_all(frames)?;
        self.len += frames.len() as u64;
        Ok(())
    }

    /// Enacts the configured crash, leaving the file exactly as the
    /// modelled failure would. The frame arrives as its two wire parts
    /// (header, payload) — prefix semantics treat them as concatenated.
    fn crash(&mut self, faults: &StoreFaults, header: &[u8], payload: &[u8]) -> StoreError {
        let frame_len = header.len() + payload.len();
        let point = faults.point();
        let outcome: Result<(), std::io::Error> = (|| match point {
            CrashPoint::BeforeFsync => {
                // The write reached the OS, the fsync never happened, and
                // the machine died: everything since the last sync is
                // gone.
                self.file.write_all(header)?;
                self.file.write_all(payload)?;
                self.file.set_len(self.durable_len)?;
                self.file.sync_all()
            }
            CrashPoint::MidWrite => {
                // Only a prefix of the frame made it out.
                let kept = faults.torn_len(frame_len);
                let head_kept = kept.min(header.len());
                self.file.write_all(&header[..head_kept])?;
                self.file.write_all(&payload[..kept - head_kept])?;
                self.file.sync_all()
            }
            CrashPoint::TruncateTail => {
                // The whole frame landed, then the tail was torn off.
                self.file.write_all(header)?;
                self.file.write_all(payload)?;
                let kept = faults.torn_len(frame_len);
                self.file.set_len(self.len + kept as u64)?;
                self.file.sync_all()
            }
            CrashPoint::SnapshotBeforeRename | CrashPoint::SnapshotAfterRename => {
                unreachable!("compaction crash points never trigger appends")
            }
        })();
        if let Err(e) = outcome {
            return StoreError::Io(e);
        }
        StoreError::InjectedCrash(point.name())
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        self.file.sync_data()?;
        self.durable_len = self.len;
        self.appends_since_sync = 0;
        pe_observe::static_counter!("store.fsyncs").inc();
        Ok(())
    }

    /// Flushes and fsyncs; after this every appended record is durable.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on fsync failure.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        if self.durable_len < self.len || self.appends_since_sync > 0 {
            self.sync()?;
        }
        Ok(())
    }

    /// Seals the current segment (flush + fsync) and starts a fresh one.
    /// Returns the sealed segment's sequence number.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on fsync/create failure.
    pub fn rotate(&mut self) -> Result<u64, StoreError> {
        self.flush()?;
        let sealed = self.seq;
        let next = self.seq + 1;
        let path = segment_path(&self.dir, next);
        let file = OpenOptions::new().create_new(true).read(true).write(true).open(&path)?;
        file.sync_all()?;
        sync_dir(&self.dir)?;
        self.file = file;
        self.seq = next;
        self.len = 0;
        self.durable_len = 0;
        self.appends_since_sync = 0;
        Ok(sealed)
    }
}

/// Initial capacity of the two reused group-commit batch buffers. Bursts
/// larger than this grow the buffer to its high-water mark once and then
/// stay allocation-free, like the single-writer payload buffer.
const BATCH_BUF_INITIAL: usize = 256 * 1024;

/// With `never` (or a not-yet-due `every=N`) policy nothing forces the
/// pending buffer to the file, so a drain is triggered once it holds this
/// many bytes — bounding memory and keeping writes large and few.
const PENDING_DRAIN_BYTES: usize = 1024 * 1024;

/// Receipt for one accepted append: where the record ends in the log's
/// logical byte stream and whether the policy demands durability before
/// the write may be acknowledged.
#[derive(Debug, Clone, Copy)]
pub struct AppendAck {
    /// Logical end offset of this record (monotonic across rotations).
    pub end: u64,
    /// Framed size of the record on disk.
    pub frame_len: u64,
    /// Whether the caller must [`GroupWal::sync_to`] before acking.
    pub needs_sync: bool,
}

/// Lifetime counters for one group-commit WAL, independent of the global
/// metrics registry so tests and benches can assert on a single store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupStats {
    /// Records accepted.
    pub appends: u64,
    /// fsyncs issued (batch syncs; excludes flush/rotate syncs).
    pub fsyncs: u64,
    /// Largest number of records one fsync covered.
    pub max_batch_records: u64,
    /// Appends that were made durable by another thread's fsync.
    pub fsyncs_saved: u64,
}

/// Group-commit state shared by every appender of one shard.
#[derive(Debug)]
struct WalQueue {
    /// Encoded frames accepted but not yet handed to the file. Appenders
    /// encode directly into this buffer under the queue lock; the sync
    /// leader swaps it against `spare` (double buffering — both reach
    /// their high-water capacity once, then appends allocate nothing).
    pending: Vec<u8>,
    spare: Option<Vec<u8>>,
    pending_records: u64,
    /// Logical bytes accepted since open (monotonic across rotations).
    /// Invariant: `appended - pending.len()` bytes are on the file.
    appended: u64,
    /// Logical bytes known durable (fsynced).
    durable: u64,
    /// Logical offset where the currently open segment started.
    segment_base: u64,
    /// A sync leader is currently writing + fsyncing outside this lock.
    leader: bool,
    appends_since_sync: u64,
    /// Lifetime append ordinal (1-based) — the fault injector counts
    /// these, exactly like the single-writer path.
    total_appends: u64,
    /// A leader hit an I/O error (or an injected crash fired): nothing
    /// further can be promised durable.
    failed: bool,
    stats: GroupStats,
}

/// The concurrent append end of the WAL: group commit.
///
/// Concurrent appenders no longer pay one fsync each. An append encodes
/// its frame into a shared pending buffer under a short-held queue lock
/// and returns a logical end offset; [`sync_to`](GroupWal::sync_to) then
/// elects one waiter as *leader*, which drains the whole pending buffer
/// with a single contiguous `write` and issues **one** fsync covering
/// every record that arrived while the previous leader was syncing, then
/// wakes all waiters. `fsync=always` semantics are unchanged — no append
/// is acknowledged before its record is durable — but the fsync cost is
/// amortized across the batch.
///
/// Lock order is `queue` → `file`; a leader never holds `file` while
/// waiting on `queue`, so appenders keep filling the next batch while the
/// current one is inside `fsync`.
#[derive(Debug)]
pub struct GroupWal {
    queue: Mutex<WalQueue>,
    synced: Condvar,
    file: Mutex<SegmentWriter>,
    policy: FsyncPolicy,
    faults: Option<StoreFaults>,
}

impl GroupWal {
    /// Wraps an opened segment writer. The writer must carry no fault
    /// plan of its own (the group layer owns ordinal counting).
    pub fn new(writer: SegmentWriter, policy: FsyncPolicy, faults: Option<StoreFaults>) -> GroupWal {
        GroupWal {
            queue: Mutex::new(WalQueue {
                pending: Vec::with_capacity(BATCH_BUF_INITIAL),
                spare: Some(Vec::with_capacity(BATCH_BUF_INITIAL)),
                pending_records: 0,
                appended: 0,
                durable: 0,
                segment_base: 0,
                leader: false,
                appends_since_sync: 0,
                total_appends: 0,
                failed: false,
                stats: GroupStats::default(),
            }),
            synced: Condvar::new(),
            file: Mutex::new(writer),
            policy,
            faults,
        }
    }

    fn lock_queue(&self) -> MutexGuard<'_, WalQueue> {
        // A panic mid-append is unrecoverable anyway (the store poisons
        // itself on every error path); ignore std mutex poisoning.
        self.queue.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_file(&self) -> MutexGuard<'_, SegmentWriter> {
        self.file.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires the queue with no sync leader in flight. `flush` and
    /// `rotate` drain the pending buffer while *holding* the queue lock,
    /// so a leader that already swapped a batch out but has not written
    /// it yet would otherwise be overtaken (out-of-order frames).
    fn wait_for_no_leader(&self) -> Result<MutexGuard<'_, WalQueue>, StoreError> {
        let mut q = self.lock_queue();
        while q.leader {
            q = self.synced.wait(q).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if q.failed {
            return Err(StoreError::Poisoned);
        }
        Ok(q)
    }

    /// Accepts one record: encodes it into the shared pending buffer and
    /// reports where it ends and whether the policy wants a sync before
    /// the ack. The caller serializes appends (index read-modify-write)
    /// with its own write lock; this method only orders the bytes.
    ///
    /// # Errors
    ///
    /// [`StoreError::InjectedCrash`] when the fault plan fires (the disk
    /// is left in the modelled crash state and the queue refuses further
    /// work), or [`StoreError::Io`].
    pub fn append(&self, record: &Record) -> Result<AppendAck, StoreError> {
        let mut q = self.lock_queue();
        if q.failed {
            return Err(StoreError::Poisoned);
        }
        q.total_appends += 1;
        if let Some(faults) = self.faults {
            if faults.triggers_append(q.total_appends) {
                // Freeze the log first: no later append may slip in, and
                // sync waiters will observe the failure. An in-flight
                // leader finishes normally — the records in its batch
                // reach the platter and their acks stay honest.
                q.failed = true;
                while q.leader {
                    q = self.synced.wait(q).unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                // Model the crash as if every buffered-but-unsynced frame
                // had reached the OS (they were accepted earlier): drain
                // the prefix, then enact the configured failure on this
                // frame. Everything past the last fsync may be lost —
                // which is exactly what those unacknowledged (or
                // relaxed-policy) records were promised.
                let start = q.pending.len();
                encode_frame_into(record, &mut q.pending);
                let mut w = self.lock_file();
                let outcome = w.write_raw(&q.pending[..start]).map(|()| {
                    let frame = &q.pending[start..];
                    w.crash(&faults, &frame[..FRAME_HEADER_BYTES], &frame[FRAME_HEADER_BYTES..])
                });
                q.pending.clear();
                q.pending_records = 0;
                drop(w);
                drop(q);
                self.synced.notify_all();
                return Err(match outcome {
                    Ok(crash) => crash,
                    Err(io) => io,
                });
            }
        }
        let start = q.pending.len();
        encode_frame_into(record, &mut q.pending);
        let frame_len = (q.pending.len() - start) as u64;
        q.appended += frame_len;
        q.pending_records += 1;
        q.appends_since_sync += 1;
        q.stats.appends += 1;
        let needs_sync = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => {
                if q.appends_since_sync >= n {
                    q.appends_since_sync = 0;
                    true
                } else {
                    false
                }
            }
            FsyncPolicy::Never => false,
        };
        let ack = AppendAck { end: q.appended, frame_len, needs_sync };
        if !needs_sync && q.pending.len() >= PENDING_DRAIN_BYTES && !q.leader {
            // Nothing will force these bytes out soon; hand them to the
            // OS now (no fsync) so memory stays bounded. The leader flag
            // keeps batch writes ordered: while we write outside the
            // lock, no other drain or sync leader may start. Skipped
            // when a leader is already mid-sync — it drains for us.
            q.leader = true;
            let swap_in = q.spare.take().unwrap_or_default();
            let drained = std::mem::replace(&mut q.pending, swap_in);
            q.pending_records = 0;
            drop(q);
            let mut w = self.lock_file();
            let wrote = w.write_raw(&drained);
            drop(w);
            let mut q = self.lock_queue();
            q.leader = false;
            q.spare = Some(reclaim(drained));
            if let Err(e) = wrote {
                q.failed = true;
                drop(q);
                self.synced.notify_all();
                return Err(e);
            }
            drop(q);
            self.synced.notify_all();
        }
        pe_observe::static_counter!("store.appends").inc();
        pe_observe::static_histogram!("store.append_bytes").record(frame_len);
        Ok(ack)
    }

    /// Blocks until every byte up to logical offset `end` is durable,
    /// joining (or leading) a group fsync.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the batch write or fsync failed — for this
    /// record *or* for the batch it rode in; nothing past the last
    /// successful fsync can be promised after that.
    pub fn sync_to(&self, end: u64) -> Result<(), StoreError> {
        let mut q = self.lock_queue();
        let mut led = false;
        loop {
            if q.durable >= end {
                if !led {
                    q.stats.fsyncs_saved += 1;
                    pe_observe::static_counter!("store.group_commit.fsyncs_saved").inc();
                }
                return Ok(());
            }
            if q.failed {
                return Err(StoreError::Poisoned);
            }
            if q.leader {
                q = self
                    .synced
                    .wait(q)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                continue;
            }
            // Become the leader: take the whole pending batch, remember
            // how far the log had grown (everything before the batch is
            // already on the file), and do the I/O outside the queue
            // lock so the next batch can fill behind us.
            led = true;
            q.leader = true;
            let swap_in = q.spare.take().unwrap_or_default();
            let batch = std::mem::replace(&mut q.pending, swap_in);
            let batch_records = q.pending_records;
            let cover = q.appended;
            q.pending_records = 0;
            drop(q);

            let mut w = self.lock_file();
            let outcome = w.write_raw(&batch).and_then(|()| w.sync());
            drop(w);

            q = self.lock_queue();
            q.leader = false;
            q.spare = Some(reclaim(batch));
            match outcome {
                Ok(()) => {
                    q.durable = q.durable.max(cover);
                    q.stats.fsyncs += 1;
                    q.stats.max_batch_records = q.stats.max_batch_records.max(batch_records);
                    pe_observe::static_histogram!("store.group_commit.batch_records")
                        .record(batch_records);
                }
                Err(e) => {
                    // An fsync failure voids every durability promise
                    // made since the previous sync; poison the log.
                    q.failed = true;
                    self.synced.notify_all();
                    return Err(e);
                }
            }
            self.synced.notify_all();
        }
    }

    /// Drains the pending buffer and fsyncs; after this every accepted
    /// record is durable.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on write/fsync failure.
    pub fn flush(&self) -> Result<(), StoreError> {
        let mut q = self.wait_for_no_leader()?;
        let appended = q.appended;
        let mut w = self.lock_file();
        let swap_in = q.spare.take().unwrap_or_default();
        let drained = std::mem::replace(&mut q.pending, swap_in);
        q.pending_records = 0;
        let outcome = w.write_raw(&drained).and_then(|()| w.flush());
        q.spare = Some(reclaim(drained));
        drop(w);
        match outcome {
            Ok(()) => {
                q.durable = q.durable.max(appended);
                drop(q);
                self.synced.notify_all();
                Ok(())
            }
            Err(e) => {
                q.failed = true;
                drop(q);
                self.synced.notify_all();
                Err(e)
            }
        }
    }

    /// Seals the current segment (drain + fsync) and starts the next
    /// one. Returns the sealed sequence number.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on fsync/create failure.
    pub fn rotate(&self) -> Result<u64, StoreError> {
        let mut q = self.wait_for_no_leader()?;
        let appended = q.appended;
        let mut w = self.lock_file();
        let swap_in = q.spare.take().unwrap_or_default();
        let drained = std::mem::replace(&mut q.pending, swap_in);
        q.pending_records = 0;
        let outcome = w.write_raw(&drained).and_then(|()| w.rotate());
        q.spare = Some(reclaim(drained));
        drop(w);
        match outcome {
            Ok(sealed) => {
                q.durable = q.durable.max(appended);
                q.segment_base = appended;
                q.appends_since_sync = 0;
                drop(q);
                self.synced.notify_all();
                Ok(sealed)
            }
            Err(e) => {
                q.failed = true;
                drop(q);
                self.synced.notify_all();
                Err(e)
            }
        }
    }

    /// Logical bytes accepted into the currently open segment.
    pub fn live_len(&self) -> u64 {
        let q = self.lock_queue();
        q.appended - q.segment_base
    }

    /// Lifetime group-commit counters for this WAL.
    pub fn stats(&self) -> GroupStats {
        self.lock_queue().stats
    }

    /// Whether a leader already failed (poisoned log).
    pub fn failed(&self) -> bool {
        self.lock_queue().failed
    }

    /// Marks the log failed (store-level poisoning mirrors down).
    pub fn fail(&self) {
        self.lock_queue().failed = true;
        self.synced.notify_all();
    }
}

/// Clears a swapped-out batch buffer for reuse, keeping its capacity.
fn reclaim(mut buf: Vec<u8>) -> Vec<u8> {
    buf.clear();
    buf
}

/// Appends one framed record (`[len][crc][payload]`) to `buf`, computing
/// the CRC in the same pass that copies the payload — the group-commit
/// twin of [`encode_payload`], writing into the shared pending buffer
/// instead of a per-writer one.
fn encode_frame_into(record: &Record, buf: &mut Vec<u8>) {
    let start = buf.len();
    buf.reserve(FRAME_HEADER_BYTES + record.encoded_len());
    buf.extend_from_slice(&[0u8; FRAME_HEADER_BYTES]);
    let mut hasher = Crc32::new();
    record.encode_parts(&mut |part| {
        hasher.update(part);
        buf.extend_from_slice(part);
    });
    let payload_len = buf.len() - start - FRAME_HEADER_BYTES;
    debug_assert!(payload_len as u32 <= MAX_PAYLOAD_BYTES);
    buf[start..start + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
    buf[start + 4..start + FRAME_HEADER_BYTES]
        .copy_from_slice(&hasher.finish().to_le_bytes());
}

/// Writes `header` then `payload` as one logical frame using vectored
/// I/O, handling partial writes. The common case is a single
/// `pwritev`-style syscall covering both slices — the frame is never
/// assembled into a contiguous buffer.
fn write_all_vectored(file: &mut File, header: &[u8], payload: &[u8]) -> std::io::Result<()> {
    let total = header.len() + payload.len();
    let mut written = 0usize;
    while written < total {
        let n = if written < header.len() {
            let bufs = [IoSlice::new(&header[written..]), IoSlice::new(payload)];
            file.write_vectored(&bufs)?
        } else {
            file.write(&payload[written - header.len()..])?
        };
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                "failed to write whole WAL frame",
            ));
        }
        written += n;
    }
    Ok(())
}

/// Fsyncs a directory so renames/creates within it are durable.
///
/// # Errors
///
/// Propagates the underlying I/O failure.
pub fn sync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let path = std::env::temp_dir()
                .join(format!("pe-wal-{tag}-{}-{:?}", std::process::id(), std::thread::current().id()));
            let _ = std::fs::remove_dir_all(&path);
            std::fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn records(n: u64) -> Vec<Record> {
        (0..n)
            .map(|i| Record::FullSave {
                id: format!("doc{}", i % 3),
                version: i + 1,
                content: vec![b'x'; (i as usize % 40) + 1],
            })
            .collect()
    }

    #[test]
    fn append_then_replay_round_trips() {
        let dir = TempDir::new("roundtrip");
        let mut w = SegmentWriter::open(&dir.0, 1, 0, FsyncPolicy::Always, None).unwrap();
        let written = records(10);
        for r in &written {
            w.append(r).unwrap();
        }
        drop(w);
        let mut seen = Vec::new();
        let stats = replay_segment(&segment_path(&dir.0, 1), |r| seen.push(r)).unwrap();
        assert_eq!(seen, written);
        assert_eq!(stats.records, 10);
        assert_eq!(stats.torn_bytes, 0);
    }

    #[test]
    fn torn_tail_is_detected_not_corrupt() {
        let dir = TempDir::new("torn");
        let mut w = SegmentWriter::open(&dir.0, 1, 0, FsyncPolicy::Always, None).unwrap();
        for r in records(5) {
            w.append(&r).unwrap();
        }
        let full_len = w.len();
        drop(w);
        let path = segment_path(&dir.0, 1);
        // Chop 3 bytes off the last frame.
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full_len - 3).unwrap();
        drop(file);
        let mut seen = 0;
        let stats = replay_segment(&path, |_| seen += 1).unwrap();
        assert_eq!(seen, 4, "last record lost, earlier ones intact");
        assert!(stats.torn_bytes > 0);
        // Reopening at the validated length truncates the tail away.
        let w = SegmentWriter::open(&dir.0, 1, stats.valid_bytes, FsyncPolicy::Always, None)
            .unwrap();
        assert_eq!(w.len(), stats.valid_bytes);
        drop(w);
        let clean = replay_segment(&path, |_| {}).unwrap();
        assert_eq!(clean.torn_bytes, 0);
    }

    #[test]
    fn corrupted_payload_with_valid_framing_is_a_crc_miss() {
        let dir = TempDir::new("flip");
        let mut w = SegmentWriter::open(&dir.0, 1, 0, FsyncPolicy::Always, None).unwrap();
        for r in records(3) {
            w.append(&r).unwrap();
        }
        drop(w);
        let path = segment_path(&dir.0, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let mut seen = 0;
        let stats = replay_segment(&path, |_| seen += 1).unwrap();
        assert!(seen < 3, "flip must cut replay short");
        assert!(stats.torn_bytes > 0);
    }

    #[test]
    fn rotation_seals_and_continues() {
        let dir = TempDir::new("rotate");
        let mut w = SegmentWriter::open(&dir.0, 1, 0, FsyncPolicy::EveryN(4), None).unwrap();
        for r in records(3) {
            w.append(&r).unwrap();
        }
        assert_eq!(w.rotate().unwrap(), 1);
        assert_eq!(w.seq(), 2);
        assert!(w.is_empty());
        for r in records(2) {
            w.append(&r).unwrap();
        }
        w.flush().unwrap();
        drop(w);
        let mut first = 0;
        replay_segment(&segment_path(&dir.0, 1), |_| first += 1).unwrap();
        let mut second = 0;
        replay_segment(&segment_path(&dir.0, 2), |_| second += 1).unwrap();
        assert_eq!((first, second), (3, 2));
    }

    #[test]
    fn policy_parsing_round_trips() {
        for (text, policy) in [
            ("always", FsyncPolicy::Always),
            ("never", FsyncPolicy::Never),
            ("every=8", FsyncPolicy::EveryN(8)),
        ] {
            assert_eq!(FsyncPolicy::parse(text), Some(policy));
            assert_eq!(policy.label(), text);
        }
        assert_eq!(FsyncPolicy::parse("every=0"), None);
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }

    #[test]
    fn segment_names_round_trip() {
        assert_eq!(parse_segment_name("wal-0000000042.log"), Some(42));
        assert_eq!(parse_segment_name("snap-1.snap"), None);
        let path = segment_path(Path::new("/x"), 7);
        assert_eq!(parse_segment_name(path.file_name().unwrap().to_str().unwrap()), Some(7));
    }

    #[test]
    fn group_wal_single_thread_appends_replay_in_order() {
        let dir = TempDir::new("group-single");
        let w = SegmentWriter::open(&dir.0, 1, 0, FsyncPolicy::Always, None).unwrap();
        let wal = GroupWal::new(w, FsyncPolicy::Always, None);
        let written = records(20);
        for r in &written {
            let ack = wal.append(r).unwrap();
            assert!(ack.needs_sync);
            wal.sync_to(ack.end).unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.appends, 20);
        assert_eq!(stats.fsyncs, 20, "single writer: one fsync per record");
        assert_eq!(stats.fsyncs_saved, 0);
        drop(wal);
        let mut seen = Vec::new();
        replay_segment(&segment_path(&dir.0, 1), |r| seen.push(r)).unwrap();
        assert_eq!(seen, written);
    }

    #[test]
    fn group_wal_concurrent_appenders_batch_fsyncs() {
        let dir = TempDir::new("group-batch");
        let w = SegmentWriter::open(&dir.0, 1, 0, FsyncPolicy::Always, None).unwrap();
        let wal = GroupWal::new(w, FsyncPolicy::Always, None);
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 50;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let wal = &wal;
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        let r = Record::FullSave {
                            id: format!("doc-{t}"),
                            version: i + 1,
                            content: vec![t as u8; 64],
                        };
                        let ack = wal.append(&r).unwrap();
                        wal.sync_to(ack.end).unwrap();
                    }
                });
            }
        });
        let stats = wal.stats();
        assert_eq!(stats.appends, THREADS * PER_THREAD);
        assert!(
            stats.fsyncs <= stats.appends,
            "fsyncs ({}) must not exceed appends ({})",
            stats.fsyncs,
            stats.appends
        );
        assert_eq!(
            stats.fsyncs + stats.fsyncs_saved,
            stats.appends,
            "every append either led a sync or rode one"
        );
        drop(wal);
        let mut per_doc: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
        let stats = replay_segment(&segment_path(&dir.0, 1), |r| {
            if let Record::FullSave { id, version, .. } = r {
                let prev = per_doc.insert(id, version).unwrap_or(0);
                assert_eq!(version, prev + 1, "each thread's records replay in its append order");
            }
        })
        .unwrap();
        assert_eq!(stats.records, THREADS * PER_THREAD);
        assert_eq!(stats.torn_bytes, 0);
        assert!(per_doc.values().all(|&v| v == PER_THREAD));
    }

    #[test]
    fn group_wal_rotate_preserves_logical_offsets() {
        let dir = TempDir::new("group-rotate");
        let w = SegmentWriter::open(&dir.0, 1, 0, FsyncPolicy::Always, None).unwrap();
        let wal = GroupWal::new(w, FsyncPolicy::Always, None);
        let written = records(6);
        for r in &written[..3] {
            let ack = wal.append(r).unwrap();
            wal.sync_to(ack.end).unwrap();
        }
        let before = wal.live_len();
        assert!(before > 0);
        assert_eq!(wal.rotate().unwrap(), 1);
        assert_eq!(wal.live_len(), 0, "live length resets at the segment boundary");
        let mut last = 0;
        for r in &written[3..] {
            let ack = wal.append(r).unwrap();
            assert!(ack.end > before, "logical offsets stay monotonic across rotation");
            wal.sync_to(ack.end).unwrap();
            last = ack.end;
        }
        assert_eq!(wal.live_len(), last - before);
        drop(wal);
        let mut seen = Vec::new();
        replay_segment(&segment_path(&dir.0, 1), |r| seen.push(r)).unwrap();
        replay_segment(&segment_path(&dir.0, 2), |r| seen.push(r)).unwrap();
        assert_eq!(seen, written);
    }

    #[test]
    fn group_wal_relaxed_policy_drains_without_fsync() {
        let dir = TempDir::new("group-never");
        let w = SegmentWriter::open(&dir.0, 1, 0, FsyncPolicy::Never, None).unwrap();
        let wal = GroupWal::new(w, FsyncPolicy::Never, None);
        // Push more than PENDING_DRAIN_BYTES through; the drain path must
        // hand bytes to the OS without any fsync.
        let big = Record::FullSave { id: "d".into(), version: 1, content: vec![7u8; 64 * 1024] };
        for _ in 0..(2 * PENDING_DRAIN_BYTES / (64 * 1024) as usize + 2) {
            let ack = wal.append(&big).unwrap();
            assert!(!ack.needs_sync);
        }
        assert_eq!(wal.stats().fsyncs, 0);
        wal.flush().unwrap();
        drop(wal);
        let stats = replay_segment(&segment_path(&dir.0, 1), |_| {}).unwrap();
        assert!(stats.records >= 2);
        assert_eq!(stats.torn_bytes, 0);
    }

    #[test]
    fn group_wal_fault_poisons_concurrent_appenders() {
        let dir = TempDir::new("group-fault");
        let w = SegmentWriter::open(&dir.0, 1, 0, FsyncPolicy::Always, None).unwrap();
        let faults = StoreFaults::at_append(CrashPoint::BeforeFsync, 10, 1);
        let wal = GroupWal::new(w, FsyncPolicy::Always, Some(faults));
        let mut crashes = 0u32;
        let mut poisoned = 0u32;
        for r in records(30) {
            match wal.append(&r) {
                Ok(ack) => {
                    wal.sync_to(ack.end).unwrap();
                }
                Err(StoreError::InjectedCrash(_)) => crashes += 1,
                Err(StoreError::Poisoned) => poisoned += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(crashes, 1, "exactly one append hits the crash point");
        assert_eq!(poisoned, 30 - 10, "every later append sees the poisoned log");
        assert!(wal.failed());
        drop(wal);
        let stats = replay_segment(&segment_path(&dir.0, 1), |_| {}).unwrap();
        assert_eq!(stats.records, 9, "the acknowledged prefix survives the crash");
    }

    #[test]
    fn group_wal_fsync_saved_when_riding_another_batch() {
        // Deterministic two-thread handoff: thread B appends while thread
        // A is inside fsync, so B's record rides A's next batch or B
        // becomes the next leader — either way fsyncs+saved==appends.
        let dir = TempDir::new("group-saved");
        let w = SegmentWriter::open(&dir.0, 1, 0, FsyncPolicy::Always, None).unwrap();
        let wal = GroupWal::new(w, FsyncPolicy::Always, None);
        std::thread::scope(|scope| {
            for t in 0..2u8 {
                let wal = &wal;
                scope.spawn(move || {
                    for i in 0..100u64 {
                        let r = Record::FullSave {
                            id: format!("t{t}"),
                            version: i + 1,
                            content: vec![t; 16],
                        };
                        let ack = wal.append(&r).unwrap();
                        wal.sync_to(ack.end).unwrap();
                    }
                });
            }
        });
        let stats = wal.stats();
        assert_eq!(stats.fsyncs + stats.fsyncs_saved, 200);
        assert!(stats.max_batch_records >= 1);
    }
}
