//! Append-only write-ahead log segments.
//!
//! A store directory holds numbered segment files `wal-<seq>.log`. Each
//! record is framed as
//!
//! ```text
//! [payload len: u32 LE][crc32(payload): u32 LE][payload]
//! ```
//!
//! Replay walks frames until the file ends cleanly or a frame fails
//! validation. A bad frame in the **final** segment is a torn tail — the
//! expected disk state after a crash mid-append — and is truncated away;
//! a bad frame in any earlier (sealed) segment is real corruption and is
//! reported as such.

use std::fs::{File, OpenOptions};
use std::io::{IoSlice, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crc32::{crc32, Crc32};
use crate::record::Record;
use crate::{CrashPoint, StoreError, StoreFaults};

/// Framing header size: payload length + CRC.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Upper bound on one record payload. Documents are capped well below
/// this by the services; anything larger in a length field is garbage
/// (torn tail or foreign file).
pub const MAX_PAYLOAD_BYTES: u32 = 16 * 1024 * 1024;

/// When (and how often) appends reach the platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append: an acknowledged write is a durable
    /// write. The default, and the only policy under which the
    /// crash-recovery oracle promises zero acknowledged loss.
    Always,
    /// `fsync` every `n` appends (and on [`flush`](crate::DocStore::flush)
    /// / rotation). Bounds loss to the last `n-1` acknowledged writes.
    EveryN(u64),
    /// Never `fsync` on append (only on flush/rotation). Fastest;
    /// durability rides entirely on the OS page cache.
    Never,
}

impl FsyncPolicy {
    /// Parses `always`, `never`, or `every=N` (N ≥ 1).
    pub fn parse(text: &str) -> Option<FsyncPolicy> {
        match text {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            other => {
                let n: u64 = other.strip_prefix("every=")?.parse().ok()?;
                (n >= 1).then_some(FsyncPolicy::EveryN(n))
            }
        }
    }

    /// Stable name (`always`, `never`, `every=N`) for reports.
    pub fn label(&self) -> String {
        match self {
            FsyncPolicy::Always => "always".into(),
            FsyncPolicy::Never => "never".into(),
            FsyncPolicy::EveryN(n) => format!("every={n}"),
        }
    }
}

/// Path of segment `seq` inside `dir`.
pub fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:010}.log"))
}

/// Parses a segment file name back into its sequence number.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?.strip_suffix(".log")?.parse().ok()
}

/// Encodes `record` into `payload_buf` (cleared first) while folding the
/// bytes into a streaming CRC in the same pass, and returns the 8-byte
/// frame header `[payload len][crc]`.
///
/// This is the zero-copy core of [`SegmentWriter::append`]: the record —
/// including a megabyte `FullSave` body — is walked exactly once (copied
/// into the reused buffer and checksummed while hot in cache), and no
/// intermediate frame `Vec` is ever assembled; the header and payload go
/// to the file as two `IoSlice`s.
fn encode_payload(record: &Record, payload_buf: &mut Vec<u8>) -> [u8; FRAME_HEADER_BYTES] {
    payload_buf.clear();
    payload_buf.reserve(record.encoded_len());
    let mut hasher = Crc32::new();
    record.encode_parts(&mut |part| {
        hasher.update(part);
        payload_buf.extend_from_slice(part);
    });
    debug_assert!(payload_buf.len() as u32 <= MAX_PAYLOAD_BYTES);
    let mut header = [0u8; FRAME_HEADER_BYTES];
    header[..4].copy_from_slice(&(payload_buf.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&hasher.finish().to_le_bytes());
    header
}

/// Serializes one record with framing (length + CRC + payload).
///
/// The append hot path streams the header and payload separately (see
/// [`SegmentWriter::append`]); this contiguous form serves tests and
/// tooling that want frame bytes in hand.
pub fn encode_frame(record: &Record) -> Vec<u8> {
    let mut payload = Vec::new();
    let header = encode_payload(record, &mut payload);
    let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    frame.extend_from_slice(&header);
    frame.extend_from_slice(&payload);
    frame
}

/// What one segment replay saw.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Valid records decoded.
    pub records: u64,
    /// Bytes of valid frames (including headers).
    pub valid_bytes: u64,
    /// Trailing bytes that failed validation (0 for a clean segment).
    pub torn_bytes: u64,
}

/// Reads every valid frame of `path` into `sink`, stopping at the first
/// invalid frame.
///
/// Returns the replay stats; `torn_bytes > 0` means the file has an
/// invalid tail starting at offset `valid_bytes`. The caller decides
/// whether that tail is tolerable (final segment after a crash) or
/// corruption (sealed segment).
///
/// # Errors
///
/// [`StoreError::Io`] on read failure, [`StoreError::Corrupt`] if a
/// CRC-valid payload fails to decode (checksum collision or foreign
/// data — never produced by a torn write).
pub fn replay_segment(
    path: &Path,
    mut sink: impl FnMut(Record),
) -> Result<ReplayStats, StoreError> {
    let bytes = std::fs::read(path)?;
    let mut stats = ReplayStats::default();
    let mut pos = 0usize;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            break; // clean end
        }
        if rest.len() < FRAME_HEADER_BYTES {
            stats.torn_bytes = rest.len() as u64;
            break;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD_BYTES || rest.len() - FRAME_HEADER_BYTES < len as usize {
            stats.torn_bytes = rest.len() as u64;
            break;
        }
        let payload = &rest[FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + len as usize];
        if crc32(payload) != crc {
            stats.torn_bytes = rest.len() as u64;
            break;
        }
        let record = Record::decode(payload)?;
        sink(record);
        stats.records += 1;
        let frame_len = FRAME_HEADER_BYTES + len as usize;
        stats.valid_bytes += frame_len as u64;
        pos += frame_len;
    }
    Ok(stats)
}

/// The single-writer append end of the WAL.
///
/// Owned by the store behind its write lock; not internally
/// synchronized.
#[derive(Debug)]
pub struct SegmentWriter {
    dir: PathBuf,
    seq: u64,
    file: File,
    /// Current byte length of the open segment.
    len: u64,
    /// Byte length at the last fsync.
    durable_len: u64,
    policy: FsyncPolicy,
    appends_since_sync: u64,
    /// Lifetime append ordinal (1-based), across rotations — the fault
    /// injector counts these.
    total_appends: u64,
    faults: Option<StoreFaults>,
    /// Reused payload encode buffer: steady-state appends allocate
    /// nothing (the buffer keeps the high-water-mark capacity).
    payload_buf: Vec<u8>,
}

impl SegmentWriter {
    /// Opens segment `seq` for appending, creating it if missing.
    /// `start_len` must be the validated length (replay's `valid_bytes`);
    /// anything beyond it is truncated away (torn-tail repair).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on open/truncate failure.
    pub fn open(
        dir: &Path,
        seq: u64,
        start_len: u64,
        policy: FsyncPolicy,
        faults: Option<StoreFaults>,
    ) -> Result<SegmentWriter, StoreError> {
        let path = segment_path(dir, seq);
        // truncate(false): an existing segment is resumed, not clobbered
        // — the torn-tail cut below is the only truncation allowed.
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&path)?;
        let actual = file.metadata()?.len();
        if actual > start_len {
            file.set_len(start_len)?;
            file.sync_all()?;
            pe_observe::static_counter!("store.torn_tail_truncations").inc();
            pe_observe::counter("store.torn_bytes_discarded").add(actual - start_len);
        }
        file.seek(SeekFrom::Start(start_len))?;
        Ok(SegmentWriter {
            dir: dir.to_path_buf(),
            seq,
            file,
            len: start_len,
            durable_len: start_len,
            policy,
            appends_since_sync: 0,
            total_appends: 0,
            faults,
            payload_buf: Vec::new(),
        })
    }

    /// Current segment sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Bytes in the currently open segment.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the open segment holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one record, honouring the fsync policy and the fault
    /// plan. On `Ok`, the record is acknowledged (and durable under
    /// [`FsyncPolicy::Always`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::InjectedCrash`] when the fault plan fires (the
    /// write is **not** acknowledged and the disk is left in the
    /// crash-consistent state the fault models), or [`StoreError::Io`].
    pub fn append(&mut self, record: &Record) -> Result<(), StoreError> {
        // Take the reused buffer out of `self` so the fault-injection
        // path below can borrow `self` mutably; restored before return.
        let mut payload_buf = std::mem::take(&mut self.payload_buf);
        let header = encode_payload(record, &mut payload_buf);
        let frame_len = FRAME_HEADER_BYTES + payload_buf.len();
        self.total_appends += 1;
        if let Some(faults) = self.faults {
            if faults.triggers_append(self.total_appends) {
                let err = self.crash(&faults, &header, &payload_buf);
                self.payload_buf = payload_buf;
                return Err(err);
            }
        }
        let started = std::time::Instant::now();
        let wrote = write_all_vectored(&mut self.file, &header, &payload_buf);
        self.payload_buf = payload_buf;
        wrote?;
        self.len += frame_len as u64;
        self.appends_since_sync += 1;
        let sync = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.appends_since_sync >= n,
            FsyncPolicy::Never => false,
        };
        if sync {
            self.sync()?;
        }
        pe_observe::static_counter!("store.appends").inc();
        pe_observe::static_histogram!("store.append_bytes").record(frame_len as u64);
        pe_observe::static_histogram!("store.append_ns").record_duration(started.elapsed());
        Ok(())
    }

    /// Enacts the configured crash, leaving the file exactly as the
    /// modelled failure would. The frame arrives as its two wire parts
    /// (header, payload) — prefix semantics treat them as concatenated.
    fn crash(&mut self, faults: &StoreFaults, header: &[u8], payload: &[u8]) -> StoreError {
        let frame_len = header.len() + payload.len();
        let point = faults.point();
        let outcome: Result<(), std::io::Error> = (|| match point {
            CrashPoint::BeforeFsync => {
                // The write reached the OS, the fsync never happened, and
                // the machine died: everything since the last sync is
                // gone.
                self.file.write_all(header)?;
                self.file.write_all(payload)?;
                self.file.set_len(self.durable_len)?;
                self.file.sync_all()
            }
            CrashPoint::MidWrite => {
                // Only a prefix of the frame made it out.
                let kept = faults.torn_len(frame_len);
                let head_kept = kept.min(header.len());
                self.file.write_all(&header[..head_kept])?;
                self.file.write_all(&payload[..kept - head_kept])?;
                self.file.sync_all()
            }
            CrashPoint::TruncateTail => {
                // The whole frame landed, then the tail was torn off.
                self.file.write_all(header)?;
                self.file.write_all(payload)?;
                let kept = faults.torn_len(frame_len);
                self.file.set_len(self.len + kept as u64)?;
                self.file.sync_all()
            }
            CrashPoint::SnapshotBeforeRename | CrashPoint::SnapshotAfterRename => {
                unreachable!("compaction crash points never trigger appends")
            }
        })();
        if let Err(e) = outcome {
            return StoreError::Io(e);
        }
        StoreError::InjectedCrash(point.name())
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        self.file.sync_data()?;
        self.durable_len = self.len;
        self.appends_since_sync = 0;
        pe_observe::static_counter!("store.fsyncs").inc();
        Ok(())
    }

    /// Flushes and fsyncs; after this every appended record is durable.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on fsync failure.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        if self.durable_len < self.len || self.appends_since_sync > 0 {
            self.sync()?;
        }
        Ok(())
    }

    /// Seals the current segment (flush + fsync) and starts a fresh one.
    /// Returns the sealed segment's sequence number.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on fsync/create failure.
    pub fn rotate(&mut self) -> Result<u64, StoreError> {
        self.flush()?;
        let sealed = self.seq;
        let next = self.seq + 1;
        let path = segment_path(&self.dir, next);
        let file = OpenOptions::new().create_new(true).read(true).write(true).open(&path)?;
        file.sync_all()?;
        sync_dir(&self.dir)?;
        self.file = file;
        self.seq = next;
        self.len = 0;
        self.durable_len = 0;
        self.appends_since_sync = 0;
        Ok(sealed)
    }
}

/// Writes `header` then `payload` as one logical frame using vectored
/// I/O, handling partial writes. The common case is a single
/// `pwritev`-style syscall covering both slices — the frame is never
/// assembled into a contiguous buffer.
fn write_all_vectored(file: &mut File, header: &[u8], payload: &[u8]) -> std::io::Result<()> {
    let total = header.len() + payload.len();
    let mut written = 0usize;
    while written < total {
        let n = if written < header.len() {
            let bufs = [IoSlice::new(&header[written..]), IoSlice::new(payload)];
            file.write_vectored(&bufs)?
        } else {
            file.write(&payload[written - header.len()..])?
        };
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                "failed to write whole WAL frame",
            ));
        }
        written += n;
    }
    Ok(())
}

/// Fsyncs a directory so renames/creates within it are durable.
///
/// # Errors
///
/// Propagates the underlying I/O failure.
pub fn sync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let path = std::env::temp_dir()
                .join(format!("pe-wal-{tag}-{}-{:?}", std::process::id(), std::thread::current().id()));
            let _ = std::fs::remove_dir_all(&path);
            std::fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn records(n: u64) -> Vec<Record> {
        (0..n)
            .map(|i| Record::FullSave {
                id: format!("doc{}", i % 3),
                version: i + 1,
                content: vec![b'x'; (i as usize % 40) + 1],
            })
            .collect()
    }

    #[test]
    fn append_then_replay_round_trips() {
        let dir = TempDir::new("roundtrip");
        let mut w = SegmentWriter::open(&dir.0, 1, 0, FsyncPolicy::Always, None).unwrap();
        let written = records(10);
        for r in &written {
            w.append(r).unwrap();
        }
        drop(w);
        let mut seen = Vec::new();
        let stats = replay_segment(&segment_path(&dir.0, 1), |r| seen.push(r)).unwrap();
        assert_eq!(seen, written);
        assert_eq!(stats.records, 10);
        assert_eq!(stats.torn_bytes, 0);
    }

    #[test]
    fn torn_tail_is_detected_not_corrupt() {
        let dir = TempDir::new("torn");
        let mut w = SegmentWriter::open(&dir.0, 1, 0, FsyncPolicy::Always, None).unwrap();
        for r in records(5) {
            w.append(&r).unwrap();
        }
        let full_len = w.len();
        drop(w);
        let path = segment_path(&dir.0, 1);
        // Chop 3 bytes off the last frame.
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full_len - 3).unwrap();
        drop(file);
        let mut seen = 0;
        let stats = replay_segment(&path, |_| seen += 1).unwrap();
        assert_eq!(seen, 4, "last record lost, earlier ones intact");
        assert!(stats.torn_bytes > 0);
        // Reopening at the validated length truncates the tail away.
        let w = SegmentWriter::open(&dir.0, 1, stats.valid_bytes, FsyncPolicy::Always, None)
            .unwrap();
        assert_eq!(w.len(), stats.valid_bytes);
        drop(w);
        let clean = replay_segment(&path, |_| {}).unwrap();
        assert_eq!(clean.torn_bytes, 0);
    }

    #[test]
    fn corrupted_payload_with_valid_framing_is_a_crc_miss() {
        let dir = TempDir::new("flip");
        let mut w = SegmentWriter::open(&dir.0, 1, 0, FsyncPolicy::Always, None).unwrap();
        for r in records(3) {
            w.append(&r).unwrap();
        }
        drop(w);
        let path = segment_path(&dir.0, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let mut seen = 0;
        let stats = replay_segment(&path, |_| seen += 1).unwrap();
        assert!(seen < 3, "flip must cut replay short");
        assert!(stats.torn_bytes > 0);
    }

    #[test]
    fn rotation_seals_and_continues() {
        let dir = TempDir::new("rotate");
        let mut w = SegmentWriter::open(&dir.0, 1, 0, FsyncPolicy::EveryN(4), None).unwrap();
        for r in records(3) {
            w.append(&r).unwrap();
        }
        assert_eq!(w.rotate().unwrap(), 1);
        assert_eq!(w.seq(), 2);
        assert!(w.is_empty());
        for r in records(2) {
            w.append(&r).unwrap();
        }
        w.flush().unwrap();
        drop(w);
        let mut first = 0;
        replay_segment(&segment_path(&dir.0, 1), |_| first += 1).unwrap();
        let mut second = 0;
        replay_segment(&segment_path(&dir.0, 2), |_| second += 1).unwrap();
        assert_eq!((first, second), (3, 2));
    }

    #[test]
    fn policy_parsing_round_trips() {
        for (text, policy) in [
            ("always", FsyncPolicy::Always),
            ("never", FsyncPolicy::Never),
            ("every=8", FsyncPolicy::EveryN(8)),
        ] {
            assert_eq!(FsyncPolicy::parse(text), Some(policy));
            assert_eq!(policy.label(), text);
        }
        assert_eq!(FsyncPolicy::parse("every=0"), None);
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }

    #[test]
    fn segment_names_round_trip() {
        assert_eq!(parse_segment_name("wal-0000000042.log"), Some(42));
        assert_eq!(parse_segment_name("snap-1.snap"), None);
        let path = segment_path(Path::new("/x"), 7);
        assert_eq!(parse_segment_name(path.file_name().unwrap().to_str().unwrap()), Some(7));
    }
}
