//! The WAL record vocabulary and its binary encoding.
//!
//! Payload layout (all integers little-endian):
//!
//! ```text
//! [kind: u8] [kind-specific fields]
//!   Create         id
//!   FullSave       id, version: u64, content: u32-len + bytes
//!   Delta          id, version: u64, delta text: u32-len + bytes
//!   Delete         id
//!   Meta           key, value: u64
//!   SnapshotMarker covered_seq: u64
//! ```
//!
//! where `id`/`key` are `u16`-length-prefixed UTF-8 strings. Framing
//! (length prefix + CRC) is the WAL's job — see [`crate::wal`].

use crate::StoreError;

/// Record kind tags (the first payload byte).
const KIND_CREATE: u8 = 1;
const KIND_FULL: u8 = 2;
const KIND_DELTA: u8 = 3;
const KIND_DELETE: u8 = 4;
const KIND_META: u8 = 5;
const KIND_SNAPSHOT_MARKER: u8 = 6;

/// One write-ahead log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// An empty document came into existence (version 0, no revisions).
    Create {
        /// Document id.
        id: String,
    },
    /// A full save: `content` replaces the document, the previous
    /// content moves to the revision history, and the version becomes
    /// `version`.
    FullSave {
        /// Document id.
        id: String,
        /// Version after this save.
        version: u64,
        /// The new content bytes.
        content: Vec<u8>,
    },
    /// An incremental save: the serialized delta applied to the previous
    /// content yields the new content. Small edits cost small appends.
    Delta {
        /// Document id.
        id: String,
        /// Version after this save.
        version: u64,
        /// `pe_delta::Delta::serialize` text.
        delta: String,
    },
    /// The document was removed.
    Delete {
        /// Document id.
        id: String,
    },
    /// A metadata counter was set.
    Meta {
        /// Counter name.
        key: String,
        /// New value.
        value: u64,
    },
    /// A snapshot covering every segment up to and including
    /// `covered_seq` was durably written; replay before that point is
    /// unnecessary.
    SnapshotMarker {
        /// Highest WAL segment sequence number the snapshot covers.
        covered_seq: u64,
    },
}

impl Record {
    /// Exact encoded payload size in bytes.
    ///
    /// Lets [`Record::encode`] / [`Record::encode_into`] reserve the full
    /// payload up front: a 1 MiB `FullSave` costs one allocation (or, with
    /// a warm reused buffer, zero), not a doubling cascade.
    pub fn encoded_len(&self) -> usize {
        match self {
            Record::Create { id } | Record::Delete { id } => 1 + 2 + id.len(),
            Record::FullSave { id, content, .. } => 1 + 2 + id.len() + 8 + 4 + content.len(),
            Record::Delta { id, delta, .. } => 1 + 2 + id.len() + 8 + 4 + delta.len(),
            Record::Meta { key, .. } => 1 + 2 + key.len() + 8,
            Record::SnapshotMarker { .. } => 1 + 8,
        }
    }

    /// Serializes the record payload (no framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Appends the encoded payload to `out`, reserving the exact size
    /// first. The WAL writer calls this with a reused per-segment buffer
    /// so steady-state appends do not allocate at all.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.encoded_len());
        self.encode_parts(&mut |part| out.extend_from_slice(part));
    }

    /// Streams the encoded payload to `put` as a sequence of byte slices
    /// (concatenated, they are exactly [`Record::encode`]'s output).
    ///
    /// This is the zero-copy spine of the WAL append path: the writer's
    /// sink both copies each part into the reused frame buffer **and**
    /// folds it into the running CRC, so the payload — including a large
    /// `FullSave` body — is walked exactly once.
    pub fn encode_parts(&self, put: &mut impl FnMut(&[u8])) {
        match self {
            Record::Create { id } => {
                put(&[KIND_CREATE]);
                put_str16(put, id);
            }
            Record::FullSave { id, version, content } => {
                put(&[KIND_FULL]);
                put_str16(put, id);
                put(&version.to_le_bytes());
                put_bytes32(put, content);
            }
            Record::Delta { id, version, delta } => {
                put(&[KIND_DELTA]);
                put_str16(put, id);
                put(&version.to_le_bytes());
                put_bytes32(put, delta.as_bytes());
            }
            Record::Delete { id } => {
                put(&[KIND_DELETE]);
                put_str16(put, id);
            }
            Record::Meta { key, value } => {
                put(&[KIND_META]);
                put_str16(put, key);
                put(&value.to_le_bytes());
            }
            Record::SnapshotMarker { covered_seq } => {
                put(&[KIND_SNAPSHOT_MARKER]);
                put(&covered_seq.to_le_bytes());
            }
        }
    }

    /// Parses a record payload (the exact bytes [`Record::encode`]
    /// produced — framing and CRC already stripped and verified).
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on any structural violation. Because the
    /// caller has already checked the CRC, a decode failure means
    /// corruption that collided the checksum or a foreign file — not a
    /// torn tail.
    pub fn decode(payload: &[u8]) -> Result<Record, StoreError> {
        let mut r = Reader { bytes: payload, pos: 0 };
        let kind = r.u8()?;
        let record = match kind {
            KIND_CREATE => Record::Create { id: r.str16()? },
            KIND_FULL => Record::FullSave {
                id: r.str16()?,
                version: r.u64()?,
                content: r.bytes32()?,
            },
            KIND_DELTA => {
                let id = r.str16()?;
                let version = r.u64()?;
                let delta = String::from_utf8(r.bytes32()?)
                    .map_err(|_| StoreError::Corrupt("delta text is not UTF-8".into()))?;
                Record::Delta { id, version, delta }
            }
            KIND_DELETE => Record::Delete { id: r.str16()? },
            KIND_META => Record::Meta { key: r.str16()?, value: r.u64()? },
            KIND_SNAPSHOT_MARKER => Record::SnapshotMarker { covered_seq: r.u64()? },
            other => {
                return Err(StoreError::Corrupt(format!("unknown record kind {other}")));
            }
        };
        if r.pos != payload.len() {
            return Err(StoreError::Corrupt(format!(
                "{} trailing bytes after record",
                payload.len() - r.pos
            )));
        }
        Ok(record)
    }

    /// The document id this record touches, if any.
    pub fn doc_id(&self) -> Option<&str> {
        match self {
            Record::Create { id }
            | Record::FullSave { id, .. }
            | Record::Delta { id, .. }
            | Record::Delete { id } => Some(id),
            Record::Meta { .. } | Record::SnapshotMarker { .. } => None,
        }
    }

    /// Short kind name for reports.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Record::Create { .. } => "create",
            Record::FullSave { .. } => "full-save",
            Record::Delta { .. } => "delta",
            Record::Delete { .. } => "delete",
            Record::Meta { .. } => "meta",
            Record::SnapshotMarker { .. } => "snapshot-marker",
        }
    }
}

fn put_str16(put: &mut impl FnMut(&[u8]), s: &str) {
    let len = u16::try_from(s.len()).expect("ids and keys are short");
    put(&len.to_le_bytes());
    put(s.as_bytes());
}

fn put_bytes32(put: &mut impl FnMut(&[u8]), bytes: &[u8]) {
    let len = u32::try_from(bytes.len()).expect("contents fit in u32");
    put(&len.to_le_bytes());
    put(bytes);
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| StoreError::Corrupt("record payload truncated".into()))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn str16(&mut self) -> Result<String, StoreError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::Corrupt("id is not UTF-8".into()))
    }

    fn bytes32(&mut self) -> Result<Vec<u8>, StoreError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Record> {
        vec![
            Record::Create { id: "doc1".into() },
            Record::FullSave { id: "doc1".into(), version: 1, content: b"PE1;R;b8;...".to_vec() },
            Record::Delta { id: "doc1".into(), version: 2, delta: "=2\t-3\t+uv\t=2\t+w".into() },
            Record::Delete { id: "doc1".into() },
            Record::Meta { key: "next_doc".into(), value: 42 },
            Record::SnapshotMarker { covered_seq: 7 },
            Record::FullSave { id: String::new(), version: 0, content: Vec::new() },
        ]
    }

    #[test]
    fn encode_decode_round_trips() {
        for record in samples() {
            let encoded = record.encode();
            let decoded = Record::decode(&encoded).unwrap();
            assert_eq!(decoded, record);
        }
    }

    #[test]
    fn truncated_payloads_are_corrupt() {
        for record in samples() {
            let encoded = record.encode();
            for cut in 0..encoded.len() {
                assert!(
                    Record::decode(&encoded[..cut]).is_err(),
                    "truncation to {cut} of {} accepted for {}",
                    encoded.len(),
                    record.kind_name()
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_are_corrupt() {
        let mut encoded = Record::Create { id: "x".into() }.encode();
        encoded.push(0);
        assert!(Record::decode(&encoded).is_err());
    }

    #[test]
    fn unknown_kind_is_corrupt() {
        assert!(Record::decode(&[99]).is_err());
        assert!(Record::decode(&[]).is_err());
    }

    #[test]
    fn encoded_len_is_exact() {
        for record in samples() {
            assert_eq!(record.encoded_len(), record.encode().len(), "{}", record.kind_name());
        }
    }

    #[test]
    fn one_mib_full_save_encodes_without_realloc() {
        // The regression this pins: encode() used to start from
        // Vec::with_capacity(16) and double its way up, copying the
        // payload ~log2(n) times. With the exact-size reserve the vector
        // never outgrows (or exceeds) its first allocation.
        let record = Record::FullSave {
            id: "doc-with-a-realistic-id".into(),
            version: 9,
            content: vec![0xA5; 1 << 20],
        };
        let encoded = record.encode();
        assert_eq!(encoded.len(), record.encoded_len());
        assert_eq!(
            encoded.capacity(),
            record.encoded_len(),
            "encode() must allocate exactly once at the exact size"
        );

        // And a warm reused buffer does not allocate at all.
        let mut reused = Vec::with_capacity(record.encoded_len());
        reused.clear();
        let cap_before = reused.capacity();
        record.encode_into(&mut reused);
        assert_eq!(reused.capacity(), cap_before, "warm encode_into must not grow the buffer");
        assert_eq!(reused, encoded);
    }
}
