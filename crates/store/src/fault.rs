//! Seeded crash-point fault injection for the storage engine.
//!
//! Mirrors `pe_cloud::fault`'s philosophy — deterministic, seeded,
//! reproducible — but at a lower layer: instead of failing requests, it
//! crashes the *process model* at a chosen point in the write path and
//! leaves the directory in exactly the state a real `kill -9` (or a torn
//! sector write) would, so tests can reopen the store and check the
//! recovery invariant.
//!
//! After a fault fires, the store is **poisoned**: every further
//! operation fails with [`crate::StoreError::Poisoned`] until the
//! directory is reopened, just as a crashed process cannot keep serving.

/// Where in the write path the injected crash happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// The record bytes reached the OS but the process dies before
    /// `fsync`: everything not yet durable vanishes (the file is
    /// truncated back to its last-synced length).
    BeforeFsync,
    /// The process dies mid-`write`: only a seeded prefix of the frame
    /// lands on disk — a torn tail for replay to detect.
    MidWrite,
    /// The full frame lands but a seeded number of its final bytes are
    /// later lost (a torn sector discovered at reboot).
    TruncateTail,
    /// Compaction dies after writing the snapshot temp file but before
    /// the atomic rename: the `.tmp` must be ignored at reopen.
    SnapshotBeforeRename,
    /// Compaction dies after the rename but before garbage collection:
    /// superseded segments linger and must be handled at reopen.
    SnapshotAfterRename,
}

impl CrashPoint {
    /// Stable name used in error messages and reports.
    pub fn name(self) -> &'static str {
        match self {
            CrashPoint::BeforeFsync => "before-fsync",
            CrashPoint::MidWrite => "mid-write",
            CrashPoint::TruncateTail => "truncate-tail",
            CrashPoint::SnapshotBeforeRename => "snapshot-before-rename",
            CrashPoint::SnapshotAfterRename => "snapshot-after-rename",
        }
    }

    /// Whether this point fires during an append (vs during compaction).
    pub fn is_append_point(self) -> bool {
        matches!(
            self,
            CrashPoint::BeforeFsync | CrashPoint::MidWrite | CrashPoint::TruncateTail
        )
    }
}

/// A one-shot, seeded crash plan for a [`crate::LogStore`].
///
/// # Example
///
/// ```
/// use pe_store::{CrashPoint, StoreFaults};
/// // Crash the 3rd append mid-write; partial-byte counts drawn from seed 9.
/// let faults = StoreFaults::at_append(CrashPoint::MidWrite, 3, 9);
/// assert_eq!(faults.point(), CrashPoint::MidWrite);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StoreFaults {
    point: CrashPoint,
    /// 1-based append ordinal that crashes (ignored for compaction
    /// points).
    at_append: u64,
    seed: u64,
}

impl StoreFaults {
    /// Crash the `n`-th append (1-based) at `point`, which must be an
    /// append-path crash point.
    pub fn at_append(point: CrashPoint, n: u64, seed: u64) -> StoreFaults {
        assert!(point.is_append_point(), "{} is not an append crash point", point.name());
        assert!(n >= 1, "appends are 1-based");
        StoreFaults { point, at_append: n, seed }
    }

    /// Crash the next compaction at `point` (one of the snapshot
    /// points).
    pub fn in_compaction(point: CrashPoint, seed: u64) -> StoreFaults {
        assert!(!point.is_append_point(), "{} is an append crash point", point.name());
        StoreFaults { point, at_append: 0, seed }
    }

    /// The configured crash point.
    pub fn point(&self) -> CrashPoint {
        self.point
    }

    /// Whether append number `n` (1-based) should crash.
    pub(crate) fn triggers_append(&self, n: u64) -> bool {
        self.point.is_append_point() && n == self.at_append
    }

    /// Whether a compaction reaching `point` should crash.
    pub(crate) fn triggers_compaction(&self, point: CrashPoint) -> bool {
        self.point == point
    }

    /// Seeded choice of how many bytes of an `n`-byte frame survive a
    /// [`CrashPoint::MidWrite`] (in `0..n`) or are kept before the cut
    /// of a [`CrashPoint::TruncateTail`] (also `0..n`, i.e. at least one
    /// byte of the frame is always lost).
    pub(crate) fn torn_len(&self, frame_len: usize) -> usize {
        debug_assert!(frame_len > 0);
        (mix(self.seed, self.at_append) % frame_len as u64) as usize
    }
}

/// SplitMix-style mixer, same family as `pe_cloud::fault` uses, so fault
/// schedules stay reproducible across the whole workspace.
fn mix(seed: u64, n: u64) -> u64 {
    let mut z = n.wrapping_add(seed).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_trigger_is_exact() {
        let f = StoreFaults::at_append(CrashPoint::BeforeFsync, 3, 0);
        assert!(!f.triggers_append(1));
        assert!(!f.triggers_append(2));
        assert!(f.triggers_append(3));
        assert!(!f.triggers_append(4));
        assert!(!f.triggers_compaction(CrashPoint::SnapshotBeforeRename));
    }

    #[test]
    fn compaction_trigger_matches_point() {
        let f = StoreFaults::in_compaction(CrashPoint::SnapshotAfterRename, 1);
        assert!(f.triggers_compaction(CrashPoint::SnapshotAfterRename));
        assert!(!f.triggers_compaction(CrashPoint::SnapshotBeforeRename));
        assert!(!f.triggers_append(1));
    }

    #[test]
    fn torn_len_is_deterministic_and_in_range() {
        for seed in 0..32 {
            let f = StoreFaults::at_append(CrashPoint::MidWrite, 5, seed);
            let len = f.torn_len(100);
            assert!(len < 100);
            assert_eq!(len, f.torn_len(100), "same seed, same cut");
        }
        // Different seeds reach different cuts eventually.
        let cuts: std::collections::HashSet<usize> = (0..32)
            .map(|seed| StoreFaults::at_append(CrashPoint::MidWrite, 5, seed).torn_len(1000))
            .collect();
        assert!(cuts.len() > 1);
    }

    #[test]
    #[should_panic(expected = "not an append crash point")]
    fn append_constructor_rejects_compaction_points() {
        let _ = StoreFaults::at_append(CrashPoint::SnapshotBeforeRename, 1, 0);
    }
}
