//! The in-memory sharded index: doc-id → latest [`DocState`].
//!
//! N shards keyed by a hash of the doc id, each behind its own `RwLock`,
//! so readers (loads, spell checks, exports, admin listings) proceed
//! concurrently while the WAL serializes writers. Both [`crate::MemStore`]
//! and [`crate::LogStore`] are this index; the latter adds the log in
//! front of it.

use std::collections::HashMap;

use parking_lot::{Mutex, RwLock};

use crate::DocState;

/// Default shard count (a power of two keeps the modulo cheap).
pub const DEFAULT_SHARDS: usize = 16;

#[derive(Debug)]
pub struct Index {
    shards: Vec<RwLock<HashMap<String, DocState>>>,
    meta: Mutex<HashMap<String, u64>>,
}

/// FNV-1a — short ids, no adversarial keys (ids are server-issued).
/// Shared with [`crate::shard`] so document→shard routing and the
/// in-memory index agree on one hash.
pub(crate) fn hash_id(id: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in id.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Index {
    pub fn new(shards: usize) -> Index {
        let shards = shards.max(1);
        Index {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            meta: Mutex::new(HashMap::new()),
        }
    }

    fn shard(&self, id: &str) -> &RwLock<HashMap<String, DocState>> {
        &self.shards[(hash_id(id) % self.shards.len() as u64) as usize]
    }

    pub fn get(&self, id: &str) -> Option<DocState> {
        self.shard(id).read().get(id).cloned()
    }

    pub fn content(&self, id: &str) -> Option<Vec<u8>> {
        self.shard(id).read().get(id).map(|d| d.content.clone())
    }

    pub fn contains(&self, id: &str) -> bool {
        self.shard(id).read().contains_key(id)
    }

    pub fn version(&self, id: &str) -> Option<u64> {
        self.shard(id).read().get(id).map(|d| d.version)
    }

    pub fn list(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| s.read().keys().cloned().collect::<Vec<_>>())
            .collect();
        ids.sort();
        ids
    }

    pub fn doc_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Installs an empty document; `false` if it already exists.
    pub fn apply_create(&self, id: &str) -> bool {
        let mut shard = self.shard(id).write();
        if shard.contains_key(id) {
            return false;
        }
        shard.insert(id.to_string(), DocState::default());
        true
    }

    /// Replaces content, pushing the previous content onto the revision
    /// history when the document already existed. Returns the new
    /// version.
    pub fn apply_save(&self, id: &str, content: Vec<u8>) -> u64 {
        let mut shard = self.shard(id).write();
        match shard.get_mut(id) {
            Some(doc) => {
                let previous = std::mem::replace(&mut doc.content, content);
                doc.revisions.push(previous);
                doc.version += 1;
                doc.version
            }
            None => {
                shard.insert(
                    id.to_string(),
                    DocState { content, version: 1, revisions: Vec::new() },
                );
                1
            }
        }
    }

    /// Installs a complete state verbatim (snapshot load).
    pub fn install(&self, id: String, state: DocState) {
        self.shard(&id).write().insert(id, state);
    }

    pub fn apply_remove(&self, id: &str) -> bool {
        self.shard(id).write().remove(id).is_some()
    }

    pub fn meta_get(&self, key: &str) -> Option<u64> {
        self.meta.lock().get(key).copied()
    }

    pub fn meta_set(&self, key: &str, value: u64) {
        self.meta.lock().insert(key.to_string(), value);
    }

    /// Increment-and-get; used for `next_doc`-style id allocation. The
    /// caller's write lock makes the read-modify-write atomic with the
    /// WAL append.
    pub fn meta_bump(&self, key: &str) -> u64 {
        let mut meta = self.meta.lock();
        let value = meta.entry(key.to_string()).or_insert(0);
        *value += 1;
        *value
    }

    pub fn meta_entries(&self) -> Vec<(String, u64)> {
        let mut entries: Vec<(String, u64)> =
            self.meta.lock().iter().map(|(k, v)| (k.clone(), *v)).collect();
        entries.sort();
        entries
    }

    /// A point-in-time copy of every document, sorted by id. The caller
    /// must hold the store's write serializer for the copy to be a
    /// consistent cut.
    pub fn snapshot_docs(&self) -> Vec<(String, DocState)> {
        let mut docs: Vec<(String, DocState)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read().iter().map(|(k, v)| (k.clone(), v.clone())).collect::<Vec<_>>()
            })
            .collect();
        docs.sort_by(|a, b| a.0.cmp(&b.0));
        docs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_save_remove_lifecycle() {
        let index = Index::new(4);
        assert!(index.apply_create("a"));
        assert!(!index.apply_create("a"), "double create is a no-op");
        assert_eq!(index.version("a"), Some(0));
        assert_eq!(index.apply_save("a", b"one".to_vec()), 1);
        assert_eq!(index.apply_save("a", b"two".to_vec()), 2);
        let doc = index.get("a").unwrap();
        assert_eq!(doc.content, b"two");
        assert_eq!(doc.revisions, vec![Vec::new(), b"one".to_vec()]);
        assert!(index.apply_remove("a"));
        assert!(!index.apply_remove("a"));
    }

    #[test]
    fn save_without_create_starts_at_version_one_with_no_revision() {
        let index = Index::new(4);
        assert_eq!(index.apply_save("f", b"put".to_vec()), 1);
        assert!(index.get("f").unwrap().revisions.is_empty());
    }

    #[test]
    fn listing_is_sorted_across_shards() {
        let index = Index::new(3);
        for id in ["zebra", "alpha", "mid"] {
            index.apply_create(id);
        }
        assert_eq!(index.list(), vec!["alpha", "mid", "zebra"]);
        assert_eq!(index.doc_count(), 3);
    }

    #[test]
    fn meta_counters_bump_atomically() {
        let index = Index::new(1);
        assert_eq!(index.meta_get("next_doc"), None);
        assert_eq!(index.meta_bump("next_doc"), 1);
        assert_eq!(index.meta_bump("next_doc"), 2);
        index.meta_set("next_session", 9);
        assert_eq!(
            index.meta_entries(),
            vec![("next_doc".to_string(), 2), ("next_session".to_string(), 9)]
        );
    }

    #[test]
    fn snapshot_copy_is_sorted_and_deep() {
        let index = Index::new(2);
        index.apply_save("b", b"bb".to_vec());
        index.apply_save("a", b"aa".to_vec());
        let snap = index.snapshot_docs();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, "a");
        index.apply_save("a", b"changed".to_vec());
        assert_eq!(snap[0].1.content, b"aa", "copy is independent of later writes");
    }
}
