//! Durable storage for the untrusted cloud's view of the world.
//!
//! The paper's server is "a glorified data store" for ciphertext — but a
//! data store that loses acknowledged saves on a crash is not much of a
//! store. This crate gives every simulated cloud backend a real storage
//! engine, built on nothing but `std::fs`:
//!
//! * [`record`] — the WAL record vocabulary (create, full-save, delta,
//!   delete, meta, snapshot-marker), length-prefixed and CRC-checksummed.
//! * [`wal`] — append-only segment files with a configurable
//!   [`FsyncPolicy`] and torn-tail detection on replay.
//! * [`LogStore`] — the log-structured engine: a sharded in-memory index
//!   rebuilt by WAL replay at open, plus background snapshot + log
//!   compaction that garbage-collects superseded segments.
//! * [`MemStore`] — the old `HashMap` behaviour behind the same trait,
//!   for tests and benchmark baselines.
//! * [`StoreFaults`] — a seeded crash-point injector (fail-before-fsync,
//!   fail-mid-write, truncate-tail, crash-during-snapshot) mirroring
//!   `pe_cloud::fault`, used to prove the recovery invariant: after any
//!   injected crash, [`LogStore::open`] recovers **exactly** the prefix
//!   of acknowledged writes — no loss, no phantoms.
//!
//! The incremental-encryption design of the paper means small edits are
//! small ciphertext deltas; the WAL preserves that economy end to end: a
//! delta save costs one small append, not a whole-document rewrite.
//!
//! # Example
//!
//! ```
//! use pe_store::{DocStore, LogStore, StoreConfig};
//! let dir = std::env::temp_dir().join(format!("pe-store-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let store = LogStore::open(&dir, StoreConfig::default()).unwrap();
//! store.create("doc1").unwrap();
//! store.put_full("doc1", b"ciphertext bytes").unwrap();
//! drop(store); // crash or exit — the WAL has the bytes
//! let store = LogStore::open(&dir, StoreConfig::default()).unwrap();
//! assert_eq!(store.content("doc1").unwrap(), b"ciphertext bytes");
//! # drop(store);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod crc32;
mod fault;
mod index;
mod log;
mod mem;
pub mod record;
mod shard;
mod snapfile;
pub mod wal;

pub use fault::{CrashPoint, StoreFaults};
pub use log::{
    fsck, CompactionStats, FsckReport, LogStore, SegmentReport, SnapshotReport, StoreConfig,
};
pub use mem::MemStore;
pub use shard::{shard_dir, ShardedLogStore, MANIFEST_NAME, MAX_SHARDS};
pub use wal::{FsyncPolicy, GroupStats};

/// The stored state of one document, as the provider sees it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DocState {
    /// Latest stored bytes (ciphertext under the privacy extension).
    pub content: Vec<u8>,
    /// Number of saves applied (0 for a freshly created document).
    pub version: u64,
    /// Previous contents, oldest first — the revision history the real
    /// 2011 services kept (and leaked).
    pub revisions: Vec<Vec<u8>>,
}

/// Limits enforced atomically when applying a delta.
#[derive(Debug, Clone, Copy)]
pub struct DeltaLimits {
    /// Maximum resulting document length in bytes.
    pub max_len: usize,
    /// Require the resulting bytes to be valid UTF-8 (the Docs protocol
    /// stores text; Bespin/Buzzword callers pass `false`).
    pub require_utf8: bool,
    /// Optimistic-concurrency precondition: the version the delta was
    /// computed against. When set, the apply is rejected with
    /// [`StoreError::Conflict`] unless the document is still at exactly
    /// this version — checked under the same lock as the write, so a
    /// concurrent save cannot slip in between. `None` skips the check
    /// (a delta's positional fit is then the only guard, which cannot
    /// catch every race: a stale delta may still *apply* cleanly while
    /// silently dropping a concurrent writer's change).
    pub base_version: Option<u64>,
}

impl DeltaLimits {
    /// No limits: any length, any bytes, no version precondition.
    pub fn none() -> DeltaLimits {
        DeltaLimits { max_len: usize::MAX, require_utf8: false, base_version: None }
    }

    /// Adds a version precondition to these limits.
    pub fn at_version(self, base_version: u64) -> DeltaLimits {
        DeltaLimits { base_version: Some(base_version), ..self }
    }
}

/// Errors from the storage layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// On-disk state failed validation (bad CRC, bad framing, gaps in
    /// the segment sequence, …).
    Corrupt(String),
    /// A delta did not apply to the current content.
    Conflict(String),
    /// The operation would exceed [`DeltaLimits::max_len`].
    TooLarge {
        /// Resulting length.
        len: usize,
        /// Configured maximum.
        max: usize,
    },
    /// The delta produced non-UTF-8 bytes under
    /// [`DeltaLimits::require_utf8`].
    InvalidUtf8,
    /// The document does not exist.
    NoSuchDocument,
    /// The seeded fault injector crashed this operation; the write was
    /// **not** acknowledged.
    InjectedCrash(&'static str),
    /// A previous injected crash poisoned this store; reopen it.
    Poisoned,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "store corrupt: {msg}"),
            StoreError::Conflict(msg) => write!(f, "delta conflict: {msg}"),
            StoreError::TooLarge { len, max } => {
                write!(f, "document would be {len} bytes (limit {max})")
            }
            StoreError::InvalidUtf8 => write!(f, "delta produced invalid text"),
            StoreError::NoSuchDocument => write!(f, "no such document"),
            StoreError::InjectedCrash(point) => write!(f, "injected crash at {point}"),
            StoreError::Poisoned => write!(f, "store poisoned by an earlier crash; reopen it"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// A durable (or deliberately non-durable) document store.
///
/// The unit of storage is a named document holding opaque bytes plus its
/// version counter and revision history; a small `u64` metadata namespace
/// rides along for server counters (`next_doc`, `next_session`). Every
/// mutation is atomic with respect to concurrent callers, and on
/// [`LogStore`] is durable according to the configured [`FsyncPolicy`]
/// **before** the call returns — a returned `Ok` is an acknowledgement.
pub trait DocStore: Send + Sync {
    /// Full state of a document (content, version, revisions).
    fn get(&self, id: &str) -> Option<DocState>;

    /// Latest content bytes only (cheaper than [`DocStore::get`]).
    fn content(&self, id: &str) -> Option<Vec<u8>>;

    /// Whether the document exists.
    fn contains(&self, id: &str) -> bool {
        self.content(id).is_some()
    }

    /// All document ids, sorted.
    fn list(&self) -> Vec<String>;

    /// Creates an empty document at version 0. Returns `false` (and
    /// changes nothing) if it already exists.
    ///
    /// # Errors
    ///
    /// I/O or injected-crash failures from the backing log.
    fn create(&self, id: &str) -> Result<bool, StoreError>;

    /// Replaces the content (creating the document if missing), pushes
    /// the previous content onto the revision history, and bumps the
    /// version. Returns the new version.
    ///
    /// # Errors
    ///
    /// I/O or injected-crash failures from the backing log.
    fn put_full(&self, id: &str, content: &[u8]) -> Result<u64, StoreError>;

    /// Applies an incremental delta to the current content, atomically
    /// enforcing `limits` *before* anything is committed. Returns the
    /// resulting state (content + version; revisions are not cloned).
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSuchDocument`], [`StoreError::Conflict`],
    /// [`StoreError::TooLarge`], [`StoreError::InvalidUtf8`], or log
    /// failures.
    fn apply_delta(
        &self,
        id: &str,
        delta: &pe_delta::Delta,
        limits: DeltaLimits,
    ) -> Result<DocState, StoreError>;

    /// Removes a document. Returns `false` if it did not exist.
    ///
    /// # Errors
    ///
    /// I/O or injected-crash failures from the backing log.
    fn remove(&self, id: &str) -> Result<bool, StoreError>;

    /// Reads a metadata counter (`None` when never set).
    fn meta(&self, key: &str) -> Option<u64>;

    /// Sets a metadata counter.
    ///
    /// # Errors
    ///
    /// I/O or injected-crash failures from the backing log.
    fn set_meta(&self, key: &str, value: u64) -> Result<(), StoreError>;

    /// Atomically increments a metadata counter and returns the new
    /// value (1 on first use).
    ///
    /// # Errors
    ///
    /// I/O or injected-crash failures from the backing log.
    fn bump_meta(&self, key: &str) -> Result<u64, StoreError>;

    /// All metadata entries, sorted by key.
    fn meta_entries(&self) -> Vec<(String, u64)>;

    /// Flushes and fsyncs any buffered log writes (a no-op for
    /// [`MemStore`]). After this returns, every acknowledged write is on
    /// disk regardless of the fsync policy.
    ///
    /// # Errors
    ///
    /// I/O failures from the backing log.
    fn flush(&self) -> Result<(), StoreError>;

    /// Writes a point-in-time snapshot, rotates the log, and
    /// garbage-collects superseded segments (a no-op for [`MemStore`]).
    ///
    /// # Errors
    ///
    /// I/O or injected-crash failures.
    fn compact(&self) -> Result<CompactionStats, StoreError>;

    /// Short backend name for logs and reports.
    fn name(&self) -> &'static str;
}

impl<T: DocStore + ?Sized> DocStore for std::sync::Arc<T> {
    fn get(&self, id: &str) -> Option<DocState> {
        (**self).get(id)
    }
    fn content(&self, id: &str) -> Option<Vec<u8>> {
        (**self).content(id)
    }
    fn contains(&self, id: &str) -> bool {
        (**self).contains(id)
    }
    fn list(&self) -> Vec<String> {
        (**self).list()
    }
    fn create(&self, id: &str) -> Result<bool, StoreError> {
        (**self).create(id)
    }
    fn put_full(&self, id: &str, content: &[u8]) -> Result<u64, StoreError> {
        (**self).put_full(id, content)
    }
    fn apply_delta(
        &self,
        id: &str,
        delta: &pe_delta::Delta,
        limits: DeltaLimits,
    ) -> Result<DocState, StoreError> {
        (**self).apply_delta(id, delta, limits)
    }
    fn remove(&self, id: &str) -> Result<bool, StoreError> {
        (**self).remove(id)
    }
    fn meta(&self, key: &str) -> Option<u64> {
        (**self).meta(key)
    }
    fn set_meta(&self, key: &str, value: u64) -> Result<(), StoreError> {
        (**self).set_meta(key, value)
    }
    fn bump_meta(&self, key: &str) -> Result<u64, StoreError> {
        (**self).bump_meta(key)
    }
    fn meta_entries(&self) -> Vec<(String, u64)> {
        (**self).meta_entries()
    }
    fn flush(&self) -> Result<(), StoreError> {
        (**self).flush()
    }
    fn compact(&self) -> Result<CompactionStats, StoreError> {
        (**self).compact()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}
