//! Property tests for the on-disk formats: WAL records round-trip
//! bit-exactly, arbitrary truncation never yields phantoms, and the
//! randomized crash oracle holds.

use std::path::PathBuf;

use proptest::prelude::*;

use pe_store::record::Record;
use pe_store::wal::{self, FsyncPolicy, SegmentWriter};
use pe_store::{CrashPoint, DocStore, LogStore, StoreConfig, StoreError, StoreFaults};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!(
            "pe-prop-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn record_strategy() -> BoxedStrategy<Record> {
    prop_oneof![
        "[a-z0-9]{1,12}".prop_map(|id| Record::Create { id }),
        ("[a-z0-9]{1,12}", 0u64..1000, proptest::collection::vec(any::<u8>(), 0..200))
            .prop_map(|(id, version, content)| Record::FullSave { id, version, content }),
        ("[a-z0-9]{1,12}", 0u64..1000, "[ -~]{0,60}")
            .prop_map(|(id, version, delta)| Record::Delta { id, version, delta }),
        "[a-z0-9]{1,12}".prop_map(|id| Record::Delete { id }),
        ("[a-z_]{1,16}", any::<u64>()).prop_map(|(key, value)| Record::Meta { key, value }),
        any::<u64>().prop_map(|covered_seq| Record::SnapshotMarker { covered_seq }),
    ]
    .boxed()
}

proptest! {
    #[test]
    fn records_round_trip_bit_exactly(record in record_strategy()) {
        let encoded = record.encode();
        let decoded = Record::decode(&encoded).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &record);
        // Any strict prefix must be rejected, never mis-decoded.
        for cut in 0..encoded.len() {
            prop_assert!(Record::decode(&encoded[..cut]).is_err(), "prefix {} accepted", cut);
        }
    }

    #[test]
    fn truncated_segments_yield_an_exact_record_prefix(
        records in proptest::collection::vec(record_strategy(), 1..12),
        cut_fraction in 0u32..1000,
    ) {
        let dir = TempDir::new("trunc");
        let mut w = SegmentWriter::open(&dir.0, 1, 0, FsyncPolicy::Never, None).unwrap();
        let mut offsets = Vec::new(); // valid end offsets after each record
        for r in &records {
            w.append(r).unwrap();
            offsets.push(w.len());
        }
        w.flush().unwrap();
        let full_len = w.len();
        drop(w);

        let cut = (full_len * cut_fraction as u64 / 1000).min(full_len);
        let path = wal::segment_path(&dir.0, 1);
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(cut).unwrap();
        drop(file);

        let mut seen = Vec::new();
        let stats = wal::replay_segment(&path, |r| seen.push(r)).unwrap();
        // Replay recovers exactly the records whose frames fit below the cut.
        let survivors = offsets.iter().filter(|&&end| end <= cut).count();
        prop_assert_eq!(seen.len(), survivors);
        prop_assert_eq!(&seen[..], &records[..survivors]);
        prop_assert_eq!(stats.valid_bytes + stats.torn_bytes, cut);

        // Repair + one more append leaves a clean log.
        let mut w =
            SegmentWriter::open(&dir.0, 1, stats.valid_bytes, FsyncPolicy::Never, None).unwrap();
        w.append(&Record::Create { id: "fresh".into() }).unwrap();
        w.flush().unwrap();
        drop(w);
        let mut count = 0;
        let clean = wal::replay_segment(&path, |_| count += 1).unwrap();
        prop_assert_eq!(clean.torn_bytes, 0);
        prop_assert_eq!(count, survivors + 1);
    }

    #[test]
    fn randomized_crash_oracle_recovers_the_acknowledged_prefix(
        ops in proptest::collection::vec(
            ("[a-e]", proptest::collection::vec(any::<u8>(), 0..40)),
            2..20,
        ),
        crash_at in 1u64..20,
        point_pick in 0u8..3,
        seed in any::<u64>(),
    ) {
        prop_assume!(crash_at <= ops.len() as u64);
        let point = match point_pick {
            0 => CrashPoint::BeforeFsync,
            1 => CrashPoint::MidWrite,
            _ => CrashPoint::TruncateTail,
        };
        let dir = TempDir::new("oracle");
        let mut acked: Vec<(String, Vec<u8>)> = Vec::new();
        {
            let store = LogStore::open(
                &dir.0,
                StoreConfig {
                    faults: Some(StoreFaults::at_append(point, crash_at, seed)),
                    ..StoreConfig::default()
                },
            )
            .unwrap();
            for (id, content) in &ops {
                match store.put_full(id, content) {
                    Ok(_) => acked.push((id.clone(), content.clone())),
                    Err(StoreError::InjectedCrash(_)) => break,
                    Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
                }
            }
        }
        prop_assert_eq!(acked.len() as u64, crash_at - 1);

        // Replay the acknowledged prefix into expected latest-contents.
        let mut expected = std::collections::BTreeMap::new();
        for (id, content) in &acked {
            expected.insert(id.clone(), content.clone());
        }
        let store = LogStore::open(&dir.0, StoreConfig::default()).unwrap();
        let recovered: std::collections::BTreeMap<String, Vec<u8>> = store
            .list()
            .into_iter()
            .map(|id| {
                let content = store.content(&id).unwrap();
                (id, content)
            })
            .collect();
        prop_assert_eq!(recovered, expected);
    }
}

/// One randomized step against both the sharded store and the model.
#[derive(Debug, Clone)]
enum ModelOp {
    Create(String),
    PutFull(String, Vec<u8>),
    Remove(String),
    BumpMeta(String),
    SetMeta(String, u64),
    Compact,
}

fn model_op_strategy() -> BoxedStrategy<ModelOp> {
    let id = "[a-h]";
    prop_oneof![
        id.prop_map(ModelOp::Create),
        (id, proptest::collection::vec(any::<u8>(), 0..60))
            .prop_map(|(id, content)| ModelOp::PutFull(id, content)),
        id.prop_map(ModelOp::Remove),
        "[xy]".prop_map(ModelOp::BumpMeta),
        ("[xy]", 0u64..100).prop_map(|(k, v)| ModelOp::SetMeta(k, v)),
        proptest::strategy::Just(ModelOp::Compact),
    ]
    .boxed()
}

proptest! {
    /// [`pe_store::ShardedLogStore`] and [`pe_store::MemStore`] agree as
    /// models under random interleaved ops (including compactions), and
    /// the agreement survives a reopen.
    #[test]
    fn sharded_store_agrees_with_memstore_model(
        ops in proptest::collection::vec(model_op_strategy(), 1..40),
        shards in 1usize..5,
    ) {
        use pe_store::{MemStore, ShardedLogStore};
        let dir = TempDir::new("model");
        let model = MemStore::new();
        {
            let store = ShardedLogStore::open(&dir.0, shards, StoreConfig::default()).unwrap();
            prop_assert_eq!(store.shard_count(), shards);
            for op in &ops {
                match op {
                    ModelOp::Create(id) => {
                        prop_assert_eq!(store.create(id).unwrap(), model.create(id).unwrap());
                    }
                    ModelOp::PutFull(id, content) => {
                        prop_assert_eq!(
                            store.put_full(id, content).unwrap(),
                            model.put_full(id, content).unwrap()
                        );
                    }
                    ModelOp::Remove(id) => {
                        prop_assert_eq!(store.remove(id).unwrap(), model.remove(id).unwrap());
                    }
                    ModelOp::BumpMeta(key) => {
                        prop_assert_eq!(
                            store.bump_meta(key).unwrap(),
                            model.bump_meta(key).unwrap()
                        );
                    }
                    ModelOp::SetMeta(key, value) => {
                        store.set_meta(key, *value).unwrap();
                        model.set_meta(key, *value).unwrap();
                    }
                    ModelOp::Compact => {
                        store.compact().unwrap();
                    }
                }
            }
            prop_assert_eq!(store.list(), model.list());
            prop_assert_eq!(store.meta_entries(), model.meta_entries());
            for id in model.list() {
                prop_assert_eq!(store.get(&id), model.get(&id));
            }
        }
        // Same equality after crash-free recovery.
        let store = ShardedLogStore::open(&dir.0, shards, StoreConfig::default()).unwrap();
        prop_assert_eq!(store.shard_count(), shards);
        prop_assert_eq!(store.list(), model.list());
        prop_assert_eq!(store.meta_entries(), model.meta_entries());
        for id in model.list() {
            prop_assert_eq!(store.get(&id), model.get(&id));
        }
    }
}
