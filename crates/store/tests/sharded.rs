//! Integration tests for [`ShardedLogStore`]: layout detection, routing,
//! legacy mode, in-place migration, concurrent appenders, and sharded
//! fsck.

use std::path::PathBuf;

use pe_store::{
    fsck, shard_dir, DeltaLimits, DocStore, LogStore, MemStore, ShardedLogStore, StoreConfig,
    StoreError, MANIFEST_NAME,
};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!(
            "pe-sharded-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Documents and metadata counters, for exact comparison.
type ObservedState = (Vec<(String, pe_store::DocState)>, Vec<(String, u64)>);

fn observe(store: &dyn DocStore) -> ObservedState {
    let docs = store
        .list()
        .into_iter()
        .map(|id| {
            let state = store.get(&id).expect("listed doc exists");
            (id, state)
        })
        .collect();
    (docs, store.meta_entries())
}

#[test]
fn fresh_store_writes_manifest_and_routes_documents() {
    let dir = TempDir::new("fresh");
    let store = ShardedLogStore::open(&dir.0, 4, StoreConfig::default()).unwrap();
    assert_eq!(store.shard_count(), 4);
    assert!(!store.is_legacy());
    assert!(dir.0.join(MANIFEST_NAME).is_file());
    for shard in 0..4 {
        assert!(shard_dir(&dir.0, shard).is_dir(), "shard {shard} directory exists");
    }
    for i in 0..32 {
        let id = format!("doc-{i}");
        store.put_full(&id, format!("content {i}").as_bytes()).unwrap();
        // The document's WAL bytes must land in exactly its routed shard.
        assert!(store.shard_for(&id) < 4);
    }
    assert_eq!(store.list().len(), 32);
    // Every shard really is used at 32 docs over 4 shards (FNV spreads).
    let used: std::collections::HashSet<usize> =
        (0..32).map(|i| store.shard_for(&format!("doc-{i}"))).collect();
    assert!(used.len() > 1, "routing must spread documents across shards");
}

#[test]
fn reopen_uses_manifest_count_and_recovers_all_shards() {
    let dir = TempDir::new("reopen");
    {
        let store = ShardedLogStore::open(&dir.0, 4, StoreConfig::default()).unwrap();
        for i in 0..20 {
            store.put_full(&format!("doc-{i}"), format!("v{i}").as_bytes()).unwrap();
        }
        store.set_meta("next_doc", 20).unwrap();
    }
    // A different requested count is ignored: routing must match the
    // layout that wrote the data.
    let store = ShardedLogStore::open(&dir.0, 16, StoreConfig::default()).unwrap();
    assert_eq!(store.shard_count(), 4);
    for i in 0..20 {
        assert_eq!(store.content(&format!("doc-{i}")).unwrap(), format!("v{i}").as_bytes());
    }
    assert_eq!(store.meta("next_doc"), Some(20));
}

#[test]
fn legacy_directory_opens_in_legacy_mode_without_migrating() {
    let dir = TempDir::new("legacy");
    {
        let legacy = LogStore::open(&dir.0, StoreConfig::default()).unwrap();
        legacy.put_full("old-doc", b"pre-sharding bytes").unwrap();
    }
    let store = ShardedLogStore::open(&dir.0, 8, StoreConfig::default()).unwrap();
    assert!(store.is_legacy());
    assert_eq!(store.shard_count(), 1);
    assert!(!dir.0.join(MANIFEST_NAME).exists(), "plain open must not migrate");
    assert_eq!(store.content("old-doc").unwrap(), b"pre-sharding bytes");
    // Legacy mode is fully writable.
    store.put_full("new-doc", b"still works").unwrap();
    drop(store);
    let reread = LogStore::open(&dir.0, StoreConfig::default()).unwrap();
    assert_eq!(reread.content("new-doc").unwrap(), b"still works");
}

#[test]
fn migration_preserves_versions_revisions_and_meta_exactly() {
    let dir = TempDir::new("migrate");
    let model = MemStore::new();
    {
        let legacy = LogStore::open(&dir.0, StoreConfig::default()).unwrap();
        for store in [&legacy as &dyn DocStore, &model as &dyn DocStore] {
            store.create("alpha").unwrap();
            store.put_full("alpha", b"first").unwrap();
            store.put_full("alpha", b"second").unwrap();
            store.put_full("beta", b"abcdef").unwrap();
            let delta = pe_delta::Delta::parse("=3\t-3\t+xyz").unwrap();
            store.apply_delta("beta", &delta, DeltaLimits::none()).unwrap();
            store.put_full("gamma", b"gone soon").unwrap();
            store.remove("gamma").unwrap();
            store.bump_meta("next_doc").unwrap();
            store.set_meta("next_session", 7).unwrap();
        }
    }
    let migrated = ShardedLogStore::migrate(&dir.0, 4, StoreConfig::default()).unwrap();
    assert_eq!(migrated.shard_count(), 4);
    assert!(!migrated.is_legacy());
    assert_eq!(observe(&migrated), observe(&model), "migration must be lossless");
    // Legacy files are gone; the root holds only manifest + shard dirs.
    let top: Vec<String> = std::fs::read_dir(&dir.0)
        .unwrap()
        .filter_map(|e| e.unwrap().file_name().into_string().ok())
        .filter(|n| n.ends_with(".log") || n.ends_with(".snap"))
        .collect();
    assert!(top.is_empty(), "legacy files must be removed: {top:?}");
    drop(migrated);

    // Reopen sees the sharded layout and the same state.
    let reopened = ShardedLogStore::open(&dir.0, 1, StoreConfig::default()).unwrap();
    assert_eq!(reopened.shard_count(), 4);
    assert_eq!(observe(&reopened), observe(&model));
    // Migrating an already-sharded store is a plain open.
    drop(reopened);
    let again = ShardedLogStore::migrate(&dir.0, 8, StoreConfig::default()).unwrap();
    assert_eq!(again.shard_count(), 4);
}

#[test]
fn migration_restarts_over_stale_shard_debris() {
    let dir = TempDir::new("debris");
    {
        let legacy = LogStore::open(&dir.0, StoreConfig::default()).unwrap();
        legacy.put_full("doc", b"authoritative").unwrap();
    }
    // Simulate a migration that crashed before publishing its manifest:
    // a stale shard directory exists, the legacy files are still the
    // truth.
    std::fs::create_dir_all(shard_dir(&dir.0, 0)).unwrap();
    std::fs::write(shard_dir(&dir.0, 0).join("garbage"), b"half-written").unwrap();

    // Plain open stays on the legacy store.
    {
        let store = ShardedLogStore::open(&dir.0, 4, StoreConfig::default()).unwrap();
        assert!(store.is_legacy());
        assert_eq!(store.content("doc").unwrap(), b"authoritative");
    }
    // Migration clears the debris and completes.
    let migrated = ShardedLogStore::migrate(&dir.0, 2, StoreConfig::default()).unwrap();
    assert_eq!(migrated.shard_count(), 2);
    assert_eq!(migrated.content("doc").unwrap(), b"authoritative");
}

#[test]
fn shard_dirs_without_manifest_refuse_to_open() {
    let dir = TempDir::new("no-manifest");
    std::fs::create_dir_all(shard_dir(&dir.0, 0)).unwrap();
    match ShardedLogStore::open(&dir.0, 4, StoreConfig::default()) {
        Err(StoreError::Corrupt(msg)) => assert!(msg.contains(MANIFEST_NAME), "{msg}"),
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn logstore_refuses_a_sharded_root() {
    let dir = TempDir::new("wrong-engine");
    drop(ShardedLogStore::open(&dir.0, 2, StoreConfig::default()).unwrap());
    match LogStore::open(&dir.0, StoreConfig::default()) {
        Err(StoreError::Corrupt(msg)) => assert!(msg.contains("sharded"), "{msg}"),
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn corrupt_manifest_is_rejected() {
    let dir = TempDir::new("bad-manifest");
    drop(ShardedLogStore::open(&dir.0, 2, StoreConfig::default()).unwrap());
    std::fs::write(dir.0.join(MANIFEST_NAME), b"not a manifest\n").unwrap();
    assert!(matches!(
        ShardedLogStore::open(&dir.0, 2, StoreConfig::default()),
        Err(StoreError::Corrupt(_))
    ));
}

#[test]
fn concurrent_appenders_spread_over_shards_and_survive_reopen() {
    let dir = TempDir::new("concurrent");
    const THREADS: usize = 8;
    const PER_THREAD: usize = 25;
    {
        let store = ShardedLogStore::open(&dir.0, 4, StoreConfig::default()).unwrap();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let store = &store;
                scope.spawn(move || {
                    let id = format!("writer-{t}");
                    for i in 1..=PER_THREAD {
                        let version =
                            store.put_full(&id, format!("{t}:{i}").as_bytes()).unwrap();
                        assert_eq!(version as usize, i);
                    }
                });
            }
        });
        let stats = store.group_stats();
        assert_eq!(stats.appends as usize, THREADS * PER_THREAD);
        assert_eq!(
            stats.fsyncs + stats.fsyncs_saved,
            stats.appends,
            "every append either led a group fsync or rode one"
        );
    }
    let store = ShardedLogStore::open(&dir.0, 4, StoreConfig::default()).unwrap();
    for t in 0..THREADS {
        let state = store.get(&format!("writer-{t}")).unwrap();
        assert_eq!(state.version as usize, PER_THREAD);
        assert_eq!(state.content, format!("{t}:{PER_THREAD}").as_bytes());
    }
}

#[test]
fn fsck_reports_per_shard_and_flags_a_corrupt_shard() {
    let dir = TempDir::new("fsck");
    {
        let store = ShardedLogStore::open(&dir.0, 3, StoreConfig::default()).unwrap();
        for i in 0..12 {
            store.put_full(&format!("doc-{i}"), b"bytes").unwrap();
        }
    }
    let report = fsck(&dir.0).unwrap();
    assert_eq!(report.shards.len(), 3);
    assert!(report.is_healthy(), "{}", report.render());
    let rendered = report.render();
    assert!(rendered.contains("[shard-001]"), "{rendered}");
    assert!(rendered.contains("store healthy"), "{rendered}");

    // Corrupt one shard's sealed bytes: the whole store is unhealthy and
    // the verdict line cannot read healthy.
    let victim = shard_dir(&dir.0, 1);
    let seg = std::fs::read_dir(&victim)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "log"))
        .expect("shard has a wal segment");
    let mut bytes = std::fs::read(&seg).unwrap();
    assert!(bytes.len() > 12);
    bytes[10] ^= 0xff;
    // Append a second frame worth of garbage so the flip is not a
    // recoverable torn tail.
    bytes.extend_from_slice(&[0xa5; 64]);
    let truncated_midframe = bytes.len() - 32;
    bytes.truncate(truncated_midframe);
    std::fs::write(&seg, &bytes).unwrap();
    let report = fsck(&dir.0).unwrap();
    let rendered = report.render();
    assert!(rendered.ends_with("STORE CORRUPT") || rendered.ends_with("store healthy"));
    // Either the flip corrupted mid-log (error) or only the tail
    // (warning); in the flipped-CRC case it must be fatal.
    assert!(!report.shards[1].1.errors.is_empty() || !report.shards[1].1.warnings.is_empty());
}

#[test]
fn meta_counters_live_on_shard_zero_and_survive_reopen() {
    let dir = TempDir::new("meta");
    {
        let store = ShardedLogStore::open(&dir.0, 4, StoreConfig::default()).unwrap();
        assert_eq!(store.bump_meta("next_doc").unwrap(), 1);
        assert_eq!(store.bump_meta("next_doc").unwrap(), 2);
        store.set_meta("next_session", 41).unwrap();
    }
    let store = ShardedLogStore::open(&dir.0, 4, StoreConfig::default()).unwrap();
    assert_eq!(store.meta("next_doc"), Some(2));
    assert_eq!(store.bump_meta("next_session").unwrap(), 42);
    assert_eq!(
        store.meta_entries(),
        vec![("next_doc".to_string(), 2), ("next_session".to_string(), 42)]
    );
}

#[test]
fn compact_rolls_up_stats_across_shards() {
    let dir = TempDir::new("compact");
    let store = ShardedLogStore::open(&dir.0, 2, StoreConfig::default()).unwrap();
    for i in 0..10 {
        store.put_full(&format!("doc-{i}"), vec![b'z'; 512].as_slice()).unwrap();
    }
    let stats = store.compact().unwrap();
    assert!(stats.docs >= 10, "snapshot covers all documents: {stats:?}");
    assert!(stats.snapshot_bytes > 0);
    let report = fsck(store.dir()).unwrap();
    assert!(report.is_healthy(), "{}", report.render());
}
