//! The crash-recovery oracle.
//!
//! For every append-path crash point, every crash position in a scripted
//! workload, and a spread of seeds, this test:
//!
//! 1. runs the workload against a [`LogStore`] armed with the fault plan,
//!    mirroring every **acknowledged** operation into a [`MemStore`]
//!    model;
//! 2. when the injected crash fires, checks the store is poisoned (a
//!    crashed process cannot keep serving);
//! 3. reopens the directory with no faults and demands the recovered
//!    state equal the model **exactly** — every acknowledged write
//!    present, nothing unacknowledged visible.
//!
//! Under [`FsyncPolicy::Always`] that equality is the durability contract
//! of the whole subsystem. Under `EveryN`/`Never` the weaker prefix
//! property is checked instead: recovery yields a prefix of the
//! acknowledged sequence, never phantoms.

use std::path::PathBuf;

use pe_store::{
    CrashPoint, DeltaLimits, DocStore, FsyncPolicy, LogStore, MemStore, StoreConfig,
    StoreError, StoreFaults,
};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!(
            "pe-oracle-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One step of the scripted workload. Every variant costs exactly one
/// WAL append, so append ordinals and script positions line up.
#[derive(Debug, Clone)]
enum Op {
    Create(&'static str),
    PutFull(&'static str, &'static [u8]),
    Delta(&'static str, &'static str),
    Remove(&'static str),
    BumpMeta(&'static str),
}

/// A workload touching every record kind: creates, full saves, deltas,
/// a removal, and metadata bumps.
fn script() -> Vec<Op> {
    vec![
        Op::Create("alpha"),
        Op::BumpMeta("next_doc"),
        Op::PutFull("alpha", b"first draft"),
        Op::PutFull("beta", b"abcdefg"),
        Op::Delta("beta", "=2\t-3\t+uv\t=2\t+w"),
        Op::PutFull("alpha", b"second draft"),
        Op::BumpMeta("next_session"),
        Op::Delta("alpha", "=6\t-6\t+revision"),
        Op::Create("gamma"),
        Op::Remove("beta"),
        Op::PutFull("gamma", b"late arrival"),
        Op::BumpMeta("next_doc"),
    ]
}

/// Applies one op to a store; `Ok` means acknowledged.
fn apply(store: &dyn DocStore, op: &Op) -> Result<(), StoreError> {
    match op {
        Op::Create(id) => store.create(id).map(|_| ()),
        Op::PutFull(id, content) => store.put_full(id, content).map(|_| ()),
        Op::Delta(id, delta) => {
            let delta = pe_delta::Delta::parse(delta).expect("script deltas parse");
            store.apply_delta(id, &delta, DeltaLimits::none()).map(|_| ())
        }
        Op::Remove(id) => store.remove(id).map(|_| ()),
        Op::BumpMeta(key) => store.bump_meta(key).map(|_| ()),
    }
}

/// Documents and metadata counters, for exact comparison.
type ObservedState = (Vec<(String, pe_store::DocState)>, Vec<(String, u64)>);

/// Full observable state of a store, for exact comparison.
fn observe(store: &dyn DocStore) -> ObservedState {
    let docs = store
        .list()
        .into_iter()
        .map(|id| {
            let state = store.get(&id).expect("listed doc exists");
            (id, state)
        })
        .collect();
    (docs, store.meta_entries())
}

/// Runs the script against a faulted store and returns the model of the
/// acknowledged prefix plus how many ops were acknowledged.
fn run_faulted(dir: &std::path::Path, faults: StoreFaults, policy: FsyncPolicy) -> (MemStore, usize) {
    let store = LogStore::open(
        dir,
        StoreConfig { fsync: policy, faults: Some(faults), ..StoreConfig::default() },
    )
    .expect("open armed store");
    let model = MemStore::new();
    let mut acked = 0usize;
    let mut crashed = false;
    for op in script() {
        match apply(&store, &op) {
            Ok(()) => {
                apply(&model, &op).expect("model mirrors acknowledged ops");
                acked += 1;
            }
            Err(StoreError::InjectedCrash(_)) => {
                crashed = true;
                // A crashed store is poisoned until reopened.
                assert!(
                    matches!(store.put_full("alpha", b"post-crash"), Err(StoreError::Poisoned)),
                    "store must refuse work after the crash"
                );
                break;
            }
            Err(e) => panic!("unexpected store error: {e}"),
        }
    }
    assert!(crashed, "fault plan {faults:?} never fired");
    drop(store);
    (model, acked)
}

#[test]
fn every_append_crash_recovers_exactly_the_acknowledged_prefix() {
    let total_appends = script().len() as u64;
    for point in [CrashPoint::BeforeFsync, CrashPoint::MidWrite, CrashPoint::TruncateTail] {
        for at in 1..=total_appends {
            for seed in [1u64, 7, 1234] {
                let dir = TempDir::new(&format!("{}-{at}-{seed}", point.name()));
                let faults = StoreFaults::at_append(point, at, seed);
                let (model, acked) = run_faulted(&dir.0, faults, FsyncPolicy::Always);

                let recovered =
                    LogStore::open(&dir.0, StoreConfig::default()).expect("reopen after crash");
                assert_eq!(
                    observe(&recovered),
                    observe(&model),
                    "{} at append {at} seed {seed}: recovered state ({acked} acked ops) diverged",
                    point.name()
                );
                // The recovered store is live again: it accepts writes.
                recovered.put_full("alpha", b"life after recovery").expect("recovered store writes");
            }
        }
    }
}

#[test]
fn relaxed_fsync_policies_lose_at_most_a_suffix_never_phantoms() {
    // Single-document counter workload: content is the op index, so any
    // recovered state identifies exactly which prefix survived.
    for policy in [FsyncPolicy::EveryN(3), FsyncPolicy::Never] {
        for at in [1u64, 4, 9] {
            let dir = TempDir::new(&format!("relaxed-{}-{at}", policy.label()));
            {
                let store = LogStore::open(
                    &dir.0,
                    StoreConfig {
                        fsync: policy,
                        faults: Some(StoreFaults::at_append(CrashPoint::BeforeFsync, at, 5)),
                        ..StoreConfig::default()
                    },
                )
                .unwrap();
                for i in 1..=12u64 {
                    match store.put_full("doc", format!("v{i}").as_bytes()) {
                        Ok(_) => {}
                        Err(StoreError::InjectedCrash(_)) => break,
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            }
            let store = LogStore::open(&dir.0, StoreConfig::default()).unwrap();
            match store.get("doc") {
                None => {} // everything lost: an allowed (empty) prefix
                Some(state) => {
                    let text = String::from_utf8(state.content).unwrap();
                    let v: u64 = text.strip_prefix('v').unwrap().parse().unwrap();
                    assert!(v < at, "{}: recovered v{v} was never acknowledged", policy.label());
                    assert_eq!(state.version, v, "version tracks the surviving prefix");
                }
            }
        }
    }
}

#[test]
fn crash_before_snapshot_rename_loses_nothing() {
    let dir = TempDir::new("snap-before");
    {
        let store = LogStore::open(
            &dir.0,
            StoreConfig {
                faults: Some(StoreFaults::in_compaction(CrashPoint::SnapshotBeforeRename, 3)),
                ..StoreConfig::default()
            },
        )
        .unwrap();
        for op in script() {
            apply(&store, &op).unwrap();
        }
        match store.compact() {
            Err(StoreError::InjectedCrash(_)) => {}
            other => panic!("expected injected compaction crash, got {other:?}"),
        }
        assert!(matches!(store.flush(), Err(StoreError::Poisoned)));
    }
    // The orphaned .tmp must not confuse reopen; all data survives.
    let model = MemStore::new();
    for op in script() {
        apply(&model, &op).unwrap();
    }
    let recovered = LogStore::open(&dir.0, StoreConfig::default()).unwrap();
    assert_eq!(observe(&recovered), observe(&model));
    let leftovers: Vec<_> = std::fs::read_dir(&dir.0)
        .unwrap()
        .filter_map(|e| e.unwrap().file_name().into_string().ok())
        .filter(|n| n.ends_with(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "reopen must clear temp snapshots: {leftovers:?}");
}

#[test]
fn crash_after_snapshot_rename_leaves_a_recoverable_store() {
    let dir = TempDir::new("snap-after");
    {
        let store = LogStore::open(
            &dir.0,
            StoreConfig {
                faults: Some(StoreFaults::in_compaction(CrashPoint::SnapshotAfterRename, 3)),
                ..StoreConfig::default()
            },
        )
        .unwrap();
        for op in script() {
            apply(&store, &op).unwrap();
        }
        assert!(matches!(store.compact(), Err(StoreError::InjectedCrash(_))));
    }
    // The snapshot published but GC never ran: superseded segments
    // linger. Reopen must pick the snapshot and ignore them.
    let model = MemStore::new();
    for op in script() {
        apply(&model, &op).unwrap();
    }
    let recovered = LogStore::open(&dir.0, StoreConfig::default()).unwrap();
    assert_eq!(observe(&recovered), observe(&model));
    // And the next compaction cleans up the mess for good.
    let stats = recovered.compact().expect("compaction after recovery");
    assert!(stats.segments_removed >= 1);
    let report = pe_store::fsck(&dir.0).unwrap();
    assert!(report.is_healthy(), "{}", report.render());
}

#[test]
fn fsck_agrees_with_open_after_every_crash_point() {
    for point in [CrashPoint::BeforeFsync, CrashPoint::MidWrite, CrashPoint::TruncateTail] {
        let dir = TempDir::new(&format!("fsck-{}", point.name()));
        let faults = StoreFaults::at_append(point, 6, 11);
        let _ = run_faulted(&dir.0, faults, FsyncPolicy::Always);
        let report = pe_store::fsck(&dir.0).unwrap();
        assert!(
            report.is_healthy(),
            "{}: a torn tail is recoverable, fsck must not call it fatal:\n{}",
            point.name(),
            report.render()
        );
        LogStore::open(&dir.0, StoreConfig::default()).expect("fsck healthy implies open works");
    }
}

// ---------------------------------------------------------------------
// Sharded + group-commit oracle.
//
// The same durability contract, now with the write path at its most
// concurrent: N shards, each batching K appenders' records into group
// fsyncs, with seeded crash points landing mid-batch (frames drained
// but unsynced) and between shard fsyncs (one shard dies while others
// already acknowledged).
// ---------------------------------------------------------------------

use pe_store::ShardedLogStore;

/// Sequential script oracle over a sharded store: every crash point ×
/// position × seed, exact-prefix recovery. The crashing shard discards
/// its tail; every other shard keeps all its acknowledged records.
#[test]
fn sharded_crash_recovers_exactly_the_acknowledged_prefix() {
    let total_appends = script().len() as u64;
    for point in [CrashPoint::BeforeFsync, CrashPoint::MidWrite, CrashPoint::TruncateTail] {
        for at in 1..=total_appends {
            for seed in [3u64, 77] {
                let dir = TempDir::new(&format!("shard-{}-{at}-{seed}", point.name()));
                let faults = StoreFaults::at_append(point, at, seed);
                let store = ShardedLogStore::open(
                    &dir.0,
                    3,
                    StoreConfig {
                        faults: Some(faults),
                        ..StoreConfig::default()
                    },
                )
                .expect("open armed sharded store");
                let model = MemStore::new();
                let mut crashed = false;
                for op in script() {
                    match apply(&store, &op) {
                        Ok(()) => apply(&model, &op).expect("model mirrors acks"),
                        Err(StoreError::InjectedCrash(_)) => {
                            crashed = true;
                            assert!(
                                matches!(
                                    store.put_full("alpha", b"post-crash"),
                                    Err(StoreError::Poisoned)
                                ),
                                "a crashed shard poisons the whole store"
                            );
                            break;
                        }
                        Err(e) => panic!("unexpected store error: {e}"),
                    }
                }
                drop(store);
                if !crashed {
                    // With ops spread over 3 shards, no shard may reach
                    // append ordinal `at`; nothing to check then.
                    continue;
                }
                let recovered = ShardedLogStore::open(&dir.0, 3, StoreConfig::default())
                    .expect("reopen after crash");
                assert_eq!(
                    observe(&recovered),
                    observe(&model),
                    "sharded {} at append {at} seed {seed}: recovered state diverged",
                    point.name()
                );
                recovered.put_full("alpha", b"life after recovery").expect("store is live again");
            }
        }
    }
}

/// K concurrent appenders over a sharded group-commit store, crash
/// injected mid-stream. Per-thread sequential puts give each document a
/// self-describing history (`content == "t:v"`), so recovery can be
/// checked per shard without a global total order:
///
/// - **acked ⊆ recovered** (fsync=always): every acknowledged version
///   is present after reopen;
/// - **recovered ⊆ attempted** (all policies): no phantom versions,
///   and content always matches the version counter.
#[test]
fn concurrent_group_commit_crash_recovers_acked_no_phantoms() {
    const THREADS: usize = 6;
    const PER_THREAD: u64 = 30;
    for policy in [FsyncPolicy::Always, FsyncPolicy::EveryN(5), FsyncPolicy::Never] {
        for (at, seed) in [(10u64, 2u64), (25, 9), (40, 31)] {
            let dir = TempDir::new(&format!("conc-{}-{at}-{seed}", policy.label()));
            let mut acked = [0u64; THREADS];
            let mut crashes = 0usize;
            {
                let store = ShardedLogStore::open(
                    &dir.0,
                    3,
                    StoreConfig {
                        fsync: policy,
                        faults: Some(StoreFaults::at_append(CrashPoint::BeforeFsync, at, seed)),
                        ..StoreConfig::default()
                    },
                )
                .unwrap();
                let results: Vec<(u64, bool)> = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..THREADS)
                        .map(|t| {
                            let store = &store;
                            scope.spawn(move || {
                                let id = format!("writer-{t}");
                                let mut highest = 0u64;
                                let mut crashed = false;
                                for v in 1..=PER_THREAD {
                                    match store.put_full(&id, format!("{t}:{v}").as_bytes()) {
                                        Ok(version) => {
                                            assert_eq!(version, v);
                                            highest = v;
                                        }
                                        Err(StoreError::InjectedCrash(_)) => {
                                            crashed = true;
                                            break;
                                        }
                                        Err(StoreError::Poisoned) => break,
                                        Err(e) => panic!("unexpected error: {e}"),
                                    }
                                }
                                (highest, crashed)
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
                for (t, (highest, crashed)) in results.into_iter().enumerate() {
                    acked[t] = highest;
                    if crashed {
                        crashes += 1;
                    }
                }
            }
            // Each armed shard fires at most one injected crash; with a
            // shared ordinal some shards may never reach it.
            assert!(crashes <= 3, "at most one injected crash per shard");

            let recovered = ShardedLogStore::open(&dir.0, 3, StoreConfig::default()).unwrap();
            for (t, &acked_v) in acked.iter().enumerate() {
                let id = format!("writer-{t}");
                match recovered.get(&id) {
                    None => assert!(
                        !matches!(policy, FsyncPolicy::Always) || acked_v == 0,
                        "{}: writer-{t} acked v{acked_v} but nothing recovered",
                        policy.label(),
                    ),
                    Some(state) => {
                        let text = String::from_utf8(state.content.clone()).unwrap();
                        let (tt, vv) = text.split_once(':').unwrap();
                        let recovered_v: u64 = vv.parse().unwrap();
                        assert_eq!(tt.parse::<usize>().unwrap(), t);
                        assert_eq!(
                            state.version, recovered_v,
                            "version must match the surviving content"
                        );
                        assert!(
                            recovered_v <= PER_THREAD,
                            "phantom version v{recovered_v} was never attempted"
                        );
                        if matches!(policy, FsyncPolicy::Always) {
                            assert!(
                                recovered_v >= acked_v,
                                "{}: writer-{t} acked v{acked_v} but only v{recovered_v} \
                                 recovered",
                                policy.label(),
                            );
                        }
                        // The revision chain must be the exact prefix
                        // (the first put of a fresh doc keeps no
                        // previous revision).
                        assert_eq!(state.revisions.len() as u64, recovered_v - 1);
                    }
                }
            }
            // fsck agrees the survivor is (recoverably) healthy.
            let report = pe_store::fsck(&dir.0).unwrap();
            assert!(report.is_healthy(), "{}", report.render());
        }
    }
}
