//! Allocation regression test for the zero-copy seal→WAL append path.
//!
//! Pins the ISSUE 7 acceptance criterion: a steady-state WAL append
//! performs **no intermediate full-payload `Vec` copy** — in fact no heap
//! allocation at all. The writer's reused payload buffer reaches its
//! high-water-mark capacity on the first (warm-up) append; every later
//! append of same-or-smaller records encodes into that buffer and streams
//! header+payload to the file with vectored I/O.
//!
//! A counting `#[global_allocator]` makes the claim falsifiable. The file
//! holds exactly one `#[test]` so no sibling test can allocate on another
//! thread mid-measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pe_store::record::Record;
use pe_store::wal::{replay_segment, segment_path, FsyncPolicy, GroupWal, SegmentWriter};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY-free: pure delegation to `System` plus a relaxed counter bump.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_append_does_not_allocate() {
    let dir = std::env::temp_dir().join(format!("pe-alloc-regress-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // FsyncPolicy::Never: durability syscalls are irrelevant to the
    // allocation claim and dominate runtime otherwise.
    let mut writer = SegmentWriter::open(&dir, 1, 0, FsyncPolicy::Never, None).unwrap();

    // Records are built *before* measurement — constructing them
    // allocates, appending them must not.
    let records: Vec<Record> = (0..8)
        .map(|i| Record::FullSave {
            id: "alloc-regression-doc".into(),
            version: i + 2,
            content: vec![(i as u8).wrapping_mul(31); 1 << 20],
        })
        .collect();

    // Warm-up: the first append may allocate the writer's reused payload
    // buffer (and any lazily-initialized metric cells) once.
    writer
        .append(&Record::FullSave {
            id: "alloc-regression-doc".into(),
            version: 1,
            content: vec![0xEE; 1 << 20],
        })
        .unwrap();

    let before = allocs();
    for record in &records {
        writer.append(record).unwrap();
    }
    let after = allocs();
    assert_eq!(
        after - before,
        0,
        "steady-state appends of 1 MiB FullSave records must not touch \
         the allocator (got {} allocations over {} appends)",
        after - before,
        records.len()
    );

    // The frames written through the zero-copy path are still valid WAL.
    writer.flush().unwrap();
    drop(writer);
    let mut seen = 0u64;
    let stats = replay_segment(&segment_path(&dir, 1), |_| seen += 1).unwrap();
    assert_eq!(seen, 9);
    assert_eq!(stats.torn_bytes, 0);

    // -----------------------------------------------------------------
    // Phase 2: the group-commit path. Concurrent appenders encode into
    // the shared double-buffered pending batch; in steady state (both
    // batch buffers at their high-water capacity, metric cells
    // initialized by the warm-up round) an append + group fsync touches
    // the allocator zero times, from any number of threads.
    // -----------------------------------------------------------------
    const THREADS: usize = 4;
    const PER_THREAD: usize = 24;
    let gdir = dir.join("group");
    std::fs::create_dir_all(&gdir).unwrap();
    let wal = GroupWal::new(
        SegmentWriter::open(&gdir, 1, 0, FsyncPolicy::Always, None).unwrap(),
        FsyncPolicy::Always,
        None,
    );
    // Per-thread record sets, built before measurement. 4 KiB payloads:
    // even a worst-case batch (every thread's record pending at once)
    // stays far below the batch buffer's initial capacity, so the
    // buffers never need to grow.
    let scripts: Vec<Vec<Record>> = (0..THREADS)
        .map(|t| {
            (0..2 * PER_THREAD)
                .map(|i| Record::FullSave {
                    id: format!("group-doc-{t}"),
                    version: (i + 1) as u64,
                    content: vec![(t as u8) ^ (i as u8); 4096],
                })
                .collect()
        })
        .collect();

    let warm = std::sync::Barrier::new(THREADS + 1);
    let start = std::sync::Barrier::new(THREADS + 1);
    let done = std::sync::Barrier::new(THREADS + 1);
    let measured = std::thread::scope(|scope| {
        for script in &scripts {
            let (wal, warm, start, done) = (&wal, &warm, &start, &done);
            scope.spawn(move || {
                let (warmup, steady) = script.split_at(PER_THREAD);
                for record in warmup {
                    let ack = wal.append(record).unwrap();
                    wal.sync_to(ack.end).unwrap();
                }
                warm.wait();
                start.wait();
                for record in steady {
                    let ack = wal.append(record).unwrap();
                    wal.sync_to(ack.end).unwrap();
                }
                done.wait();
            });
        }
        warm.wait();
        // Only this thread runs here; every worker is parked in
        // `start.wait()`, so the window below sees group-commit
        // allocations alone.
        let before = allocs();
        start.wait();
        done.wait();
        allocs() - before
    });
    assert_eq!(
        measured, 0,
        "steady-state group-commit appends must not touch the allocator \
         (got {measured} allocations over {} appends from {THREADS} threads)",
        THREADS * PER_THREAD
    );
    let stats = wal.stats();
    assert_eq!(stats.appends as usize, 2 * THREADS * PER_THREAD);
    drop(wal);
    let mut seen = 0u64;
    let stats = replay_segment(&segment_path(&gdir, 1), |_| seen += 1).unwrap();
    assert_eq!(seen as usize, 2 * THREADS * PER_THREAD);
    assert_eq!(stats.torn_bytes, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
