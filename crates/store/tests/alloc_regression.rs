//! Allocation regression test for the zero-copy seal→WAL append path.
//!
//! Pins the ISSUE 7 acceptance criterion: a steady-state WAL append
//! performs **no intermediate full-payload `Vec` copy** — in fact no heap
//! allocation at all. The writer's reused payload buffer reaches its
//! high-water-mark capacity on the first (warm-up) append; every later
//! append of same-or-smaller records encodes into that buffer and streams
//! header+payload to the file with vectored I/O.
//!
//! A counting `#[global_allocator]` makes the claim falsifiable. The file
//! holds exactly one `#[test]` so no sibling test can allocate on another
//! thread mid-measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pe_store::record::Record;
use pe_store::wal::{replay_segment, segment_path, FsyncPolicy, SegmentWriter};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY-free: pure delegation to `System` plus a relaxed counter bump.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_append_does_not_allocate() {
    let dir = std::env::temp_dir().join(format!("pe-alloc-regress-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // FsyncPolicy::Never: durability syscalls are irrelevant to the
    // allocation claim and dominate runtime otherwise.
    let mut writer = SegmentWriter::open(&dir, 1, 0, FsyncPolicy::Never, None).unwrap();

    // Records are built *before* measurement — constructing them
    // allocates, appending them must not.
    let records: Vec<Record> = (0..8)
        .map(|i| Record::FullSave {
            id: "alloc-regression-doc".into(),
            version: i + 2,
            content: vec![(i as u8).wrapping_mul(31); 1 << 20],
        })
        .collect();

    // Warm-up: the first append may allocate the writer's reused payload
    // buffer (and any lazily-initialized metric cells) once.
    writer
        .append(&Record::FullSave {
            id: "alloc-regression-doc".into(),
            version: 1,
            content: vec![0xEE; 1 << 20],
        })
        .unwrap();

    let before = allocs();
    for record in &records {
        writer.append(record).unwrap();
    }
    let after = allocs();
    assert_eq!(
        after - before,
        0,
        "steady-state appends of 1 MiB FullSave records must not touch \
         the allocator (got {} allocations over {} appends)",
        after - before,
        records.len()
    );

    // The frames written through the zero-copy path are still valid WAL.
    writer.flush().unwrap();
    drop(writer);
    let mut seen = 0u64;
    let stats = replay_segment(&segment_path(&dir, 1), |_| seen += 1).unwrap();
    assert_eq!(seen, 9);
    assert_eq!(stats.torn_bytes, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
