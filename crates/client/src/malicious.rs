//! Malicious-client covert-channel encoders (§VI-B).
//!
//! Under the *malicious client* threat model, the application provider's
//! client-side code tries to smuggle plaintext information to the server
//! through channels the mediator cannot simply encrypt away. This module
//! implements two of the channels the paper analyzes, plus the observer a
//! malicious server would run — so the countermeasure experiments have
//! something concrete to defeat:
//!
//! * **Edit-pattern channel** ([`self_replace_bit`]): "many different
//!   sequences of delta commands could produce the same editing outcome".
//!   Replacing a character with itself changes nothing visible to the
//!   user but re-encrypts a ciphertext block; which blocks change over
//!   time spells out bits. Delta canonicalization squashes it.
//! * **Length channel** ([`LengthChannel`]): the document length is
//!   "roughly preserved by the encryption", so a malicious client can
//!   "add invisible content to the document … to transmit a few bits of
//!   information with each edit". Multi-character blocks coarsen this
//!   channel from character resolution to block resolution (§VI-A
//!   "Information Leaks").

use pe_delta::{Delta, DeltaOp};

/// Builds the self-replace delta for one covert bit: bit 1 re-writes the
/// first character of `content` with itself (no visible change,
/// ciphertext block re-encrypted); bit 0 is the identity delta.
pub fn self_replace_bit(content: &str, bit: bool) -> Delta {
    if !bit || content.is_empty() {
        return Delta::new();
    }
    let first: String = content.chars().take(1).collect();
    Delta::from_ops(vec![DeltaOp::Delete(first.len()), DeltaOp::Insert(first)])
}

/// The malicious server's observer for the edit-pattern channel: compares
/// consecutive snapshots of the stored ciphertext and reads "changed" as
/// bit 1.
#[derive(Debug, Default)]
pub struct StorageObserver {
    last: Option<String>,
}

impl StorageObserver {
    /// Creates an observer with no history.
    pub fn new() -> StorageObserver {
        StorageObserver::default()
    }

    /// Records a snapshot, returning whether it changed since the last
    /// one (`None` on the first call).
    pub fn observe(&mut self, stored: &str) -> Option<bool> {
        let bit = self.last.as_deref().map(|prev| prev != stored);
        self.last = Some(stored.to_string());
        bit
    }
}

/// The length covert channel: each secret symbol is encoded as an
/// "invisible" insertion whose size carries the symbol; the server reads
/// the growth of the stored ciphertext.
#[derive(Debug)]
pub struct LengthChannel {
    /// Junk inserted per unit of the encoded symbol.
    marker: char,
}

impl Default for LengthChannel {
    fn default() -> LengthChannel {
        LengthChannel::new()
    }
}

impl LengthChannel {
    /// Creates the channel with the default invisible marker (a plain
    /// space — "invisible content (for example, formatting codes)").
    pub fn new() -> LengthChannel {
        LengthChannel { marker: ' ' }
    }

    /// Encodes `symbol` (0..=25, e.g. a letter index) as a delta
    /// appending `symbol + 1` invisible characters.
    pub fn encode(&self, symbol: u8) -> Delta {
        let junk: String = std::iter::repeat_n(self.marker, symbol as usize + 1).collect();
        Delta::from_ops(vec![DeltaOp::Insert(junk)])
    }

    /// The malicious server's decoder: recovers the symbol from the
    /// growth in stored ciphertext *records*, given the serialized record
    /// width and how many plaintext characters fit in one block.
    ///
    /// With 1-character blocks every inserted character is one record and
    /// recovery is exact; with `b`-character blocks only
    /// `⌈(symbol+1)/b⌉` is visible — the §VI-A observation that
    /// multi-character blocks hide precise positions/sizes.
    pub fn decode_records(&self, records_before: usize, records_after: usize, b: usize) -> u8 {
        let grown = records_after.saturating_sub(records_before);
        // Best estimate: the middle of the size class.
        let low = (grown.saturating_sub(1)) * b + 1;
        let high = grown * b;
        (((low + high) / 2).saturating_sub(1)) as u8
    }

    /// Size (in records) the encoded symbol adds for block size `b` —
    /// the channel's resolution.
    pub fn record_growth(&self, symbol: u8, b: usize) -> usize {
        (symbol as usize + 1).div_ceil(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_replace_is_outcome_neutral() {
        let delta = self_replace_bit("covert target", true);
        assert_eq!(delta.apply("covert target").unwrap(), "covert target");
        assert!(!delta.is_identity(), "the wire form must differ from identity");
        assert!(self_replace_bit("covert target", false).is_identity());
        assert!(self_replace_bit("", true).is_identity());
    }

    #[test]
    fn observer_reads_changes() {
        let mut observer = StorageObserver::new();
        assert_eq!(observer.observe("aaa"), None);
        assert_eq!(observer.observe("aaa"), Some(false));
        assert_eq!(observer.observe("aab"), Some(true));
        assert_eq!(observer.observe("aab"), Some(false));
    }

    #[test]
    fn length_channel_exact_at_block_size_one() {
        let channel = LengthChannel::new();
        for symbol in 0..26u8 {
            let growth = channel.record_growth(symbol, 1);
            assert_eq!(growth, symbol as usize + 1);
            assert_eq!(channel.decode_records(10, 10 + growth, 1), symbol);
        }
    }

    #[test]
    fn length_channel_coarse_at_block_size_eight() {
        let channel = LengthChannel::new();
        // Symbols 0..=7 all grow the ciphertext by one record: the server
        // cannot tell them apart.
        let growths: Vec<usize> = (0..8).map(|s| channel.record_growth(s, 8)).collect();
        assert!(growths.iter().all(|&g| g == 1), "{growths:?}");
        // Distinct size classes shrink from 26 to ceil(26/8)=4.
        let classes: std::collections::HashSet<usize> =
            (0..26).map(|s| channel.record_growth(s, 8)).collect();
        assert_eq!(classes.len(), 4);
    }

    #[test]
    fn encoded_delta_appends_invisible_content() {
        let channel = LengthChannel::new();
        let delta = channel.encode(3);
        assert_eq!(delta.apply("doc").unwrap(), "    doc");
    }
}
