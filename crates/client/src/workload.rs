//! Deterministic benchmark workload generators.
//!
//! Two workload families from §VII:
//!
//! * **Micro** (§VII-B): "Each test case is a pair of strings (D, D′).
//!   The strings D and D′ are chosen randomly with length uniformly
//!   distributed between 100 and 10000." The delta transforming D into D′
//!   is derived with [`pe_delta::diff`].
//! * **Macro** (§VII-C): "a whole document save followed by either
//!   replacing an existing sentence with a different one or inserting or
//!   deleting an arbitrary sentence or group of sentences", on small
//!   (≈500 chars) and large (≈10000 chars) files.
//!
//! All generators are seeded and fully deterministic.

use pe_crypto::drbg::{CtrDrbg, NonceSource};

use crate::editor::Editor;

/// Words used to build readable synthetic prose (they are in the
/// simulated server's spell-check dictionary, so plaintext documents
/// spell-check cleanly).
const WORDS: &[&str] = &[
    "the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog", "private", "editing",
    "cloud", "service", "document", "secret", "paper", "word", "world", "time", "people",
    "year", "think", "know", "take", "see", "come", "look", "want", "give", "use", "find",
];

/// A deterministic workload source.
#[derive(Debug)]
pub struct WorkloadGen {
    rng: CtrDrbg,
}

impl WorkloadGen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> WorkloadGen {
        WorkloadGen { rng: CtrDrbg::from_seed(seed) }
    }

    /// Direct access to the underlying randomness.
    pub fn rng(&mut self) -> &mut CtrDrbg {
        &mut self.rng
    }

    /// A uniformly random length in `min..=max`.
    pub fn length(&mut self, min: usize, max: usize) -> usize {
        min + self.rng.next_below((max - min + 1) as u64) as usize
    }

    /// A random printable-ASCII string of exactly `len` bytes (the
    /// "chosen randomly" strings of §VII-B).
    pub fn random_string(&mut self, len: usize) -> String {
        (0..len).map(|_| (32 + self.rng.next_below(95) as u8) as char).collect()
    }

    /// One §VII-B micro test case: a pair of random strings with lengths
    /// uniform in `100..=10000`.
    pub fn micro_pair(&mut self) -> (String, String) {
        let len_a = self.length(100, 10_000);
        let len_b = self.length(100, 10_000);
        (self.random_string(len_a), self.random_string(len_b))
    }

    /// A random sentence of readable words, ending in `. `.
    pub fn sentence(&mut self) -> String {
        let words = 4 + self.rng.next_below(9) as usize;
        let mut out = String::new();
        for i in 0..words {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(WORDS[self.rng.next_below(WORDS.len() as u64) as usize]);
        }
        out.push_str(". ");
        out
    }

    /// A document of sentences with length close to `target` bytes (the
    /// §VII-C "small ≈500" / "large ≈10000" files).
    pub fn document(&mut self, target: usize) -> String {
        let mut out = String::new();
        while out.len() < target {
            out.push_str(&self.sentence());
        }
        out.truncate(target);
        out
    }

    /// Byte range of a randomly chosen "sentence" (a period-delimited
    /// span) of `content`; falls back to an arbitrary span when no period
    /// exists.
    pub fn sentence_range(&mut self, content: &str) -> (usize, usize) {
        let bounds: Vec<usize> = content
            .char_indices()
            .filter(|(_, c)| *c == '.')
            .map(|(i, _)| i + 1)
            .collect();
        if bounds.len() < 2 {
            let len = content.len().clamp(1, 40);
            return (0, len);
        }
        let pick = self.rng.next_below((bounds.len() - 1) as u64) as usize;
        (bounds[pick], bounds[pick + 1])
    }
}

/// One §VII-C macro-benchmark operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacroOp {
    /// Replace an existing sentence with a different one.
    ReplaceSentence,
    /// Insert a new sentence at a random sentence boundary.
    InsertSentence,
    /// Delete a random sentence.
    DeleteSentence,
}

impl MacroOp {
    /// The operation mixes used in the Figure-5/Figure-8 rows.
    pub fn mix(name: &str) -> Vec<MacroOp> {
        match name {
            "inserts only" => vec![MacroOp::InsertSentence],
            "deletes only" => vec![MacroOp::DeleteSentence],
            "inserts & deletes" => vec![MacroOp::InsertSentence, MacroOp::DeleteSentence],
            _ => vec![MacroOp::ReplaceSentence, MacroOp::InsertSentence, MacroOp::DeleteSentence],
        }
    }

    /// Performs this operation on an editor using `workload` randomness.
    pub fn perform(self, editor: &mut Editor, workload: &mut WorkloadGen) {
        match self {
            MacroOp::ReplaceSentence => {
                let (start, end) = workload.sentence_range(editor.content());
                let replacement = workload.sentence();
                editor.replace(start, end - start, &replacement);
            }
            MacroOp::InsertSentence => {
                let (start, _) = workload.sentence_range(editor.content());
                let sentence = workload.sentence();
                editor.insert(start, &sentence);
            }
            MacroOp::DeleteSentence => {
                let (start, end) = workload.sentence_range(editor.content());
                if end > start {
                    editor.delete(start, end - start);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let mut a = WorkloadGen::new(7);
        let mut b = WorkloadGen::new(7);
        assert_eq!(a.micro_pair(), b.micro_pair());
        assert_eq!(a.document(500), b.document(500));
        assert_eq!(a.sentence(), b.sentence());
    }

    #[test]
    fn micro_pair_lengths_in_paper_range() {
        let mut workload = WorkloadGen::new(1);
        for _ in 0..20 {
            let (d, d2) = workload.micro_pair();
            assert!((100..=10_000).contains(&d.len()));
            assert!((100..=10_000).contains(&d2.len()));
        }
    }

    #[test]
    fn documents_hit_target_sizes() {
        let mut workload = WorkloadGen::new(2);
        assert_eq!(workload.document(500).len(), 500);
        assert_eq!(workload.document(10_000).len(), 10_000);
    }

    #[test]
    fn macro_ops_keep_editor_consistent() {
        let mut workload = WorkloadGen::new(3);
        let doc = workload.document(800);
        let mut editor = Editor::new(&doc);
        for _ in 0..50 {
            for op in [MacroOp::ReplaceSentence, MacroOp::InsertSentence, MacroOp::DeleteSentence]
            {
                op.perform(&mut editor, &mut workload);
                let delta = editor.take_pending();
                // The delta must describe exactly the performed edit.
                assert!(delta.is_identity() || delta.input_len() <= 12_000);
            }
        }
        assert!(!editor.content().is_empty() || editor.is_empty());
    }

    #[test]
    fn sentence_ranges_are_valid() {
        let mut workload = WorkloadGen::new(4);
        let doc = workload.document(1000);
        for _ in 0..50 {
            let (start, end) = workload.sentence_range(&doc);
            assert!(start < end && end <= doc.len());
        }
    }

    #[test]
    fn op_mixes() {
        assert_eq!(MacroOp::mix("inserts only"), vec![MacroOp::InsertSentence]);
        assert_eq!(MacroOp::mix("deletes only"), vec![MacroOp::DeleteSentence]);
        assert_eq!(MacroOp::mix("inserts & deletes").len(), 2);
        assert_eq!(MacroOp::mix("anything").len(), 3);
    }
}

/// A keystroke-level editing session: models "typical use" (the
/// abstract's claim is "less than 10% overhead for typical use") as a
/// stream of single-character insertions at a moving cursor with
/// occasional backspaces and cursor jumps, batched into autosaves.
#[derive(Debug)]
pub struct TypingSession {
    workload: WorkloadGen,
    cursor: usize,
}

impl TypingSession {
    /// Creates a typing session with its own randomness.
    pub fn new(seed: u64) -> TypingSession {
        TypingSession { workload: WorkloadGen::new(seed), cursor: 0 }
    }

    /// Performs `keystrokes` keystrokes against the editor: ~85 %
    /// character insertions, ~10 % backspaces, ~5 % cursor jumps.
    pub fn type_burst(&mut self, editor: &mut Editor, keystrokes: usize) {
        for _ in 0..keystrokes {
            self.cursor = self.cursor.min(editor.len());
            let roll = self.workload.rng().next_below(100);
            if roll < 85 || editor.is_empty() {
                let c = b'a' + self.workload.rng().next_below(26) as u8;
                let mut text = String::new();
                text.push(c as char);
                // Spaces keep the text word-like.
                if self.workload.rng().next_below(6) == 0 {
                    text.push(' ');
                }
                editor.insert(self.cursor, &text);
                self.cursor += text.len();
            } else if roll < 95 && self.cursor > 0 {
                editor.delete(self.cursor - 1, 1);
                self.cursor -= 1;
            } else {
                self.cursor = self.workload.rng().next_below(editor.len() as u64 + 1) as usize;
            }
        }
    }
}

#[cfg(test)]
mod typing_tests {
    use super::*;

    #[test]
    fn typing_produces_valid_edits_and_deltas() {
        let mut session = TypingSession::new(11);
        let mut editor = Editor::new("");
        for burst in 0..20 {
            session.type_burst(&mut editor, 25);
            let delta = editor.take_pending();
            assert!(!delta.is_identity() || editor.is_empty(), "burst {burst}");
        }
        assert!(editor.len() > 100, "typing mostly inserts: {}", editor.len());
    }

    #[test]
    fn typing_is_deterministic() {
        let run = |seed| {
            let mut session = TypingSession::new(seed);
            let mut editor = Editor::new("start");
            session.type_burst(&mut editor, 200);
            editor.content().to_string()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
