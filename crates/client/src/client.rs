//! The full simulated client: session management, autosave, and the
//! Ack-hash conflict check.

use pe_cloud::retry::BackoffPolicy;
use pe_cloud::{CloudService, Request, Response};
use pe_crypto::form;
use pe_crypto::hex;
use pe_crypto::sha256::Sha256;
use pe_delta::{diff, Delta, Side};
use pe_extension::{DocsMediator, ExtensionError};

use crate::editor::Editor;

/// The client's communication channel: either straight to the server or
/// through the privacy mediator. This is where "with extension" vs
/// "without extension" differs in the benchmarks.
pub trait Channel {
    /// Sends one request, returning the response the client sees.
    fn exchange(&mut self, request: &Request) -> Response;
}

/// Direct connection to a cloud service (no privacy extension).
#[derive(Debug)]
pub struct DirectChannel<S>(pub S);

impl<S: CloudService> Channel for DirectChannel<S> {
    fn exchange(&mut self, request: &Request) -> Response {
        self.0.handle(request)
    }
}

/// Connection through the privacy mediator ("with extension").
pub struct PrivateChannel<S>(pub DocsMediator<S>);

impl<S: CloudService> Channel for PrivateChannel<S> {
    fn exchange(&mut self, request: &Request) -> Response {
        match self.0.intercept(request) {
            Ok(mediated) => mediated.response,
            Err(e) => match e {
                ExtensionError::ServerError { status, message } => {
                    Response::error(status, &message)
                }
                other => Response::error(502, &other.to_string()),
            },
        }
    }
}

/// Result of a save attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaveOutcome {
    /// The server accepted the update and the Ack was consistent.
    Saved,
    /// The Ack hash disagreed with the client's view, or the server
    /// rejected the delta — "multiple people editing" (§VII-A).
    Conflict,
    /// There was nothing to save.
    Clean,
}

/// A simulated Google-Documents client: an [`Editor`] bound to a document
/// on a [`Channel`].
///
/// Protocol behaviour follows §IV-A: the first save of every session
/// sends the full `docContents`; later saves send deltas; every Ack's
/// `contentFromServerHash` is compared against the hash of the client's
/// own content (a `0` hash — what the extension substitutes — is accepted
/// silently, which is exactly why single-user sessions work and
/// concurrent sessions conflict).
pub struct DocsClient<C> {
    channel: C,
    doc_id: String,
    editor: Editor,
    /// Content as of the last successful synchronization with the server
    /// (the base every unsent local edit is relative to).
    synced: String,
    sent_full_save: bool,
    conflicts: usize,
    /// Server version carried by the last successful save Ack — the
    /// change-stream sequence of the client's own save, used by live
    /// sessions to suppress the echo of their own change.
    last_ack_version: Option<u64>,
    /// Server version `synced` is known to correspond to, when armed.
    /// Sent as the `baseVersion` precondition on delta saves so a save
    /// racing a collaborator is rejected (409) instead of landing on a
    /// base it was not computed against. Arming is **opt-in** via
    /// [`DocsClient::note_server_version`] (live sessions do this):
    /// classic plaintext sessions stay on the paper's Ack-hash conflict
    /// detection and never send the precondition, so their observable
    /// protocol is unchanged. Once armed, every sync point (fetch, save
    /// ack) refreshes it.
    base_version: Option<u64>,
    /// Delay schedule between failed save attempts in
    /// [`DocsClient::save_with_retry`] and [`DocsClient::save_merging`].
    /// Hammering a struggling server with zero-delay retries only feeds
    /// the overload; seeded jitter keeps runs reproducible.
    backoff: BackoffPolicy,
}

impl<C: Channel> DocsClient<C> {
    /// Opens an editing session on `doc_id`, loading the current content.
    ///
    /// # Errors
    ///
    /// Returns the raw error response on failure.
    pub fn open(mut channel: C, doc_id: &str) -> Result<DocsClient<C>, Response> {
        let response =
            channel.exchange(&Request::post("/Doc", &[("docID", doc_id), ("cmd", "open")], ""));
        if !response.is_success() {
            return Err(response);
        }
        let body = response.body_text().unwrap_or("");
        let pairs = form::parse_pairs(body).unwrap_or_default();
        let content = form::first_value(&pairs, "content").unwrap_or("").to_string();
        Ok(DocsClient {
            channel,
            doc_id: doc_id.to_string(),
            editor: Editor::new(&content),
            synced: content,
            sent_full_save: false,
            conflicts: 0,
            last_ack_version: None,
            base_version: None,
            backoff: BackoffPolicy::client_default(0),
        })
    }

    /// Replaces the retry backoff schedule (builder style).
    #[must_use]
    pub fn with_backoff(mut self, backoff: BackoffPolicy) -> DocsClient<C> {
        self.backoff = backoff;
        self
    }

    /// Replaces the retry backoff schedule in place.
    pub fn set_backoff(&mut self, backoff: BackoffPolicy) {
        self.backoff = backoff;
    }

    /// Sleeps per the backoff schedule before retry number `attempt`
    /// (0-based), recording the actual delay.
    fn backoff_pause(&self, attempt: u32) {
        let slept = self.backoff.sleep(attempt);
        pe_observe::static_histogram!("client.retry_backoff_ns")
            .record(slept.as_nanos() as u64);
    }

    /// The local editor.
    pub fn editor(&mut self) -> &mut Editor {
        &mut self.editor
    }

    /// The client's current view of the document.
    pub fn content(&self) -> &str {
        self.editor.content()
    }

    /// Number of conflicts ("multiple people editing") seen so far.
    pub fn conflicts(&self) -> usize {
        self.conflicts
    }

    /// Releases the channel (for inspecting the mediator afterwards).
    pub fn into_channel(self) -> C {
        self.channel
    }

    /// The document this session edits.
    pub fn doc_id(&self) -> &str {
        &self.doc_id
    }

    /// Borrows the channel (live sessions route out-of-band requests —
    /// change polls, presence — through the same mediator/transport).
    pub fn channel(&mut self) -> &mut C {
        &mut self.channel
    }

    /// Server version acknowledged for this client's most recent save,
    /// if the server reports versions.
    pub fn last_ack_version(&self) -> Option<u64> {
        self.last_ack_version
    }

    /// Applies a *foreign* delta pushed from the change stream: local
    /// unsent edits are rebased over it with operational transformation,
    /// so the buffer keeps the user's intent on top of the collaborator's
    /// change and the sync point advances to the server's new content.
    ///
    /// # Errors
    ///
    /// Returns the delta error when `foreign` does not apply to the sync
    /// point (the stream and the session disagree about the base — the
    /// caller should fall back to a full resync).
    pub fn apply_foreign_delta(&mut self, foreign: &Delta) -> Result<(), pe_delta::DeltaError> {
        let new_synced = foreign.apply(&self.synced)?;
        let local = diff(&self.synced, self.editor.content());
        let base_len = self.synced.chars().count();
        let rebased = local.transform(foreign, base_len, Side::Right)?;
        pe_observe::static_counter!("client.foreign_deltas").inc();
        self.editor.reset(&new_synced);
        if !rebased.is_identity() {
            self.editor.apply(rebased);
        }
        self.synced = new_synced;
        // The server already holds the new base; stay incremental. Its
        // version is unknown until the caller reports it.
        self.sent_full_save = true;
        self.base_version = None;
        Ok(())
    }

    /// Records the server version the current sync point corresponds to.
    /// Live sessions call this after folding stream changes at a known
    /// sequence, re-arming the `baseVersion` save precondition that
    /// [`DocsClient::apply_foreign_delta`] and
    /// [`DocsClient::merge_server_content`] conservatively clear.
    pub fn note_server_version(&mut self, version: u64) {
        self.base_version = Some(version);
    }

    /// Resynchronizes on authoritative server content (the change
    /// stream's full-content fallback) while preserving unsent local
    /// edits, rebasing them over whatever changed server-side.
    pub fn merge_server_content(&mut self, server_content: &str) {
        if server_content == self.synced {
            return;
        }
        let local = diff(&self.synced, self.editor.content());
        let foreign = diff(&self.synced, server_content);
        let base_len = self.synced.chars().count();
        pe_observe::static_counter!("client.merges").inc();
        let rebased = match local.transform(&foreign, base_len, Side::Right) {
            Ok(rebased) => rebased,
            // Transform of two well-formed deltas over their common base
            // cannot fail; defensively drop local edits rather than
            // diverging from the server.
            Err(_) => {
                pe_observe::static_counter!("client.merge_transform_failures").inc();
                diff(server_content, server_content)
            }
        };
        self.editor.reset(server_content);
        if !rebased.is_identity() {
            self.editor.apply(rebased);
        }
        self.synced = server_content.to_string();
        self.sent_full_save = true;
        self.base_version = None;
    }

    fn local_hash(&self) -> String {
        hex::encode(&Sha256::digest(self.editor.content().as_bytes())[..8])
    }

    /// Saves pending edits: a full `docContents` save the first time, a
    /// delta save afterwards, mirroring the observed client behaviour.
    pub fn save(&mut self) -> SaveOutcome {
        self.save_inner().0
    }

    /// Like [`DocsClient::save`] but also exposes the server's status
    /// code so callers can tell transient failures (5xx) from conflicts.
    fn save_inner(&mut self) -> (SaveOutcome, u16) {
        if self.sent_full_save && !self.editor.has_pending() {
            return (SaveOutcome::Clean, 200);
        }
        pe_observe::static_counter!("client.save_attempts").inc();
        let response = if self.sent_full_save {
            let delta = self.editor.take_pending();
            let serialized = delta.serialize();
            let mut fields: Vec<(&str, String)> = vec![("delta", serialized)];
            if let Some(base) = self.base_version {
                fields.push(("baseVersion", base.to_string()));
            }
            let pairs: Vec<(&str, &str)> =
                fields.iter().map(|(k, v)| (*k, v.as_str())).collect();
            let body = form::encode_pairs(&pairs);
            self.channel.exchange(&Request::post("/Doc", &[("docID", &self.doc_id)], body))
        } else {
            self.editor.take_pending(); // folded into the full save
            let body =
                form::encode_pairs(&[("docContents", self.editor.content())]);
            self.channel.exchange(&Request::post("/Doc", &[("docID", &self.doc_id)], body))
        };
        if !response.is_success() {
            self.conflicts += 1;
            pe_observe::static_counter!("client.save_conflicts").inc();
            return (SaveOutcome::Conflict, response.status);
        }
        self.sent_full_save = true;
        let body = response.body_text().unwrap_or("");
        let pairs = form::parse_pairs(body).unwrap_or_default();
        let ack_hash = form::first_value(&pairs, "contentFromServerHash").unwrap_or("");
        if let Some(version) = form::first_value(&pairs, "version").and_then(|v| v.parse().ok())
        {
            self.last_ack_version = Some(version);
        }
        if ack_hash == "0" || ack_hash == self.local_hash() {
            self.synced = self.editor.content().to_string();
            if self.base_version.is_some() {
                self.base_version = self.last_ack_version;
            }
            (SaveOutcome::Saved, response.status)
        } else {
            self.conflicts += 1;
            pe_observe::static_counter!("client.save_conflicts").inc();
            pe_observe::static_counter!("client.save_ack_divergence").inc();
            (SaveOutcome::Conflict, response.status)
        }
    }

    /// Fetches the server's current content without touching local state.
    fn fetch(&mut self) -> Option<String> {
        let response = self
            .channel
            .exchange(&Request::get("/Doc/load", &[("docID", &self.doc_id)]));
        if !response.is_success() {
            return None;
        }
        let body = response.body_text().unwrap_or("");
        let pairs = form::parse_pairs(body).unwrap_or_default();
        if self.base_version.is_some() {
            if let Some(version) =
                form::first_value(&pairs, "version").and_then(|v| v.parse().ok())
            {
                self.base_version = Some(version);
            }
        }
        form::first_value(&pairs, "content").map(str::to_string)
    }

    /// Saves with **merge-on-conflict**: the collaborative mode the paper
    /// leaves to future work (§VII-A cites SPORC). Before sending, the
    /// client checks whether the server moved past its sync point; if so
    /// it rebases its unsent edits over the concurrent changes with
    /// operational transformation ([`pe_delta::Delta::transform`]) and
    /// then saves the rebased delta. Works identically in plaintext and
    /// private mode — in private mode the pre-flight load also re-syncs
    /// the mediator's ciphertext mirror, which is exactly what makes
    /// concurrent encrypted editing converge.
    pub fn save_merging(&mut self, max_attempts: usize) -> SaveOutcome {
        for attempt in 0..max_attempts.max(1) {
            if attempt > 0 {
                self.backoff_pause(attempt as u32 - 1);
            }
            let Some(server_content) = self.fetch() else {
                continue; // transient load failure
            };
            // Rebuild the pending delta from first principles: everything
            // between the sync point and the current buffer. (A previous
            // failed attempt may have drained the editor's pending state;
            // the canonical diff recovers it.)
            let local = diff(&self.synced, self.editor.content());
            if server_content != self.synced {
                // Rebase local intent over the concurrent foreign changes.
                pe_observe::static_counter!("client.merges").inc();
                let foreign = diff(&self.synced, &server_content);
                let base_len = self.synced.chars().count();
                let Ok(rebased) = local.transform(&foreign, base_len, Side::Right) else {
                    return SaveOutcome::Conflict;
                };
                self.editor.reset(&server_content);
                if !rebased.is_identity() {
                    self.editor.apply(rebased);
                }
                self.synced = server_content;
            } else {
                let content = self.editor.content().to_string();
                self.editor.reset(&self.synced.clone());
                if !local.is_identity() {
                    self.editor.apply(local);
                }
                debug_assert_eq!(self.editor.content(), content);
            }
            // The server already holds the (possibly merged) base; stay on
            // the incremental path.
            self.sent_full_save = true;
            match self.save_inner() {
                (SaveOutcome::Saved, _) => return SaveOutcome::Saved,
                (SaveOutcome::Clean, _) => return SaveOutcome::Clean,
                (SaveOutcome::Conflict, _) => continue,
            }
        }
        SaveOutcome::Conflict
    }

    /// Saves with bounded retries: **transient** failures (5xx — a flaky
    /// transport or server front-end) are retried up to `attempts` times
    /// by re-queueing the unsent edits and re-establishing the session
    /// with a full save. Genuine conflicts (409 / Ack-hash mismatch,
    /// i.e. another writer) are returned immediately for the caller to
    /// resolve via [`DocsClient::refresh`] — blindly retrying those would
    /// clobber the other writer.
    pub fn save_with_retry(&mut self, attempts: usize) -> SaveOutcome {
        for attempt in 1..=attempts.max(1) {
            let snapshot = self.editor.clone();
            let (outcome, status) = self.save_inner();
            match outcome {
                SaveOutcome::Saved | SaveOutcome::Clean => {
                    pe_observe::static_histogram!("client.retries_to_success")
                        .record(attempt as u64 - 1);
                    return outcome;
                }
                SaveOutcome::Conflict if status >= 500 => {
                    // Transient: restore the unsent edits; the next
                    // attempt re-establishes server state via a full save.
                    pe_observe::static_counter!("client.save_retries").inc();
                    self.editor = snapshot;
                    self.sent_full_save = false;
                    if attempt < attempts.max(1) {
                        self.backoff_pause(attempt as u32 - 1);
                    }
                }
                SaveOutcome::Conflict => return SaveOutcome::Conflict,
            }
        }
        SaveOutcome::Conflict
    }

    /// Refreshes the buffer from the server (the passive-reader /
    /// post-conflict path). Discards pending local edits.
    ///
    /// # Errors
    ///
    /// Returns the raw error response on failure.
    pub fn refresh(&mut self) -> Result<(), Response> {
        let response = self
            .channel
            .exchange(&Request::get("/Doc/load", &[("docID", &self.doc_id)]));
        if !response.is_success() {
            return Err(response);
        }
        let body = response.body_text().unwrap_or("");
        let pairs = form::parse_pairs(body).unwrap_or_default();
        let content = form::first_value(&pairs, "content").unwrap_or("");
        self.editor.reset(content);
        self.synced = content.to_string();
        // A refresh re-synchronizes the session; subsequent saves may be
        // incremental again only after a full save reestablishes state.
        self.sent_full_save = false;
        Ok(())
    }
}

impl<C> std::fmt::Debug for DocsClient<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DocsClient")
            .field("doc_id", &self.doc_id)
            .field("len", &self.editor.len())
            .field("conflicts", &self.conflicts)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_cloud::docs::DocsServer;
    use pe_crypto::CtrDrbg;
    use pe_extension::MediatorConfig;
    use std::sync::Arc;

    fn new_doc(server: &DocsServer) -> String {
        let resp = server.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
        let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
        form::first_value(&pairs, "docID").unwrap().to_string()
    }

    #[test]
    fn plaintext_session_without_extension() {
        let server = Arc::new(DocsServer::new());
        let doc_id = new_doc(&server);
        let mut client =
            DocsClient::open(DirectChannel(Arc::clone(&server)), &doc_id).unwrap();
        client.editor().insert(0, "plain text editing");
        assert_eq!(client.save(), SaveOutcome::Saved);
        client.editor().replace(0, 5, "CLEAR");
        assert_eq!(client.save(), SaveOutcome::Saved);
        assert_eq!(server.stored_content(&doc_id).unwrap(), "CLEAR text editing");
        assert_eq!(client.conflicts(), 0);
    }

    #[test]
    fn private_session_through_extension() {
        let server = Arc::new(DocsServer::new());
        let doc_id = new_doc(&server);
        let mut mediator = DocsMediator::with_rng(
            Arc::clone(&server),
            MediatorConfig::recb(8),
            CtrDrbg::from_seed(1),
        );
        mediator.register_password(&doc_id, "pw");
        let mut client = DocsClient::open(PrivateChannel(mediator), &doc_id).unwrap();
        client.editor().insert(0, "secret agenda");
        assert_eq!(client.save(), SaveOutcome::Saved);
        client.editor().delete(0, 7);
        assert_eq!(client.save(), SaveOutcome::Saved);
        let stored = server.stored_content(&doc_id).unwrap();
        assert!(!stored.contains("agenda"));
        assert_eq!(client.conflicts(), 0, "single-user private session is flawless");
    }

    #[test]
    fn concurrent_plaintext_clients_detect_conflicts_via_hash() {
        let server = Arc::new(DocsServer::new());
        let doc_id = new_doc(&server);
        let mut alice =
            DocsClient::open(DirectChannel(Arc::clone(&server)), &doc_id).unwrap();
        alice.editor().insert(0, "alice was here. ");
        assert_eq!(alice.save(), SaveOutcome::Saved);
        // Bob joins after Alice's save and establishes his session.
        let mut bob = DocsClient::open(DirectChannel(Arc::clone(&server)), &doc_id).unwrap();
        assert_eq!(bob.save(), SaveOutcome::Saved); // first (full) save
        // Both now edit concurrently; Alice lands first.
        alice.editor().insert(0, "A2 ");
        assert_eq!(alice.save(), SaveOutcome::Saved);
        let bob_len = bob.content().len();
        bob.editor().insert(bob_len, "bob too");
        // Bob's Ack hash reflects a document containing Alice's new text;
        // his local hash differs → conflict detected (plaintext clients
        // detect this properly — unlike under the extension, §VII-A).
        assert_eq!(bob.save(), SaveOutcome::Conflict);
        assert_eq!(bob.conflicts(), 1);
        bob.refresh().unwrap();
        assert!(bob.content().contains("A2 "));
    }

    #[test]
    fn refresh_pulls_server_state() {
        let server = Arc::new(DocsServer::new());
        let doc_id = new_doc(&server);
        let mut writer =
            DocsClient::open(DirectChannel(Arc::clone(&server)), &doc_id).unwrap();
        writer.editor().insert(0, "v1");
        writer.save();
        let mut reader =
            DocsClient::open(DirectChannel(Arc::clone(&server)), &doc_id).unwrap();
        writer.editor().insert(2, " v2");
        writer.save();
        reader.refresh().unwrap();
        assert_eq!(reader.content(), "v1 v2");
    }

    #[test]
    fn clean_save_when_no_edits() {
        let server = Arc::new(DocsServer::new());
        let doc_id = new_doc(&server);
        let mut client =
            DocsClient::open(DirectChannel(Arc::clone(&server)), &doc_id).unwrap();
        client.editor().insert(0, "x");
        assert_eq!(client.save(), SaveOutcome::Saved);
        assert_eq!(client.save(), SaveOutcome::Clean);
    }

    #[test]
    fn save_ack_carries_the_server_version() {
        let server = Arc::new(DocsServer::new());
        let doc_id = new_doc(&server);
        let mut client =
            DocsClient::open(DirectChannel(Arc::clone(&server)), &doc_id).unwrap();
        assert_eq!(client.last_ack_version(), None);
        client.editor().insert(0, "v1");
        assert_eq!(client.save(), SaveOutcome::Saved);
        let first = client.last_ack_version().expect("version in ack");
        client.editor().insert(2, " v2");
        assert_eq!(client.save(), SaveOutcome::Saved);
        let second = client.last_ack_version().expect("version in ack");
        assert!(second > first, "sequence advances per accepted save");
    }

    #[test]
    fn foreign_delta_rebases_pending_local_edits() {
        let server = Arc::new(DocsServer::new());
        let doc_id = new_doc(&server);
        let mut client =
            DocsClient::open(DirectChannel(Arc::clone(&server)), &doc_id).unwrap();
        client.editor().insert(0, "shared base");
        assert_eq!(client.save(), SaveOutcome::Saved);
        // A collaborator lands a change on the server…
        let mut other =
            DocsClient::open(DirectChannel(Arc::clone(&server)), &doc_id).unwrap();
        other.editor().replace(0, 6, "SHARED");
        assert_eq!(other.save(), SaveOutcome::Saved);
        // …while this client holds a pending local edit on the old base.
        client.editor().insert(11, " +local");
        let foreign = diff("shared base", "SHARED base");
        client.apply_foreign_delta(&foreign).unwrap();
        assert_eq!(client.content(), "SHARED base +local");
        // Saving after the merge converges without conflict.
        assert_eq!(client.save(), SaveOutcome::Saved);
        assert_eq!(server.stored_content(&doc_id).unwrap(), "SHARED base +local");
    }

    #[test]
    fn foreign_delta_with_wrong_base_is_an_error() {
        let server = Arc::new(DocsServer::new());
        let doc_id = new_doc(&server);
        let mut client =
            DocsClient::open(DirectChannel(Arc::clone(&server)), &doc_id).unwrap();
        client.editor().insert(0, "abc");
        assert_eq!(client.save(), SaveOutcome::Saved);
        // A delta built against a much longer document cannot apply.
        let foreign = diff("a much longer base document", "a much longer base documentX");
        assert!(client.apply_foreign_delta(&foreign).is_err());
        // State is untouched — the caller resyncs instead.
        assert_eq!(client.content(), "abc");
    }

    #[test]
    fn merge_server_content_preserves_local_intent() {
        let server = Arc::new(DocsServer::new());
        let doc_id = new_doc(&server);
        let mut client =
            DocsClient::open(DirectChannel(Arc::clone(&server)), &doc_id).unwrap();
        client.editor().insert(0, "line one");
        assert_eq!(client.save(), SaveOutcome::Saved);
        let mut other =
            DocsClient::open(DirectChannel(Arc::clone(&server)), &doc_id).unwrap();
        other.editor().replace(0, 4, "LINE");
        assert_eq!(other.save(), SaveOutcome::Saved);
        client.editor().insert(8, " local-tail");
        client.merge_server_content("LINE one");
        assert_eq!(client.content(), "LINE one local-tail");
        assert_eq!(client.save(), SaveOutcome::Saved);
        // Identical content is a no-op that keeps pending edits pending.
        client.merge_server_content("LINE one local-tail");
        assert_eq!(client.save(), SaveOutcome::Clean);
    }
}

#[cfg(test)]
mod retry_tests {
    use super::*;
    use pe_cloud::docs::DocsServer;
    use pe_cloud::fault::FlakyService;
    use pe_crypto::CtrDrbg;
    use pe_extension::{DocsMediator, MediatorConfig};
    use std::sync::Arc;

    fn new_doc(server: &DocsServer) -> String {
        let resp = server.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
        let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
        form::first_value(&pairs, "docID").unwrap().to_string()
    }

    #[test]
    fn retries_survive_a_flaky_transport() {
        let server = Arc::new(DocsServer::new());
        let doc_id = new_doc(&server);
        // Fail roughly one in three requests.
        let flaky = FlakyService::new(Arc::clone(&server), 3, 5);
        let mut client = DocsClient::open(DirectChannel(flaky), &doc_id)
            .or_else(|_| {
                // The open itself may have hit an injected fault; retry.
                let flaky = FlakyService::new(Arc::clone(&server), 3, 6);
                DocsClient::open(DirectChannel(flaky), &doc_id)
            })
            .expect("one of two opens succeeds");
        for i in 0..20 {
            let len = client.content().len();
            client.editor().insert(len, &format!("chunk {i}. "));
            assert_eq!(client.save_with_retry(8), SaveOutcome::Saved, "edit {i}");
        }
        let stored = server.stored_content(&doc_id).unwrap();
        for i in 0..20 {
            assert!(stored.contains(&format!("chunk {i}. ")), "lost edit {i}");
        }
    }

    #[test]
    fn retries_survive_a_flaky_transport_with_extension() {
        let server = Arc::new(DocsServer::new());
        let doc_id = new_doc(&server);
        let flaky = FlakyService::new(Arc::clone(&server), 4, 11);
        let mut mediator =
            DocsMediator::with_rng(flaky, MediatorConfig::recb(8), CtrDrbg::from_seed(1));
        mediator.register_password(&doc_id, "flaky-pw");
        let mut client = DocsClient::open(PrivateChannel(mediator), &doc_id).unwrap();
        for i in 0..15 {
            let len = client.content().len();
            client.editor().insert(len, &format!("private {i}. "));
            assert_eq!(client.save_with_retry(10), SaveOutcome::Saved, "edit {i}");
        }
        // Final state decrypts correctly despite injected faults.
        let mut reader = DocsMediator::with_rng(
            Arc::clone(&server),
            MediatorConfig::recb(8),
            CtrDrbg::from_seed(2),
        );
        reader.register_password(&doc_id, "flaky-pw");
        let text = reader.open_document(&doc_id).unwrap();
        for i in 0..15 {
            assert!(text.contains(&format!("private {i}. ")), "lost edit {i}: {text}");
        }
    }

    #[test]
    fn genuine_conflicts_are_not_retried() {
        let server = Arc::new(DocsServer::new());
        let doc_id = new_doc(&server);
        let mut alice = DocsClient::open(DirectChannel(Arc::clone(&server)), &doc_id).unwrap();
        alice.editor().insert(0, "alice. ");
        alice.save();
        let mut bob = DocsClient::open(DirectChannel(Arc::clone(&server)), &doc_id).unwrap();
        bob.save();
        alice.editor().insert(0, "more alice. ");
        alice.save();
        let bob_len = bob.content().len();
        bob.editor().insert(bob_len, "bob. ");
        // A hash-mismatch conflict must come back immediately. Had the
        // client retried with a full save, the server would hold exactly
        // Bob's (Alice-free) view — it must not.
        assert_eq!(bob.save_with_retry(5), SaveOutcome::Conflict);
        assert_eq!(bob.conflicts(), 1, "exactly one attempt, no retries");
        assert_ne!(server.stored_content(&doc_id).unwrap(), bob.content());
    }

    /// Fails every request that carries a body (i.e. every save), leaving
    /// open/create untouched.
    struct FailSaves(Arc<DocsServer>);

    impl Channel for FailSaves {
        fn exchange(&mut self, request: &Request) -> Response {
            if !request.body.is_empty() {
                return Response::error(500, "backend down");
            }
            self.0.handle(request)
        }
    }

    #[test]
    fn transient_retries_pause_per_the_backoff_schedule() {
        use pe_cloud::retry::BackoffPolicy;
        use std::time::{Duration, Instant};
        let server = Arc::new(DocsServer::new());
        let doc_id = new_doc(&server);
        let mut client = DocsClient::open(FailSaves(Arc::clone(&server)), &doc_id)
            .unwrap()
            .with_backoff(BackoffPolicy::new(
                Duration::from_millis(10),
                Duration::from_millis(10),
                0.0,
                0,
            ));
        client.editor().insert(0, "never lands");
        let started = Instant::now();
        assert_eq!(client.save_with_retry(3), SaveOutcome::Conflict);
        // Three attempts, a 10 ms pause after each of the first two.
        assert!(
            started.elapsed() >= Duration::from_millis(20),
            "retries must be paced, not immediate: {:?}",
            started.elapsed()
        );
    }
}

#[cfg(test)]
mod merge_tests {
    use super::*;
    use pe_cloud::docs::DocsServer;
    use pe_crypto::CtrDrbg;
    use pe_extension::{DocsMediator, MediatorConfig};
    use std::sync::Arc;

    fn new_doc(server: &DocsServer) -> String {
        let resp = server.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
        let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
        form::first_value(&pairs, "docID").unwrap().to_string()
    }

    #[test]
    fn concurrent_plaintext_writers_converge_with_merge() {
        let server = Arc::new(DocsServer::new());
        let doc_id = new_doc(&server);
        let mut alice = DocsClient::open(DirectChannel(Arc::clone(&server)), &doc_id).unwrap();
        alice.editor().insert(0, "shared base. ");
        assert_eq!(alice.save(), SaveOutcome::Saved);
        let mut bob = DocsClient::open(DirectChannel(Arc::clone(&server)), &doc_id).unwrap();
        assert_eq!(bob.save(), SaveOutcome::Saved);

        // Concurrent edits: alice prepends, bob appends.
        alice.editor().insert(0, "[alice] ");
        assert_eq!(alice.save_merging(4), SaveOutcome::Saved);
        let bob_len = bob.content().len();
        bob.editor().insert(bob_len, "[bob]");
        assert_eq!(bob.save_merging(4), SaveOutcome::Saved);

        let stored = server.stored_content(&doc_id).unwrap();
        assert_eq!(stored, "[alice] shared base. [bob]", "both edits must merge");
        assert_eq!(bob.content(), stored);
    }

    #[test]
    fn concurrent_private_writers_converge_with_merge() {
        // The §VII-A "partial" scenario, upgraded: two writers through
        // separate privacy mediators, merging on conflict. The server
        // never sees plaintext yet both edits land.
        let server = Arc::new(DocsServer::new());
        let doc_id = new_doc(&server);
        let mut setup = DocsMediator::with_rng(
            Arc::clone(&server),
            MediatorConfig::recb(8),
            CtrDrbg::from_seed(70),
        );
        setup.register_password(&doc_id, "merge-pw");
        setup.save_full(&doc_id, "shared base. ").unwrap();

        let make_client = |seed: u64| {
            let mut mediator = DocsMediator::with_rng(
                Arc::clone(&server),
                MediatorConfig::recb(8),
                CtrDrbg::from_seed(seed),
            );
            mediator.register_password(&doc_id, "merge-pw");
            DocsClient::open(PrivateChannel(mediator), &doc_id).unwrap()
        };
        let mut alice = make_client(71);
        let mut bob = make_client(72);
        assert_eq!(alice.content(), "shared base. ");
        assert_eq!(bob.content(), "shared base. ");

        alice.editor().insert(0, "[alice] ");
        assert_eq!(alice.save_merging(4), SaveOutcome::Saved);
        let bob_len = bob.content().len();
        bob.editor().insert(bob_len, "[bob]");
        assert_eq!(bob.save_merging(4), SaveOutcome::Saved);

        // The provider stores only ciphertext…
        let stored = server.stored_content(&doc_id).unwrap();
        assert!(!stored.contains("alice") && !stored.contains("bob"));
        // …which decrypts to the converged merge for a fresh reader.
        let mut reader = DocsMediator::with_rng(
            Arc::clone(&server),
            MediatorConfig::recb(8),
            CtrDrbg::from_seed(73),
        );
        reader.register_password(&doc_id, "merge-pw");
        assert_eq!(
            reader.open_document(&doc_id).unwrap(),
            "[alice] shared base. [bob]",
            "encrypted concurrent edits must converge"
        );
    }

    #[test]
    fn merge_handles_interleaved_rounds() {
        let server = Arc::new(DocsServer::new());
        let doc_id = new_doc(&server);
        let mut a = DocsClient::open(DirectChannel(Arc::clone(&server)), &doc_id).unwrap();
        a.editor().insert(0, "root. ");
        a.save();
        let mut b = DocsClient::open(DirectChannel(Arc::clone(&server)), &doc_id).unwrap();
        b.save();
        for round in 0..5 {
            let a_len = a.content().len();
            a.editor().insert(a_len, &format!("a{round}. "));
            assert_eq!(a.save_merging(4), SaveOutcome::Saved, "a round {round}");
            let b_len = b.content().len();
            b.editor().insert(b_len, &format!("b{round}. "));
            assert_eq!(b.save_merging(4), SaveOutcome::Saved, "b round {round}");
        }
        let stored = server.stored_content(&doc_id).unwrap();
        for round in 0..5 {
            assert!(stored.contains(&format!("a{round}. ")), "missing a{round}: {stored}");
            assert!(stored.contains(&format!("b{round}. ")), "missing b{round}: {stored}");
        }
    }
}

#[cfg(test)]
mod merge_resilience_tests {
    use super::*;
    use pe_cloud::docs::DocsServer;
    use pe_cloud::fault::FlakyService;
    use std::sync::Arc;

    #[test]
    fn save_merging_survives_transient_failures_without_losing_edits() {
        let server = Arc::new(DocsServer::new());
        let resp = server.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
        let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
        let doc_id = form::first_value(&pairs, "docID").unwrap().to_string();
        // Fail roughly one in three requests.
        let flaky = FlakyService::new(Arc::clone(&server), 3, 21);
        let mut client = match DocsClient::open(DirectChannel(flaky), &doc_id) {
            Ok(client) => client,
            Err(_) => {
                let flaky = FlakyService::new(Arc::clone(&server), 3, 22);
                DocsClient::open(DirectChannel(flaky), &doc_id).unwrap()
            }
        };
        for i in 0..12 {
            let len = client.content().len();
            client.editor().insert(len, &format!("m{i}. "));
            assert_eq!(client.save_merging(40), SaveOutcome::Saved, "edit {i}");
        }
        let stored = server.stored_content(&doc_id).unwrap();
        for i in 0..12 {
            assert!(stored.contains(&format!("m{i}. ")), "lost edit {i}: {stored}");
        }
    }
}
