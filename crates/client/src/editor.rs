//! The local editor buffer: user edits in, protocol deltas out.

use pe_delta::Delta;

/// A plaintext editing buffer that accumulates edits into a pending
/// [`Delta`] — the shape of the client-side state the Google Documents
/// client keeps between autosaves (§IV-A: "update deltas are periodically
/// sent back to the server").
///
/// All positions and lengths are **byte** offsets; the simulated protocol
/// counts bytes (ASCII documents make this identical to character
/// counts).
#[derive(Debug, Clone)]
pub struct Editor {
    content: String,
    /// Composition of all edits since the last `take_pending`.
    pending: Delta,
    /// Undo stack: the inverse of each applied edit, newest last.
    undo: Vec<Delta>,
    /// Redo stack: inverses of undone edits, cleared by any new edit.
    redo: Vec<Delta>,
}

impl Editor {
    /// Creates an editor over initial content.
    pub fn new(content: &str) -> Editor {
        Editor {
            content: content.to_string(),
            pending: Delta::new(),
            undo: Vec::new(),
            redo: Vec::new(),
        }
    }

    /// The current buffer content.
    pub fn content(&self) -> &str {
        &self.content
    }

    /// Length of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.content.len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.content.is_empty()
    }

    /// True when there are unsent edits.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_identity()
    }

    /// Inserts `text` at byte offset `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is out of bounds or not a character boundary.
    pub fn insert(&mut self, at: usize, text: &str) {
        assert!(at <= self.content.len(), "insert at {at} out of bounds");
        let mut delta = Delta::builder();
        delta.retain(at).insert(text);
        self.apply(delta.build());
    }

    /// Deletes `len` bytes starting at `at`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or splits a character.
    pub fn delete(&mut self, at: usize, len: usize) {
        assert!(at + len <= self.content.len(), "delete range out of bounds");
        let mut delta = Delta::builder();
        delta.retain(at).delete(len);
        self.apply(delta.build());
    }

    /// Replaces `len` bytes at `at` with `text`.
    ///
    /// # Panics
    ///
    /// As for [`Editor::delete`].
    pub fn replace(&mut self, at: usize, len: usize, text: &str) {
        assert!(at + len <= self.content.len(), "replace range out of bounds");
        let mut delta = Delta::builder();
        delta.retain(at).delete(len).insert(text);
        self.apply(delta.build());
    }

    /// Applies an arbitrary delta (relative to the current content) and
    /// adds it to the pending update.
    ///
    /// # Panics
    ///
    /// Panics if the delta does not fit the current content.
    pub fn apply(&mut self, delta: Delta) {
        let inverse = delta
            .invert(&self.content)
            .expect("editor edits are validated against the buffer");
        let updated = delta
            .apply_bytes(self.content.as_bytes())
            .expect("editor edits are validated against the buffer");
        self.content = String::from_utf8(updated).expect("edits preserve UTF-8");
        self.pending = self.pending.compose(&delta);
        self.undo.push(inverse);
        self.redo.clear();
    }

    /// Undoes the most recent edit, if any, returning whether an edit was
    /// undone. The undo itself becomes part of the pending update (it is
    /// an ordinary edit as far as the protocol is concerned).
    pub fn undo(&mut self) -> bool {
        let Some(inverse) = self.undo.pop() else {
            return false;
        };
        let redo = inverse
            .invert(&self.content)
            .expect("inverses always fit the buffer they were made for");
        let updated = inverse
            .apply_bytes(self.content.as_bytes())
            .expect("inverses always fit the buffer they were made for");
        self.content = String::from_utf8(updated).expect("edits preserve UTF-8");
        self.pending = self.pending.compose(&inverse);
        self.redo.push(redo);
        true
    }

    /// Re-applies the most recently undone edit, if any.
    pub fn redo(&mut self) -> bool {
        let Some(delta) = self.redo.pop() else {
            return false;
        };
        let inverse = delta.invert(&self.content).expect("redo fits the buffer");
        let updated =
            delta.apply_bytes(self.content.as_bytes()).expect("redo fits the buffer");
        self.content = String::from_utf8(updated).expect("edits preserve UTF-8");
        self.pending = self.pending.compose(&delta);
        self.undo.push(inverse);
        true
    }

    /// Number of edits currently undoable.
    pub fn undo_depth(&self) -> usize {
        self.undo.len()
    }

    /// Number of undone edits currently redoable.
    pub fn redo_depth(&self) -> usize {
        self.redo.len()
    }

    /// Takes the composed delta of all edits since the last call,
    /// resetting the pending state (the autosave path).
    pub fn take_pending(&mut self) -> Delta {
        std::mem::take(&mut self.pending)
    }

    /// Discards local state and replaces the buffer (the client's refresh
    /// path after a conflict).
    pub fn reset(&mut self, content: &str) {
        self.content = content.to_string();
        self.pending = Delta::new();
        self.undo.clear();
        self.redo.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edits_update_content_and_pending() {
        let mut editor = Editor::new("abcdefg");
        editor.replace(2, 3, "uv");
        editor.insert(editor.len(), "w");
        assert_eq!(editor.content(), "abuvfgw");
        let delta = editor.take_pending();
        assert_eq!(delta.apply("abcdefg").unwrap(), "abuvfgw");
        assert!(!editor.has_pending());
    }

    #[test]
    fn pending_composes_multiple_edits() {
        let mut editor = Editor::new("0123456789");
        editor.delete(0, 2);
        editor.insert(0, "ab");
        editor.replace(5, 2, "XY");
        let delta = editor.take_pending();
        assert_eq!(delta.apply("0123456789").unwrap(), editor.content());
    }

    #[test]
    fn reset_discards_pending() {
        let mut editor = Editor::new("abc");
        editor.insert(0, "x");
        editor.reset("fresh");
        assert_eq!(editor.content(), "fresh");
        assert!(!editor.has_pending());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn insert_out_of_bounds_panics() {
        Editor::new("abc").insert(4, "x");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn delete_out_of_bounds_panics() {
        Editor::new("abc").delete(2, 2);
    }

    #[test]
    fn undo_reverses_edits_and_flows_into_pending() {
        let mut editor = Editor::new("abcdefg");
        editor.take_pending();
        editor.replace(2, 3, "uv");
        assert_eq!(editor.content(), "abuvfg");
        assert!(editor.undo());
        assert_eq!(editor.content(), "abcdefg");
        // The undo is itself an edit: the pending delta is net identity.
        let pending = editor.take_pending();
        assert_eq!(pending.apply("abcdefg").unwrap(), "abcdefg");
        assert!(!editor.undo(), "stack exhausted");
    }

    #[test]
    fn undo_stack_is_deep() {
        let mut editor = Editor::new("");
        for i in 0..10 {
            editor.insert(editor.len(), &format!("{i}"));
        }
        assert_eq!(editor.content(), "0123456789");
        assert_eq!(editor.undo_depth(), 10);
        for _ in 0..4 {
            editor.undo();
        }
        assert_eq!(editor.content(), "012345");
    }

    #[test]
    fn redo_restores_undone_edits() {
        let mut editor = Editor::new("base");
        editor.insert(4, " one");
        editor.insert(8, " two");
        editor.undo();
        editor.undo();
        assert_eq!(editor.content(), "base");
        assert!(editor.redo());
        assert_eq!(editor.content(), "base one");
        assert!(editor.redo());
        assert_eq!(editor.content(), "base one two");
        assert!(!editor.redo(), "redo stack exhausted");
        // Round trip is a net no-op for the protocol.
        let pending = editor.take_pending();
        assert_eq!(pending.apply("base").unwrap(), "base one two");
    }

    #[test]
    fn new_edit_clears_redo() {
        let mut editor = Editor::new("x");
        editor.insert(1, "y");
        editor.undo();
        assert_eq!(editor.redo_depth(), 1);
        editor.insert(1, "z");
        assert_eq!(editor.redo_depth(), 0);
        assert!(!editor.redo());
    }

    #[test]
    fn reset_clears_undo() {
        let mut editor = Editor::new("x");
        editor.insert(1, "y");
        editor.reset("fresh");
        assert!(!editor.undo());
    }

    #[test]
    fn empty_editor() {
        let mut editor = Editor::new("");
        assert!(editor.is_empty());
        editor.insert(0, "start");
        assert_eq!(editor.content(), "start");
    }
}
