//! Simulated editor clients and workload generators.
//!
//! The paper evaluates its extension by driving the real 2011 Google
//! Documents client (manually and with Selenium). This crate plays the
//! client's role for the reproduction:
//!
//! * [`Editor`] — a local text buffer that turns user edits into the
//!   delta messages the client protocol sends (§IV-A).
//! * [`DocsClient`] — a full client: open/save cycles, automatic full
//!   save on the first save of a session, and the Ack-hash conflict check
//!   whose interaction with the extension makes collaborative editing
//!   only partially functional (§VII-A).
//! * [`workload`] — deterministic generators for the paper's benchmark
//!   workloads: the §VII-B random `(D, D′)` pairs and the §VII-C
//!   sentence-level macro operations.
//! * [`malicious`] — covert-channel encoders for the §VI-B malicious
//!   client experiments.
//!
//! # Example
//!
//! ```
//! use pe_client::Editor;
//!
//! let mut editor = Editor::new("hello world");
//! editor.insert(5, ", dear");
//! editor.delete(0, 1);
//! let delta = editor.take_pending();
//! assert_eq!(delta.apply("hello world").unwrap(), editor.content());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod editor;
pub mod malicious;
pub mod workload;

pub use client::{Channel, DirectChannel, DocsClient, PrivateChannel, SaveOutcome};
pub use editor::Editor;
