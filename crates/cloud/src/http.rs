//! A minimal HTTP-shaped message model.
//!
//! Real HTTP framing is irrelevant to the paper's mechanism — what matters
//! is that requests carry a method, a path, query parameters, and a body
//! that the mediator can classify and rewrite. Bodies are
//! [`bytes::Bytes`] so large ciphertext documents are cheap to pass
//! between the client, the mediator, and the server without copying.

use bytes::Bytes;

/// Request method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Retrieve a resource.
    Get,
    /// Submit a form or command.
    Post,
    /// Store a resource (Bespin's save path).
    Put,
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Method::Get => f.write_str("GET"),
            Method::Post => f.write_str("POST"),
            Method::Put => f.write_str("PUT"),
        }
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// URL path (no query string).
    pub path: String,
    /// Decoded query parameters, in order.
    pub query: Vec<(String, String)>,
    /// Request body.
    pub body: Bytes,
}

impl Request {
    /// Builds a request with the given method.
    pub fn new(
        method: Method,
        path: &str,
        query: &[(&str, &str)],
        body: impl Into<Bytes>,
    ) -> Request {
        Request {
            method,
            path: path.to_string(),
            query: query.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            body: body.into(),
        }
    }

    /// Builds a GET request.
    pub fn get(path: &str, query: &[(&str, &str)]) -> Request {
        Request::new(Method::Get, path, query, Bytes::new())
    }

    /// Builds a POST request.
    pub fn post(path: &str, query: &[(&str, &str)], body: impl Into<Bytes>) -> Request {
        Request::new(Method::Post, path, query, body)
    }

    /// Builds a PUT request.
    pub fn put(path: &str, query: &[(&str, &str)], body: impl Into<Bytes>) -> Request {
        Request::new(Method::Put, path, query, body)
    }

    /// First value of a query parameter.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text, if valid.
    pub fn body_text(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// Total size on the wire (path + query + body), used by the network
    /// model to charge transfer time.
    pub fn wire_bytes(&self) -> usize {
        let query: usize = self.query.iter().map(|(k, v)| k.len() + v.len() + 2).sum();
        self.path.len() + query + self.body.len()
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP-style status code.
    pub status: u16,
    /// Response body.
    pub body: Bytes,
}

impl Response {
    /// A 200 response with the given body.
    pub fn ok(body: impl Into<Bytes>) -> Response {
        Response { status: 200, body: body.into() }
    }

    /// An error response.
    pub fn error(status: u16, message: &str) -> Response {
        Response { status, body: Bytes::copy_from_slice(message.as_bytes()) }
    }

    /// True for 2xx statuses.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// The body as UTF-8 text, if valid.
    pub fn body_text(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// Total size on the wire.
    pub fn wire_bytes(&self) -> usize {
        self.body.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let req = Request::post("/Doc", &[("docID", "d1"), ("cmd", "save")], "delta=%3D1");
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.query_param("docID"), Some("d1"));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(req.body_text(), Some("delta=%3D1"));
        assert!(req.wire_bytes() > req.body.len());
    }

    #[test]
    fn response_helpers() {
        let ok = Response::ok("fine");
        assert!(ok.is_success());
        assert_eq!(ok.body_text(), Some("fine"));
        let err = Response::error(403, "blocked by extension");
        assert!(!err.is_success());
        assert_eq!(err.status, 403);
    }

    #[test]
    fn methods_display() {
        assert_eq!(Method::Get.to_string(), "GET");
        assert_eq!(Method::Post.to_string(), "POST");
        assert_eq!(Method::Put.to_string(), "PUT");
    }

    #[test]
    fn non_utf8_body_is_handled() {
        let req = Request::new(Method::Post, "/x", &[], Bytes::from(vec![0xff, 0xfe]));
        assert_eq!(req.body_text(), None);
    }
}
