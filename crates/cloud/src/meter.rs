//! Wire-traffic metering.
//!
//! The macro-benchmarks (§VII-C) combine measured CPU time with modeled
//! network time; the model needs the *actual* bytes that crossed the
//! wire — including ciphertext blowup introduced by the mediator. A
//! [`MeteredService`] wraps any server and records each exchange's sizes.
//!
//! The log is a **bounded ring**: a long-lived server (`pedit serve`
//! keeps its metered wrapper for the process lifetime) must not grow an
//! unbounded `Vec` of exchanges. When the ring is full the oldest
//! exchange is dropped and counted; harnesses that drain per operation
//! (every current benchmark) never hit the cap.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::{CloudService, Request, Response};

/// Default ring capacity. Far above any per-op drain interval used by
/// the benchmarks (a handful of exchanges), small enough that the worst
/// case is ~64 KiB retained per metered server.
pub const DEFAULT_METER_CAPACITY: usize = 4096;

/// One recorded exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exchange {
    /// Bytes sent by the client (path + query + body).
    pub request_bytes: usize,
    /// Bytes returned by the server.
    pub response_bytes: usize,
}

#[derive(Debug)]
struct MeterLog {
    ring: VecDeque<Exchange>,
    capacity: usize,
    /// Oldest-exchange evictions since the last [`MeteredService::drain`].
    dropped: u64,
}

impl MeterLog {
    fn push(&mut self, exchange: Exchange) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(exchange);
    }
}

/// A transparent byte-counting wrapper around any [`CloudService`].
///
/// Clones share the same log, so a harness can keep a handle while the
/// mediator owns the service.
///
/// # Example
///
/// ```
/// use pe_cloud::docs::DocsServer;
/// use pe_cloud::meter::MeteredService;
/// use pe_cloud::{CloudService, Request};
///
/// let metered = MeteredService::new(DocsServer::new());
/// let handle = metered.clone();
/// metered.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
/// assert_eq!(handle.drain().len(), 1);
/// ```
#[derive(Debug)]
pub struct MeteredService<S> {
    inner: Arc<S>,
    log: Arc<Mutex<MeterLog>>,
}

impl<S> Clone for MeteredService<S> {
    fn clone(&self) -> Self {
        MeteredService { inner: Arc::clone(&self.inner), log: Arc::clone(&self.log) }
    }
}

impl<S: CloudService> MeteredService<S> {
    /// Wraps a service with the default ring capacity.
    pub fn new(inner: S) -> MeteredService<S> {
        MeteredService::with_capacity(inner, DEFAULT_METER_CAPACITY)
    }

    /// Wraps a service, retaining at most `capacity` exchanges (≥ 1).
    pub fn with_capacity(inner: S, capacity: usize) -> MeteredService<S> {
        let capacity = capacity.max(1);
        MeteredService {
            inner: Arc::new(inner),
            log: Arc::new(Mutex::new(MeterLog {
                ring: VecDeque::with_capacity(capacity.min(DEFAULT_METER_CAPACITY)),
                capacity,
                dropped: 0,
            })),
        }
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Takes all retained exchanges (oldest first), clearing the log and
    /// the dropped counter.
    pub fn drain(&self) -> Vec<Exchange> {
        let mut log = self.log.lock();
        log.dropped = 0;
        log.ring.drain(..).collect()
    }

    /// Total bytes over the retained exchanges (without draining).
    /// Exchanges evicted by the ring bound are not included — check
    /// [`MeteredService::dropped`] when exactness matters.
    pub fn total_bytes(&self) -> usize {
        self.log.lock().ring.iter().map(|e| e.request_bytes + e.response_bytes).sum()
    }

    /// Exchanges evicted by the ring bound since the last drain. Nonzero
    /// means the caller drained too rarely for its capacity and byte
    /// sums over [`MeteredService::drain`] undercount.
    pub fn dropped(&self) -> u64 {
        self.log.lock().dropped
    }
}

impl<S: CloudService> CloudService for MeteredService<S> {
    fn handle(&self, request: &Request) -> Response {
        let response = self.inner.handle(request);
        self.log.lock().push(Exchange {
            request_bytes: request.wire_bytes(),
            response_bytes: response.wire_bytes(),
        });
        response
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docs::DocsServer;

    #[test]
    fn records_sizes_and_drains() {
        let metered = MeteredService::new(DocsServer::new());
        let handle = metered.clone();
        metered.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
        metered.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
        let log = handle.drain();
        assert_eq!(log.len(), 2);
        assert!(log[0].request_bytes > 0);
        assert!(log[0].response_bytes > 0);
        assert!(handle.drain().is_empty(), "drain clears the log");
    }

    #[test]
    fn total_bytes_accumulates() {
        let metered = MeteredService::new(DocsServer::new());
        assert_eq!(metered.total_bytes(), 0);
        metered.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
        assert!(metered.total_bytes() > 0);
    }

    #[test]
    fn ring_bound_evicts_oldest_and_counts_drops() {
        let metered = MeteredService::with_capacity(DocsServer::new(), 3);
        for _ in 0..8 {
            metered.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
        }
        assert_eq!(metered.dropped(), 5, "8 exchanges into a 3-slot ring drop 5");
        let log = metered.drain();
        assert_eq!(log.len(), 3, "only the newest exchanges are retained");
        assert_eq!(metered.dropped(), 0, "drain resets the dropped counter");
        // The ring never grows: memory stays bounded however long the
        // server lives.
        for _ in 0..100 {
            metered.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
        }
        assert_eq!(metered.drain().len(), 3);
    }

    #[test]
    fn capacity_is_clamped_to_at_least_one() {
        let metered = MeteredService::with_capacity(DocsServer::new(), 0);
        metered.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
        metered.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
        assert_eq!(metered.drain().len(), 1);
    }
}
