//! Wire-traffic metering.
//!
//! The macro-benchmarks (§VII-C) combine measured CPU time with modeled
//! network time; the model needs the *actual* bytes that crossed the
//! wire — including ciphertext blowup introduced by the mediator. A
//! [`MeteredService`] wraps any server and records each exchange's sizes.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::{CloudService, Request, Response};

/// One recorded exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exchange {
    /// Bytes sent by the client (path + query + body).
    pub request_bytes: usize,
    /// Bytes returned by the server.
    pub response_bytes: usize,
}

/// A transparent byte-counting wrapper around any [`CloudService`].
///
/// Clones share the same log, so a harness can keep a handle while the
/// mediator owns the service.
///
/// # Example
///
/// ```
/// use pe_cloud::docs::DocsServer;
/// use pe_cloud::meter::MeteredService;
/// use pe_cloud::{CloudService, Request};
///
/// let metered = MeteredService::new(DocsServer::new());
/// let handle = metered.clone();
/// metered.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
/// assert_eq!(handle.drain().len(), 1);
/// ```
#[derive(Debug)]
pub struct MeteredService<S> {
    inner: Arc<S>,
    log: Arc<Mutex<Vec<Exchange>>>,
}

impl<S> Clone for MeteredService<S> {
    fn clone(&self) -> Self {
        MeteredService { inner: Arc::clone(&self.inner), log: Arc::clone(&self.log) }
    }
}

impl<S: CloudService> MeteredService<S> {
    /// Wraps a service.
    pub fn new(inner: S) -> MeteredService<S> {
        MeteredService { inner: Arc::new(inner), log: Arc::new(Mutex::new(Vec::new())) }
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Takes all recorded exchanges, clearing the log.
    pub fn drain(&self) -> Vec<Exchange> {
        std::mem::take(&mut *self.log.lock())
    }

    /// Total bytes over all recorded exchanges (without draining).
    pub fn total_bytes(&self) -> usize {
        self.log.lock().iter().map(|e| e.request_bytes + e.response_bytes).sum()
    }
}

impl<S: CloudService> CloudService for MeteredService<S> {
    fn handle(&self, request: &Request) -> Response {
        let response = self.inner.handle(request);
        self.log.lock().push(Exchange {
            request_bytes: request.wire_bytes(),
            response_bytes: response.wire_bytes(),
        });
        response
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docs::DocsServer;

    #[test]
    fn records_sizes_and_drains() {
        let metered = MeteredService::new(DocsServer::new());
        let handle = metered.clone();
        metered.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
        metered.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
        let log = handle.drain();
        assert_eq!(log.len(), 2);
        assert!(log[0].request_bytes > 0);
        assert!(log[0].response_bytes > 0);
        assert!(handle.drain().is_empty(), "drain clears the log");
    }

    #[test]
    fn total_bytes_accumulates() {
        let metered = MeteredService::new(DocsServer::new());
        assert_eq!(metered.total_bytes(), 0);
        metered.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
        assert!(metered.total_bytes() > 0);
    }
}
