//! Deterministic network and server latency model.
//!
//! The paper's macro-benchmarks (§VII-C) measure end-to-end latency of
//! editing operations against the live Google service: "the performance
//! impact of cryptographic manipulations is offset by communication and
//! server processing time". Our reproduction cannot reach the 2011
//! service, so the harness combines *measured* crypto/mediation time with
//! this *modeled* network time. The model is intentionally simple and
//! fully deterministic:
//!
//! ```text
//! latency(request) = rtt + wire_bytes / bandwidth + server_base
//!                        + server_per_byte · wire_bytes
//! ```
//!
//! Defaults approximate the 2011 environment the paper measured against
//! (100 ms RTT, 5 MB/s effective throughput to the CDN-fronted service,
//! 20 ms server processing); EXPERIMENTS.md records the calibration and
//! the parameters used for each reported table.

use std::time::Duration;

use crate::{Request, Response};

/// Parameters of the latency model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Round-trip time charged once per request.
    pub rtt: Duration,
    /// Transfer rate in bytes per second (both directions).
    pub bandwidth_bytes_per_sec: f64,
    /// Fixed server processing cost per request.
    pub server_base: Duration,
    /// Additional server cost per transferred byte (parsing/storage).
    pub server_per_byte: Duration,
}

impl Default for NetworkModel {
    fn default() -> NetworkModel {
        NetworkModel {
            rtt: Duration::from_millis(100),
            bandwidth_bytes_per_sec: 5_000_000.0,
            server_base: Duration::from_millis(20),
            server_per_byte: Duration::from_nanos(20),
        }
    }
}

impl NetworkModel {
    /// A model with negligible network cost (for isolating crypto cost in
    /// ablations).
    pub fn instant() -> NetworkModel {
        NetworkModel {
            rtt: Duration::ZERO,
            bandwidth_bytes_per_sec: f64::INFINITY,
            server_base: Duration::ZERO,
            server_per_byte: Duration::ZERO,
        }
    }

    /// Modeled end-to-end latency for one request/response exchange.
    pub fn round_trip(&self, request: &Request, response: &Response) -> Duration {
        self.round_trip_bytes(request.wire_bytes(), response.wire_bytes())
    }

    /// Modeled latency from raw byte counts (used with
    /// [`meter::Exchange`](crate::meter::Exchange) records).
    pub fn round_trip_bytes(&self, request_bytes: usize, response_bytes: usize) -> Duration {
        let bytes = (request_bytes + response_bytes) as f64;
        let transfer = if self.bandwidth_bytes_per_sec.is_finite() {
            Duration::from_secs_f64(bytes / self.bandwidth_bytes_per_sec)
        } else {
            Duration::ZERO
        };
        let server_var = self.server_per_byte * (request_bytes as u32);
        let latency = self.rtt + transfer + self.server_base + server_var;
        pe_observe::static_histogram!("cloud.net_modeled_ns").record_duration(latency);
        latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Request;

    fn exchange(body_len: usize) -> (Request, Response) {
        let body = "x".repeat(body_len);
        (Request::post("/Doc", &[], body), Response::ok("ack"))
    }

    #[test]
    fn default_model_charges_rtt_and_transfer() {
        let model = NetworkModel::default();
        let (req, resp) = exchange(1_000_000);
        let latency = model.round_trip(&req, &resp);
        // ~100ms RTT + ~200ms transfer + 20ms server + ~20ms per-byte.
        assert!(latency > Duration::from_millis(300), "{latency:?}");
        assert!(latency < Duration::from_millis(500), "{latency:?}");
    }

    #[test]
    fn bigger_payloads_cost_more() {
        let model = NetworkModel::default();
        let (small_req, small_resp) = exchange(100);
        let (big_req, big_resp) = exchange(100_000);
        assert!(
            model.round_trip(&big_req, &big_resp) > model.round_trip(&small_req, &small_resp)
        );
    }

    #[test]
    fn instant_model_is_zero() {
        let model = NetworkModel::instant();
        let (req, resp) = exchange(12345);
        assert_eq!(model.round_trip(&req, &resp), Duration::ZERO);
    }

    #[test]
    fn model_is_deterministic() {
        let model = NetworkModel::default();
        let (req, resp) = exchange(5000);
        assert_eq!(model.round_trip(&req, &resp), model.round_trip(&req, &resp));
    }
}
