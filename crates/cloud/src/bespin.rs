//! The Mozilla-Bespin-style file store (§III "Bespin").
//!
//! Bespin "simply uses HTTP PUT requests to send user content back to the
//! server stored as a file. No incremental update mechanisms are found."
//! The privacy wrapper therefore only needs to encrypt PUT bodies and
//! decrypt GET responses.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::{CloudService, Method, Request, Response};

/// A whole-file PUT/GET code-hosting server.
///
/// # Example
///
/// ```
/// use pe_cloud::bespin::BespinServer;
/// use pe_cloud::{CloudService, Request};
///
/// let server = BespinServer::new();
/// server.handle(&Request::put("/file/at/main.rs", &[], "fn main() {}"));
/// let resp = server.handle(&Request::get("/file/at/main.rs", &[]));
/// assert_eq!(resp.body_text(), Some("fn main() {}"));
/// ```
#[derive(Debug, Default)]
pub struct BespinServer {
    files: Mutex<HashMap<String, Vec<u8>>>,
}

impl BespinServer {
    /// Creates an empty file store.
    pub fn new() -> BespinServer {
        BespinServer::default()
    }

    /// Lists stored file paths (sorted), for tests and examples.
    pub fn list(&self) -> Vec<String> {
        let mut paths: Vec<String> = self.files.lock().keys().cloned().collect();
        paths.sort();
        paths
    }

    /// Raw stored bytes for a path (what the provider can read).
    pub fn stored(&self, path: &str) -> Option<Vec<u8>> {
        self.files.lock().get(path).cloned()
    }
}

impl CloudService for BespinServer {
    fn handle(&self, request: &Request) -> Response {
        let Some(path) = request.path.strip_prefix("/file/at/") else {
            return Response::error(404, "unknown endpoint");
        };
        match request.method {
            Method::Put => {
                self.files.lock().insert(path.to_string(), request.body.to_vec());
                Response::ok("")
            }
            Method::Get => match self.files.lock().get(path) {
                Some(content) => Response::ok(content.clone()),
                None => Response::error(404, "no such file"),
            },
            Method::Post => Response::error(405, "bespin uses PUT"),
        }
    }

    fn name(&self) -> &'static str {
        "bespin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let server = BespinServer::new();
        let resp = server.handle(&Request::put("/file/at/src/lib.rs", &[], "pub fn f() {}"));
        assert!(resp.is_success());
        let resp = server.handle(&Request::get("/file/at/src/lib.rs", &[]));
        assert_eq!(resp.body_text(), Some("pub fn f() {}"));
    }

    #[test]
    fn overwrite_replaces() {
        let server = BespinServer::new();
        server.handle(&Request::put("/file/at/a", &[], "one"));
        server.handle(&Request::put("/file/at/a", &[], "two"));
        assert_eq!(server.stored("a").unwrap(), b"two");
        assert_eq!(server.list(), vec!["a".to_string()]);
    }

    #[test]
    fn missing_file_404() {
        let server = BespinServer::new();
        assert_eq!(server.handle(&Request::get("/file/at/none", &[])).status, 404);
    }

    #[test]
    fn wrong_method_and_path_rejected() {
        let server = BespinServer::new();
        assert_eq!(server.handle(&Request::post("/file/at/a", &[], "x")).status, 405);
        assert_eq!(server.handle(&Request::get("/other", &[])).status, 404);
    }
}
