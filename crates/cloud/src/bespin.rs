//! The Mozilla-Bespin-style file store (§III "Bespin").
//!
//! Bespin "simply uses HTTP PUT requests to send user content back to the
//! server stored as a file. No incremental update mechanisms are found."
//! The privacy wrapper therefore only needs to encrypt PUT bodies and
//! decrypt GET responses.

use std::sync::Arc;

use pe_store::{DocStore, MemStore};

use crate::{CloudService, Method, Request, Response};

/// A whole-file PUT/GET code-hosting server.
///
/// Storage is pluggable via [`DocStore`] — in-memory by default, or a
/// durable [`pe_store::LogStore`] so pushed files survive a crash.
///
/// # Example
///
/// ```
/// use pe_cloud::bespin::BespinServer;
/// use pe_cloud::{CloudService, Request};
///
/// let server = BespinServer::new();
/// server.handle(&Request::put("/file/at/main.rs", &[], "fn main() {}"));
/// let resp = server.handle(&Request::get("/file/at/main.rs", &[]));
/// assert_eq!(resp.body_text(), Some("fn main() {}"));
/// ```
pub struct BespinServer {
    files: Arc<dyn DocStore>,
}

impl std::fmt::Debug for BespinServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BespinServer").field("store", &self.files.name()).finish()
    }
}

impl Default for BespinServer {
    fn default() -> BespinServer {
        BespinServer::new()
    }
}

impl BespinServer {
    /// Creates an empty in-memory file store.
    pub fn new() -> BespinServer {
        BespinServer::with_store(Arc::new(MemStore::new()))
    }

    /// Creates a file store over an existing (possibly durable) store.
    pub fn with_store(files: Arc<dyn DocStore>) -> BespinServer {
        BespinServer { files }
    }

    /// Lists stored file paths (sorted), for tests and examples.
    pub fn list(&self) -> Vec<String> {
        self.files.list()
    }

    /// Raw stored bytes for a path (what the provider can read).
    pub fn stored(&self, path: &str) -> Option<Vec<u8>> {
        self.files.content(path)
    }
}

impl CloudService for BespinServer {
    fn handle(&self, request: &Request) -> Response {
        let Some(path) = request.path.strip_prefix("/file/at/") else {
            return Response::error(404, "unknown endpoint");
        };
        match request.method {
            Method::Put => match self.files.put_full(path, &request.body) {
                Ok(_) => Response::ok(""),
                Err(e) => Response::error(500, &format!("storage failure: {e}")),
            },
            Method::Get => match self.files.content(path) {
                Some(content) => Response::ok(content),
                None => Response::error(404, "no such file"),
            },
            Method::Post => Response::error(405, "bespin uses PUT"),
        }
    }

    fn name(&self) -> &'static str {
        "bespin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let server = BespinServer::new();
        let resp = server.handle(&Request::put("/file/at/src/lib.rs", &[], "pub fn f() {}"));
        assert!(resp.is_success());
        let resp = server.handle(&Request::get("/file/at/src/lib.rs", &[]));
        assert_eq!(resp.body_text(), Some("pub fn f() {}"));
    }

    #[test]
    fn overwrite_replaces() {
        let server = BespinServer::new();
        server.handle(&Request::put("/file/at/a", &[], "one"));
        server.handle(&Request::put("/file/at/a", &[], "two"));
        assert_eq!(server.stored("a").unwrap(), b"two");
        assert_eq!(server.list(), vec!["a".to_string()]);
    }

    #[test]
    fn missing_file_404() {
        let server = BespinServer::new();
        assert_eq!(server.handle(&Request::get("/file/at/none", &[])).status, 404);
    }

    #[test]
    fn wrong_method_and_path_rejected() {
        let server = BespinServer::new();
        assert_eq!(server.handle(&Request::post("/file/at/a", &[], "x")).status, 405);
        assert_eq!(server.handle(&Request::get("/other", &[])).status, 404);
    }
}
