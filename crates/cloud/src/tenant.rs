//! Tenant-directory record endpoints.
//!
//! The multi-tenant layer (`pe-tenant`) keeps its directory — users,
//! documents, grants, wrapped-key records — on the *untrusted* server, as
//! opaque text records. The server only ever sees ciphertext-equivalent
//! material: PBKDF2 salts, HKDF verifiers, and RFC 3394-wrapped keys; all
//! key derivation and unwrapping happens client-side in the mediator.
//!
//! Records ride the same [`DocStore`](pe_store::DocStore) as documents,
//! under the reserved id prefix [`TENANT_PREFIX`], so they shard, group
//! commit, and survive `kill -9` exactly like document bodies, and the
//! snapshot/restore path of the CLI's text-file store carries them for
//! free. They are hidden from the user-facing document listing.
//!
//! Wire protocol (all bodies are plain text record payloads):
//!
//! * `GET  /tenant/record?key=K` — fetch one record (404 when absent).
//! * `POST /tenant/record?key=K` — create-or-replace a record.
//! * `POST /tenant/record?key=K&if_absent=1` — create; 409 when present
//!   (registration uniqueness).
//! * `POST /tenant/record?key=K&cmd=delete` — delete; body reports
//!   `deleted=true|false`.
//! * `GET  /tenant/list?prefix=P` — enumerate record keys under a prefix
//!   (form-encoded repeated `key` fields, sorted).

use pe_crypto::form;

use crate::docs::DocsServer;
use crate::{Request, Response};

/// Reserved document-id prefix for tenant-directory records. Documents
/// created through the normal protocol get `doc<N>` ids, so the prefix
/// can never collide.
pub const TENANT_PREFIX: &str = "~tenant/";

/// Hard cap on a single directory record. Records are a few hundred
/// bytes (a wrapped key is 40); the cap only exists to bound abuse.
pub const MAX_RECORD_BYTES: usize = 64 * 1024;

fn record_doc_id(key: &str) -> Option<String> {
    if key.is_empty() || key.contains(|c: char| c.is_control()) {
        return None;
    }
    Some(format!("{TENANT_PREFIX}{key}"))
}

impl DocsServer {
    pub(crate) fn tenant_record_get(&self, request: &Request) -> Response {
        let Some(id) = request.query_param("key").and_then(record_doc_id) else {
            return Response::error(400, "missing or malformed record key");
        };
        pe_observe::static_counter!("tenant.records.get").inc();
        match self.stored_content(&id) {
            Some(value) => Response::ok(value),
            None => Response::error(404, "no such record"),
        }
    }

    pub(crate) fn tenant_record_post(&self, request: &Request) -> Response {
        let Some(id) = request.query_param("key").and_then(record_doc_id) else {
            return Response::error(400, "missing or malformed record key");
        };
        if request.query_param("cmd") == Some("delete") {
            pe_observe::static_counter!("tenant.records.delete").inc();
            let deleted = match self.store().remove(&id) {
                Ok(deleted) => deleted,
                Err(e) => return Response::error(500, &format!("storage failure: {e}")),
            };
            return Response::ok(form::encode_pairs(&[(
                "deleted",
                if deleted { "true" } else { "false" },
            )]));
        }
        let Some(value) = request.body_text() else {
            return Response::error(400, "record value must be UTF-8 text");
        };
        if value.len() > MAX_RECORD_BYTES {
            return Response::error(413, "record too large");
        }
        pe_observe::static_counter!("tenant.records.put").inc();
        let created = match self.store().create(&id) {
            Ok(created) => created,
            Err(e) => return Response::error(500, &format!("storage failure: {e}")),
        };
        if !created && request.query_param("if_absent").is_some() {
            return Response::error(409, "record already exists");
        }
        if let Err(e) = self.store().put_full(&id, value.as_bytes()) {
            return Response::error(500, &format!("storage failure: {e}"));
        }
        Response::ok("stored")
    }

    pub(crate) fn tenant_list(&self, request: &Request) -> Response {
        let prefix = request.query_param("prefix").unwrap_or("");
        if prefix.contains(|c: char| c.is_control()) {
            return Response::error(400, "malformed prefix");
        }
        pe_observe::static_counter!("tenant.records.list").inc();
        let keys: Vec<(&str, String)> = self
            .store()
            .list()
            .into_iter()
            .filter_map(|id| {
                id.strip_prefix(TENANT_PREFIX)
                    .filter(|key| key.starts_with(prefix))
                    .map(|key| ("key", key.to_string()))
            })
            .collect();
        Response::ok(form::encode_pairs(&keys))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CloudService;

    fn get(server: &DocsServer, key: &str) -> Response {
        server.handle(&Request::get("/tenant/record", &[("key", key)]))
    }

    fn put(server: &DocsServer, key: &str, value: &str) -> Response {
        server.handle(&Request::post("/tenant/record", &[("key", key)], value.to_string()))
    }

    #[test]
    fn record_crud_roundtrip() {
        let server = DocsServer::new();
        assert_eq!(get(&server, "u/alice").status, 404);
        assert!(put(&server, "u/alice", "salt=00&iters=100").is_success());
        assert_eq!(get(&server, "u/alice").body_text(), Some("salt=00&iters=100"));
        assert!(put(&server, "u/alice", "salt=11&iters=200").is_success());
        assert_eq!(get(&server, "u/alice").body_text(), Some("salt=11&iters=200"));
        let del = server.handle(&Request::post(
            "/tenant/record",
            &[("key", "u/alice"), ("cmd", "delete")],
            "",
        ));
        assert_eq!(del.body_text(), Some("deleted=true"));
        assert_eq!(get(&server, "u/alice").status, 404);
        let del = server.handle(&Request::post(
            "/tenant/record",
            &[("key", "u/alice"), ("cmd", "delete")],
            "",
        ));
        assert_eq!(del.body_text(), Some("deleted=false"));
    }

    #[test]
    fn if_absent_enforces_uniqueness() {
        let server = DocsServer::new();
        let first = server.handle(&Request::post(
            "/tenant/record",
            &[("key", "u/bob"), ("if_absent", "1")],
            "v1",
        ));
        assert!(first.is_success());
        let second = server.handle(&Request::post(
            "/tenant/record",
            &[("key", "u/bob"), ("if_absent", "1")],
            "v2",
        ));
        assert_eq!(second.status, 409);
        assert_eq!(get(&server, "u/bob").body_text(), Some("v1"));
    }

    #[test]
    fn list_filters_by_prefix() {
        let server = DocsServer::new();
        put(&server, "u/alice", "a");
        put(&server, "u/bob", "b");
        put(&server, "g/doc1/alice", "w");
        let resp = server.handle(&Request::get("/tenant/list", &[("prefix", "u/")]));
        let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
        let keys: Vec<&str> = pairs.iter().map(|(_, v)| v.as_str()).collect();
        assert_eq!(keys, vec!["u/alice", "u/bob"]);
        let resp = server.handle(&Request::get("/tenant/list", &[("prefix", "zz/")]));
        assert_eq!(resp.body_text(), Some(""));
    }

    #[test]
    fn records_hidden_from_document_listing_but_snapshotted() {
        let server = DocsServer::new();
        put(&server, "u/alice", "secret-salt");
        let created = server.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
        assert!(created.is_success());
        assert_eq!(server.list_documents(), vec!["doc1".to_string()]);
        // The snapshot/restore path must still carry the records.
        let restored = DocsServer::restore(&server.snapshot()).unwrap();
        assert_eq!(get(&restored, "u/alice").body_text(), Some("secret-salt"));
    }

    #[test]
    fn malformed_keys_rejected() {
        let server = DocsServer::new();
        assert_eq!(put(&server, "", "v").status, 400);
        assert_eq!(put(&server, "a\nb", "v").status, 400);
        assert_eq!(server.handle(&Request::get("/tenant/record", &[])).status, 400);
        assert_eq!(get(&server, "bad\tkey").status, 400);
    }

    #[test]
    fn oversized_record_rejected() {
        let server = DocsServer::new();
        let huge = "x".repeat(MAX_RECORD_BYTES + 1);
        assert_eq!(put(&server, "u/huge", &huge).status, 413);
    }
}
