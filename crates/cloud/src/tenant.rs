//! Tenant-directory record endpoints.
//!
//! The multi-tenant layer (`pe-tenant`) keeps its directory — users,
//! documents, grants, wrapped-key records — on the *untrusted* server, as
//! text records. The server only ever sees ciphertext-equivalent
//! material: PBKDF2 salts, HKDF verifiers, and RFC 3394-wrapped keys; all
//! key derivation and unwrapping happens client-side in the mediator.
//!
//! Records ride the same [`DocStore`](pe_store::DocStore) as documents,
//! under the reserved id prefix [`TENANT_PREFIX`], so they shard, group
//! commit, and survive `kill -9` exactly like document bodies, and the
//! snapshot/restore path of the CLI's text-file store carries them for
//! free. They are hidden from the user-facing document listing.
//!
//! ## Mutation auth
//!
//! Confidentiality never depends on the server (a grant that unwraps
//! cannot be forged and a wrapped key cannot be read), but directory
//! *availability* shouldn't be destroyable by any network peer either:
//! deleting `g/<doc>/<owner>` would discard the only guaranteed wrapped
//! copy of a document's data key. Mutations of directory records are
//! therefore authenticated: the client attaches `auth=<user>` and
//! `proof=<hex verifier>` query parameters, and the server compares the
//! proof — in constant time — against the verifier stored at that user's
//! registration. Because verifiers are **redacted from every read** (see
//! below), only a client that derived the verifier from the user's
//! passphrase can present it. Per-key rules:
//!
//! * `u/<user>` — create: open (registration, first-come uniqueness via
//!   `if_absent`); replace/delete: the user themselves.
//! * `p/<user>` — pending rotation credentials: the user themselves.
//! * `d/<doc>` — create: the owner named in the record; replace/delete:
//!   the currently recorded owner.
//! * `g/<doc>/<user>` — the grant subject or the document owner. (A
//!   non-owner "self-granting" a forged record gains nothing: AES-KW
//!   authenticates the KEK, so a record not wrapped from the real data
//!   key never unwraps.)
//! * `i/<doc>/<id>` — create: the document owner; delete: the owner or
//!   the invite's grantee (who burns it on accept).
//!
//! Record bodies for reserved keys are schema-validated at write time, so
//! a stored `u/` record always carries the verifier the auth check needs.
//! Residual exposure, documented deliberately: whoever holds an invite
//! *code* holds a bearer secret for that document key (the invite record
//! wraps the key under the KEK inside the code), and the server itself —
//! or anyone it colludes with — can always deny service or discard
//! records wholesale. Auth narrows the attacker set for directory
//! destruction from "any network peer" to "the server", which is the
//! paper's trust model.
//!
//! ## Verifier redaction
//!
//! `GET` of a `u/` or `p/` record strips the `verifier` field before
//! responding: a verifier is derived from the passphrase by PBKDF2+HKDF,
//! so serving it would hand any network peer an offline
//! dictionary-attack target (and the mutation-auth token). Clients check
//! passphrases through `POST /tenant/verify` instead, which answers
//! `ok=true|false` for a presented proof without ever revealing the
//! stored value.
//!
//! Wire protocol (all bodies are plain text record payloads):
//!
//! * `GET  /tenant/record?key=K` — fetch one record (404 when absent;
//!   verifier redacted for `u/`/`p/` keys).
//! * `POST /tenant/record?key=K[&auth=U&proof=HEX]` — create-or-replace.
//! * `POST /tenant/record?key=K&if_absent=1` — create; 409 when present
//!   (registration uniqueness).
//! * `POST /tenant/record?key=K&cmd=delete[&auth=U&proof=HEX]` — delete;
//!   body reports `deleted=true|false`.
//! * `POST /tenant/verify?key=K&proof=HEX` — check a verifier proof
//!   against a `u/` or `p/` record; body reports `ok=true|false`.
//! * `GET  /tenant/list?prefix=P` — enumerate record keys under a prefix
//!   (form-encoded repeated `key` fields, sorted).
//!
//! Record writes are atomic: a record is either absent or carries its
//! full payload — there is no created-but-empty intermediate state, and
//! an empty record left behind by an older server crash is treated as
//! absent (it can be re-created, never 409-blocks).

use pe_crypto::{form, hex};

use crate::docs::DocsServer;
use crate::{Request, Response};

/// Reserved document-id prefix for tenant-directory records. Documents
/// created through the normal protocol get `doc<N>` ids, so the prefix
/// can never collide.
pub const TENANT_PREFIX: &str = "~tenant/";

/// Hard cap on a single directory record. Records are a few hundred
/// bytes (a wrapped key is 40); the cap only exists to bound abuse.
pub const MAX_RECORD_BYTES: usize = 64 * 1024;

/// Hex chars of a 16-byte salt / verifier.
const HEX16: usize = 32;
/// Hex chars of a 40-byte AES-KW wrapped key.
const HEX40: usize = 80;

fn record_doc_id(key: &str) -> Option<String> {
    if key.is_empty() || key.contains(|c: char| c.is_control()) {
        return None;
    }
    Some(format!("{TENANT_PREFIX}{key}"))
}

/// Same name alphabet the `pe-tenant` keyspace uses.
fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

/// The directory schema role of a record key.
enum KeyKind<'a> {
    /// `u/<user>` — registered credentials.
    User(&'a str),
    /// `p/<user>` — pending rotation credentials.
    Pending(&'a str),
    /// `d/<doc>` — document ownership.
    Doc(&'a str),
    /// `g/<doc>/<user>` — a wrapped data key.
    Grant { doc: &'a str, user: &'a str },
    /// `i/<doc>/<id>` — a pending invite.
    Invite { doc: &'a str },
    /// Outside the reserved directory prefixes: stored opaquely,
    /// unauthenticated (nothing in the directory trusts such keys).
    Other,
}

/// Classifies a record key; `None` for a malformed reserved-prefix key.
fn classify(key: &str) -> Option<KeyKind<'_>> {
    if let Some(name) = key.strip_prefix("u/") {
        return valid_name(name).then_some(KeyKind::User(name));
    }
    if let Some(name) = key.strip_prefix("p/") {
        return valid_name(name).then_some(KeyKind::Pending(name));
    }
    if let Some(name) = key.strip_prefix("d/") {
        return valid_name(name).then_some(KeyKind::Doc(name));
    }
    if let Some(rest) = key.strip_prefix("g/") {
        let (doc, user) = rest.split_once('/')?;
        return (valid_name(doc) && valid_name(user)).then_some(KeyKind::Grant { doc, user });
    }
    if let Some(rest) = key.strip_prefix("i/") {
        let (doc, id) = rest.split_once('/')?;
        return (valid_name(doc) && valid_name(id)).then_some(KeyKind::Invite { doc });
    }
    Some(KeyKind::Other)
}

/// Constant-shape byte comparison for verifier proofs.
fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b.iter()).fold(0u8, |acc, (x, y)| acc | (x ^ y)) == 0
}

fn is_hex(text: &str, len: usize) -> bool {
    text.len() == len && hex::decode(text).is_ok()
}

fn field<'a>(pairs: &'a [(String, String)], key: &str) -> Option<&'a str> {
    form::first_value(pairs, key)
}

fn denied(status: u16, message: &str) -> Response {
    pe_observe::static_counter!("tenant.records.denied").inc();
    Response::error(status, message)
}

impl DocsServer {
    pub(crate) fn tenant_record_get(&self, request: &Request) -> Response {
        let Some(key) = request.query_param("key") else {
            return Response::error(400, "missing or malformed record key");
        };
        let Some(id) = record_doc_id(key) else {
            return Response::error(400, "missing or malformed record key");
        };
        pe_observe::static_counter!("tenant.records.get").inc();
        let Some(value) = self.stored_content(&id).filter(|c| !c.is_empty()) else {
            return Response::error(404, "no such record");
        };
        // Never serve a login verifier: it is the mutation-auth token and
        // an offline dictionary-attack target.
        if key.starts_with("u/") || key.starts_with("p/") {
            return match redact_verifier(&value) {
                Some(redacted) => Response::ok(redacted),
                None => Response::error(500, "unparseable user record"),
            };
        }
        Response::ok(value)
    }

    pub(crate) fn tenant_record_post(&self, request: &Request) -> Response {
        // One writer at a time across all tenant records: the
        // check-then-put pairs below (uniqueness, ownership) stay atomic.
        let _guard = self.tenant_mutation_lock();
        let Some(key) = request.query_param("key") else {
            return Response::error(400, "missing or malformed record key");
        };
        let (Some(id), Some(kind)) = (record_doc_id(key), classify(key)) else {
            return Response::error(400, "missing or malformed record key");
        };
        let auth = match self.authed_user(request) {
            Ok(auth) => auth,
            Err(response) => return response,
        };
        let exists = self.stored_content(&id).is_some_and(|c| !c.is_empty());
        if request.query_param("cmd") == Some("delete") {
            pe_observe::static_counter!("tenant.records.delete").inc();
            if !exists {
                return Response::ok(form::encode_pairs(&[("deleted", "false")]));
            }
            if let Err(response) = self.authorize_delete(&kind, &id, auth) {
                return response;
            }
            let deleted = match self.store().remove(&id) {
                Ok(deleted) => deleted,
                Err(e) => return Response::error(500, &format!("storage failure: {e}")),
            };
            return Response::ok(form::encode_pairs(&[(
                "deleted",
                if deleted { "true" } else { "false" },
            )]));
        }
        let Some(value) = request.body_text() else {
            return Response::error(400, "record value must be UTF-8 text");
        };
        if value.len() > MAX_RECORD_BYTES {
            return Response::error(413, "record too large");
        }
        if let Err(response) = validate_record_body(&kind, key, value) {
            return response;
        }
        if exists && request.query_param("if_absent").is_some() {
            return Response::error(409, "record already exists");
        }
        if let Err(response) = self.authorize_put(&kind, value, exists, auth) {
            return response;
        }
        pe_observe::static_counter!("tenant.records.put").inc();
        // A single put_full: the record is never observable half-created.
        if let Err(e) = self.store().put_full(&id, value.as_bytes()) {
            return Response::error(500, &format!("storage failure: {e}"));
        }
        Response::ok("stored")
    }

    /// Checks a verifier proof against a stored `u/` or `p/` record
    /// without revealing it.
    pub(crate) fn tenant_verify(&self, request: &Request) -> Response {
        pe_observe::static_counter!("tenant.records.verify").inc();
        let key = request.query_param("key").unwrap_or("");
        let ok_kind = matches!(classify(key), Some(KeyKind::User(_) | KeyKind::Pending(_)));
        let (Some(id), true) = (record_doc_id(key), ok_kind) else {
            return Response::error(400, "verify needs a u/ or p/ record key");
        };
        let Some(proof) = request.query_param("proof") else {
            return Response::error(400, "missing proof");
        };
        let Some(content) = self.stored_content(&id).filter(|c| !c.is_empty()) else {
            return Response::error(404, "no such record");
        };
        let ok = stored_verifier(&content)
            .zip(hex::decode(proof).ok())
            .is_some_and(|(stored, presented)| ct_eq(&stored, &presented));
        Response::ok(form::encode_pairs(&[("ok", if ok { "true" } else { "false" })]))
    }

    pub(crate) fn tenant_list(&self, request: &Request) -> Response {
        let prefix = request.query_param("prefix").unwrap_or("");
        if prefix.contains(|c: char| c.is_control()) {
            return Response::error(400, "malformed prefix");
        }
        pe_observe::static_counter!("tenant.records.list").inc();
        let keys: Vec<(&str, String)> = self
            .store()
            .list()
            .into_iter()
            .filter_map(|id| {
                id.strip_prefix(TENANT_PREFIX)
                    .filter(|key| key.starts_with(prefix))
                    .map(|key| ("key", key.to_string()))
            })
            .collect();
        Response::ok(form::encode_pairs(&keys))
    }

    /// Validates the `auth`/`proof` query parameters when present:
    /// `Ok(Some(user))` for a valid proof, `Ok(None)` when no auth was
    /// attached, `Err(403)` for a bad one.
    fn authed_user<'r>(&self, request: &'r Request) -> Result<Option<&'r str>, Response> {
        let user = request.query_param("auth");
        let proof = request.query_param("proof");
        let (user, proof) = match (user, proof) {
            (None, None) => return Ok(None),
            (Some(user), Some(proof)) => (user, proof),
            _ => return Err(denied(400, "auth and proof travel together")),
        };
        if !valid_name(user) {
            return Err(denied(403, "bad auth"));
        }
        let stored = record_doc_id(&format!("u/{user}"))
            .and_then(|id| self.stored_content(&id))
            .as_deref()
            .and_then(stored_verifier);
        let presented = hex::decode(proof).ok();
        match stored.zip(presented) {
            Some((stored, presented)) if ct_eq(&stored, &presented) => Ok(Some(user)),
            _ => Err(denied(403, "bad auth")),
        }
    }

    /// The recorded owner of `d/<doc>`, when that record exists and
    /// parses.
    fn stored_owner(&self, doc: &str) -> Option<String> {
        let content = self.stored_content(&format!("{TENANT_PREFIX}d/{doc}"))?;
        let pairs = form::parse_pairs(&content).ok()?;
        field(&pairs, "owner").map(str::to_string)
    }

    fn authorize_put(
        &self,
        kind: &KeyKind<'_>,
        value: &str,
        exists: bool,
        auth: Option<&str>,
    ) -> Result<(), Response> {
        let allowed = match kind {
            // Registration is open; replacing credentials is not.
            KeyKind::User(name) => !exists || auth == Some(*name),
            KeyKind::Pending(name) => auth == Some(*name),
            KeyKind::Doc(_) => {
                let owner = if exists {
                    self.stored_content_owner_of(kind)
                } else {
                    // Creating: the record's own owner field (validated)
                    // must be the authenticated user.
                    form::parse_pairs(value)
                        .ok()
                        .and_then(|pairs| field(&pairs, "owner").map(str::to_string))
                };
                owner.as_deref().is_some_and(|owner| auth == Some(owner))
            }
            KeyKind::Grant { doc, user } => {
                auth == Some(*user)
                    || self.stored_owner(doc).as_deref().is_some_and(|o| auth == Some(o))
            }
            KeyKind::Invite { doc } => {
                self.stored_owner(doc).as_deref().is_some_and(|o| auth == Some(o))
            }
            KeyKind::Other => true,
        };
        if allowed {
            Ok(())
        } else if auth.is_none() {
            Err(denied(401, "mutation requires auth"))
        } else {
            Err(denied(403, "not authorized for this record"))
        }
    }

    fn authorize_delete(
        &self,
        kind: &KeyKind<'_>,
        id: &str,
        auth: Option<&str>,
    ) -> Result<(), Response> {
        let allowed = match kind {
            KeyKind::User(name) | KeyKind::Pending(name) => auth == Some(*name),
            KeyKind::Doc(_) => {
                self.stored_content_owner_of(kind).as_deref().is_some_and(|o| auth == Some(o))
            }
            KeyKind::Grant { doc, user } => {
                auth == Some(*user)
                    || self.stored_owner(doc).as_deref().is_some_and(|o| auth == Some(o))
            }
            KeyKind::Invite { doc } => {
                let grantee = self
                    .stored_content(id)
                    .and_then(|c| form::parse_pairs(&c).ok())
                    .and_then(|pairs| field(&pairs, "grantee").map(str::to_string));
                grantee.as_deref().is_some_and(|g| auth == Some(g))
                    || self.stored_owner(doc).as_deref().is_some_and(|o| auth == Some(o))
            }
            KeyKind::Other => true,
        };
        if allowed {
            Ok(())
        } else if auth.is_none() {
            Err(denied(401, "mutation requires auth"))
        } else {
            Err(denied(403, "not authorized for this record"))
        }
    }

    /// Owner lookup for a `d/<doc>` kind.
    fn stored_content_owner_of(&self, kind: &KeyKind<'_>) -> Option<String> {
        match kind {
            KeyKind::Doc(doc) => self.stored_owner(doc),
            _ => None,
        }
    }
}

/// Re-encodes a user record without its `verifier` field.
fn redact_verifier(content: &str) -> Option<String> {
    let pairs = form::parse_pairs(content).ok()?;
    let kept: Vec<(String, String)> =
        pairs.into_iter().filter(|(k, _)| k != "verifier").collect();
    Some(form::encode_pairs(&kept))
}

/// The `verifier` field of a stored user record, decoded.
fn stored_verifier(content: &str) -> Option<Vec<u8>> {
    let pairs = form::parse_pairs(content).ok()?;
    hex::decode(field(&pairs, "verifier")?).ok()
}

/// Schema-validates a reserved-prefix record body so auth lookups can
/// rely on stored records parsing (and a `u/` record always carries the
/// verifier the auth check compares against).
fn validate_record_body(kind: &KeyKind<'_>, key: &str, value: &str) -> Result<(), Response> {
    let reject = |msg: &str| Err(Response::error(400, msg));
    let pairs = match kind {
        KeyKind::Other => return Ok(()),
        _ => match form::parse_pairs(value) {
            Ok(pairs) => pairs,
            Err(_) => return reject("record body must be form-encoded"),
        },
    };
    match kind {
        KeyKind::User(name) | KeyKind::Pending(name) => {
            let iters_ok = field(&pairs, "iters")
                .and_then(|t| t.parse::<u32>().ok())
                .is_some_and(|iters| iters > 0);
            if field(&pairs, "user") != Some(name)
                || !field(&pairs, "salt").is_some_and(|s| is_hex(s, HEX16))
                || !iters_ok
                || !field(&pairs, "verifier").is_some_and(|v| is_hex(v, HEX16))
            {
                return reject("malformed user record");
            }
        }
        KeyKind::Doc(name) => {
            if field(&pairs, "doc") != Some(name)
                || !field(&pairs, "owner").is_some_and(valid_name)
            {
                return reject("malformed doc record");
            }
        }
        KeyKind::Grant { doc, user } => {
            if field(&pairs, "doc") != Some(doc)
                || field(&pairs, "user") != Some(user)
                || !field(&pairs, "wrapped").is_some_and(|w| is_hex(w, HEX40))
            {
                return reject("malformed grant record");
            }
        }
        KeyKind::Invite { doc } => {
            let id = key.strip_prefix("i/").and_then(|rest| rest.split_once('/')).map(|(_, id)| id);
            if field(&pairs, "doc") != Some(doc)
                || field(&pairs, "invite") != id
                || !field(&pairs, "grantee").is_some_and(valid_name)
                || !field(&pairs, "wrapped").is_some_and(|w| is_hex(w, HEX40))
            {
                return reject("malformed invite record");
            }
        }
        KeyKind::Other => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CloudService;
    use pe_store::DocStore;

    const ALICE_V: [u8; 16] = [0xA1; 16];
    const BOB_V: [u8; 16] = [0xB2; 16];

    fn user_body(name: &str, verifier: &[u8; 16]) -> String {
        form::encode_pairs(&[
            ("user", name),
            ("salt", &hex::encode(&[7u8; 16])),
            ("iters", "100"),
            ("verifier", &hex::encode(verifier)),
        ])
    }

    fn wrapped_hex() -> String {
        hex::encode(&[0xEE; 40])
    }

    fn get(server: &DocsServer, key: &str) -> Response {
        server.handle(&Request::get("/tenant/record", &[("key", key)]))
    }

    fn put(server: &DocsServer, key: &str, value: &str) -> Response {
        server.handle(&Request::post("/tenant/record", &[("key", key)], value.to_string()))
    }

    fn put_as(server: &DocsServer, key: &str, value: &str, user: &str, v: &[u8; 16]) -> Response {
        server.handle(&Request::post(
            "/tenant/record",
            &[("key", key), ("auth", user), ("proof", &hex::encode(v))],
            value.to_string(),
        ))
    }

    fn delete_as(server: &DocsServer, key: &str, user: &str, v: &[u8; 16]) -> Response {
        server.handle(&Request::post(
            "/tenant/record",
            &[("key", key), ("cmd", "delete"), ("auth", user), ("proof", &hex::encode(v))],
            "",
        ))
    }

    fn register(server: &DocsServer, name: &str, verifier: &[u8; 16]) {
        let response = server.handle(&Request::post(
            "/tenant/record",
            &[("key", &format!("u/{name}")), ("if_absent", "1")],
            user_body(name, verifier),
        ));
        assert!(response.is_success());
    }

    /// Alice registers and owns doc1; bob registers.
    fn two_user_setup(server: &DocsServer) {
        register(server, "alice", &ALICE_V);
        register(server, "bob", &BOB_V);
        let doc = form::encode_pairs(&[("doc", "doc1"), ("owner", "alice")]);
        assert!(put_as(server, "d/doc1", &doc, "alice", &ALICE_V).is_success());
        let grant =
            form::encode_pairs(&[("doc", "doc1"), ("user", "alice"), ("wrapped", &wrapped_hex())]);
        assert!(put_as(server, "g/doc1/alice", &grant, "alice", &ALICE_V).is_success());
    }

    #[test]
    fn record_crud_roundtrip_with_auth() {
        let server = DocsServer::new();
        assert_eq!(get(&server, "u/alice").status, 404);
        register(&server, "alice", &ALICE_V);
        // Replacing credentials needs the verifier; re-registration 409s.
        assert_eq!(put(&server, "u/alice", &user_body("alice", &BOB_V)).status, 401);
        assert!(put_as(&server, "u/alice", &user_body("alice", &BOB_V), "alice", &ALICE_V)
            .is_success());
        let del = delete_as(&server, "u/alice", "alice", &BOB_V);
        assert_eq!(del.body_text(), Some("deleted=true"));
        assert_eq!(get(&server, "u/alice").status, 404);
        // Once the record is gone its verifier is too, so stale auth no
        // longer validates; an unauthenticated delete of an absent
        // record reports deleted=false.
        assert_eq!(delete_as(&server, "u/alice", "alice", &BOB_V).status, 403);
        let del = server.handle(&Request::post(
            "/tenant/record",
            &[("key", "u/alice"), ("cmd", "delete")],
            "",
        ));
        assert_eq!(del.body_text(), Some("deleted=false"));
    }

    #[test]
    fn if_absent_enforces_uniqueness() {
        let server = DocsServer::new();
        register(&server, "bob", &BOB_V);
        let second = server.handle(&Request::post(
            "/tenant/record",
            &[("key", "u/bob"), ("if_absent", "1")],
            user_body("bob", &ALICE_V),
        ));
        assert_eq!(second.status, 409);
    }

    #[test]
    fn verifier_is_redacted_from_reads_but_verifiable() {
        let server = DocsServer::new();
        register(&server, "alice", &ALICE_V);
        let body = get(&server, "u/alice").body_text().unwrap().to_string();
        assert!(!body.contains("verifier"), "verifier leaked: {body}");
        assert!(body.contains("salt"), "salt must stay readable for login: {body}");
        let verify = |proof: &str| {
            server.handle(&Request::post(
                "/tenant/verify",
                &[("key", "u/alice"), ("proof", proof)],
                "",
            ))
        };
        assert_eq!(verify(&hex::encode(&ALICE_V)).body_text(), Some("ok=true"));
        assert_eq!(verify(&hex::encode(&BOB_V)).body_text(), Some("ok=false"));
        assert_eq!(verify("junk").body_text(), Some("ok=false"));
        let ghost = server.handle(&Request::post(
            "/tenant/verify",
            &[("key", "u/ghost"), ("proof", "00")],
            "",
        ));
        assert_eq!(ghost.status, 404);
    }

    #[test]
    fn grant_mutations_require_subject_or_owner() {
        let server = DocsServer::new();
        two_user_setup(&server);
        // The review's attack: a non-owner deleting the owner's grant —
        // the only wrapped copy of the data key.
        assert_eq!(
            server
                .handle(&Request::post(
                    "/tenant/record",
                    &[("key", "g/doc1/alice"), ("cmd", "delete")],
                    "",
                ))
                .status,
            401
        );
        assert_eq!(delete_as(&server, "g/doc1/alice", "bob", &BOB_V).status, 403);
        assert_eq!(get(&server, "g/doc1/alice").status, 200, "grant survived");
        // A wrong proof never authenticates.
        assert_eq!(delete_as(&server, "g/doc1/alice", "alice", &BOB_V).status, 403);
        // Bob may write his own grant record (accept flow) and the owner
        // may delete it (revoke flow).
        let grant =
            form::encode_pairs(&[("doc", "doc1"), ("user", "bob"), ("wrapped", &wrapped_hex())]);
        assert_eq!(put(&server, "g/doc1/bob", &grant).status, 401);
        assert!(put_as(&server, "g/doc1/bob", &grant, "bob", &BOB_V).is_success());
        assert_eq!(
            delete_as(&server, "g/doc1/bob", "alice", &ALICE_V).body_text(),
            Some("deleted=true")
        );
    }

    #[test]
    fn user_and_doc_records_resist_takeover() {
        let server = DocsServer::new();
        two_user_setup(&server);
        // Bob cannot replace alice's credentials or steal doc ownership.
        assert_eq!(put_as(&server, "u/alice", &user_body("alice", &BOB_V), "bob", &BOB_V).status, 403);
        let stolen = form::encode_pairs(&[("doc", "doc1"), ("owner", "bob")]);
        assert_eq!(put_as(&server, "d/doc1", &stolen, "bob", &BOB_V).status, 403);
        assert_eq!(delete_as(&server, "d/doc1", "bob", &BOB_V).status, 403);
        // Creating a doc record claiming someone else as owner fails too.
        let forged = form::encode_pairs(&[("doc", "doc2"), ("owner", "alice")]);
        assert_eq!(put_as(&server, "d/doc2", &forged, "bob", &BOB_V).status, 403);
    }

    #[test]
    fn invite_mutations_follow_owner_and_grantee() {
        let server = DocsServer::new();
        two_user_setup(&server);
        let invite = form::encode_pairs(&[
            ("doc", "doc1"),
            ("invite", "CODE1234"),
            ("grantee", "bob"),
            ("wrapped", &wrapped_hex()),
        ]);
        assert_eq!(put(&server, "i/doc1/CODE1234", &invite).status, 401);
        assert_eq!(put_as(&server, "i/doc1/CODE1234", &invite, "bob", &BOB_V).status, 403);
        assert!(put_as(&server, "i/doc1/CODE1234", &invite, "alice", &ALICE_V).is_success());
        // The grantee burns it on accept.
        assert_eq!(
            delete_as(&server, "i/doc1/CODE1234", "bob", &BOB_V).body_text(),
            Some("deleted=true")
        );
    }

    #[test]
    fn reserved_record_bodies_are_schema_validated() {
        let server = DocsServer::new();
        assert_eq!(put(&server, "u/alice", "not a record").status, 400);
        assert_eq!(put(&server, "u/alice", &user_body("mallory", &ALICE_V)).status, 400);
        register(&server, "alice", &ALICE_V);
        let short =
            form::encode_pairs(&[("doc", "doc1"), ("user", "alice"), ("wrapped", "0011")]);
        assert_eq!(put_as(&server, "g/doc1/alice", &short, "alice", &ALICE_V).status, 400);
        assert_eq!(put_as(&server, "d/doc1", "owner=no one", "alice", &ALICE_V).status, 400);
        // Malformed reserved keys never store.
        assert_eq!(put(&server, "g/doc1", "x").status, 400);
        assert_eq!(put(&server, "u/", "x").status, 400);
        assert_eq!(put(&server, "u/bad name", "x").status, 400);
    }

    #[test]
    fn empty_record_is_absent_not_a_tombstone() {
        let server = DocsServer::new();
        // An empty record — the residue of an older server's crash
        // between create and put_full — must neither 409-block
        // registration nor decode as corrupt on read.
        server.store().create("~tenant/u/alice").unwrap();
        assert_eq!(get(&server, "u/alice").status, 404);
        register(&server, "alice", &ALICE_V);
        assert_eq!(get(&server, "u/alice").status, 200);
    }

    #[test]
    fn list_filters_by_prefix() {
        let server = DocsServer::new();
        register(&server, "alice", &ALICE_V);
        register(&server, "bob", &BOB_V);
        put(&server, "x/scratch", "s");
        let resp = server.handle(&Request::get("/tenant/list", &[("prefix", "u/")]));
        let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
        let keys: Vec<&str> = pairs.iter().map(|(_, v)| v.as_str()).collect();
        assert_eq!(keys, vec!["u/alice", "u/bob"]);
        let resp = server.handle(&Request::get("/tenant/list", &[("prefix", "zz/")]));
        assert_eq!(resp.body_text(), Some(""));
    }

    #[test]
    fn records_hidden_from_document_listing_but_snapshotted() {
        let server = DocsServer::new();
        register(&server, "alice", &ALICE_V);
        let created = server.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
        assert!(created.is_success());
        assert_eq!(server.list_documents(), vec!["doc1".to_string()]);
        // The snapshot/restore path must still carry the records (with
        // the verifier intact server-side, redacted on read).
        let restored = DocsServer::restore(&server.snapshot()).unwrap();
        assert_eq!(get(&restored, "u/alice").status, 200);
        let verify = restored.handle(&Request::post(
            "/tenant/verify",
            &[("key", "u/alice"), ("proof", &hex::encode(&ALICE_V))],
            "",
        ));
        assert_eq!(verify.body_text(), Some("ok=true"));
    }

    #[test]
    fn malformed_keys_rejected() {
        let server = DocsServer::new();
        assert_eq!(put(&server, "", "v").status, 400);
        assert_eq!(put(&server, "a\nb", "v").status, 400);
        assert_eq!(server.handle(&Request::get("/tenant/record", &[])).status, 400);
        assert_eq!(get(&server, "bad\tkey").status, 400);
    }

    #[test]
    fn oversized_record_rejected() {
        let server = DocsServer::new();
        let huge = "x".repeat(MAX_RECORD_BYTES + 1);
        assert_eq!(put(&server, "x/huge", &huge).status, 413);
    }
}
