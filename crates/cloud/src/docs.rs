//! The Google-Documents-style server (§IV-A of the paper).
//!
//! Reproduces the 2011 wire protocol the paper reverse-engineered:
//!
//! * `POST /Doc?cmd=create` — create a document, returns its `docID`.
//! * `POST /Doc?docID=…&cmd=open` — open an edit session; the response
//!   carries the current content and its hash.
//! * `POST /Doc?docID=…` with a form body — save: the `docContents` field
//!   replaces the whole document (the first save of every session), the
//!   `delta` field applies an incremental update. The server answers with
//!   an **Ack** carrying `contentFromServer` and `contentFromServerHash`.
//! * `GET /Doc/load?docID=…` — passive reader refresh (collaboration).
//!
//! Server-side *features* operate on the stored content — which is exactly
//! why they break under the privacy extension (§VII-A): spell checking
//! (`POST /spell`), translation (`POST /translate`), export
//! (`GET /export`), and drawing (`POST /drawing`, whose request body
//! itself carries plaintext primitives, so the mediator must block it).
//!
//! The server enforces Google's 500-kilobyte document limit the paper
//! cites when motivating multi-character blocks (§V-C).
//!
//! Storage is pluggable: the server is a protocol veneer over any
//! [`DocStore`] — [`MemStore`](pe_store::MemStore) by default (tests,
//! examples), or a durable [`pe_store::LogStore`] in the `pedit serve`
//! stack, where an acknowledged save survives `kill -9`.

use std::sync::Arc;

use pe_crypto::form;
use pe_crypto::hex;
use pe_crypto::sha256::Sha256;
use pe_delta::Delta;
use pe_store::{DeltaLimits, DocStore, MemStore, StoreError};

use crate::{CloudService, Request, Response};

/// Maximum stored document size in bytes (Google's 2011 limit).
pub const MAX_DOC_BYTES: usize = 500 * 1024;

/// One accepted save, as observed by a [`SaveListener`].
///
/// The payload is whatever the client shipped — ciphertext when the
/// privacy extension is active. The server fans it out without ever
/// interpreting it.
#[derive(Debug, Clone)]
pub enum SaveChange {
    /// A full `docContents` save: the complete new stored content.
    Full(String),
    /// An incremental `delta` save: the serialized delta text.
    Delta(String),
}

/// Observer of accepted saves — the hook the live-collaboration layer
/// (`pe-collab`) uses to fan changes out to parked subscribers.
///
/// `seq` is the document's post-save version counter: monotonic, durable
/// (it rides the WAL), and therefore a valid resume cursor across server
/// restarts. Called synchronously after the store accepted the save and
/// before the Ack is returned; implementations must be fast and must not
/// call back into the server.
pub trait SaveListener: Send + Sync {
    /// One accepted save on `doc_id`, now at version `seq`.
    fn on_save(&self, doc_id: &str, seq: u64, change: &SaveChange);
}

/// Metadata key for the document id counter.
const META_NEXT_DOC: &str = "next_doc";
/// Metadata key for the session id counter.
const META_NEXT_SESSION: &str = "next_session";

/// A small English dictionary for the spell-check feature. Real enough to
/// make plaintext prose pass and Base32 ciphertext fail spectacularly.
const DICTIONARY: &[&str] = &[
    "a", "about", "all", "also", "an", "and", "are", "as", "at", "be", "because", "but", "by",
    "can", "come", "could", "day", "do", "document", "even", "find", "first", "for", "from",
    "get", "give", "go", "have", "he", "her", "here", "him", "his", "how", "i", "if", "in",
    "into", "it", "its", "just", "know", "like", "look", "make", "man", "many", "me", "meet",
    "more", "my", "new", "no", "noon", "not", "now", "of", "on", "one", "only", "or", "other",
    "our", "out", "people", "say", "secret", "see", "she", "so", "some", "take", "than", "that",
    "the", "their", "them", "then", "there", "these", "they", "thing", "think", "this", "those",
    "time", "to", "two", "up", "use", "very", "want", "way", "we", "well", "what", "when",
    "which", "who", "will", "with", "word", "world", "would", "year", "you", "your", "quick",
    "brown", "fox", "jumps", "over", "lazy", "dog", "hello", "attack", "at", "dawn", "editing",
    "private", "cloud", "service", "paper", "plan", "was", "old", "yes", "did", "has",
];

/// The simulated Google-Documents word-processor backend.
///
/// Thread-safe; clients, mediators, and benchmark harnesses may share one
/// instance.
///
/// # Example
///
/// ```
/// use pe_cloud::docs::DocsServer;
/// use pe_cloud::{CloudService, Request};
/// use pe_crypto::form;
///
/// let server = DocsServer::new();
/// let created = server.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
/// let pairs = form::parse_pairs(created.body_text().unwrap())?;
/// let doc_id = form::first_value(&pairs, "docID").unwrap();
/// assert!(doc_id.starts_with("doc"));
/// # Ok::<(), pe_crypto::CryptoError>(())
/// ```
pub struct DocsServer {
    store: Arc<dyn DocStore>,
    /// Serializes tenant-record mutations so their check-then-put pairs
    /// (registration uniqueness, ownership checks) are atomic.
    tenant_lock: std::sync::Mutex<()>,
    /// Fan-out hook for accepted saves (live collaboration).
    save_listener: std::sync::RwLock<Option<Arc<dyn SaveListener>>>,
}

impl std::fmt::Debug for DocsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DocsServer").field("store", &self.store.name()).finish()
    }
}

impl Default for DocsServer {
    fn default() -> DocsServer {
        DocsServer::new()
    }
}

/// Maps a storage failure onto the 2011 wire protocol's status codes.
fn store_error(e: &StoreError) -> Response {
    match e {
        StoreError::NoSuchDocument => Response::error(404, "no such document"),
        StoreError::Conflict(msg) => Response::error(409, &format!("delta conflict: {msg}")),
        StoreError::TooLarge { .. } => Response::error(413, "document exceeds 500kB limit"),
        StoreError::InvalidUtf8 => Response::error(400, "delta produced invalid text"),
        other => Response::error(500, &format!("storage failure: {other}")),
    }
}

impl DocsServer {
    /// Creates a server with no documents, backed by an in-memory store.
    pub fn new() -> DocsServer {
        DocsServer::with_store(Arc::new(MemStore::new()))
    }

    /// Creates a server over an existing store — a durable
    /// [`pe_store::LogStore`] makes every acknowledged save survive a
    /// crash; documents already in the store are served as-is.
    pub fn with_store(store: Arc<dyn DocStore>) -> DocsServer {
        DocsServer {
            store,
            tenant_lock: std::sync::Mutex::new(()),
            save_listener: std::sync::RwLock::new(None),
        }
    }

    /// Installs the observer notified after every accepted save (at most
    /// one; a second call replaces the first). Used by `pe-collab` to
    /// wake parked `/Doc/changes` subscribers.
    pub fn set_save_listener(&self, listener: Arc<dyn SaveListener>) {
        *self.save_listener.write().unwrap_or_else(|p| p.into_inner()) = Some(listener);
    }

    fn publish_save(&self, doc_id: &str, seq: u64, change: &SaveChange) {
        let guard = self.save_listener.read().unwrap_or_else(|p| p.into_inner());
        if let Some(listener) = guard.as_ref() {
            listener.on_save(doc_id, seq, change);
        }
    }

    /// Guard held for the duration of any tenant-record mutation.
    pub(crate) fn tenant_mutation_lock(&self) -> std::sync::MutexGuard<'_, ()> {
        self.tenant_lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The backing store (tooling: flush/compact/inspect).
    pub fn store(&self) -> &Arc<dyn DocStore> {
        &self.store
    }

    /// Hash the server reports in Ack messages (`contentFromServerHash`).
    /// Note it is computed over the *stored* content — ciphertext when the
    /// privacy extension is active, which is what makes collaborative
    /// editing only partially functional (§VII-A).
    pub fn content_hash(content: &str) -> String {
        hex::encode(&Sha256::digest(content.as_bytes())[..8])
    }

    /// Direct (test/bench) access to a document's stored content.
    pub fn stored_content(&self, doc_id: &str) -> Option<String> {
        self.store.content(doc_id).map(|b| String::from_utf8_lossy(&b).into_owned())
    }

    /// Direct (test/bench) access to a document's version counter.
    pub fn stored_version(&self, doc_id: &str) -> Option<u64> {
        self.store.get(doc_id).map(|d| d.version)
    }

    /// Direct (test/bench) access to the stored revision history.
    pub fn stored_revisions(&self, doc_id: &str) -> Option<Vec<String>> {
        self.store.get(doc_id).map(|d| {
            d.revisions.iter().map(|r| String::from_utf8_lossy(r).into_owned()).collect()
        })
    }

    /// Lists all document ids, sorted (tooling/tests). Tenant-directory
    /// records (reserved `~tenant/` prefix) are internal and excluded.
    pub fn list_documents(&self) -> Vec<String> {
        self.store
            .list()
            .into_iter()
            .filter(|id| !id.starts_with(crate::tenant::TENANT_PREFIX))
            .collect()
    }

    /// Serializes the full server state into a line-oriented snapshot
    /// (one form-encoded line per document) so tools like the `pedit` CLI
    /// can persist the "cloud" across invocations.
    pub fn snapshot(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("next_doc={}\n", self.store.meta(META_NEXT_DOC).unwrap_or(0)));
        out.push_str(&format!(
            "next_session={}\n",
            self.store.meta(META_NEXT_SESSION).unwrap_or(0)
        ));
        for id in self.store.list() {
            let Some(doc) = self.store.get(&id) else { continue };
            let mut fields: Vec<(String, String)> = vec![
                ("docID".into(), id.clone()),
                ("content".into(), String::from_utf8_lossy(&doc.content).into_owned()),
                ("version".into(), doc.version.to_string()),
            ];
            for revision in &doc.revisions {
                fields.push(("revision".into(), String::from_utf8_lossy(revision).into_owned()));
            }
            out.push_str(&form::encode_pairs(&fields));
            out.push('\n');
        }
        out
    }

    /// Restores a server from a [`DocsServer::snapshot`] string into a
    /// fresh in-memory store. To restore into a durable store, pass it to
    /// [`DocsServer::restore_into`].
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed line on failure.
    pub fn restore(snapshot: &str) -> Result<DocsServer, String> {
        let store: Arc<dyn DocStore> = Arc::new(MemStore::new());
        Self::restore_into(snapshot, &store)?;
        Ok(DocsServer::with_store(store))
    }

    /// Replays a [`DocsServer::snapshot`] string into an existing store:
    /// each document's save history is re-executed (create, then one full
    /// save per revision, then the current content), so version counters
    /// and revision lists reconstruct exactly.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed line, or of the storage
    /// failure, on error.
    pub fn restore_into(snapshot: &str, store: &Arc<dyn DocStore>) -> Result<(), String> {
        for (line_no, line) in snapshot.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            if let Some(n) = line.strip_prefix("next_doc=") {
                let n: u64 = n.parse().map_err(|_| format!("line {line_no}: bad next_doc"))?;
                store
                    .set_meta(META_NEXT_DOC, n)
                    .map_err(|e| format!("line {line_no}: {e}"))?;
                continue;
            }
            if let Some(n) = line.strip_prefix("next_session=") {
                let n: u64 =
                    n.parse().map_err(|_| format!("line {line_no}: bad next_session"))?;
                store
                    .set_meta(META_NEXT_SESSION, n)
                    .map_err(|e| format!("line {line_no}: {e}"))?;
                continue;
            }
            let pairs = form::parse_pairs(line).map_err(|e| format!("line {line_no}: {e}"))?;
            let doc_id = form::first_value(&pairs, "docID")
                .ok_or_else(|| format!("line {line_no}: missing docID"))?
                .to_string();
            let content = form::first_value(&pairs, "content").unwrap_or("");
            let revisions: Vec<&str> =
                pairs.iter().filter(|(k, _)| k == "revision").map(|(_, v)| v.as_str()).collect();
            let io = |e: StoreError| format!("line {line_no}: {e}");
            store.create(&doc_id).map_err(io)?;
            // Replay the save history. A document's first revision is the
            // empty content `create` installed, so it is skipped — the
            // remaining revisions and the final content are one full save
            // each, reconstructing version == revisions.len().
            let mut history = revisions.iter();
            match history.next() {
                Some(&"") | None => {}
                Some(&first) => {
                    // Foreign snapshot whose history does not start empty:
                    // replay it verbatim (versions shift by one).
                    store.put_full(&doc_id, first.as_bytes()).map_err(io)?;
                }
            }
            for revision in history {
                store.put_full(&doc_id, revision.as_bytes()).map_err(io)?;
            }
            if !revisions.is_empty() || !content.is_empty() {
                store.put_full(&doc_id, content.as_bytes()).map_err(io)?;
            }
        }
        Ok(())
    }

    fn revisions(&self, doc_id: &str, index: Option<&str>) -> Response {
        let Some(doc) = self.store.get(doc_id) else {
            return Response::error(404, "no such document");
        };
        match index {
            None => Response::ok(form::encode_pairs(&[(
                "revisionCount",
                doc.revisions.len().to_string().as_str(),
            )])),
            Some(raw) => {
                let Ok(i) = raw.parse::<usize>() else {
                    return Response::error(400, "bad revision index");
                };
                match doc.revisions.get(i) {
                    Some(content) => Response::ok(form::encode_pairs(&[(
                        "content",
                        String::from_utf8_lossy(content).as_ref(),
                    )])),
                    None => Response::error(404, "no such revision"),
                }
            }
        }
    }

    fn create(&self) -> Response {
        let n = match self.store.bump_meta(META_NEXT_DOC) {
            Ok(n) => n,
            Err(e) => return store_error(&e),
        };
        let id = format!("doc{n}");
        if let Err(e) = self.store.create(&id) {
            return store_error(&e);
        }
        Response::ok(form::encode_pairs(&[("docID", id.as_str())]))
    }

    fn open(&self, doc_id: &str) -> Response {
        let session = match self.store.bump_meta(META_NEXT_SESSION) {
            Ok(n) => format!("s{n}"),
            Err(e) => return store_error(&e),
        };
        let Some(doc) = self.store.get(doc_id) else {
            return Response::error(404, "no such document");
        };
        let content = String::from_utf8_lossy(&doc.content).into_owned();
        let hash = Self::content_hash(&content);
        Response::ok(form::encode_pairs(&[
            ("sessionID", session.as_str()),
            ("content", content.as_str()),
            ("contentHash", hash.as_str()),
            ("version", doc.version.to_string().as_str()),
        ]))
    }

    fn save(&self, doc_id: &str, body: &str) -> Response {
        let Ok(pairs) = form::parse_pairs(body) else {
            return Response::error(400, "malformed form body");
        };
        if !self.store.contains(doc_id) {
            return Response::error(404, "no such document");
        }
        let (new_content, version, change) =
            if let Some(contents) = form::first_value(&pairs, "docContents") {
                if contents.len() > MAX_DOC_BYTES {
                    return Response::error(413, "document exceeds 500kB limit");
                }
                let version = match self.store.put_full(doc_id, contents.as_bytes()) {
                    Ok(v) => v,
                    Err(e) => return store_error(&e),
                };
                (contents.to_string(), version, SaveChange::Full(contents.to_string()))
            } else if let Some(delta_text) = form::first_value(&pairs, "delta") {
                let Ok(delta) = Delta::parse(delta_text) else {
                    return Response::error(400, "malformed delta");
                };
                // `baseVersion` is the client's optimistic-concurrency
                // precondition: reject the delta (409) unless the document
                // is still at the version it was computed against. Checked
                // atomically with the apply — a racing save cannot slip
                // between check and write.
                let base_version = form::first_value(&pairs, "baseVersion")
                    .and_then(|v| v.parse::<u64>().ok());
                let limits = DeltaLimits {
                    max_len: MAX_DOC_BYTES,
                    require_utf8: true,
                    base_version,
                };
                match self.store.apply_delta(doc_id, &delta, limits) {
                    Ok(state) => (
                        String::from_utf8_lossy(&state.content).into_owned(),
                        state.version,
                        SaveChange::Delta(delta_text.to_string()),
                    ),
                    Err(e) => return store_error(&e),
                }
            } else {
                return Response::error(400, "save needs docContents or delta");
            };
        self.publish_save(doc_id, version, &change);
        // The Ack conveys "the current content to the best of the
        // server's knowledge" (§IV-A). Like the real service, the content
        // field stays empty on ordinary saves (the client already holds
        // the content); the hash is what collaboration coordination uses.
        // `version` is the change-stream sequence this save landed at.
        let hash = Self::content_hash(&new_content);
        Response::ok(form::encode_pairs(&[
            ("contentFromServer", ""),
            ("contentFromServerHash", hash.as_str()),
            ("version", version.to_string().as_str()),
        ]))
    }

    fn load(&self, doc_id: &str, caller_hash: Option<&str>) -> Response {
        let Some(doc) = self.store.get(doc_id) else {
            return Response::error(404, "no such document");
        };
        let content = String::from_utf8_lossy(&doc.content).into_owned();
        let hash = Self::content_hash(&content);
        let version = doc.version.to_string();
        // 304-style fast path for passive readers: when the caller already
        // holds the current content (hashes match), skip the body.
        if caller_hash == Some(hash.as_str()) {
            pe_observe::static_counter!("docs.load_unchanged").inc();
            return Response::ok(form::encode_pairs(&[
                ("unchanged", "1"),
                ("contentHash", hash.as_str()),
                ("version", version.as_str()),
            ]));
        }
        Response::ok(form::encode_pairs(&[
            ("content", content.as_str()),
            ("contentHash", hash.as_str()),
            ("version", version.as_str()),
        ]))
    }

    fn spell_check(&self, doc_id: &str) -> Response {
        let Some(content) = self.stored_content(doc_id) else {
            return Response::error(404, "no such document");
        };
        let misspelled: Vec<String> = content
            .split(|c: char| !c.is_alphabetic())
            .filter(|w| !w.is_empty())
            .map(str::to_lowercase)
            .filter(|w| !DICTIONARY.contains(&w.as_str()))
            .collect();
        let mut unique = misspelled;
        unique.sort();
        unique.dedup();
        Response::ok(form::encode_pairs(&[("misspelled", unique.join(",").as_str())]))
    }

    fn translate(&self, doc_id: &str) -> Response {
        let Some(content) = self.stored_content(doc_id) else {
            return Response::error(404, "no such document");
        };
        // A toy "translation": pig latin, word by word. Stands in for the
        // real service's plaintext-dependent translation feature.
        let translated: String =
            content.split(' ').map(pig_latin).collect::<Vec<_>>().join(" ");
        Response::ok(form::encode_pairs(&[("translated", translated.as_str())]))
    }

    fn export(&self, doc_id: &str, format: &str) -> Response {
        let Some(content) = self.stored_content(doc_id) else {
            return Response::error(404, "no such document");
        };
        match format {
            "txt" => Response::ok(content),
            "upper" => Response::ok(content.to_uppercase()),
            _ => Response::error(400, "unknown export format"),
        }
    }

    fn drawing(&self, body: &str) -> Response {
        // The real service rendered drawing primitives server-side. The
        // request body itself carries plaintext, which is why the mediator
        // must block this path.
        Response::ok(format!("rendered:{body}"))
    }
}

/// Pig-latin translation of a single word (punctuation passes through).
fn pig_latin(word: &str) -> String {
    let mut chars = word.chars();
    match chars.next() {
        Some(first) if first.is_alphabetic() => {
            format!("{}{}ay", chars.as_str(), first.to_lowercase())
        }
        _ => word.to_string(),
    }
}

impl CloudService for DocsServer {
    fn handle(&self, request: &Request) -> Response {
        let doc_id = request.query_param("docID").unwrap_or("");
        let response = match (request.method, request.path.as_str()) {
            (crate::Method::Post, "/Doc") => match request.query_param("cmd") {
                Some("create") => self.create(),
                Some("open") => self.open(doc_id),
                None => {
                    self.save(doc_id, request.body_text().unwrap_or(""))
                }
                Some(other) => Response::error(400, &format!("unknown command {other}")),
            },
            (crate::Method::Get, "/Doc/load") => {
                self.load(doc_id, request.query_param("hash"))
            }
            (crate::Method::Get, "/tenant/record") => self.tenant_record_get(request),
            (crate::Method::Post, "/tenant/record") => self.tenant_record_post(request),
            (crate::Method::Post, "/tenant/verify") => self.tenant_verify(request),
            (crate::Method::Get, "/tenant/list") => self.tenant_list(request),
            (crate::Method::Get, "/Doc/revisions") => {
                self.revisions(doc_id, request.query_param("index"))
            }
            (crate::Method::Post, "/spell") => self.spell_check(doc_id),
            (crate::Method::Post, "/translate") => self.translate(doc_id),
            (crate::Method::Get, "/export") => {
                self.export(doc_id, request.query_param("format").unwrap_or("txt"))
            }
            (crate::Method::Post, "/drawing") => {
                self.drawing(request.body_text().unwrap_or(""))
            }
            _ => Response::error(404, "unknown endpoint"),
        };
        pe_observe::static_counter!("cloud.requests").inc();
        pe_observe::counter(&format!(
            "cloud.req.{}.{}xx",
            request.path,
            response.status / 100
        ))
        .inc();
        response
    }

    fn name(&self) -> &'static str {
        "google-documents"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn create_doc(server: &DocsServer) -> String {
        let resp = server.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
        let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
        form::first_value(&pairs, "docID").unwrap().to_string()
    }

    fn save_contents(server: &DocsServer, doc: &str, contents: &str) -> Response {
        let body = form::encode_pairs(&[("docContents", contents)]);
        server.handle(&Request::post("/Doc", &[("docID", doc)], body))
    }

    fn save_delta(server: &DocsServer, doc: &str, delta: &str) -> Response {
        let body = form::encode_pairs(&[("delta", delta)]);
        server.handle(&Request::post("/Doc", &[("docID", doc)], body))
    }

    #[test]
    fn create_open_save_cycle() {
        let server = DocsServer::new();
        let doc = create_doc(&server);
        let resp = save_contents(&server, &doc, "hello world");
        assert!(resp.is_success());
        assert_eq!(server.stored_content(&doc).unwrap(), "hello world");
        let open = server.handle(&Request::post("/Doc", &[("docID", &doc), ("cmd", "open")], ""));
        let pairs = form::parse_pairs(open.body_text().unwrap()).unwrap();
        assert_eq!(form::first_value(&pairs, "content"), Some("hello world"));
    }

    #[test]
    fn delta_saves_apply_incrementally() {
        let server = DocsServer::new();
        let doc = create_doc(&server);
        save_contents(&server, &doc, "abcdefg");
        // The paper's example: "=2 -3 +uv =2 +w" turns abcdefg into abuvfgw.
        let resp = save_delta(&server, &doc, "=2\t-3\t+uv\t=2\t+w");
        assert!(resp.is_success());
        assert_eq!(server.stored_content(&doc).unwrap(), "abuvfgw");
        assert_eq!(server.stored_version(&doc), Some(2));
    }

    #[test]
    fn ack_carries_hash_of_stored_content() {
        let server = DocsServer::new();
        let doc = create_doc(&server);
        let resp = save_contents(&server, &doc, "content");
        let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
        assert_eq!(form::first_value(&pairs, "contentFromServer"), Some(""));
        assert_eq!(
            form::first_value(&pairs, "contentFromServerHash"),
            Some(DocsServer::content_hash("content").as_str())
        );
    }

    #[test]
    fn bad_delta_is_a_conflict() {
        let server = DocsServer::new();
        let doc = create_doc(&server);
        save_contents(&server, &doc, "short");
        let resp = save_delta(&server, &doc, "=100\t-1");
        assert_eq!(resp.status, 409);
        // Content unchanged on conflict.
        assert_eq!(server.stored_content(&doc).unwrap(), "short");
    }

    #[test]
    fn size_limit_enforced() {
        let server = DocsServer::new();
        let doc = create_doc(&server);
        let huge = "x".repeat(MAX_DOC_BYTES + 1);
        assert_eq!(save_contents(&server, &doc, &huge).status, 413);
        save_contents(&server, &doc, "small");
        let grow = format!("+{}", "y".repeat(MAX_DOC_BYTES));
        assert_eq!(save_delta(&server, &doc, &grow).status, 413);
    }

    #[test]
    fn unknown_document_is_404() {
        let server = DocsServer::new();
        assert_eq!(save_contents(&server, "nope", "x").status, 404);
        assert_eq!(server.handle(&Request::get("/Doc/load", &[("docID", "nope")])).status, 404);
    }

    #[test]
    fn spell_check_flags_unknown_words() {
        let server = DocsServer::new();
        let doc = create_doc(&server);
        save_contents(&server, &doc, "the quick brown fox zzyzx");
        let resp = server.handle(&Request::post("/spell", &[("docID", &doc)], ""));
        let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
        assert_eq!(form::first_value(&pairs, "misspelled"), Some("zzyzx"));
    }

    #[test]
    fn spell_check_on_ciphertext_flags_everything() {
        let server = DocsServer::new();
        let doc = create_doc(&server);
        // Simulates what the server sees under the extension.
        save_contents(&server, &doc, "MZXW6YTB OI2DKNRU GEZDGNBV");
        let resp = server.handle(&Request::post("/spell", &[("docID", &doc)], ""));
        let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
        // Digits split the Base32 tokens, so more fragments than "words"
        // are flagged — the point is that nothing passes the dictionary.
        let flagged = form::first_value(&pairs, "misspelled").unwrap();
        assert!(flagged.split(',').count() >= 3, "ciphertext must be flagged: {flagged}");
    }

    #[test]
    fn translate_and_export() {
        let server = DocsServer::new();
        let doc = create_doc(&server);
        save_contents(&server, &doc, "hello world");
        let resp = server.handle(&Request::post("/translate", &[("docID", &doc)], ""));
        let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
        assert_eq!(form::first_value(&pairs, "translated"), Some("ellohay orldway"));
        let resp =
            server.handle(&Request::get("/export", &[("docID", &doc), ("format", "upper")]));
        assert_eq!(resp.body_text(), Some("HELLO WORLD"));
    }

    #[test]
    fn drawing_renders_primitives() {
        let server = DocsServer::new();
        let resp = server.handle(&Request::post("/drawing", &[], "circle(3,4,5)"));
        assert_eq!(resp.body_text(), Some("rendered:circle(3,4,5)"));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let server = DocsServer::new();
        let doc = create_doc(&server);
        save_contents(&server, &doc, "persistent content with = & % chars");
        save_delta(&server, &doc, "+more ");
        let snapshot = server.snapshot();
        let restored = DocsServer::restore(&snapshot).unwrap();
        assert_eq!(
            restored.stored_content(&doc),
            server.stored_content(&doc)
        );
        assert_eq!(restored.stored_version(&doc), server.stored_version(&doc));
        assert_eq!(restored.stored_revisions(&doc), server.stored_revisions(&doc));
        // Restored servers continue issuing fresh ids.
        let resp = restored.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
        let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
        assert_ne!(form::first_value(&pairs, "docID"), Some(doc.as_str()));
    }

    #[test]
    fn restore_rejects_garbage() {
        assert!(DocsServer::restore("next_doc=abc").is_err());
        assert!(DocsServer::restore("content=x").is_err(), "missing docID");
    }

    #[test]
    fn revision_history_is_kept() {
        let server = DocsServer::new();
        let doc = create_doc(&server);
        save_contents(&server, &doc, "v1");
        save_delta(&server, &doc, "+x");
        save_contents(&server, &doc, "v3");
        // History: "", "v1", "xv1".
        let revisions = server.stored_revisions(&doc).unwrap();
        assert_eq!(revisions, vec!["".to_string(), "v1".to_string(), "xv1".to_string()]);
        let resp = server.handle(&Request::get("/Doc/revisions", &[("docID", &doc)]));
        let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
        assert_eq!(form::first_value(&pairs, "revisionCount"), Some("3"));
        let resp = server
            .handle(&Request::get("/Doc/revisions", &[("docID", &doc), ("index", "1")]));
        let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
        assert_eq!(form::first_value(&pairs, "content"), Some("v1"));
        let resp = server
            .handle(&Request::get("/Doc/revisions", &[("docID", &doc), ("index", "9")]));
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn version_counts_saves() {
        let server = DocsServer::new();
        let doc = create_doc(&server);
        save_contents(&server, &doc, "v1");
        save_delta(&server, &doc, "+x");
        save_delta(&server, &doc, "+y");
        assert_eq!(server.stored_version(&doc), Some(3));
    }

    #[test]
    fn ack_and_load_carry_version() {
        let server = DocsServer::new();
        let doc = create_doc(&server);
        let resp = save_contents(&server, &doc, "v1");
        let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
        assert_eq!(form::first_value(&pairs, "version"), Some("1"));
        let resp = save_delta(&server, &doc, "+x");
        let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
        assert_eq!(form::first_value(&pairs, "version"), Some("2"));
        let resp = server.handle(&Request::get("/Doc/load", &[("docID", &doc)]));
        let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
        assert_eq!(form::first_value(&pairs, "version"), Some("2"));
    }

    #[test]
    fn load_with_matching_hash_skips_body() {
        let server = DocsServer::new();
        let doc = create_doc(&server);
        save_contents(&server, &doc, "cached content");
        let hash = DocsServer::content_hash("cached content");
        let resp =
            server.handle(&Request::get("/Doc/load", &[("docID", &doc), ("hash", &hash)]));
        let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
        assert_eq!(form::first_value(&pairs, "unchanged"), Some("1"));
        assert_eq!(form::first_value(&pairs, "contentHash"), Some(hash.as_str()));
        assert_eq!(form::first_value(&pairs, "content"), None, "body must be skipped");
        // A stale hash still gets the full body.
        let resp =
            server.handle(&Request::get("/Doc/load", &[("docID", &doc), ("hash", "stale")]));
        let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
        assert_eq!(form::first_value(&pairs, "content"), Some("cached content"));
        assert_eq!(form::first_value(&pairs, "unchanged"), None);
    }

    #[test]
    fn save_listener_sees_accepted_saves_only() {
        struct Recorder(std::sync::Mutex<Vec<(String, u64, String)>>);
        impl SaveListener for Recorder {
            fn on_save(&self, doc_id: &str, seq: u64, change: &SaveChange) {
                let kind = match change {
                    SaveChange::Full(c) => format!("full:{c}"),
                    SaveChange::Delta(d) => format!("delta:{d}"),
                };
                self.0.lock().unwrap().push((doc_id.to_string(), seq, kind));
            }
        }
        let server = DocsServer::new();
        let recorder = Arc::new(Recorder(std::sync::Mutex::new(Vec::new())));
        server.set_save_listener(recorder.clone());
        let doc = create_doc(&server);
        save_contents(&server, &doc, "v1");
        save_delta(&server, &doc, "+x");
        save_delta(&server, &doc, "=100\t-1"); // conflict: must not publish
        let events = recorder.0.lock().unwrap().clone();
        assert_eq!(
            events,
            vec![
                (doc.clone(), 1, "full:v1".to_string()),
                (doc.clone(), 2, "delta:+x".to_string()),
            ]
        );
    }

    #[test]
    fn durable_store_survives_a_server_restart() {
        let dir = std::env::temp_dir().join(format!(
            "pe-docs-durable-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let doc;
        {
            let store: Arc<dyn DocStore> = Arc::new(
                pe_store::LogStore::open(&dir, pe_store::StoreConfig::default()).unwrap(),
            );
            let server = DocsServer::with_store(store);
            doc = create_doc(&server);
            save_contents(&server, &doc, "survives");
            save_delta(&server, &doc, "=8\t+ the crash");
        }
        let store: Arc<dyn DocStore> = Arc::new(
            pe_store::LogStore::open(&dir, pe_store::StoreConfig::default()).unwrap(),
        );
        let server = DocsServer::with_store(store);
        assert_eq!(server.stored_content(&doc).unwrap(), "survives the crash");
        assert_eq!(server.stored_version(&doc), Some(2));
        assert_eq!(
            server.stored_revisions(&doc).unwrap(),
            vec!["".to_string(), "survives".to_string()]
        );
        // Fresh ids continue past the restart.
        let second = create_doc(&server);
        assert_ne!(second, doc);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
