//! The Google-Documents-style server (§IV-A of the paper).
//!
//! Reproduces the 2011 wire protocol the paper reverse-engineered:
//!
//! * `POST /Doc?cmd=create` — create a document, returns its `docID`.
//! * `POST /Doc?docID=…&cmd=open` — open an edit session; the response
//!   carries the current content and its hash.
//! * `POST /Doc?docID=…` with a form body — save: the `docContents` field
//!   replaces the whole document (the first save of every session), the
//!   `delta` field applies an incremental update. The server answers with
//!   an **Ack** carrying `contentFromServer` and `contentFromServerHash`.
//! * `GET /Doc/load?docID=…` — passive reader refresh (collaboration).
//!
//! Server-side *features* operate on the stored content — which is exactly
//! why they break under the privacy extension (§VII-A): spell checking
//! (`POST /spell`), translation (`POST /translate`), export
//! (`GET /export`), and drawing (`POST /drawing`, whose request body
//! itself carries plaintext primitives, so the mediator must block it).
//!
//! The server enforces Google's 500-kilobyte document limit the paper
//! cites when motivating multi-character blocks (§V-C).

use std::collections::HashMap;

use parking_lot::Mutex;
use pe_crypto::form;
use pe_crypto::hex;
use pe_crypto::sha256::Sha256;
use pe_delta::Delta;

use crate::{CloudService, Request, Response};

/// Maximum stored document size in bytes (Google's 2011 limit).
pub const MAX_DOC_BYTES: usize = 500 * 1024;

/// A small English dictionary for the spell-check feature. Real enough to
/// make plaintext prose pass and Base32 ciphertext fail spectacularly.
const DICTIONARY: &[&str] = &[
    "a", "about", "all", "also", "an", "and", "are", "as", "at", "be", "because", "but", "by",
    "can", "come", "could", "day", "do", "document", "even", "find", "first", "for", "from",
    "get", "give", "go", "have", "he", "her", "here", "him", "his", "how", "i", "if", "in",
    "into", "it", "its", "just", "know", "like", "look", "make", "man", "many", "me", "meet",
    "more", "my", "new", "no", "noon", "not", "now", "of", "on", "one", "only", "or", "other",
    "our", "out", "people", "say", "secret", "see", "she", "so", "some", "take", "than", "that",
    "the", "their", "them", "then", "there", "these", "they", "thing", "think", "this", "those",
    "time", "to", "two", "up", "use", "very", "want", "way", "we", "well", "what", "when",
    "which", "who", "will", "with", "word", "world", "would", "year", "you", "your", "quick",
    "brown", "fox", "jumps", "over", "lazy", "dog", "hello", "attack", "at", "dawn", "editing",
    "private", "cloud", "service", "paper", "plan", "was", "old", "yes", "did", "has",
];

#[derive(Debug, Default)]
struct DocRecord {
    content: String,
    version: u64,
    open_sessions: Vec<String>,
    /// Previous contents, oldest first. The real 2011 service kept (and
    /// leaked) revision history — the §I motivation "leaks information
    /// about previous versions of documents" — so the simulation keeps it
    /// too, letting tests show that under the extension even history is
    /// ciphertext.
    revisions: Vec<String>,
}

#[derive(Debug, Default)]
struct ServerState {
    docs: HashMap<String, DocRecord>,
    next_doc: u64,
    next_session: u64,
}

/// The simulated Google-Documents word-processor backend.
///
/// Thread-safe; clients, mediators, and benchmark harnesses may share one
/// instance.
///
/// # Example
///
/// ```
/// use pe_cloud::docs::DocsServer;
/// use pe_cloud::{CloudService, Request};
/// use pe_crypto::form;
///
/// let server = DocsServer::new();
/// let created = server.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
/// let pairs = form::parse_pairs(created.body_text().unwrap())?;
/// let doc_id = form::first_value(&pairs, "docID").unwrap();
/// assert!(doc_id.starts_with("doc"));
/// # Ok::<(), pe_crypto::CryptoError>(())
/// ```
#[derive(Debug, Default)]
pub struct DocsServer {
    state: Mutex<ServerState>,
}

impl DocsServer {
    /// Creates a server with no documents.
    pub fn new() -> DocsServer {
        DocsServer::default()
    }

    /// Hash the server reports in Ack messages (`contentFromServerHash`).
    /// Note it is computed over the *stored* content — ciphertext when the
    /// privacy extension is active, which is what makes collaborative
    /// editing only partially functional (§VII-A).
    pub fn content_hash(content: &str) -> String {
        hex::encode(&Sha256::digest(content.as_bytes())[..8])
    }

    /// Direct (test/bench) access to a document's stored content.
    pub fn stored_content(&self, doc_id: &str) -> Option<String> {
        self.state.lock().docs.get(doc_id).map(|d| d.content.clone())
    }

    /// Direct (test/bench) access to a document's version counter.
    pub fn stored_version(&self, doc_id: &str) -> Option<u64> {
        self.state.lock().docs.get(doc_id).map(|d| d.version)
    }

    /// Direct (test/bench) access to the stored revision history.
    pub fn stored_revisions(&self, doc_id: &str) -> Option<Vec<String>> {
        self.state.lock().docs.get(doc_id).map(|d| d.revisions.clone())
    }

    /// Lists all document ids, sorted (tooling/tests).
    pub fn list_documents(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.state.lock().docs.keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Serializes the full server state into a line-oriented snapshot
    /// (one form-encoded line per document) so tools like the `pedit` CLI
    /// can persist the "cloud" across invocations.
    pub fn snapshot(&self) -> String {
        let state = self.state.lock();
        let mut doc_ids: Vec<&String> = state.docs.keys().collect();
        doc_ids.sort();
        let mut out = String::new();
        out.push_str(&format!("next_doc={}\n", state.next_doc));
        out.push_str(&format!("next_session={}\n", state.next_session));
        for id in doc_ids {
            let doc = &state.docs[id];
            let mut fields: Vec<(String, String)> = vec![
                ("docID".into(), id.clone()),
                ("content".into(), doc.content.clone()),
                ("version".into(), doc.version.to_string()),
            ];
            for revision in &doc.revisions {
                fields.push(("revision".into(), revision.clone()));
            }
            out.push_str(&form::encode_pairs(&fields));
            out.push('\n');
        }
        out
    }

    /// Restores a server from a [`DocsServer::snapshot`] string.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed line on failure.
    pub fn restore(snapshot: &str) -> Result<DocsServer, String> {
        let server = DocsServer::new();
        {
            let mut state = server.state.lock();
            for (line_no, line) in snapshot.lines().enumerate() {
                if line.is_empty() {
                    continue;
                }
                if let Some(n) = line.strip_prefix("next_doc=") {
                    state.next_doc =
                        n.parse().map_err(|_| format!("line {line_no}: bad next_doc"))?;
                    continue;
                }
                if let Some(n) = line.strip_prefix("next_session=") {
                    state.next_session =
                        n.parse().map_err(|_| format!("line {line_no}: bad next_session"))?;
                    continue;
                }
                let pairs = form::parse_pairs(line)
                    .map_err(|e| format!("line {line_no}: {e}"))?;
                let doc_id = form::first_value(&pairs, "docID")
                    .ok_or_else(|| format!("line {line_no}: missing docID"))?
                    .to_string();
                let mut doc = DocRecord {
                    content: form::first_value(&pairs, "content").unwrap_or("").to_string(),
                    version: form::first_value(&pairs, "version")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(0),
                    ..DocRecord::default()
                };
                doc.revisions = pairs
                    .iter()
                    .filter(|(k, _)| k == "revision")
                    .map(|(_, v)| v.clone())
                    .collect();
                state.docs.insert(doc_id, doc);
            }
        }
        Ok(server)
    }

    fn revisions(&self, doc_id: &str, index: Option<&str>) -> Response {
        let state = self.state.lock();
        let Some(doc) = state.docs.get(doc_id) else {
            return Response::error(404, "no such document");
        };
        match index {
            None => Response::ok(form::encode_pairs(&[(
                "revisionCount",
                doc.revisions.len().to_string().as_str(),
            )])),
            Some(raw) => {
                let Ok(i) = raw.parse::<usize>() else {
                    return Response::error(400, "bad revision index");
                };
                match doc.revisions.get(i) {
                    Some(content) => Response::ok(form::encode_pairs(&[(
                        "content",
                        content.as_str(),
                    )])),
                    None => Response::error(404, "no such revision"),
                }
            }
        }
    }

    fn create(&self) -> Response {
        let mut state = self.state.lock();
        state.next_doc += 1;
        let id = format!("doc{}", state.next_doc);
        state.docs.insert(id.clone(), DocRecord::default());
        Response::ok(form::encode_pairs(&[("docID", id.as_str())]))
    }

    fn open(&self, doc_id: &str) -> Response {
        let mut state = self.state.lock();
        state.next_session += 1;
        let session = format!("s{}", state.next_session);
        let Some(doc) = state.docs.get_mut(doc_id) else {
            return Response::error(404, "no such document");
        };
        doc.open_sessions.push(session.clone());
        let hash = Self::content_hash(&doc.content);
        Response::ok(form::encode_pairs(&[
            ("sessionID", session.as_str()),
            ("content", doc.content.as_str()),
            ("contentHash", hash.as_str()),
        ]))
    }

    fn save(&self, doc_id: &str, body: &str) -> Response {
        let Ok(pairs) = form::parse_pairs(body) else {
            return Response::error(400, "malformed form body");
        };
        let mut state = self.state.lock();
        let Some(doc) = state.docs.get_mut(doc_id) else {
            return Response::error(404, "no such document");
        };
        if let Some(contents) = form::first_value(&pairs, "docContents") {
            if contents.len() > MAX_DOC_BYTES {
                return Response::error(413, "document exceeds 500kB limit");
            }
            let previous = std::mem::replace(&mut doc.content, contents.to_string());
            doc.revisions.push(previous);
        } else if let Some(delta_text) = form::first_value(&pairs, "delta") {
            let Ok(delta) = Delta::parse(delta_text) else {
                return Response::error(400, "malformed delta");
            };
            let updated = match delta.apply_bytes(doc.content.as_bytes()) {
                Ok(updated) => updated,
                Err(e) => return Response::error(409, &format!("delta conflict: {e}")),
            };
            if updated.len() > MAX_DOC_BYTES {
                return Response::error(413, "document exceeds 500kB limit");
            }
            match String::from_utf8(updated) {
                Ok(content) => {
                    let previous = std::mem::replace(&mut doc.content, content);
                    doc.revisions.push(previous);
                }
                Err(_) => return Response::error(400, "delta produced invalid text"),
            }
        } else {
            return Response::error(400, "save needs docContents or delta");
        }
        doc.version += 1;
        // The Ack conveys "the current content to the best of the
        // server's knowledge" (§IV-A). Like the real service, the content
        // field stays empty on ordinary saves (the client already holds
        // the content); the hash is what collaboration coordination uses.
        let hash = Self::content_hash(&doc.content);
        Response::ok(form::encode_pairs(&[
            ("contentFromServer", ""),
            ("contentFromServerHash", hash.as_str()),
        ]))
    }

    fn load(&self, doc_id: &str) -> Response {
        let state = self.state.lock();
        let Some(doc) = state.docs.get(doc_id) else {
            return Response::error(404, "no such document");
        };
        let hash = Self::content_hash(&doc.content);
        Response::ok(form::encode_pairs(&[
            ("content", doc.content.as_str()),
            ("contentHash", hash.as_str()),
        ]))
    }

    fn spell_check(&self, doc_id: &str) -> Response {
        let state = self.state.lock();
        let Some(doc) = state.docs.get(doc_id) else {
            return Response::error(404, "no such document");
        };
        let misspelled: Vec<String> = doc
            .content
            .split(|c: char| !c.is_alphabetic())
            .filter(|w| !w.is_empty())
            .map(str::to_lowercase)
            .filter(|w| !DICTIONARY.contains(&w.as_str()))
            .collect();
        let mut unique = misspelled;
        unique.sort();
        unique.dedup();
        Response::ok(form::encode_pairs(&[("misspelled", unique.join(",").as_str())]))
    }

    fn translate(&self, doc_id: &str) -> Response {
        let state = self.state.lock();
        let Some(doc) = state.docs.get(doc_id) else {
            return Response::error(404, "no such document");
        };
        // A toy "translation": pig latin, word by word. Stands in for the
        // real service's plaintext-dependent translation feature.
        let translated: String = doc
            .content
            .split(' ')
            .map(pig_latin)
            .collect::<Vec<_>>()
            .join(" ");
        Response::ok(form::encode_pairs(&[("translated", translated.as_str())]))
    }

    fn export(&self, doc_id: &str, format: &str) -> Response {
        let state = self.state.lock();
        let Some(doc) = state.docs.get(doc_id) else {
            return Response::error(404, "no such document");
        };
        match format {
            "txt" => Response::ok(doc.content.clone()),
            "upper" => Response::ok(doc.content.to_uppercase()),
            _ => Response::error(400, "unknown export format"),
        }
    }

    fn drawing(&self, body: &str) -> Response {
        // The real service rendered drawing primitives server-side. The
        // request body itself carries plaintext, which is why the mediator
        // must block this path.
        Response::ok(format!("rendered:{body}"))
    }
}

/// Pig-latin translation of a single word (punctuation passes through).
fn pig_latin(word: &str) -> String {
    let mut chars = word.chars();
    match chars.next() {
        Some(first) if first.is_alphabetic() => {
            format!("{}{}ay", chars.as_str(), first.to_lowercase())
        }
        _ => word.to_string(),
    }
}

impl CloudService for DocsServer {
    fn handle(&self, request: &Request) -> Response {
        let doc_id = request.query_param("docID").unwrap_or("");
        let response = match (request.method, request.path.as_str()) {
            (crate::Method::Post, "/Doc") => match request.query_param("cmd") {
                Some("create") => self.create(),
                Some("open") => self.open(doc_id),
                None => {
                    self.save(doc_id, request.body_text().unwrap_or(""))
                }
                Some(other) => Response::error(400, &format!("unknown command {other}")),
            },
            (crate::Method::Get, "/Doc/load") => self.load(doc_id),
            (crate::Method::Get, "/Doc/revisions") => {
                self.revisions(doc_id, request.query_param("index"))
            }
            (crate::Method::Post, "/spell") => self.spell_check(doc_id),
            (crate::Method::Post, "/translate") => self.translate(doc_id),
            (crate::Method::Get, "/export") => {
                self.export(doc_id, request.query_param("format").unwrap_or("txt"))
            }
            (crate::Method::Post, "/drawing") => {
                self.drawing(request.body_text().unwrap_or(""))
            }
            _ => Response::error(404, "unknown endpoint"),
        };
        pe_observe::static_counter!("cloud.requests").inc();
        pe_observe::counter(&format!(
            "cloud.req.{}.{}xx",
            request.path,
            response.status / 100
        ))
        .inc();
        response
    }

    fn name(&self) -> &'static str {
        "google-documents"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn create_doc(server: &DocsServer) -> String {
        let resp = server.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
        let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
        form::first_value(&pairs, "docID").unwrap().to_string()
    }

    fn save_contents(server: &DocsServer, doc: &str, contents: &str) -> Response {
        let body = form::encode_pairs(&[("docContents", contents)]);
        server.handle(&Request::post("/Doc", &[("docID", doc)], body))
    }

    fn save_delta(server: &DocsServer, doc: &str, delta: &str) -> Response {
        let body = form::encode_pairs(&[("delta", delta)]);
        server.handle(&Request::post("/Doc", &[("docID", doc)], body))
    }

    #[test]
    fn create_open_save_cycle() {
        let server = DocsServer::new();
        let doc = create_doc(&server);
        let resp = save_contents(&server, &doc, "hello world");
        assert!(resp.is_success());
        assert_eq!(server.stored_content(&doc).unwrap(), "hello world");
        let open = server.handle(&Request::post("/Doc", &[("docID", &doc), ("cmd", "open")], ""));
        let pairs = form::parse_pairs(open.body_text().unwrap()).unwrap();
        assert_eq!(form::first_value(&pairs, "content"), Some("hello world"));
    }

    #[test]
    fn delta_saves_apply_incrementally() {
        let server = DocsServer::new();
        let doc = create_doc(&server);
        save_contents(&server, &doc, "abcdefg");
        // The paper's example: "=2 -3 +uv =2 +w" turns abcdefg into abuvfgw.
        let resp = save_delta(&server, &doc, "=2\t-3\t+uv\t=2\t+w");
        assert!(resp.is_success());
        assert_eq!(server.stored_content(&doc).unwrap(), "abuvfgw");
        assert_eq!(server.stored_version(&doc), Some(2));
    }

    #[test]
    fn ack_carries_hash_of_stored_content() {
        let server = DocsServer::new();
        let doc = create_doc(&server);
        let resp = save_contents(&server, &doc, "content");
        let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
        assert_eq!(form::first_value(&pairs, "contentFromServer"), Some(""));
        assert_eq!(
            form::first_value(&pairs, "contentFromServerHash"),
            Some(DocsServer::content_hash("content").as_str())
        );
    }

    #[test]
    fn bad_delta_is_a_conflict() {
        let server = DocsServer::new();
        let doc = create_doc(&server);
        save_contents(&server, &doc, "short");
        let resp = save_delta(&server, &doc, "=100\t-1");
        assert_eq!(resp.status, 409);
        // Content unchanged on conflict.
        assert_eq!(server.stored_content(&doc).unwrap(), "short");
    }

    #[test]
    fn size_limit_enforced() {
        let server = DocsServer::new();
        let doc = create_doc(&server);
        let huge = "x".repeat(MAX_DOC_BYTES + 1);
        assert_eq!(save_contents(&server, &doc, &huge).status, 413);
        save_contents(&server, &doc, "small");
        let grow = format!("+{}", "y".repeat(MAX_DOC_BYTES));
        assert_eq!(save_delta(&server, &doc, &grow).status, 413);
    }

    #[test]
    fn unknown_document_is_404() {
        let server = DocsServer::new();
        assert_eq!(save_contents(&server, "nope", "x").status, 404);
        assert_eq!(server.handle(&Request::get("/Doc/load", &[("docID", "nope")])).status, 404);
    }

    #[test]
    fn spell_check_flags_unknown_words() {
        let server = DocsServer::new();
        let doc = create_doc(&server);
        save_contents(&server, &doc, "the quick brown fox zzyzx");
        let resp = server.handle(&Request::post("/spell", &[("docID", &doc)], ""));
        let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
        assert_eq!(form::first_value(&pairs, "misspelled"), Some("zzyzx"));
    }

    #[test]
    fn spell_check_on_ciphertext_flags_everything() {
        let server = DocsServer::new();
        let doc = create_doc(&server);
        // Simulates what the server sees under the extension.
        save_contents(&server, &doc, "MZXW6YTB OI2DKNRU GEZDGNBV");
        let resp = server.handle(&Request::post("/spell", &[("docID", &doc)], ""));
        let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
        // Digits split the Base32 tokens, so more fragments than "words"
        // are flagged — the point is that nothing passes the dictionary.
        let flagged = form::first_value(&pairs, "misspelled").unwrap();
        assert!(flagged.split(',').count() >= 3, "ciphertext must be flagged: {flagged}");
    }

    #[test]
    fn translate_and_export() {
        let server = DocsServer::new();
        let doc = create_doc(&server);
        save_contents(&server, &doc, "hello world");
        let resp = server.handle(&Request::post("/translate", &[("docID", &doc)], ""));
        let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
        assert_eq!(form::first_value(&pairs, "translated"), Some("ellohay orldway"));
        let resp =
            server.handle(&Request::get("/export", &[("docID", &doc), ("format", "upper")]));
        assert_eq!(resp.body_text(), Some("HELLO WORLD"));
    }

    #[test]
    fn drawing_renders_primitives() {
        let server = DocsServer::new();
        let resp = server.handle(&Request::post("/drawing", &[], "circle(3,4,5)"));
        assert_eq!(resp.body_text(), Some("rendered:circle(3,4,5)"));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let server = DocsServer::new();
        let doc = create_doc(&server);
        save_contents(&server, &doc, "persistent content with = & % chars");
        save_delta(&server, &doc, "+more ");
        let snapshot = server.snapshot();
        let restored = DocsServer::restore(&snapshot).unwrap();
        assert_eq!(
            restored.stored_content(&doc),
            server.stored_content(&doc)
        );
        assert_eq!(restored.stored_version(&doc), server.stored_version(&doc));
        assert_eq!(restored.stored_revisions(&doc), server.stored_revisions(&doc));
        // Restored servers continue issuing fresh ids.
        let resp = restored.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
        let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
        assert_ne!(form::first_value(&pairs, "docID"), Some(doc.as_str()));
    }

    #[test]
    fn restore_rejects_garbage() {
        assert!(DocsServer::restore("next_doc=abc").is_err());
        assert!(DocsServer::restore("content=x").is_err(), "missing docID");
    }

    #[test]
    fn revision_history_is_kept() {
        let server = DocsServer::new();
        let doc = create_doc(&server);
        save_contents(&server, &doc, "v1");
        save_delta(&server, &doc, "+x");
        save_contents(&server, &doc, "v3");
        // History: "", "v1", "xv1".
        let revisions = server.stored_revisions(&doc).unwrap();
        assert_eq!(revisions, vec!["".to_string(), "v1".to_string(), "xv1".to_string()]);
        let resp = server.handle(&Request::get("/Doc/revisions", &[("docID", &doc)]));
        let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
        assert_eq!(form::first_value(&pairs, "revisionCount"), Some("3"));
        let resp = server
            .handle(&Request::get("/Doc/revisions", &[("docID", &doc), ("index", "1")]));
        let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
        assert_eq!(form::first_value(&pairs, "content"), Some("v1"));
        let resp = server
            .handle(&Request::get("/Doc/revisions", &[("docID", &doc), ("index", "9")]));
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn version_counts_saves() {
        let server = DocsServer::new();
        let doc = create_doc(&server);
        save_contents(&server, &doc, "v1");
        save_delta(&server, &doc, "+x");
        save_delta(&server, &doc, "+y");
        assert_eq!(server.stored_version(&doc), Some(3));
    }
}
