//! Deterministic retry backoff policies.
//!
//! Every retry loop in the workspace — the editing client's save loop,
//! `pe-net`'s HTTP client, the load harness — needs the same thing:
//! bounded exponential backoff with jitter, and *deterministic* delays so
//! tests and benchmarks are reproducible. [`BackoffPolicy`] computes the
//! delay for attempt `n` as
//!
//! ```text
//! delay(n) = min(base · 2ⁿ, cap) · (1 − jitter·u(seed, n))
//! ```
//!
//! where `u` is a uniform value in `[0, 1)` derived from a SplitMix hash
//! of `(seed, n)`. With `jitter = 0` the schedule is the classic capped
//! doubling; with `jitter = 1` it is AWS-style "full jitter". Two policy
//! values with the same fields produce identical schedules.
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use pe_cloud::retry::BackoffPolicy;
//!
//! let policy = BackoffPolicy::new(Duration::from_millis(2), Duration::from_millis(50), 0.5, 7);
//! assert_eq!(policy.delay(0), policy.delay(0), "deterministic");
//! assert!(policy.delay(9) <= Duration::from_millis(50), "capped");
//! assert!(BackoffPolicy::none().delay(3).is_zero());
//! ```

use std::time::Duration;

/// A capped exponential backoff schedule with deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// Delay before the first retry (attempt 0).
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Fraction of each delay that is randomized away, in `[0, 1]`.
    /// `0.0` disables jitter; `1.0` draws uniformly from `(0, delay]`.
    pub jitter: f64,
    /// Seed for the jitter stream; retries with different seeds
    /// desynchronize (no thundering herd), same seed reproduces exactly.
    pub seed: u64,
}

impl BackoffPolicy {
    /// A policy with the given parameters. `jitter` is clamped to `[0, 1]`.
    pub fn new(base: Duration, cap: Duration, jitter: f64, seed: u64) -> BackoffPolicy {
        BackoffPolicy { base, cap, jitter: jitter.clamp(0.0, 1.0), seed }
    }

    /// The zero policy: every delay is `Duration::ZERO` (retry
    /// immediately — the pre-backoff behaviour, still wanted in tests).
    pub const fn none() -> BackoffPolicy {
        BackoffPolicy { base: Duration::ZERO, cap: Duration::ZERO, jitter: 0.0, seed: 0 }
    }

    /// The default client policy: 2 ms base, 100 ms cap, half jitter.
    pub fn client_default(seed: u64) -> BackoffPolicy {
        BackoffPolicy::new(Duration::from_millis(2), Duration::from_millis(100), 0.5, seed)
    }

    /// The delay to sleep before retry number `attempt` (0-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        if self.base.is_zero() {
            return Duration::ZERO;
        }
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(20))
            .min(self.cap.max(self.base));
        if self.jitter <= 0.0 {
            return exp;
        }
        // Uniform u in [0, 1) from a SplitMix mix of (seed, attempt).
        let mut z = self
            .seed
            .wrapping_add(u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64;
        exp.mul_f64(1.0 - self.jitter * u)
    }

    /// Sleeps for [`BackoffPolicy::delay`]`(attempt)` and returns the
    /// duration actually slept (zero delays skip the syscall).
    pub fn sleep(&self, attempt: u32) -> Duration {
        let delay = self.delay(attempt);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        delay
    }
}

impl Default for BackoffPolicy {
    fn default() -> BackoffPolicy {
        BackoffPolicy::client_default(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_until_the_cap() {
        let policy =
            BackoffPolicy::new(Duration::from_millis(1), Duration::from_millis(8), 0.0, 0);
        assert_eq!(policy.delay(0), Duration::from_millis(1));
        assert_eq!(policy.delay(1), Duration::from_millis(2));
        assert_eq!(policy.delay(2), Duration::from_millis(4));
        assert_eq!(policy.delay(3), Duration::from_millis(8));
        assert_eq!(policy.delay(10), Duration::from_millis(8), "capped");
        assert_eq!(policy.delay(63), Duration::from_millis(8), "no overflow");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let policy =
            BackoffPolicy::new(Duration::from_millis(4), Duration::from_millis(64), 1.0, 42);
        for attempt in 0..12 {
            let a = policy.delay(attempt);
            let b = policy.delay(attempt);
            assert_eq!(a, b, "same (seed, attempt) must give the same delay");
            assert!(a <= Duration::from_millis(64));
        }
        // Different seeds must decorrelate at least one attempt.
        let other =
            BackoffPolicy::new(Duration::from_millis(4), Duration::from_millis(64), 1.0, 43);
        assert!((0..12).any(|n| policy.delay(n) != other.delay(n)));
    }

    #[test]
    fn none_never_sleeps() {
        let policy = BackoffPolicy::none();
        for attempt in 0..8 {
            assert!(policy.delay(attempt).is_zero());
        }
        assert!(policy.sleep(3).is_zero());
    }

    #[test]
    fn jitter_clamps_out_of_range_inputs() {
        let policy = BackoffPolicy::new(Duration::from_millis(1), Duration::from_millis(2), 7.5, 0);
        assert!((policy.jitter - 1.0).abs() < f64::EPSILON);
        let policy =
            BackoffPolicy::new(Duration::from_millis(1), Duration::from_millis(2), -3.0, 0);
        assert_eq!(policy.jitter, 0.0);
    }
}
