//! Fault injection for resilience testing.
//!
//! Cloud services fail: requests time out, load balancers shed load,
//! deploys 500. A [`FlakyService`] wraps any server and fails a
//! deterministic, seeded fraction of requests so client retry behaviour
//! can be tested. (The paper assumes a *reliable* storage service — §VI
//! "we assume that the server provides a reliable storage service" — but
//! a production-quality client still needs to behave sanely when it
//! hiccups.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::{CloudService, Request, Response};

/// A wrapper that fails a deterministic subset of requests with 503.
///
/// Failures are decided by a cheap seeded hash of the request counter, so
/// runs are reproducible. Failed requests do **not** reach the inner
/// service (they model transport/server-front failures, not partial
/// application).
///
/// # Example
///
/// ```
/// use pe_cloud::docs::DocsServer;
/// use pe_cloud::fault::FlakyService;
/// use pe_cloud::{CloudService, Request};
///
/// // period = 1: every request fails.
/// let flaky = FlakyService::new(DocsServer::new(), 1, 0);
/// let req = Request::post("/Doc", &[("cmd", "create")], "");
/// assert_eq!(flaky.handle(&req).status, 503);
/// // period = 0: failures disabled.
/// let reliable = FlakyService::new(DocsServer::new(), 0, 0);
/// assert!(reliable.handle(&req).is_success());
/// ```
#[derive(Debug)]
pub struct FlakyService<S> {
    inner: S,
    /// Fail one request out of every `period` (`0` disables failures).
    period: u64,
    seed: u64,
    counter: AtomicU64,
}

impl<S: CloudService> FlakyService<S> {
    /// Wraps `inner`, failing one request in every `period`.
    pub fn new(inner: S, period: u64, seed: u64) -> FlakyService<S> {
        FlakyService { inner, period, seed, counter: AtomicU64::new(0) }
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Number of requests seen so far (including failed ones).
    pub fn requests(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }

    fn should_fail(&self, n: u64) -> bool {
        if self.period == 0 {
            return false;
        }
        // SplitMix-style mix of counter and seed.
        let mut z = n.wrapping_add(self.seed).wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)).is_multiple_of(self.period)
    }
}

impl<S: CloudService> CloudService for FlakyService<S> {
    fn handle(&self, request: &Request) -> Response {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        if self.should_fail(n) {
            pe_observe::static_counter!("cloud.faults_injected").inc();
            return Response::error(503, "service unavailable (injected fault)");
        }
        self.inner.handle(request)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// A transport-level fault a real socket server can enact.
///
/// [`FlakyService`] models *application* failures (clean 503 responses);
/// these model the wire itself misbehaving. `pe-cloud` only defines the
/// vocabulary and the deterministic schedule — the `pe-net` server is the
/// layer with sockets, so it is the one that enacts them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectionFault {
    /// Close the connection as soon as it is accepted, before reading the
    /// request (the client observes a reset / an empty response).
    Refuse,
    /// Sleep this long before writing the response body, to push past the
    /// client's read timeout (a mid-body stall).
    Stall(Duration),
    /// Write only the first `n` bytes of the serialized response, then
    /// close the connection (a truncated response).
    Truncate(usize),
}

/// A deterministic, seeded schedule of [`ConnectionFault`]s.
///
/// Mirrors [`FlakyService`]'s decision rule — a SplitMix hash of a
/// request counter — so one fault fires per `period` events on average,
/// reproducibly for a given seed. `period = 0` disables the schedule;
/// `period = 1` fires on every event.
#[derive(Debug)]
pub struct ConnectionFaultSchedule {
    fault: ConnectionFault,
    period: u64,
    seed: u64,
    counter: AtomicU64,
    injected: AtomicU64,
}

impl ConnectionFaultSchedule {
    /// Fires `fault` roughly once per `period` events.
    pub fn new(fault: ConnectionFault, period: u64, seed: u64) -> ConnectionFaultSchedule {
        ConnectionFaultSchedule {
            fault,
            period,
            seed,
            counter: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Fires `fault` on every event.
    pub fn always(fault: ConnectionFault) -> ConnectionFaultSchedule {
        ConnectionFaultSchedule::new(fault, 1, 0)
    }

    /// The fault kind this schedule injects.
    pub fn fault(&self) -> ConnectionFault {
        self.fault
    }

    /// How many faults have been injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Advances the schedule by one event and returns the fault to enact,
    /// if this event draws one.
    pub fn next(&self) -> Option<ConnectionFault> {
        if self.period == 0 {
            return None;
        }
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let mut z = n.wrapping_add(self.seed).wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        if (z ^ (z >> 31)).is_multiple_of(self.period) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            pe_observe::static_counter!("cloud.connection_faults_injected").inc();
            Some(self.fault)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod connection_fault_tests {
    use super::*;

    #[test]
    fn always_fires_every_time() {
        let schedule = ConnectionFaultSchedule::always(ConnectionFault::Refuse);
        for _ in 0..10 {
            assert_eq!(schedule.next(), Some(ConnectionFault::Refuse));
        }
        assert_eq!(schedule.injected(), 10);
    }

    #[test]
    fn zero_period_never_fires() {
        let schedule = ConnectionFaultSchedule::new(ConnectionFault::Truncate(3), 0, 9);
        assert!((0..50).all(|_| schedule.next().is_none()));
        assert_eq!(schedule.injected(), 0);
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let pattern = |seed| -> Vec<bool> {
            let schedule = ConnectionFaultSchedule::new(
                ConnectionFault::Stall(Duration::from_millis(1)),
                3,
                seed,
            );
            (0..64).map(|_| schedule.next().is_some()).collect()
        };
        assert_eq!(pattern(5), pattern(5));
        assert_ne!(pattern(5), pattern(6));
    }

    #[test]
    fn period_sets_the_approximate_rate() {
        let schedule = ConnectionFaultSchedule::new(ConnectionFault::Refuse, 4, 17);
        let fired = (0..400).filter(|_| schedule.next().is_some()).count();
        assert!((60..=140).contains(&fired), "got {fired} faults out of 400");
        assert_eq!(schedule.injected() as usize, fired);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docs::DocsServer;

    #[test]
    fn failure_rate_is_approximately_one_in_period() {
        let flaky = FlakyService::new(DocsServer::new(), 4, 7);
        let req = Request::post("/Doc", &[("cmd", "create")], "");
        let failures = (0..400).filter(|_| flaky.handle(&req).status == 503).count();
        assert!((60..=140).contains(&failures), "got {failures} failures out of 400");
    }

    #[test]
    fn zero_period_never_fails() {
        let flaky = FlakyService::new(DocsServer::new(), 0, 7);
        let req = Request::post("/Doc", &[("cmd", "create")], "");
        assert!((0..50).all(|_| flaky.handle(&req).is_success()));
    }

    #[test]
    fn failures_are_deterministic() {
        let pattern = |seed| -> Vec<bool> {
            let flaky = FlakyService::new(DocsServer::new(), 3, seed);
            let req = Request::post("/Doc", &[("cmd", "create")], "");
            (0..50).map(|_| flaky.handle(&req).status == 503).collect()
        };
        assert_eq!(pattern(1), pattern(1));
        assert_ne!(pattern(1), pattern(2));
    }

    #[test]
    fn failed_requests_do_not_reach_inner() {
        let flaky = FlakyService::new(DocsServer::new(), 1, 0); // always fail
        let req = Request::post("/Doc", &[("cmd", "create")], "");
        for _ in 0..5 {
            assert_eq!(flaky.handle(&req).status, 503);
        }
        // No documents were created.
        assert!(flaky.inner().stored_content("doc1").is_none());
    }
}
