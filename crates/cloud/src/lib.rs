//! Simulated cloud editing services.
//!
//! The paper interposes on three real 2011 services: **Google Documents**
//! (incremental `delta` saves), **Mozilla Bespin** (whole-file HTTP PUT),
//! and **Adobe Buzzword** (whole-document XML POST). Those services no
//! longer exist in their 2011 form, so this crate provides in-process
//! servers speaking the same wire shapes (see DESIGN.md §2 for the
//! substitution argument):
//!
//! * [`docs::DocsServer`] — the Google-Documents-style server: edit
//!   sessions, full (`docContents`) and incremental (`delta`) saves, Ack
//!   messages carrying `contentFromServer`/`contentFromServerHash`, plus
//!   the server-side features whose fate §VII-A reports (spell checking,
//!   translation, export, drawing).
//! * [`bespin::BespinServer`] — a whole-file PUT/GET store.
//! * [`buzzword::BuzzwordServer`] — an XML store with `<textRun>` body
//!   text.
//! * [`net::NetworkModel`] — a deterministic latency/bandwidth model used
//!   by the macro-benchmarks to relate crypto cost to end-to-end request
//!   latency.
//!
//! All servers implement [`CloudService`]; the mediator (crate
//! `pe-extension`) wraps any of them and rewrites traffic.
//!
//! # Example
//!
//! ```
//! use pe_cloud::docs::DocsServer;
//! use pe_cloud::{CloudService, Request};
//!
//! let server = DocsServer::new();
//! let resp = server.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
//! assert_eq!(resp.status, 200);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bespin;
pub mod buzzword;
pub mod docs;
pub mod fault;
mod http;
pub mod meter;
pub mod net;
pub mod retry;
pub mod tenant;

pub use http::{Method, Request, Response};

/// A cloud application server: a function from requests to responses.
///
/// Implemented by every simulated service; the mediator intercepts calls
/// to this trait.
pub trait CloudService: Send + Sync {
    /// Handles one client request.
    fn handle(&self, request: &Request) -> Response;

    /// A short service name used in logs and the functionality matrix.
    fn name(&self) -> &'static str;
}

impl<T: CloudService + ?Sized> CloudService for std::sync::Arc<T> {
    fn handle(&self, request: &Request) -> Response {
        (**self).handle(request)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<T: CloudService + ?Sized> CloudService for &T {
    fn handle(&self, request: &Request) -> Response {
        (**self).handle(request)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}
