//! The Adobe-Buzzword-style XML document store (§III "Buzzword").
//!
//! "On every update, the client sends back the whole document content as a
//! XML file encapsulated in a HTTP POST request. By encrypting the text
//! embedded in `<textRun>` tags, we keep submitted document content
//! secure." This module provides the server plus the `<textRun>`
//! extraction/rewriting helpers the mediator uses.

use std::sync::Arc;

use pe_store::{DocStore, MemStore};

use crate::{CloudService, Method, Request, Response};

/// Extracts the contents of every `<textRun>…</textRun>` element, in
/// order.
pub fn text_runs(xml: &str) -> Vec<&str> {
    let mut runs = Vec::new();
    let mut rest = xml;
    while let Some(start) = rest.find("<textRun>") {
        let after = &rest[start + "<textRun>".len()..];
        let Some(end) = after.find("</textRun>") else { break };
        runs.push(&after[..end]);
        rest = &after[end + "</textRun>".len()..];
    }
    runs
}

/// Rewrites every `<textRun>` body with `f`, leaving all other markup
/// untouched.
pub fn map_text_runs<F>(xml: &str, mut f: F) -> String
where
    F: FnMut(&str) -> String,
{
    let mut out = String::with_capacity(xml.len());
    let mut rest = xml;
    while let Some(start) = rest.find("<textRun>") {
        let body_start = start + "<textRun>".len();
        let Some(end) = rest[body_start..].find("</textRun>") else { break };
        out.push_str(&rest[..body_start]);
        out.push_str(&f(&rest[body_start..body_start + end]));
        out.push_str("</textRun>");
        rest = &rest[body_start + end + "</textRun>".len()..];
    }
    out.push_str(rest);
    out
}

/// A whole-document XML store.
///
/// Storage is pluggable via [`DocStore`] — in-memory by default, or a
/// durable [`pe_store::LogStore`] so posted documents survive a crash.
///
/// # Example
///
/// ```
/// use pe_cloud::buzzword::{text_runs, BuzzwordServer};
/// use pe_cloud::{CloudService, Request};
///
/// let server = BuzzwordServer::new();
/// let xml = "<doc><textRun>hi</textRun></doc>";
/// server.handle(&Request::post("/buzzword/doc/d1", &[], xml));
/// let stored = server.stored("d1").unwrap();
/// assert_eq!(text_runs(&stored), vec!["hi"]);
/// ```
pub struct BuzzwordServer {
    docs: Arc<dyn DocStore>,
}

impl std::fmt::Debug for BuzzwordServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuzzwordServer").field("store", &self.docs.name()).finish()
    }
}

impl Default for BuzzwordServer {
    fn default() -> BuzzwordServer {
        BuzzwordServer::new()
    }
}

impl BuzzwordServer {
    /// Creates an empty in-memory store.
    pub fn new() -> BuzzwordServer {
        BuzzwordServer::with_store(Arc::new(MemStore::new()))
    }

    /// Creates a store over an existing (possibly durable) store.
    pub fn with_store(docs: Arc<dyn DocStore>) -> BuzzwordServer {
        BuzzwordServer { docs }
    }

    /// The stored XML for a document id.
    pub fn stored(&self, id: &str) -> Option<String> {
        self.docs.content(id).map(|b| String::from_utf8_lossy(&b).into_owned())
    }
}

impl CloudService for BuzzwordServer {
    fn handle(&self, request: &Request) -> Response {
        let Some(id) = request.path.strip_prefix("/buzzword/doc/") else {
            return Response::error(404, "unknown endpoint");
        };
        match request.method {
            Method::Post => {
                let Some(xml) = request.body_text() else {
                    return Response::error(400, "body must be XML text");
                };
                match self.docs.put_full(id, xml.as_bytes()) {
                    Ok(_) => Response::ok(""),
                    Err(e) => Response::error(500, &format!("storage failure: {e}")),
                }
            }
            Method::Get => match self.docs.content(id) {
                Some(xml) => Response::ok(xml),
                None => Response::error(404, "no such document"),
            },
            Method::Put => Response::error(405, "buzzword uses POST"),
        }
    }

    fn name(&self) -> &'static str {
        "buzzword"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_runs_in_order() {
        let xml = "<doc><p><textRun>one</textRun></p><textRun>two</textRun></doc>";
        assert_eq!(text_runs(xml), vec!["one", "two"]);
    }

    #[test]
    fn no_runs_in_plain_markup() {
        assert!(text_runs("<doc><p>bare</p></doc>").is_empty());
    }

    #[test]
    fn map_rewrites_only_run_bodies() {
        let xml = "<doc attr=\"keep\"><textRun>secret</textRun><b>bold</b></doc>";
        let out = map_text_runs(xml, |t| t.to_uppercase());
        assert_eq!(out, "<doc attr=\"keep\"><textRun>SECRET</textRun><b>bold</b></doc>");
    }

    #[test]
    fn map_handles_empty_and_unterminated() {
        assert_eq!(map_text_runs("", |t| t.into()), "");
        let broken = "<textRun>open but never closed";
        assert_eq!(map_text_runs(broken, |t| t.into()), broken);
    }

    #[test]
    fn store_roundtrip() {
        let server = BuzzwordServer::new();
        let xml = "<doc><textRun>content</textRun></doc>";
        assert!(server.handle(&Request::post("/buzzword/doc/x", &[], xml)).is_success());
        let resp = server.handle(&Request::get("/buzzword/doc/x", &[]));
        assert_eq!(resp.body_text(), Some(xml));
        assert_eq!(server.handle(&Request::get("/buzzword/doc/other", &[])).status, 404);
        assert_eq!(server.handle(&Request::put("/buzzword/doc/x", &[], xml)).status, 405);
    }
}
