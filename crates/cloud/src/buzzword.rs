//! The Adobe-Buzzword-style XML document store (§III "Buzzword").
//!
//! "On every update, the client sends back the whole document content as a
//! XML file encapsulated in a HTTP POST request. By encrypting the text
//! embedded in `<textRun>` tags, we keep submitted document content
//! secure." This module provides the server plus the `<textRun>`
//! extraction/rewriting helpers the mediator uses.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::{CloudService, Method, Request, Response};

/// Extracts the contents of every `<textRun>…</textRun>` element, in
/// order.
pub fn text_runs(xml: &str) -> Vec<&str> {
    let mut runs = Vec::new();
    let mut rest = xml;
    while let Some(start) = rest.find("<textRun>") {
        let after = &rest[start + "<textRun>".len()..];
        let Some(end) = after.find("</textRun>") else { break };
        runs.push(&after[..end]);
        rest = &after[end + "</textRun>".len()..];
    }
    runs
}

/// Rewrites every `<textRun>` body with `f`, leaving all other markup
/// untouched.
pub fn map_text_runs<F>(xml: &str, mut f: F) -> String
where
    F: FnMut(&str) -> String,
{
    let mut out = String::with_capacity(xml.len());
    let mut rest = xml;
    while let Some(start) = rest.find("<textRun>") {
        let body_start = start + "<textRun>".len();
        let Some(end) = rest[body_start..].find("</textRun>") else { break };
        out.push_str(&rest[..body_start]);
        out.push_str(&f(&rest[body_start..body_start + end]));
        out.push_str("</textRun>");
        rest = &rest[body_start + end + "</textRun>".len()..];
    }
    out.push_str(rest);
    out
}

/// A whole-document XML store.
///
/// # Example
///
/// ```
/// use pe_cloud::buzzword::{text_runs, BuzzwordServer};
/// use pe_cloud::{CloudService, Request};
///
/// let server = BuzzwordServer::new();
/// let xml = "<doc><textRun>hi</textRun></doc>";
/// server.handle(&Request::post("/buzzword/doc/d1", &[], xml));
/// let stored = server.stored("d1").unwrap();
/// assert_eq!(text_runs(&stored), vec!["hi"]);
/// ```
#[derive(Debug, Default)]
pub struct BuzzwordServer {
    docs: Mutex<HashMap<String, String>>,
}

impl BuzzwordServer {
    /// Creates an empty store.
    pub fn new() -> BuzzwordServer {
        BuzzwordServer::default()
    }

    /// The stored XML for a document id.
    pub fn stored(&self, id: &str) -> Option<String> {
        self.docs.lock().get(id).cloned()
    }
}

impl CloudService for BuzzwordServer {
    fn handle(&self, request: &Request) -> Response {
        let Some(id) = request.path.strip_prefix("/buzzword/doc/") else {
            return Response::error(404, "unknown endpoint");
        };
        match request.method {
            Method::Post => {
                let Some(xml) = request.body_text() else {
                    return Response::error(400, "body must be XML text");
                };
                self.docs.lock().insert(id.to_string(), xml.to_string());
                Response::ok("")
            }
            Method::Get => match self.docs.lock().get(id) {
                Some(xml) => Response::ok(xml.clone()),
                None => Response::error(404, "no such document"),
            },
            Method::Put => Response::error(405, "buzzword uses POST"),
        }
    }

    fn name(&self) -> &'static str {
        "buzzword"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_runs_in_order() {
        let xml = "<doc><p><textRun>one</textRun></p><textRun>two</textRun></doc>";
        assert_eq!(text_runs(xml), vec!["one", "two"]);
    }

    #[test]
    fn no_runs_in_plain_markup() {
        assert!(text_runs("<doc><p>bare</p></doc>").is_empty());
    }

    #[test]
    fn map_rewrites_only_run_bodies() {
        let xml = "<doc attr=\"keep\"><textRun>secret</textRun><b>bold</b></doc>";
        let out = map_text_runs(xml, |t| t.to_uppercase());
        assert_eq!(out, "<doc attr=\"keep\"><textRun>SECRET</textRun><b>bold</b></doc>");
    }

    #[test]
    fn map_handles_empty_and_unterminated() {
        assert_eq!(map_text_runs("", |t| t.into()), "");
        let broken = "<textRun>open but never closed";
        assert_eq!(map_text_runs(broken, |t| t.into()), broken);
    }

    #[test]
    fn store_roundtrip() {
        let server = BuzzwordServer::new();
        let xml = "<doc><textRun>content</textRun></doc>";
        assert!(server.handle(&Request::post("/buzzword/doc/x", &[], xml)).is_success());
        let resp = server.handle(&Request::get("/buzzword/doc/x", &[]));
        assert_eq!(resp.body_text(), Some(xml));
        assert_eq!(server.handle(&Request::get("/buzzword/doc/other", &[])).status, 404);
        assert_eq!(server.handle(&Request::put("/buzzword/doc/x", &[], xml)).status, 405);
    }
}
