//! `pedit stats` acceptance tests: the scripted session must light up
//! nonzero counters and latency histograms in every layer (core,
//! mediator, cloud, client), and the JSON rendering must round-trip
//! through the snapshot parser.

use pe_cli::{parse_args, run};
use pe_observe::Snapshot;

fn pedit_stats(extra: &[&str]) -> String {
    let mut args = vec!["stats".to_string()];
    args.extend(extra.iter().map(|s| s.to_string()));
    run(&parse_args(&args).expect("stats args parse")).expect("stats session runs")
}

/// Counters that must be nonzero after the scripted session, covering
/// all three layers of the stack plus the client retry loop.
const REQUIRED_COUNTERS: &[&str] = &[
    // core
    "core.blocks_sealed.recb",
    "core.blocks_opened.recb",
    "core.blocks_sealed.rpc",
    "core.blocks_opened.rpc",
    "core.integrity_failures.rpc",
    // mediator
    "mediator.requests",
    "mediator.outcome.encrypted",
    "mediator.outcome.decrypted",
    // cloud
    "cloud.requests",
    "cloud.faults_injected",
    // client
    "client.save_attempts",
    "client.save_retries",
    "client.merges",
    // cli (timed full-document save)
    "cli.full_save_bytes",
];

/// Histograms that must have recorded at least one sample, including a
/// latency (`_ns`) histogram for each layer.
const REQUIRED_HISTOGRAMS: &[&str] = &[
    "core.splice_content_bytes",
    "core.batch.blocks_per_call",
    "mediator.encrypt_ns",
    "mediator.decrypt_ns",
    "cloud.net_modeled_ns",
    "client.retries_to_success",
    "cli.full_save_ns",
];

#[test]
fn text_stats_cover_every_layer() {
    let text = pedit_stats(&[]);
    for name in REQUIRED_COUNTERS.iter().chain(REQUIRED_HISTOGRAMS) {
        assert!(text.contains(name), "missing metric {name} in:\n{text}");
    }
    assert!(text.contains("observability snapshot"), "{text}");
    // The text report ends with the human-readable full-save wall time.
    assert!(text.contains("full save:"), "{text}");
}

#[test]
fn json_stats_parse_and_have_nonzero_metrics() {
    let jsonl = pedit_stats(&["--format", "json"]);
    let snapshot = Snapshot::parse_jsonl(&jsonl).expect("stats JSON parses");
    for name in REQUIRED_COUNTERS {
        let value = snapshot
            .counter(name)
            .unwrap_or_else(|| panic!("missing counter {name} in:\n{jsonl}"));
        assert!(value > 0, "counter {name} is zero");
    }
    for name in REQUIRED_HISTOGRAMS {
        let histogram = snapshot
            .histogram(name)
            .unwrap_or_else(|| panic!("missing histogram {name} in:\n{jsonl}"));
        assert!(histogram.count > 0, "histogram {name} is empty");
        assert!(histogram.max >= histogram.min, "{name} bounds inverted");
    }
    // The JSON render of the parsed snapshot is identical to the
    // original, i.e. the renderer and parser are true inverses here.
    assert_eq!(snapshot.render_jsonl(), jsonl);
}

#[test]
fn stats_session_is_deterministic_where_it_should_be() {
    // Timings differ run to run, but counters are fully deterministic.
    let a = Snapshot::parse_jsonl(&pedit_stats(&["--format", "json"])).unwrap();
    let b = Snapshot::parse_jsonl(&pedit_stats(&["--format", "json"])).unwrap();
    assert_eq!(a.counters, b.counters);
}
