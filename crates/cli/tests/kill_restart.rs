//! Crash-durability end-to-end test: a save acknowledged over the
//! socket must survive a `SIGKILL` of the serving process — the
//! property the durable `LogStore` directory exists to provide. The
//! server runs as a real child process (the actual `pedit` binary) so
//! the kill is a genuine process death, not a simulated one.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use pe_cli::{parse_args, run, CliError};

struct TempPath(PathBuf);

impl TempPath {
    fn new(tag: &str) -> TempPath {
        let mut path = std::env::temp_dir();
        path.push(format!("pedit-kill-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir_all(&path);
        TempPath(path)
    }

    fn str(&self) -> &str {
        self.0.to_str().unwrap()
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Runs a client-side invocation in-process (the library IS the CLI).
fn pedit(args: &[&str]) -> Result<String, CliError> {
    let full: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    run(&parse_args(&full)?)
}

fn spawn_serve(store: &str, addr_file: &str) -> Child {
    Command::new(env!("CARGO_BIN_EXE_pedit"))
        .args(["--store", store, "serve", "--addr", "127.0.0.1:0", "--addr-file", addr_file])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn pedit serve")
}

/// The server writes its bound address only after the socket is live.
fn wait_for_addr(path: &std::path::Path) -> String {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if let Ok(addr) = std::fs::read_to_string(path) {
            if !addr.is_empty() {
                return addr;
            }
        }
        assert!(Instant::now() < deadline, "server never wrote its address");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn acknowledged_saves_survive_sigkill_and_restart() {
    let store = TempPath::new("store");
    let addr_file = TempPath::new("addr");

    // --- First life: create and save over the socket, then SIGKILL. ---
    let mut child = spawn_serve(store.str(), addr_file.str());
    let addr = wait_for_addr(&addr_file.0);

    let created = pedit(&["--connect", &addr, "create", "--password", "pw"]).unwrap();
    let doc = created.strip_prefix("created ").unwrap().to_string();
    pedit(&["--connect", &addr, "save", "--doc", &doc, "--password", "pw", "--text",
            "acknowledged before the crash"])
        .unwrap();

    // The save command returned, so the server acknowledged it. Kill -9.
    child.kill().expect("kill serve");
    child.wait().expect("reap serve");

    // --- The store on disk already holds the acknowledged save. ---
    let local =
        pedit(&["--store", store.str(), "show", "--doc", &doc, "--password", "pw"]).unwrap();
    assert_eq!(local, "acknowledged before the crash");

    // fsck agrees the store is healthy after the hard kill.
    let report = pedit(&["fsck", store.str()]).unwrap();
    assert!(report.contains("store healthy"), "fsck after kill: {report}");

    // --- Second life: restart on the same directory and keep editing. ---
    let _ = std::fs::remove_file(&addr_file.0);
    let mut child = spawn_serve(store.str(), addr_file.str());
    let addr = wait_for_addr(&addr_file.0);

    let shown = pedit(&["--connect", &addr, "show", "--doc", &doc, "--password", "pw"]).unwrap();
    assert_eq!(shown, "acknowledged before the crash");
    pedit(&["--connect", &addr, "save", "--doc", &doc, "--password", "pw", "--text",
            "and edited after the restart"])
        .unwrap();

    // Clean stop this time; the process exits on its own.
    assert_eq!(pedit(&["--connect", &addr, "stop"]).unwrap(), "server stopping");
    let status = child.wait().expect("reap serve");
    assert!(status.success(), "clean stop exited {status:?}");

    let local =
        pedit(&["--store", store.str(), "show", "--doc", &doc, "--password", "pw"]).unwrap();
    assert_eq!(local, "and edited after the restart");

    // Offline compaction preserves the store and keeps it healthy.
    let compacted = pedit(&["compact", store.str()]).unwrap();
    assert!(compacted.contains("compacted"), "unexpected: {compacted}");
    let report = pedit(&["fsck", store.str()]).unwrap();
    assert!(report.contains("store healthy"), "fsck after compact: {report}");
    let local =
        pedit(&["--store", store.str(), "show", "--doc", &doc, "--password", "pw"]).unwrap();
    assert_eq!(local, "and edited after the restart");
}

#[test]
fn legacy_text_store_file_is_migrated_by_serve() {
    let store = TempPath::new("legacy");
    let addr_file = TempPath::new("legacy-addr");

    // Build a legacy single-file text store with one document in it.
    let created = pedit(&["--store", store.str(), "create", "--password", "pw"]).unwrap();
    let doc = created.strip_prefix("created ").unwrap().to_string();
    pedit(&["--store", store.str(), "save", "--doc", &doc, "--password", "pw", "--text",
            "born in a text file"])
        .unwrap();
    assert!(store.0.is_file(), "seed store should be a legacy file");

    // `serve` migrates it to a durable directory at the same path.
    let mut child = spawn_serve(store.str(), addr_file.str());
    let addr = wait_for_addr(&addr_file.0);
    let shown = pedit(&["--connect", &addr, "show", "--doc", &doc, "--password", "pw"]).unwrap();
    assert_eq!(shown, "born in a text file");
    assert_eq!(pedit(&["--connect", &addr, "stop"]).unwrap(), "server stopping");
    child.wait().expect("reap serve");

    assert!(store.0.is_dir(), "store should now be a log directory");
    let mut legacy = store.0.as_os_str().to_os_string();
    legacy.push(".legacy");
    assert!(!PathBuf::from(legacy).exists(), "legacy file should be cleaned up");
    let report = pedit(&["fsck", store.str()]).unwrap();
    assert!(report.contains("store healthy"), "fsck after migration: {report}");
    let local =
        pedit(&["--store", store.str(), "show", "--doc", &doc, "--password", "pw"]).unwrap();
    assert_eq!(local, "born in a text file");
}

/// The sharded drill: a multi-shard store serves over the socket, dies
/// by SIGKILL mid-life, recovers every acknowledged save across all
/// shards on restart, and survives fsck + a legacy→sharded migration
/// round trip.
#[test]
fn sharded_store_survives_sigkill_and_legacy_stores_migrate() {
    let store = TempPath::new("sharded");
    let addr_file = TempPath::new("sharded-addr");

    // --- First life: an explicitly 4-way sharded store. ---
    let mut child = Command::new(env!("CARGO_BIN_EXE_pedit"))
        .args([
            "--store", store.str(), "serve", "--addr", "127.0.0.1:0",
            "--addr-file", addr_file.str(), "--shards", "4",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn pedit serve --shards 4");
    let addr = wait_for_addr(&addr_file.0);

    // Several documents so the saves spread across shards.
    let mut docs = Vec::new();
    for i in 0..6 {
        let created = pedit(&["--connect", &addr, "create", "--password", "pw"]).unwrap();
        let doc = created.strip_prefix("created ").unwrap().to_string();
        pedit(&["--connect", &addr, "save", "--doc", &doc, "--password", "pw", "--text",
                &format!("doc {i} acknowledged before the crash")])
            .unwrap();
        docs.push(doc);
    }

    child.kill().expect("kill serve");
    child.wait().expect("reap serve");

    // The layout on disk is sharded, fsck checks every shard, and every
    // acknowledged save is present.
    assert!(store.0.join("pe-shards").is_file(), "manifest must exist");
    assert!(store.0.join("shard-003").is_dir(), "4 shard directories expected");
    let report = pedit(&["fsck", store.str()]).unwrap();
    assert!(report.contains("store healthy"), "fsck after kill: {report}");
    assert!(report.contains("[shard-000]"), "fsck must report per shard: {report}");
    for (i, doc) in docs.iter().enumerate() {
        let local =
            pedit(&["--store", store.str(), "show", "--doc", doc, "--password", "pw"]).unwrap();
        assert_eq!(local, format!("doc {i} acknowledged before the crash"));
    }

    // --- Second life: same directory, shard count read from manifest. ---
    let _ = std::fs::remove_file(&addr_file.0);
    let mut child = spawn_serve(store.str(), addr_file.str());
    let addr = wait_for_addr(&addr_file.0);
    pedit(&["--connect", &addr, "save", "--doc", &docs[0], "--password", "pw", "--text",
            "edited after restart"])
        .unwrap();
    assert_eq!(pedit(&["--connect", &addr, "stop"]).unwrap(), "server stopping");
    assert!(child.wait().expect("reap serve").success());
    let local =
        pedit(&["--store", store.str(), "show", "--doc", &docs[0], "--password", "pw"]).unwrap();
    assert_eq!(local, "edited after restart");

    // --- Migration: a legacy WAL directory converts in place. ---
    let legacy = TempPath::new("sharded-legacy");
    {
        use pe_store::{DocStore, LogStore, StoreConfig};
        let old = LogStore::open(&legacy.0, StoreConfig::default()).unwrap();
        old.put_full("relic", b"from the single-log era").unwrap();
    }
    let compacted = pedit(&["compact", legacy.str(), "--shards", "3"]).unwrap();
    assert!(compacted.contains("3 shard(s)"), "migration output: {compacted}");
    assert!(legacy.0.join("pe-shards").is_file());
    let report = pedit(&["fsck", legacy.str()]).unwrap();
    assert!(report.contains("store healthy"), "fsck after migration: {report}");
    {
        use pe_store::{DocStore, ShardedLogStore, StoreConfig};
        let migrated = ShardedLogStore::open(&legacy.0, 1, StoreConfig::default()).unwrap();
        assert_eq!(migrated.shard_count(), 3);
        assert_eq!(migrated.content("relic").unwrap(), b"from the single-log era");
    }
}
