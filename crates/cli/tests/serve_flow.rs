//! End-to-end `pedit serve` / `--connect` test: one invocation serves a
//! temp-file store over a real loopback socket while another drives a
//! full mediated editing session against it, then stops it cleanly.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use pe_cli::{parse_args, run, CliError};

struct TempPath(PathBuf);

impl TempPath {
    fn new(tag: &str) -> TempPath {
        let mut path = std::env::temp_dir();
        path.push(format!("pedit-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir_all(&path);
        TempPath(path)
    }

    fn str(&self) -> &str {
        self.0.to_str().unwrap()
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        // The store may be a legacy file or a durable log directory.
        let _ = std::fs::remove_file(&self.0);
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn pedit(args: &[&str]) -> Result<String, CliError> {
    let full: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    run(&parse_args(&full)?)
}

#[test]
fn serve_and_connect_round_trip() {
    let store = TempPath::new("store");
    let addr_file = TempPath::new("addr");

    // Serve in a background thread (the CLI blocks until `stop`).
    let serve_args: Vec<String> =
        ["--store", store.str(), "serve", "--addr", "127.0.0.1:0", "--workers", "2",
         "--addr-file", addr_file.str()]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let server_thread = std::thread::spawn(move || run(&parse_args(&serve_args).unwrap()));

    // Wait for the ephemeral port to land in the addr file.
    let deadline = Instant::now() + Duration::from_secs(10);
    let addr = loop {
        if let Ok(addr) = std::fs::read_to_string(&addr_file.0) {
            if !addr.is_empty() {
                break addr;
            }
        }
        assert!(Instant::now() < deadline, "server never wrote its address");
        std::thread::sleep(Duration::from_millis(20));
    };

    // A complete mediated session over the socket.
    let created = pedit(&["--connect", &addr, "create", "--password", "pw"]).unwrap();
    let doc = created.strip_prefix("created ").unwrap().to_string();
    pedit(&["--connect", &addr, "save", "--doc", &doc, "--password", "pw", "--text",
            "wired secret"])
        .unwrap();
    pedit(&["--connect", &addr, "insert", "--doc", &doc, "--password", "pw", "--at", "5",
            "--text", " loopback"])
        .unwrap();
    let shown =
        pedit(&["--connect", &addr, "show", "--doc", &doc, "--password", "pw"]).unwrap();
    assert_eq!(shown, "wired loopback secret");

    // The provider's view (over the admin endpoint) is ciphertext.
    let raw = pedit(&["--connect", &addr, "raw", "--doc", &doc]).unwrap();
    assert!(!raw.contains("secret"), "plaintext leaked to the server: {raw}");
    assert!(!raw.contains("loopback"), "plaintext leaked to the server: {raw}");
    let listed = pedit(&["--connect", &addr, "list"]).unwrap();
    assert!(listed.contains(&doc));
    assert_eq!(pedit(&["--connect", &addr, "raw", "--doc", "nope"]).unwrap(),
               "(no such document)");

    // Stop the server and reap the serving invocation.
    assert_eq!(pedit(&["--connect", &addr, "stop"]).unwrap(), "server stopping");
    let served = server_thread.join().unwrap().unwrap();
    assert!(served.contains("store persisted"), "unexpected serve output: {served}");

    // The persisted store decrypts locally — same document, same content.
    let local =
        pedit(&["--store", store.str(), "show", "--doc", &doc, "--password", "pw"]).unwrap();
    assert_eq!(local, "wired loopback secret");
    let local_raw = pedit(&["--store", store.str(), "raw", "--doc", &doc]).unwrap();
    assert!(!local_raw.contains("secret"));
}

#[test]
fn live_watch_and_concurrent_editors_converge_over_the_socket() {
    let store = TempPath::new("live-store");
    let addr_file = TempPath::new("live-addr");
    let serve_args: Vec<String> =
        ["--store", store.str(), "serve", "--addr", "127.0.0.1:0", "--workers", "2",
         "--addr-file", addr_file.str()]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let server_thread = std::thread::spawn(move || run(&parse_args(&serve_args).unwrap()));
    let deadline = Instant::now() + Duration::from_secs(10);
    let addr = loop {
        if let Ok(addr) = std::fs::read_to_string(&addr_file.0) {
            if !addr.is_empty() {
                break addr;
            }
        }
        assert!(Instant::now() < deadline, "server never wrote its address");
        std::thread::sleep(Duration::from_millis(20));
    };

    let created = pedit(&["--connect", &addr, "create", "--password", "pw"]).unwrap();
    let doc = created.strip_prefix("created ").unwrap().to_string();

    // `watch` and `edit --live` refuse to run without a server.
    assert!(matches!(
        pedit(&["--store", store.str(), "watch", "--doc", &doc, "--password", "pw"]),
        Err(CliError::Usage(_))
    ));

    // A watcher long-polls while an editor pushes a change: the update
    // must arrive via the change stream, not a reload.
    let watch_args: Vec<String> =
        ["--connect", &addr, "watch", "--doc", &doc, "--password", "pw", "--rounds", "3",
         "--wait-ms", "4000"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let watcher = std::thread::spawn(move || run(&parse_args(&watch_args).unwrap()));
    std::thread::sleep(Duration::from_millis(300));
    let edited = pedit(&["--connect", &addr, "edit", "--live", "--doc", &doc, "--password",
                         "pw", "--ops", "a:hello from A", "--rounds", "0"])
        .unwrap();
    assert!(edited.contains("applied 1 op(s)"), "unexpected edit output: {edited}");
    let watched = watcher.join().unwrap().unwrap();
    assert!(watched.contains("hello from A"), "watcher missed the push: {watched}");

    // Two live editors typing concurrently converge on the server.
    let a_args: Vec<String> =
        ["--connect", &addr, "edit", "--live", "--doc", &doc, "--password", "pw",
         "--editor", "alice", "--ops", "i:0:[A] ", "--rounds", "2", "--wait-ms", "500"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let b_args: Vec<String> =
        ["--connect", &addr, "edit", "--live", "--doc", &doc, "--password", "pw",
         "--editor", "bob", "--ops", "a: [B]", "--rounds", "2", "--wait-ms", "500"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let a = std::thread::spawn(move || run(&parse_args(&a_args).unwrap()));
    let b = std::thread::spawn(move || run(&parse_args(&b_args).unwrap()));
    a.join().unwrap().unwrap();
    b.join().unwrap().unwrap();
    let shown = pedit(&["--connect", &addr, "show", "--doc", &doc, "--password", "pw"]).unwrap();
    assert!(shown.contains("[A]") && shown.contains("[B]") && shown.contains("hello from A"),
            "editors diverged: {shown:?}");

    // The provider never saw a plaintext byte of any of it.
    let raw = pedit(&["--connect", &addr, "raw", "--doc", &doc]).unwrap();
    assert!(!raw.contains("hello") && !raw.contains("[A]") && !raw.contains("[B]"),
            "plaintext leaked: {raw}");

    assert_eq!(pedit(&["--connect", &addr, "stop"]).unwrap(), "server stopping");
    server_thread.join().unwrap().unwrap();
}
