//! End-to-end `pedit serve` / `--connect` test: one invocation serves a
//! temp-file store over a real loopback socket while another drives a
//! full mediated editing session against it, then stops it cleanly.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use pe_cli::{parse_args, run, CliError};

struct TempPath(PathBuf);

impl TempPath {
    fn new(tag: &str) -> TempPath {
        let mut path = std::env::temp_dir();
        path.push(format!("pedit-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir_all(&path);
        TempPath(path)
    }

    fn str(&self) -> &str {
        self.0.to_str().unwrap()
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        // The store may be a legacy file or a durable log directory.
        let _ = std::fs::remove_file(&self.0);
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn pedit(args: &[&str]) -> Result<String, CliError> {
    let full: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    run(&parse_args(&full)?)
}

#[test]
fn serve_and_connect_round_trip() {
    let store = TempPath::new("store");
    let addr_file = TempPath::new("addr");

    // Serve in a background thread (the CLI blocks until `stop`).
    let serve_args: Vec<String> =
        ["--store", store.str(), "serve", "--addr", "127.0.0.1:0", "--workers", "2",
         "--addr-file", addr_file.str()]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let server_thread = std::thread::spawn(move || run(&parse_args(&serve_args).unwrap()));

    // Wait for the ephemeral port to land in the addr file.
    let deadline = Instant::now() + Duration::from_secs(10);
    let addr = loop {
        if let Ok(addr) = std::fs::read_to_string(&addr_file.0) {
            if !addr.is_empty() {
                break addr;
            }
        }
        assert!(Instant::now() < deadline, "server never wrote its address");
        std::thread::sleep(Duration::from_millis(20));
    };

    // A complete mediated session over the socket.
    let created = pedit(&["--connect", &addr, "create", "--password", "pw"]).unwrap();
    let doc = created.strip_prefix("created ").unwrap().to_string();
    pedit(&["--connect", &addr, "save", "--doc", &doc, "--password", "pw", "--text",
            "wired secret"])
        .unwrap();
    pedit(&["--connect", &addr, "insert", "--doc", &doc, "--password", "pw", "--at", "5",
            "--text", " loopback"])
        .unwrap();
    let shown =
        pedit(&["--connect", &addr, "show", "--doc", &doc, "--password", "pw"]).unwrap();
    assert_eq!(shown, "wired loopback secret");

    // The provider's view (over the admin endpoint) is ciphertext.
    let raw = pedit(&["--connect", &addr, "raw", "--doc", &doc]).unwrap();
    assert!(!raw.contains("secret"), "plaintext leaked to the server: {raw}");
    assert!(!raw.contains("loopback"), "plaintext leaked to the server: {raw}");
    let listed = pedit(&["--connect", &addr, "list"]).unwrap();
    assert!(listed.contains(&doc));
    assert_eq!(pedit(&["--connect", &addr, "raw", "--doc", "nope"]).unwrap(),
               "(no such document)");

    // Stop the server and reap the serving invocation.
    assert_eq!(pedit(&["--connect", &addr, "stop"]).unwrap(), "server stopping");
    let served = server_thread.join().unwrap().unwrap();
    assert!(served.contains("store persisted"), "unexpected serve output: {served}");

    // The persisted store decrypts locally — same document, same content.
    let local =
        pedit(&["--store", store.str(), "show", "--doc", &doc, "--password", "pw"]).unwrap();
    assert_eq!(local, "wired loopback secret");
    let local_raw = pedit(&["--store", store.str(), "raw", "--doc", &doc]).unwrap();
    assert!(!local_raw.contains("secret"));
}
