//! End-to-end CLI tests: every command, driven in-process against a real
//! temp-file store.

use pe_cli::{parse_args, run, CliError};

struct TempStore(std::path::PathBuf);

impl TempStore {
    fn new(tag: &str) -> TempStore {
        let mut path = std::env::temp_dir();
        path.push(format!("pedit-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        TempStore(path)
    }

    fn path(&self) -> &str {
        self.0.to_str().unwrap()
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn pedit(store: &TempStore, args: &[&str]) -> Result<String, CliError> {
    let mut full = vec!["--store".to_string(), store.path().to_string()];
    full.extend(args.iter().map(|s| s.to_string()));
    run(&parse_args(&full)?)
}

#[test]
fn full_lifecycle_via_cli() {
    let store = TempStore::new("lifecycle");
    // Create.
    let created = pedit(&store, &["create", "--password", "pw"]).unwrap();
    assert!(created.starts_with("created doc"));
    let doc = created.strip_prefix("created ").unwrap().to_string();
    // Save and show.
    pedit(&store, &["save", "--doc", &doc, "--password", "pw", "--text", "hello world"])
        .unwrap();
    let shown = pedit(&store, &["show", "--doc", &doc, "--password", "pw"]).unwrap();
    assert_eq!(shown, "hello world");
    // Incremental edits.
    pedit(&store, &["insert", "--doc", &doc, "--password", "pw", "--at", "5", "--text", ","])
        .unwrap();
    pedit(&store, &["delete", "--doc", &doc, "--password", "pw", "--at", "0", "--len", "6"])
        .unwrap();
    let shown = pedit(&store, &["show", "--doc", &doc, "--password", "pw"]).unwrap();
    assert_eq!(shown, " world");
    // List.
    let listed = pedit(&store, &["list"]).unwrap();
    assert!(listed.contains(&doc));
    // The provider's view is ciphertext.
    let raw = pedit(&store, &["raw", "--doc", &doc]).unwrap();
    assert!(raw.starts_with("PE1;"));
    assert!(!raw.contains("world"));
    // And the store file itself never contains plaintext.
    let on_disk = std::fs::read_to_string(store.path()).unwrap();
    assert!(!on_disk.contains("world"), "plaintext leaked to the store file");
}

#[test]
fn wrong_password_is_rejected() {
    let store = TempStore::new("wrongpw");
    let created = pedit(&store, &["create", "--password", "right"]).unwrap();
    let doc = created.strip_prefix("created ").unwrap().to_string();
    pedit(&store, &["save", "--doc", &doc, "--password", "right", "--text", "secret"]).unwrap();
    let err = pedit(&store, &["show", "--doc", &doc, "--password", "wrong"]).unwrap_err();
    assert!(matches!(err, CliError::Extension(_)), "{err}");
}

#[test]
fn history_and_rotate() {
    let store = TempStore::new("history");
    let created = pedit(&store, &["create", "--password", "pw"]).unwrap();
    let doc = created.strip_prefix("created ").unwrap().to_string();
    pedit(&store, &["save", "--doc", &doc, "--password", "pw", "--text", "v1"]).unwrap();
    pedit(&store, &["save", "--doc", &doc, "--password", "pw", "--text", "v2"]).unwrap();
    let history = pedit(&store, &["history", "--doc", &doc, "--password", "pw"]).unwrap();
    assert!(history.contains("revision(s)"));
    assert!(history.contains("v1"), "decrypted history must show v1: {history}");
    // Rotate, then the old password fails and the new one works.
    pedit(&store, &["rotate", "--doc", &doc, "--old", "pw", "--new", "pw2"]).unwrap();
    assert!(pedit(&store, &["show", "--doc", &doc, "--password", "pw"]).is_err());
    assert_eq!(pedit(&store, &["show", "--doc", &doc, "--password", "pw2"]).unwrap(), "v2");
}

#[test]
fn rpc_mode_documents() {
    let store = TempStore::new("rpc");
    let created = pedit(&store, &["--rpc", "create", "--password", "pw"]).unwrap();
    let doc = created.strip_prefix("created ").unwrap().to_string();
    pedit(&store, &["--rpc", "save", "--doc", &doc, "--password", "pw", "--text", "guarded"])
        .unwrap();
    let raw = pedit(&store, &["raw", "--doc", &doc]).unwrap();
    assert!(raw.starts_with("PE1;P;"), "RPC preamble expected: {}", &raw[..12]);
    assert_eq!(
        pedit(&store, &["--rpc", "show", "--doc", &doc, "--password", "pw"]).unwrap(),
        "guarded"
    );
    // A tampered store file is detected on the next show.
    let on_disk = std::fs::read_to_string(store.path()).unwrap();
    let tampered = on_disk.replacen("%3B1", "%3B2", 1); // nudge a record tag
    if tampered != on_disk {
        std::fs::write(store.path(), tampered).unwrap();
        assert!(pedit(&store, &["--rpc", "show", "--doc", &doc, "--password", "pw"]).is_err());
    }
}

#[test]
fn missing_document_errors_cleanly() {
    let store = TempStore::new("missing");
    let err =
        pedit(&store, &["show", "--doc", "doc99", "--password", "pw"]).unwrap_err();
    assert!(err.to_string().contains("404") || err.to_string().contains("server error"));
    assert_eq!(pedit(&store, &["list"]).unwrap(), "(no documents)");
    assert_eq!(pedit(&store, &["raw", "--doc", "doc99"]).unwrap(), "(no such document)");
}
