//! `pedit` binary: thin wrapper around [`pe_cli`].

use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match pe_cli::parse_args(&args) {
        Ok(options) => options,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match pe_cli::run(&options) {
        Ok(output) => {
            // Write directly so `pedit stats | head` exits quietly on a
            // closed pipe instead of panicking like println! would; add
            // the final newline only when the output lacks one.
            let mut stdout = std::io::stdout();
            let _ = stdout.write_all(output.as_bytes());
            if !output.ends_with('\n') {
                let _ = stdout.write_all(b"\n");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
