//! `pedit` binary: thin wrapper around [`pe_cli`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match pe_cli::parse_args(&args) {
        Ok(options) => options,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match pe_cli::run(&options) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
