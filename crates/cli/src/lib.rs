//! `pedit`: a command-line private editor.
//!
//! The paper's user story, as a tool: documents live on an untrusted
//! "cloud" (here a file-persisted [`DocsServer`] snapshot — the provider's
//! entire view), and every interaction goes through the privacy mediator,
//! so the store file never contains a byte of plaintext.
//!
//! ```console
//! $ pedit --store cloud.db create --password pw
//! created doc1
//! $ pedit --store cloud.db save --doc doc1 --password pw --text "my plans"
//! $ pedit --store cloud.db show --doc doc1 --password pw
//! my plans
//! $ pedit --store cloud.db raw --doc doc1        # what the provider sees
//! PE1;R;b8;…
//! ```
//!
//! The command layer is a library so the binary stays a thin wrapper and
//! integration tests can drive every command in-process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use pe_cloud::docs::DocsServer;
use pe_cloud::{CloudService, Request};
use pe_crypto::form;
use pe_crypto::SystemRandom;
use pe_delta::Delta;
use pe_extension::{DocsMediator, ExtensionError, MediatorConfig};
use pe_store::{DocStore, FsyncPolicy, ShardedLogStore, StoreConfig, StoreError};
use pe_tenant::{ServiceRecords, TenantDirectory};

/// A parsed command-line invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliOptions {
    /// Path of the store file holding the provider's state.
    pub store: PathBuf,
    /// Use RPC (integrity) mode for newly created documents.
    pub rpc: bool,
    /// Address of a running `pedit serve` instance to talk to over TCP
    /// instead of opening a local store file.
    pub connect: Option<String>,
    /// PBKDF2 iteration override from `--kdf-iters` (the `PE_KDF_ITERS`
    /// environment variable is consulted at run time when absent).
    /// Existing documents open unchanged either way: each preamble and
    /// each tenant user record carries its own salt, and derivation uses
    /// the configured count only for *new* keys.
    pub kdf_iters: Option<u32>,
    /// The subcommand.
    pub command: Command,
}

/// How a document command authenticates: the paper's per-document
/// password, or a tenant login (per-user master key unwrapping a
/// per-document data key from the directory).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Auth {
    /// Legacy per-document password (`--password`).
    Password(String),
    /// Tenant login (`--user` + `--passphrase`).
    Tenant {
        /// User name in the tenant directory.
        user: String,
        /// The user's login passphrase.
        passphrase: String,
    },
}

/// One `pedit` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Create a new encrypted document.
    Create {
        /// Per-document password or tenant login.
        auth: Auth,
    },
    /// List document ids the provider stores.
    List,
    /// Decrypt and print a document.
    Show {
        /// Document id.
        doc: String,
        /// Per-document password or tenant login.
        auth: Auth,
    },
    /// Replace the whole document (full save).
    Save {
        /// Document id.
        doc: String,
        /// Per-document password or tenant login.
        auth: Auth,
        /// New content.
        text: String,
    },
    /// Insert text at a byte offset (incremental save).
    Insert {
        /// Document id.
        doc: String,
        /// Per-document password or tenant login.
        auth: Auth,
        /// Byte offset.
        at: usize,
        /// Text to insert.
        text: String,
    },
    /// Delete a byte range (incremental save).
    Delete {
        /// Document id.
        doc: String,
        /// Per-document password or tenant login.
        auth: Auth,
        /// Byte offset.
        at: usize,
        /// Bytes to delete.
        len: usize,
    },
    /// Show decrypted revision history.
    History {
        /// Document id.
        doc: String,
        /// Per-document password or tenant login.
        auth: Auth,
    },
    /// Subscribe to a document's live change stream (requires
    /// `--connect`): long-polls `GET /Doc/changes`, decrypts each pushed
    /// update through the mediator, and prints it.
    Watch {
        /// Document id.
        doc: String,
        /// Per-document password or tenant login.
        auth: Auth,
        /// How many long-poll rounds to run before exiting.
        rounds: usize,
        /// Long-poll wait per round, in milliseconds.
        wait_ms: u64,
    },
    /// Apply a scripted sequence of edit operations. With `--live`
    /// (requires `--connect`) the session holds a change-stream
    /// subscription open and rebases concurrent foreign edits between
    /// operations; without it the ops are one-shot incremental saves.
    Edit {
        /// Document id.
        doc: String,
        /// Per-document password or tenant login.
        auth: Auth,
        /// Hold a live subscription and rebase concurrent edits.
        live: bool,
        /// Comma-separated ops: `i:AT:TEXT`, `d:AT:LEN`, `a:TEXT`
        /// (byte offsets).
        ops: String,
        /// Extra long-poll rounds after the ops (live mode only).
        rounds: usize,
        /// Long-poll wait per round, in milliseconds (live mode only).
        wait_ms: u64,
        /// Editor name shown in sealed presence.
        editor: String,
    },
    /// Register a tenant user (per-user master key, random salt).
    UserRegister {
        /// User name.
        name: String,
        /// Login passphrase.
        passphrase: String,
    },
    /// Rotate a tenant user's passphrase: every wrapped key they hold is
    /// rewrapped; document bodies are untouched.
    UserPasswd {
        /// User name.
        name: String,
        /// Current passphrase.
        old: String,
        /// New passphrase.
        new: String,
    },
    /// List registered tenant users.
    UserList,
    /// Grant another user access to an owned document; prints the
    /// one-time invite code (deliver it out of band).
    Grant {
        /// Document id.
        doc: String,
        /// Owner's user name.
        user: String,
        /// Owner's passphrase.
        passphrase: String,
        /// User being granted access.
        to: String,
    },
    /// Redeem an invite code, storing the data key wrapped under the
    /// accepting user's own master key.
    Accept {
        /// Document id.
        doc: String,
        /// Accepting user's name.
        user: String,
        /// Accepting user's passphrase.
        passphrase: String,
        /// The invite code from `grant`.
        invite: String,
    },
    /// Revoke a user's access to an owned document (deletes their
    /// wrapped key record; O(1), body bytes untouched).
    Revoke {
        /// Document id.
        doc: String,
        /// Owner's user name.
        user: String,
        /// Owner's passphrase.
        passphrase: String,
        /// User losing access.
        to: String,
    },
    /// Rotate a document's password.
    Rotate {
        /// Document id.
        doc: String,
        /// Current password.
        old: String,
        /// New password.
        new: String,
    },
    /// Print the raw stored ciphertext (the provider's view).
    Raw {
        /// Document id.
        doc: String,
    },
    /// Run a scripted edit session against an in-memory cloud and print
    /// the observability snapshot for every layer.
    Stats {
        /// Output format for the snapshot.
        format: StatsFormat,
    },
    /// Serve the store over HTTP (a real `pe-net` socket server) until a
    /// `stop` command arrives. The store is a durable [`pe_store::LogStore`]
    /// directory: every acknowledged save is on disk before the client
    /// hears back, so a `kill -9` loses nothing.
    Serve {
        /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
        addr: String,
        /// Worker threads (defaults to the server's default).
        workers: Option<usize>,
        /// Concurrent-connection cap (defaults to the server's default).
        max_conns: Option<usize>,
        /// File to write the bound address into (how scripts learn the
        /// ephemeral port).
        addr_file: Option<PathBuf>,
        /// WAL fsync policy (`always`, `never`, `every=N`).
        fsync: FsyncPolicy,
        /// Shard count for a freshly created store (defaults to the CPU
        /// count; an existing store keeps its recorded layout).
        shards: Option<usize>,
    },
    /// Ask a running `pedit serve` (via `--connect`) to shut down.
    Stop,
    /// Verify a store directory read-only: snapshot CRCs, WAL frames,
    /// segment continuity. Exits non-zero when the store is corrupt.
    Fsck {
        /// The store directory to check.
        dir: PathBuf,
    },
    /// Snapshot and garbage-collect a store directory offline. With
    /// `--shards N`, first migrates a legacy single-directory store to
    /// an N-way sharded layout in place.
    Compact {
        /// The store directory to compact.
        dir: PathBuf,
        /// Migrate a legacy store to this many shards before compacting.
        shards: Option<usize>,
    },
}

/// Output format of the [`Command::Stats`] snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsFormat {
    /// Human-readable report with histogram bars.
    Text,
    /// Line-oriented JSON (one object per metric).
    Json,
}

/// Errors surfaced to the user.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Command line could not be parsed; the string is usage help.
    Usage(String),
    /// The store file could not be read or written.
    Store(std::io::Error),
    /// The store file contents were invalid.
    BadStore(String),
    /// The mediator/crypto layer failed (wrong password, tampering, …).
    Extension(ExtensionError),
    /// Networking failure while serving or connecting.
    Net(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Store(e) => write!(f, "store i/o error: {e}"),
            CliError::BadStore(msg) => write!(f, "invalid store file: {msg}"),
            CliError::Extension(e) => write!(f, "{e}"),
            CliError::Net(msg) => write!(f, "network error: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ExtensionError> for CliError {
    fn from(e: ExtensionError) -> CliError {
        CliError::Extension(e)
    }
}

impl From<pe_tenant::TenantError> for CliError {
    fn from(e: pe_tenant::TenantError) -> CliError {
        CliError::Extension(ExtensionError::Tenant(e))
    }
}

/// Usage text shown for parse failures and `--help`.
pub const USAGE: &str = "\
pedit — private editing on an untrusted (file-simulated) cloud

USAGE: pedit --store FILE [--rpc] [--kdf-iters N] COMMAND
       pedit --connect HOST:PORT [--rpc] [--kdf-iters N] COMMAND

With --store, commands run against a local store file. With --connect,
they run over a real TCP socket against a running `pedit serve`.

Document commands authenticate with a per-document password
(--password PW) or a tenant login (--user U --passphrase P) whose
per-user master key unwraps the document's data key from the key
directory stored on the same untrusted server. --kdf-iters (or the
PE_KDF_ITERS environment variable) overrides the PBKDF2 iteration
count for newly derived keys; existing documents open unchanged
because every salt (and per-user iteration count) is recorded.

COMMANDS:
  create  --password PW | --user U --passphrase P
  list
  show    --doc ID (--password PW | --user U --passphrase P)
  save    --doc ID (--password PW | --user U --passphrase P) --text TEXT
  insert  --doc ID (--password PW | --user U --passphrase P) --at N --text TEXT
  delete  --doc ID (--password PW | --user U --passphrase P) --at N --len N
  history --doc ID (--password PW | --user U --passphrase P)
  watch   --doc ID (--password PW | --user U --passphrase P)
          [--rounds N] [--wait-ms MS]
          (requires --connect; long-polls the server's change stream over
           a dedicated connection and prints each decrypted update)
  edit    --doc ID (--password PW | --user U --passphrase P) --ops SPEC
          [--live] [--editor NAME] [--rounds N] [--wait-ms MS]
          (SPEC is comma-separated i:AT:TEXT | d:AT:LEN | a:TEXT with
           byte offsets; --live, with --connect, holds a change-stream
           subscription open and rebases concurrent edits between ops)
  rotate  --doc ID --old PW --new PW
  raw     --doc ID
  user register --name U --passphrase P
  user passwd   --name U --old P --new P     (rewraps keys; bodies untouched)
  user list
  grant   --doc ID --user OWNER --passphrase P --to USER   (prints invite code)
  accept  --doc ID --user USER --passphrase P --invite CODE
  revoke  --doc ID --user OWNER --passphrase P --to USER
  stats   [--format text|json]
  serve   [--addr HOST:PORT] [--workers N] [--max-conns N] [--addr-file PATH]
          [--fsync always|never|every=N] [--shards N]
          (requires --store DIR; --addr defaults to 127.0.0.1:0; a legacy
           text-snapshot store file is migrated to a durable directory;
           --shards sets the WAL shard count for a fresh store)
  stop    (requires --connect)
  fsck    DIR     (verify a store directory — legacy or sharded, every
                   shard checked; non-zero exit on corruption)
  compact DIR [--shards N]
          (snapshot + garbage-collect a store directory; --shards N
           migrates a legacy store to an N-way sharded layout in place)";

/// Parses command-line arguments (excluding `argv[0]`).
///
/// # Errors
///
/// Returns [`CliError::Usage`] with help text for malformed invocations.
pub fn parse_args(args: &[String]) -> Result<CliOptions, CliError> {
    let usage = |msg: &str| CliError::Usage(format!("{msg}\n\n{USAGE}"));
    let mut store: Option<PathBuf> = None;
    let mut rpc = false;
    let mut connect: Option<String> = None;
    let mut kdf_iters: Option<u32> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--store" => {
                store = Some(PathBuf::from(
                    iter.next().ok_or_else(|| usage("--store needs a value"))?,
                ));
            }
            "--connect" => {
                connect =
                    Some(iter.next().ok_or_else(|| usage("--connect needs a value"))?.clone());
            }
            "--kdf-iters" => {
                kdf_iters = Some(
                    iter.next()
                        .ok_or_else(|| usage("--kdf-iters needs a value"))?
                        .parse::<u32>()
                        .ok()
                        .filter(|n| *n > 0)
                        .ok_or_else(|| usage("--kdf-iters must be a positive number"))?,
                );
            }
            "--rpc" => rpc = true,
            "--help" | "-h" => return Err(CliError::Usage(USAGE.to_string())),
            _ => rest.push(arg.clone()),
        }
    }
    let mut rest = rest.into_iter();
    let verb = rest.next().ok_or_else(|| usage("missing command"))?;
    // `user` takes a positional subcommand before its flags.
    let user_sub = if verb == "user" {
        Some(
            rest.next()
                .ok_or_else(|| usage("user needs a subcommand: register, passwd, or list"))?,
        )
    } else {
        None
    };
    if verb == "serve" && connect.is_some() {
        return Err(usage("serve runs a server locally; it cannot be combined with --connect"));
    }
    // `fsck` and `compact` take the store directory as a positional
    // argument and run purely offline.
    if verb == "fsck" || verb == "compact" {
        let dir = PathBuf::from(
            rest.next().ok_or_else(|| usage(&format!("{verb} needs a store directory")))?,
        );
        let mut shards = None;
        if let Some(extra) = rest.next() {
            if verb == "compact" && extra == "--shards" {
                let value = rest.next().ok_or_else(|| usage("--shards needs a value"))?;
                shards = Some(
                    value.parse::<usize>().map_err(|_| usage("--shards must be a number"))?,
                );
            } else {
                return Err(usage(&format!("unexpected argument {extra:?}")));
            }
        }
        if let Some(extra) = rest.next() {
            return Err(usage(&format!("unexpected argument {extra:?}")));
        }
        let command = if verb == "fsck" {
            Command::Fsck { dir }
        } else {
            Command::Compact { dir, shards }
        };
        return Ok(CliOptions {
            store: store.unwrap_or_default(),
            rpc,
            connect,
            kdf_iters,
            command,
        });
    }
    // `stats` runs against its own in-memory cloud and `--connect` talks
    // to a remote server, so neither needs a store.
    let store = match store {
        Some(path) => path,
        None if verb == "stats" || connect.is_some() => PathBuf::new(),
        None => return Err(usage("missing --store FILE")),
    };
    // Collect remaining flags into key/value pairs.
    let mut flags = std::collections::HashMap::new();
    let remaining: Vec<String> = rest.collect();
    let mut i = 0;
    while i < remaining.len() {
        let key = remaining[i]
            .strip_prefix("--")
            .ok_or_else(|| usage(&format!("unexpected argument {:?}", remaining[i])))?;
        // `--live` is a bare boolean; everything else takes a value.
        if key == "live" {
            flags.insert("live".to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let value = remaining
            .get(i + 1)
            .ok_or_else(|| usage(&format!("--{key} needs a value")))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    let take = |flags: &std::collections::HashMap<String, String>, key: &str| {
        flags
            .get(key)
            .cloned()
            .ok_or_else(|| usage(&format!("{verb} requires --{key}")))
    };
    let number = |flags: &std::collections::HashMap<String, String>, key: &str| {
        take(flags, key)?
            .parse::<usize>()
            .map_err(|_| usage(&format!("--{key} must be a number")))
    };
    let auth = |flags: &std::collections::HashMap<String, String>| {
        match (flags.get("password"), flags.get("user"), flags.get("passphrase")) {
            (Some(password), None, None) => Ok(Auth::Password(password.clone())),
            (None, Some(user), Some(passphrase)) => {
                Ok(Auth::Tenant { user: user.clone(), passphrase: passphrase.clone() })
            }
            _ => Err(usage(&format!(
                "{verb} needs --password PW or --user U --passphrase P"
            ))),
        }
    };
    let command = match verb.as_str() {
        "create" => Command::Create { auth: auth(&flags)? },
        "list" => Command::List,
        "show" => Command::Show { doc: take(&flags, "doc")?, auth: auth(&flags)? },
        "save" => Command::Save {
            doc: take(&flags, "doc")?,
            auth: auth(&flags)?,
            text: take(&flags, "text")?,
        },
        "insert" => Command::Insert {
            doc: take(&flags, "doc")?,
            auth: auth(&flags)?,
            at: number(&flags, "at")?,
            text: take(&flags, "text")?,
        },
        "delete" => Command::Delete {
            doc: take(&flags, "doc")?,
            auth: auth(&flags)?,
            at: number(&flags, "at")?,
            len: number(&flags, "len")?,
        },
        "history" => Command::History { doc: take(&flags, "doc")?, auth: auth(&flags)? },
        "watch" => Command::Watch {
            doc: take(&flags, "doc")?,
            auth: auth(&flags)?,
            rounds: match flags.get("rounds") {
                Some(value) => value
                    .parse::<usize>()
                    .map_err(|_| usage("--rounds must be a number"))?,
                None => 5,
            },
            wait_ms: match flags.get("wait-ms") {
                Some(value) => value
                    .parse::<u64>()
                    .map_err(|_| usage("--wait-ms must be a number"))?,
                None => 2000,
            },
        },
        "edit" => Command::Edit {
            doc: take(&flags, "doc")?,
            auth: auth(&flags)?,
            live: flags.contains_key("live"),
            ops: take(&flags, "ops")?,
            rounds: match flags.get("rounds") {
                Some(value) => value
                    .parse::<usize>()
                    .map_err(|_| usage("--rounds must be a number"))?,
                None => 3,
            },
            wait_ms: match flags.get("wait-ms") {
                Some(value) => value
                    .parse::<u64>()
                    .map_err(|_| usage("--wait-ms must be a number"))?,
                None => 1000,
            },
            editor: flags.get("editor").cloned().unwrap_or_else(|| "pedit".to_string()),
        },
        "user" => match user_sub.as_deref().expect("set for the user verb") {
            "register" => Command::UserRegister {
                name: take(&flags, "name")?,
                passphrase: take(&flags, "passphrase")?,
            },
            "passwd" => Command::UserPasswd {
                name: take(&flags, "name")?,
                old: take(&flags, "old")?,
                new: take(&flags, "new")?,
            },
            "list" => Command::UserList,
            other => return Err(usage(&format!("unknown user subcommand {other:?}"))),
        },
        "grant" => Command::Grant {
            doc: take(&flags, "doc")?,
            user: take(&flags, "user")?,
            passphrase: take(&flags, "passphrase")?,
            to: take(&flags, "to")?,
        },
        "accept" => Command::Accept {
            doc: take(&flags, "doc")?,
            user: take(&flags, "user")?,
            passphrase: take(&flags, "passphrase")?,
            invite: take(&flags, "invite")?,
        },
        "revoke" => Command::Revoke {
            doc: take(&flags, "doc")?,
            user: take(&flags, "user")?,
            passphrase: take(&flags, "passphrase")?,
            to: take(&flags, "to")?,
        },
        "rotate" => Command::Rotate {
            doc: take(&flags, "doc")?,
            old: take(&flags, "old")?,
            new: take(&flags, "new")?,
        },
        "raw" => Command::Raw { doc: take(&flags, "doc")? },
        "stats" => Command::Stats {
            format: match flags.get("format").map(String::as_str) {
                None | Some("text") => StatsFormat::Text,
                Some("json") => StatsFormat::Json,
                Some(other) => {
                    return Err(usage(&format!("unknown stats format {other:?}")))
                }
            },
        },
        "serve" => Command::Serve {
            addr: flags.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:0".to_string()),
            workers: match flags.get("workers") {
                Some(value) => Some(
                    value
                        .parse::<usize>()
                        .map_err(|_| usage("--workers must be a number"))?,
                ),
                None => None,
            },
            max_conns: match flags.get("max-conns") {
                Some(value) => Some(
                    value
                        .parse::<usize>()
                        .map_err(|_| usage("--max-conns must be a number"))?,
                ),
                None => None,
            },
            addr_file: flags.get("addr-file").map(PathBuf::from),
            fsync: match flags.get("fsync") {
                Some(value) => FsyncPolicy::parse(value)
                    .ok_or_else(|| usage("--fsync must be always, never, or every=N"))?,
                None => FsyncPolicy::Always,
            },
            shards: match flags.get("shards") {
                Some(value) => Some(
                    value.parse::<usize>().map_err(|_| usage("--shards must be a number"))?,
                ),
                None => None,
            },
        },
        "stop" => Command::Stop,
        other => return Err(usage(&format!("unknown command {other:?}"))),
    };
    Ok(CliOptions { store, rpc, connect, kdf_iters, command })
}

/// The PBKDF2 iteration count to use for newly derived keys: the
/// `--kdf-iters` flag, else the `PE_KDF_ITERS` environment variable,
/// else the mediator default. Never changes how existing material is
/// opened — salts and per-user counts are recorded where they're used.
fn effective_kdf_iters(options: &CliOptions) -> u32 {
    options
        .kdf_iters
        .or_else(|| {
            std::env::var("PE_KDF_ITERS").ok().and_then(|v| v.parse::<u32>().ok()).filter(|n| *n > 0)
        })
        .unwrap_or(MediatorConfig::default().kdf_iterations)
}

/// How the local store is persisted: the legacy whole-file text snapshot
/// (rewritten in full on exit) or a durable [`ShardedLogStore`] directory
/// (every mutation is already on disk; exit only flushes). The sharded
/// engine opens legacy single-directory WAL stores transparently.
enum StoreBacking {
    /// Legacy single-file text snapshot.
    TextFile,
    /// Durable write-ahead-logged directory (sharded or legacy layout).
    LogDir(Arc<ShardedLogStore>),
}

fn store_error(e: StoreError) -> CliError {
    match e {
        StoreError::Io(io) => CliError::Store(io),
        other => CliError::BadStore(other.to_string()),
    }
}

/// Shard count for a freshly created store when `--shards` is absent:
/// one WAL per CPU, so concurrent group commits spread across cores.
fn default_shards() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn open_log_dir(
    dir: &Path,
    fsync: FsyncPolicy,
    shards: Option<usize>,
) -> Result<Arc<ShardedLogStore>, CliError> {
    let config = StoreConfig { fsync, ..StoreConfig::default() };
    ShardedLogStore::open(dir, shards.unwrap_or_else(default_shards), config)
        .map(Arc::new)
        .map_err(store_error)
}

fn load_store(path: &Path) -> Result<(Arc<DocsServer>, StoreBacking), CliError> {
    match std::fs::metadata(path) {
        Ok(meta) if meta.is_dir() => {
            let store = open_log_dir(path, FsyncPolicy::Always, None)?;
            let docs = Arc::clone(&store) as Arc<dyn DocStore>;
            Ok((Arc::new(DocsServer::with_store(docs)), StoreBacking::LogDir(store)))
        }
        Ok(_) => {
            let snapshot = std::fs::read_to_string(path).map_err(CliError::Store)?;
            let server = DocsServer::restore(&snapshot).map_err(CliError::BadStore)?;
            Ok((Arc::new(server), StoreBacking::TextFile))
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            Ok((Arc::new(DocsServer::new()), StoreBacking::TextFile))
        }
        Err(e) => Err(CliError::Store(e)),
    }
}

fn persist_store(
    path: &Path,
    server: &DocsServer,
    backing: &StoreBacking,
) -> Result<(), CliError> {
    match backing {
        StoreBacking::TextFile => {
            std::fs::write(path, server.snapshot()).map_err(CliError::Store)
        }
        StoreBacking::LogDir(store) => store.flush().map_err(store_error),
    }
}

fn mediator<S: CloudService>(service: S, rpc: bool, kdf_iters: u32) -> DocsMediator<S> {
    let mut config = if rpc { MediatorConfig::rpc(7) } else { MediatorConfig::recb(8) };
    config.kdf_iterations = kdf_iters;
    DocsMediator::new(service, config)
}

/// Builds a mediator with the document's credential installed: a
/// per-document password is registered locally; a tenant login derives
/// the user's master key against the directory on the service.
fn authed_mediator<S: CloudService>(
    service: S,
    rpc: bool,
    kdf_iters: u32,
    doc: &str,
    auth: &Auth,
) -> Result<DocsMediator<S>, CliError> {
    let mut mediator = mediator(service, rpc, kdf_iters);
    match auth {
        Auth::Password(password) => mediator.register_password(doc, password),
        Auth::Tenant { user, passphrase } => mediator.tenant_login(user, passphrase)?,
    }
    Ok(mediator)
}

/// Runs one mediated document command against any [`CloudService`] — the
/// local in-process store or an [`pe_net::HttpClient`] talking to a
/// remote `pedit serve`. The privacy mediator sits on the client side of
/// whichever transport, exactly as in the paper's deployment.
///
/// Handles every command that speaks the Docs protocol; `List`/`Raw`
/// (provider-side views) and the control commands are the caller's job.
fn doc_session<S: CloudService>(
    service: S,
    rpc: bool,
    kdf_iters: u32,
    command: &Command,
) -> Result<String, CliError> {
    let mut output = String::new();
    match command {
        Command::Create { auth } => {
            let mut mediator = mediator(service, rpc, kdf_iters);
            let doc_id = match auth {
                Auth::Password(password) => mediator.create_document(password)?,
                Auth::Tenant { user, passphrase } => {
                    mediator.tenant_login(user, passphrase)?;
                    mediator.tenant_create_document()?
                }
            };
            // An empty full save materializes the encrypted document.
            mediator.save_full(&doc_id, "")?;
            output.push_str(&format!("created {doc_id}"));
        }
        Command::Show { doc, auth } => {
            let mut mediator = authed_mediator(service, rpc, kdf_iters, doc, auth)?;
            output.push_str(&mediator.open_document(doc)?);
        }
        Command::Save { doc, auth, text } => {
            let mut mediator = authed_mediator(service, rpc, kdf_iters, doc, auth)?;
            mediator.open_document(doc)?;
            mediator.save_full(doc, text)?;
            output.push_str("saved");
        }
        Command::Insert { doc, auth, at, text } => {
            let mut mediator = authed_mediator(service, rpc, kdf_iters, doc, auth)?;
            mediator.open_document(doc)?;
            let mut delta = Delta::builder();
            delta.retain(*at).insert(text);
            mediator.save_delta(doc, &delta.build())?;
            output.push_str("saved (incremental)");
        }
        Command::Delete { doc, auth, at, len } => {
            let mut mediator = authed_mediator(service, rpc, kdf_iters, doc, auth)?;
            mediator.open_document(doc)?;
            let mut delta = Delta::builder();
            delta.retain(*at).delete(*len);
            mediator.save_delta(doc, &delta.build())?;
            output.push_str("saved (incremental)");
        }
        Command::History { doc, auth } => {
            let mut mediator = authed_mediator(service, rpc, kdf_iters, doc, auth)?;
            mediator.open_document(doc)?;
            let count_resp =
                mediator.intercept(&Request::get("/Doc/revisions", &[("docID", doc)]))?;
            let body = count_resp.response.body_text().unwrap_or("");
            let pairs = form::parse_pairs(body).unwrap_or_default();
            let count: usize = form::first_value(&pairs, "revisionCount")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            output.push_str(&format!("{count} revision(s)"));
            for index in 0..count {
                let idx = index.to_string();
                let rev = mediator.intercept(&Request::get(
                    "/Doc/revisions",
                    &[("docID", doc), ("index", idx.as_str())],
                ))?;
                let body = rev.response.body_text().unwrap_or("");
                let pairs = form::parse_pairs(body).unwrap_or_default();
                let content = form::first_value(&pairs, "content").unwrap_or("");
                let shown: String = content.chars().take(60).collect();
                output.push_str(&format!("\n[{index}] {shown}"));
            }
        }
        Command::Edit { doc, auth, live: false, ops, .. } => {
            let mut mediator = authed_mediator(service, rpc, kdf_iters, doc, auth)?;
            let mut content = mediator.open_document(doc)?;
            let ops = live_cli::parse_ops(ops)?;
            let count = ops.len();
            for op in &ops {
                let delta = live_cli::op_delta(&content, op)?;
                content = delta
                    .apply(&content)
                    .map_err(|e| CliError::Usage(format!("op does not fit document: {e}")))?;
                mediator.save_delta(doc, &delta)?;
            }
            output.push_str(&format!("applied {count} op(s)\n{content}"));
        }
        Command::Rotate { doc, old, new } => {
            let mut mediator = mediator(service, rpc, kdf_iters);
            mediator.register_password(doc, old);
            mediator.change_password(doc, new)?;
            output.push_str("password rotated (note: server-side history keeps old-key ciphertext)");
        }
        // Tenant directory operations: pure wrapped-key-record work
        // against the `/tenant/*` endpoints of the same service; no
        // document body is ever read or written.
        Command::UserRegister { name, passphrase } => {
            let directory = TenantDirectory::new(ServiceRecords::new(service));
            directory.register(name, passphrase, kdf_iters, &mut SystemRandom::new())?;
            output.push_str(&format!("registered user {name}"));
        }
        Command::UserPasswd { name, old, new } => {
            let directory = TenantDirectory::new(ServiceRecords::new(service));
            let rewrapped = directory.rewrap(name, old, new, kdf_iters, &mut SystemRandom::new())?;
            output.push_str(&format!(
                "passphrase rotated; {rewrapped} wrapped key(s) rewrapped, 0 bytes re-encrypted"
            ));
        }
        Command::UserList => {
            let directory = TenantDirectory::new(ServiceRecords::new(service));
            let users = directory.list_users()?;
            output.push_str(&if users.is_empty() { "(no users)".to_string() } else { users.join("\n") });
        }
        Command::Grant { doc, user, passphrase, to } => {
            let directory = TenantDirectory::new(ServiceRecords::new(service));
            let session = directory.login(user, passphrase)?;
            let code = directory.grant(&session, doc, to, &mut SystemRandom::new())?;
            // The code alone on the last line so scripts can capture it.
            output.push_str(&format!("invite for {to} (deliver out of band):\n{code}"));
        }
        Command::Accept { doc, user, passphrase, invite } => {
            let directory = TenantDirectory::new(ServiceRecords::new(service));
            let session = directory.login(user, passphrase)?;
            directory.accept(&session, doc, invite)?;
            output.push_str(&format!("accepted: {user} now holds a wrapped key for {doc}"));
        }
        Command::Revoke { doc, user, passphrase, to } => {
            let directory = TenantDirectory::new(ServiceRecords::new(service));
            let session = directory.login(user, passphrase)?;
            let existed = directory.revoke(&session, doc, to)?;
            output.push_str(if existed {
                "revoked (wrapped key record deleted; document bytes untouched)"
            } else {
                "no grant existed"
            });
        }
        Command::List
        | Command::Raw { .. }
        | Command::Stats { .. }
        | Command::Serve { .. }
        | Command::Stop
        | Command::Fsck { .. }
        | Command::Compact { .. }
        | Command::Watch { .. }
        | Command::Edit { live: true, .. } => {
            unreachable!("non-document command routed to doc_session")
        }
    }
    Ok(output)
}

/// Executes a parsed invocation, returning the text to print.
///
/// # Errors
///
/// Returns [`CliError`] for store, password, integrity, or network
/// failures.
pub fn run(options: &CliOptions) -> Result<String, CliError> {
    match &options.command {
        Command::Stats { format } if options.connect.is_none() => {
            // The stats session runs against its own in-memory cloud; the
            // store file is neither read nor written. With `--connect` the
            // command instead falls through to remote dispatch and fetches
            // the live server's snapshot from `/admin/stats`.
            return stats::run_scripted_session(*format);
        }
        Command::Serve { addr, workers, max_conns, addr_file, fsync, shards } => {
            return serve::run_server(
                options,
                addr,
                *workers,
                *max_conns,
                addr_file.as_deref(),
                *fsync,
                *shards,
            );
        }
        Command::Fsck { dir } => {
            let report = pe_store::fsck(dir).map_err(store_error)?;
            let text = report.render();
            return if report.is_healthy() { Ok(text) } else { Err(CliError::BadStore(text)) };
        }
        Command::Compact { dir, shards } => {
            let config = StoreConfig { fsync: FsyncPolicy::Always, ..StoreConfig::default() };
            let store = match shards {
                // Explicit --shards N: migrate a legacy layout in place
                // (a no-op plain open when already sharded or fresh).
                Some(n) => ShardedLogStore::migrate(dir, *n, config).map_err(store_error)?,
                None => ShardedLogStore::open(dir, default_shards(), config)
                    .map_err(store_error)?,
            };
            let layout = if store.is_legacy() {
                "legacy layout".to_string()
            } else {
                format!("{} shard(s)", store.shard_count())
            };
            let stats = store.compact().map_err(store_error)?;
            return Ok(format!(
                "compacted {} ({layout}): snapshot covers wal {} ({} doc(s), {} bytes); \
                 removed {} segment(s), {} old snapshot(s)",
                dir.display(),
                stats.covered_seq,
                stats.docs,
                stats.snapshot_bytes,
                stats.segments_removed,
                stats.snapshots_removed,
            ));
        }
        _ => {}
    }
    if let Some(target) = &options.connect {
        return remote::run_remote(target, options);
    }
    if matches!(
        options.command,
        Command::Watch { .. } | Command::Edit { live: true, .. }
    ) {
        return Err(CliError::Usage(format!(
            "watch and edit --live subscribe to a running server; use --connect HOST:PORT\n\n{USAGE}"
        )));
    }
    let (server, backing) = load_store(&options.store)?;
    let output = match &options.command {
        Command::List => {
            let ids = server.list_documents();
            if ids.is_empty() {
                "(no documents)".to_string()
            } else {
                ids.join("\n")
            }
        }
        Command::Raw { doc } => match server.stored_content(doc) {
            Some(content) => content,
            None => "(no such document)".to_string(),
        },
        Command::Stop => {
            return Err(CliError::Usage(format!(
                "stop needs --connect HOST:PORT\n\n{USAGE}"
            )))
        }
        command => {
            doc_session(Arc::clone(&server), options.rpc, effective_kdf_iters(options), command)?
        }
    };
    persist_store(&options.store, &server, &backing)?;
    Ok(output)
}

mod serve {
    //! The `pedit serve` mode: a durable store, served over a real socket.
    //!
    //! The document protocol mounts at `/` (the raw [`DocsServer`] — the
    //! provider still sees only what clients send, which under mediated
    //! clients is ciphertext). Control endpoints mount under `/admin`:
    //! `POST /admin/shutdown`, `GET /admin/ping`, `GET /admin/stats`
    //! (live metrics, `?format=text|json`), `GET /admin/list`,
    //! `GET /admin/raw?docID=…`.
    //!
    //! The store is a write-ahead-logged [`LogStore`] directory: every
    //! acknowledged save is appended (and, under the default
    //! `--fsync always`, fsynced) before the HTTP response leaves, so a
    //! `kill -9` at any moment loses nothing a client was told succeeded.
    //! This replaced a poll loop that rewrote a whole text snapshot every
    //! 100 ms — a window in which acknowledged saves lived only in RAM.

    use std::path::Path;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    use pe_cloud::docs::DocsServer;
    use pe_cloud::{CloudService, Method, Request, Response};
    use pe_collab::{LiveDocs, LiveService};
    use pe_net::{HttpServer, Router, ServerConfig};
    use pe_store::{DocStore, FsyncPolicy, ShardedLogStore};

    use crate::{open_log_dir, store_error, CliError, CliOptions};

    /// Control endpoints; implements [`CloudService`] so the `pe-net`
    /// blanket impl mounts it like any other service.
    struct AdminService {
        server: Arc<DocsServer>,
        store: Arc<ShardedLogStore>,
        stop: Arc<AtomicBool>,
    }

    impl CloudService for AdminService {
        fn handle(&self, request: &Request) -> Response {
            match (request.method, request.path.as_str()) {
                (Method::Post, "/shutdown") => {
                    // Flush before acknowledging: under `--fsync never` or
                    // `every=N` the stop ack must still mean "everything
                    // you saved is on disk".
                    if let Err(e) = self.store.flush() {
                        return Response::error(500, &format!("flush failed: {e}"));
                    }
                    self.stop.store(true, Ordering::SeqCst);
                    Response::ok("stopping")
                }
                (Method::Get, "/ping") => Response::ok("pong"),
                (Method::Get, "/stats") => {
                    // The serving process's live metrics — including the
                    // event loop's net.server.* gauges and counters.
                    let snapshot = pe_observe::global().snapshot();
                    match request.query_param("format") {
                        None | Some("text") => Response::ok(snapshot.render_text()),
                        Some("json") => Response::ok(snapshot.render_jsonl()),
                        Some(other) => {
                            Response::error(400, &format!("unknown format {other:?}"))
                        }
                    }
                }
                (Method::Get, "/list") => {
                    Response::ok(self.server.list_documents().join("\n"))
                }
                (Method::Get, "/raw") => match request
                    .query_param("docID")
                    .and_then(|id| self.server.stored_content(id))
                {
                    Some(content) => Response::ok(content),
                    None => Response::error(404, "no such document"),
                },
                _ => Response::error(404, "unknown admin endpoint"),
            }
        }

        fn name(&self) -> &'static str {
            "pedit-admin"
        }
    }

    /// Opens (or creates) the durable store directory for `serve`. A
    /// legacy whole-file text snapshot at the same path is migrated: the
    /// file is moved aside, replayed into a fresh sharded store at the
    /// original path, and removed only once the replayed log is durable.
    fn open_serve_store(
        path: &Path,
        fsync: FsyncPolicy,
        shards: Option<usize>,
    ) -> Result<Arc<ShardedLogStore>, CliError> {
        match std::fs::metadata(path) {
            Ok(meta) if meta.is_dir() => open_log_dir(path, fsync, shards),
            Ok(_) => {
                let snapshot = std::fs::read_to_string(path).map_err(CliError::Store)?;
                // Validate before touching anything so a corrupt legacy
                // file is left exactly where it was.
                DocsServer::restore(&snapshot).map_err(CliError::BadStore)?;
                let mut legacy = path.as_os_str().to_os_string();
                legacy.push(".legacy");
                let legacy = std::path::PathBuf::from(legacy);
                std::fs::rename(path, &legacy).map_err(CliError::Store)?;
                let store = open_log_dir(path, fsync, shards)?;
                let docs = Arc::clone(&store) as Arc<dyn DocStore>;
                DocsServer::restore_into(&snapshot, &docs).map_err(CliError::BadStore)?;
                store.flush().map_err(store_error)?;
                std::fs::remove_file(&legacy).map_err(CliError::Store)?;
                Ok(store)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                open_log_dir(path, fsync, shards)
            }
            Err(e) => Err(CliError::Store(e)),
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_server(
        options: &CliOptions,
        addr: &str,
        workers: Option<usize>,
        max_conns: Option<usize>,
        addr_file: Option<&Path>,
        fsync: FsyncPolicy,
        shards: Option<usize>,
    ) -> Result<String, CliError> {
        if options.store.as_os_str().is_empty() {
            return Err(CliError::Usage(format!(
                "serve needs --store DIR\n\n{}",
                crate::USAGE
            )));
        }
        let store = open_serve_store(&options.store, fsync, shards)?;
        let server =
            Arc::new(DocsServer::with_store(Arc::clone(&store) as Arc<dyn DocStore>));
        let stop = Arc::new(AtomicBool::new(false));
        let admin = AdminService {
            server: Arc::clone(&server),
            store: Arc::clone(&store),
            stop: Arc::clone(&stop),
        };
        // The document protocol mounts wrapped in the live front-end:
        // every accepted save fans out to parked `/Doc/changes`
        // subscribers, and all other routes pass straight through.
        let live = LiveDocs::new(Arc::clone(&server));
        let router = Router::new()
            .mount("/admin", Arc::new(admin))
            .mount("", Arc::new(LiveService(live)) as Arc<dyn pe_net::Service>);
        let mut config = ServerConfig::default();
        if let Some(workers) = workers {
            config.workers = workers;
        }
        if let Some(max_conns) = max_conns {
            config.max_conns = max_conns;
        }
        let http = HttpServer::bind(addr, Arc::new(router), config)
            .map_err(|e| CliError::Net(format!("bind {addr}: {e}")))?;
        let bound = http.local_addr();
        if let Some(path) = addr_file {
            std::fs::write(path, bound.to_string()).map_err(CliError::Store)?;
        }
        // Announce readiness immediately; run() only prints on exit.
        println!("pedit serving {} on {bound}", options.store.display());

        // Every acknowledged save is already in the WAL; just wait for
        // the admin `stop` (which flushed before acknowledging).
        while !stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
        }
        http.shutdown();
        store.flush().map_err(store_error)?;
        Ok(format!("served on {bound}; store persisted"))
    }
}

mod remote {
    //! The `--connect` mode: the same commands, over a live socket.

    use std::net::ToSocketAddrs;

    use pe_cloud::Request;
    use pe_net::HttpClient;

    use crate::{doc_session, CliError, CliOptions, Command};

    fn admin_get(client: &HttpClient, path: &str, query: &[(&str, &str)]) -> Result<String, CliError> {
        let response = client
            .send(&Request::get(path, query))
            .map_err(|e| CliError::Net(e.to_string()))?;
        let body = response.body_text().unwrap_or("").to_string();
        if response.is_success() {
            Ok(body)
        } else {
            Err(CliError::Net(format!("{} -> {}: {body}", path, response.status)))
        }
    }

    pub(crate) fn run_remote(target: &str, options: &CliOptions) -> Result<String, CliError> {
        let addr = target
            .to_socket_addrs()
            .ok()
            .and_then(|mut addrs| addrs.next())
            .ok_or_else(|| CliError::Net(format!("cannot resolve {target:?}")))?;
        let client = HttpClient::new(addr);
        match &options.command {
            Command::Stop => {
                let response = client
                    .send(&Request::post("/admin/shutdown", &[], ""))
                    .map_err(|e| CliError::Net(e.to_string()))?;
                if response.is_success() {
                    Ok("server stopping".to_string())
                } else {
                    Err(CliError::Net(format!("shutdown refused: {}", response.status)))
                }
            }
            Command::List => {
                let body = admin_get(&client, "/admin/list", &[])?;
                Ok(if body.is_empty() { "(no documents)".to_string() } else { body })
            }
            Command::Raw { doc } => {
                let response = client
                    .send(&Request::get("/admin/raw", &[("docID", doc)]))
                    .map_err(|e| CliError::Net(e.to_string()))?;
                match response.status {
                    _ if response.is_success() => {
                        Ok(response.body_text().unwrap_or("").to_string())
                    }
                    404 => Ok("(no such document)".to_string()),
                    status => Err(CliError::Net(format!("raw -> {status}"))),
                }
            }
            Command::Stats { format } => {
                let format = match format {
                    crate::StatsFormat::Text => "text",
                    crate::StatsFormat::Json => "json",
                };
                admin_get(&client, "/admin/stats", &[("format", format)])
            }
            Command::Watch { doc, auth, rounds, wait_ms } => crate::live_cli::run_watch(
                addr,
                options,
                doc,
                auth,
                *rounds,
                *wait_ms,
            ),
            Command::Edit { live: true, doc, auth, ops, rounds, wait_ms, editor } => {
                crate::live_cli::run_live_edit(
                    addr,
                    options,
                    doc,
                    auth,
                    ops,
                    *rounds,
                    *wait_ms,
                    editor,
                )
            }
            Command::Serve { .. } | Command::Fsck { .. } | Command::Compact { .. } => {
                unreachable!("handled before remote dispatch")
            }
            command => {
                doc_session(client, options.rpc, crate::effective_kdf_iters(options), command)
            }
        }
    }
}

mod live_cli {
    //! The `watch` and `edit --live` modes: a [`LiveSession`] over a
    //! real socket — pooled connections for requests, one dedicated
    //! connection for the long-poll subscription — with the privacy
    //! mediator *shared* between both paths so its ciphertext mirror
    //! sees every direction of traffic.

    use std::net::SocketAddr;
    use std::time::Duration;

    use pe_client::{DocsClient, PrivateChannel, SaveOutcome};
    use pe_collab::{CollabError, LiveSession, LiveTransport, SharedChannel};
    use pe_core::PresenceSealer;
    use pe_delta::Delta;
    use pe_net::HttpClient;

    use crate::{authed_mediator, Auth, CliError, CliOptions};

    type LiveChannel = SharedChannel<PrivateChannel<LiveTransport>>;
    type Session = LiveSession<LiveChannel, LiveChannel>;

    /// One scripted edit operation (byte offsets).
    pub(crate) enum EditOp {
        /// `i:AT:TEXT`
        Insert { at: usize, text: String },
        /// `d:AT:LEN`
        Delete { at: usize, len: usize },
        /// `a:TEXT`
        Append { text: String },
    }

    /// Parses a comma-separated `--ops` spec. An empty spec is a valid
    /// empty script (useful for a watch-like live session that only
    /// merges foreign edits).
    pub(crate) fn parse_ops(spec: &str) -> Result<Vec<EditOp>, CliError> {
        let bad = |entry: &str| {
            CliError::Usage(format!(
                "bad op {entry:?}: expected i:AT:TEXT, d:AT:LEN, or a:TEXT"
            ))
        };
        let mut ops = Vec::new();
        for entry in spec.split(',').filter(|e| !e.is_empty()) {
            let (kind, rest) = entry.split_once(':').ok_or_else(|| bad(entry))?;
            let op = match kind {
                "i" => {
                    let (at, text) = rest.split_once(':').ok_or_else(|| bad(entry))?;
                    EditOp::Insert {
                        at: at.parse().map_err(|_| bad(entry))?,
                        text: text.to_string(),
                    }
                }
                "d" => {
                    let (at, len) = rest.split_once(':').ok_or_else(|| bad(entry))?;
                    EditOp::Delete {
                        at: at.parse().map_err(|_| bad(entry))?,
                        len: len.parse().map_err(|_| bad(entry))?,
                    }
                }
                "a" => EditOp::Append { text: rest.to_string() },
                _ => return Err(bad(entry)),
            };
            ops.push(op);
        }
        Ok(ops)
    }

    /// Builds the char-based [`Delta`] an op denotes against `content`
    /// (ops use byte offsets, deltas count characters).
    pub(crate) fn op_delta(content: &str, op: &EditOp) -> Result<Delta, CliError> {
        let chars_at = |at: usize| {
            content
                .get(..at)
                .map(|prefix| prefix.chars().count())
                .ok_or_else(|| CliError::Usage(format!("offset {at} is out of range")))
        };
        let mut builder = Delta::builder();
        match op {
            EditOp::Insert { at, text } => {
                builder.retain(chars_at(*at)?).insert(text);
            }
            EditOp::Delete { at, len } => {
                let span = content
                    .get(*at..*at + *len)
                    .map(|s| s.chars().count())
                    .ok_or_else(|| {
                        CliError::Usage(format!("range {at}+{len} is out of range"))
                    })?;
                builder.retain(chars_at(*at)?).delete(span);
            }
            EditOp::Append { text } => {
                builder.retain(content.chars().count()).insert(text);
            }
        }
        Ok(builder.build())
    }

    fn net(e: CollabError) -> CliError {
        CliError::Net(e.to_string())
    }

    /// Opens the document and joins the live session. The edit path and
    /// the poll path share ONE mediator (via [`SharedChannel`]): foreign
    /// ciphertext deltas advance the same mirror the next save diffs
    /// against.
    fn join(
        addr: SocketAddr,
        options: &CliOptions,
        doc: &str,
        auth: &Auth,
        editor: &str,
        wait_ms: u64,
    ) -> Result<Session, CliError> {
        let kdf_iters = crate::effective_kdf_iters(options);
        // The subscription read timeout must outlast the server's poll
        // window or an idle long-poll looks like a dead connection.
        let read_timeout = Duration::from_millis(wait_ms) + Duration::from_secs(30);
        let transport = LiveTransport::new(HttpClient::new(addr), read_timeout);
        let mediator = authed_mediator(transport, options.rpc, kdf_iters, doc, auth)?;
        let channel = SharedChannel::new(PrivateChannel(mediator));
        let client = DocsClient::open(channel.clone(), doc)
            .map_err(|e| CliError::Net(format!("open {doc}: {e:?}")))?;
        let sealer = match auth {
            Auth::Password(password) => {
                Some(PresenceSealer::from_password(doc, password, kdf_iters))
            }
            // A tenant presence sealer would need the unwrapped data key;
            // presence stays unpublished for tenant logins for now.
            Auth::Tenant { .. } => None,
        };
        LiveSession::start(client, channel, editor, sealer).map_err(net)
    }

    pub(crate) fn run_watch(
        addr: SocketAddr,
        options: &CliOptions,
        doc: &str,
        auth: &Auth,
        rounds: usize,
        wait_ms: u64,
    ) -> Result<String, CliError> {
        let mut session = join(addr, options, doc, auth, "watcher", wait_ms)?;
        println!("watching {doc} from seq {}", session.since());
        let wait = Duration::from_millis(wait_ms);
        let mut applied = 0usize;
        for _ in 0..rounds {
            let outcome = session.step(wait).map_err(net)?;
            applied += outcome.applied;
            if outcome.applied > 0 || outcome.resynced {
                // Stream updates as they land; run() prints the summary.
                println!("[seq {}] {}", outcome.head, session.content());
            }
            for peer in session.peers().values() {
                println!("[presence] {} at {}", peer.editor, peer.cursor);
            }
        }
        Ok(format!(
            "watched {rounds} round(s): {applied} change(s), {} resync(s); final seq {}\n{}",
            session.resyncs(),
            session.since(),
            session.content(),
        ))
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_live_edit(
        addr: SocketAddr,
        options: &CliOptions,
        doc: &str,
        auth: &Auth,
        ops: &str,
        rounds: usize,
        wait_ms: u64,
        editor: &str,
    ) -> Result<String, CliError> {
        let ops = parse_ops(ops)?;
        let mut session = join(addr, options, doc, auth, editor, wait_ms)?;
        let wait = Duration::from_millis(wait_ms);
        let mut merged = 0usize;
        for op in &ops {
            {
                let editor = session.client().editor();
                match op {
                    EditOp::Insert { at, text } => editor.insert(*at, text),
                    EditOp::Delete { at, len } => editor.delete(*at, *len),
                    EditOp::Append { text } => {
                        let len = editor.len();
                        editor.insert(len, text);
                    }
                }
            }
            if session.save() == SaveOutcome::Conflict {
                return Err(CliError::Net(format!("live save of {doc} failed")));
            }
            // Drain anything that landed while we were typing without
            // blocking; the trailing rounds below do the real waiting.
            merged += session.step(Duration::ZERO).map_err(net)?.applied;
        }
        for _ in 0..rounds {
            let outcome = session.step(wait).map_err(net)?;
            merged += outcome.applied;
            if outcome.applied > 0 || outcome.resynced {
                // A foreign edit may have been rebased under pending
                // local state; push the converged text back.
                if session.save() == SaveOutcome::Conflict {
                    return Err(CliError::Net(format!("live save of {doc} failed")));
                }
            }
        }
        Ok(format!(
            "applied {} op(s); merged {merged} foreign change(s), {} resync(s)\n{}",
            ops.len(),
            session.resyncs(),
            session.content(),
        ))
    }
}

mod stats {
    //! The `pedit stats` scripted session: drives every layer of the
    //! stack — client retry loop, privacy mediator, simulated cloud with
    //! injected faults and the modeled network — against an in-memory
    //! server, then prints the global observability snapshot.

    use std::sync::{Arc, Mutex};

    use pe_client::{DirectChannel, DocsClient, PrivateChannel, SaveOutcome};
    use pe_cloud::docs::DocsServer;
    use pe_cloud::fault::FlakyService;
    use pe_cloud::meter::MeteredService;
    use pe_cloud::net::NetworkModel;
    use pe_cloud::CloudService;
    use pe_crypto::CtrDrbg;
    use pe_delta::Delta;
    use pe_extension::{DocsMediator, MediatorConfig};

    use crate::{CliError, StatsFormat};

    /// Serializes sessions so concurrent callers (parallel tests) cannot
    /// reset the global registry out from under each other.
    fn session_lock() -> &'static Mutex<()> {
        static LOCK: std::sync::OnceLock<Mutex<()>> = std::sync::OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    pub(crate) fn run_scripted_session(format: StatsFormat) -> Result<String, CliError> {
        let _guard = session_lock().lock().unwrap_or_else(|e| e.into_inner());
        pe_observe::global().reset();

        let bad = |detail: &str| CliError::BadStore(format!("stats session: {detail}"));
        let server = Arc::new(DocsServer::new());

        // --- rECB document: mediated edits over a metered transport. ---
        let metered = MeteredService::new(Arc::clone(&server));
        let mut mediator = DocsMediator::with_rng(
            metered.clone(),
            MediatorConfig::recb(8),
            CtrDrbg::from_seed(0x57a7),
        );
        let doc_id = mediator.create_document("stats-pw")?;
        mediator.save_full(&doc_id, "the quick brown fox jumps over the lazy dog")?;
        let mut client = DocsClient::open(PrivateChannel(mediator), &doc_id)
            .map_err(|_| bad("open failed"))?;
        for i in 0..6 {
            let len = client.content().len();
            client.editor().insert(len, &format!(" edit {i}."));
            if client.save() != SaveOutcome::Saved {
                return Err(bad("mediated save failed"));
            }
        }
        client.editor().delete(0, 4);
        client.save();

        // --- Two writers on the same document: conflict, then merge. ---
        let reopen = |seed: u64| {
            let mut m = DocsMediator::with_rng(
                Arc::clone(&server),
                MediatorConfig::recb(8),
                CtrDrbg::from_seed(seed),
            );
            m.register_password(&doc_id, "stats-pw");
            DocsClient::open(PrivateChannel(m), &doc_id)
        };
        let mut alice = reopen(1).map_err(|_| bad("alice open failed"))?;
        let mut bob = reopen(2).map_err(|_| bad("bob open failed"))?;
        alice.editor().insert(0, "[alice] ");
        alice.save_merging(4);
        let bob_len = bob.content().len();
        bob.editor().insert(bob_len, " [bob]");
        bob.save_merging(4);

        // --- RPC document: integrity mode, then a tamper attempt. ---
        let mut rpc_mediator = DocsMediator::with_rng(
            Arc::clone(&server),
            MediatorConfig::rpc(7),
            CtrDrbg::from_seed(0x0bc),
        );
        let rpc_id = rpc_mediator.create_document("rpc-pw")?;
        rpc_mediator.save_full(&rpc_id, "integrity protected contents")?;
        let mut delta = Delta::builder();
        delta.retain(9).insert(" fully");
        rpc_mediator.save_delta(&rpc_id, &delta.build())?;
        rpc_mediator.open_document(&rpc_id)?;
        // Tamper with the stored ciphertext and watch verification fail.
        let stored = server.stored_content(&rpc_id).ok_or_else(|| bad("no rpc doc"))?;
        let flip = stored.len() - 2;
        let tampered: String = stored
            .char_indices()
            .map(|(i, c)| if i == flip { if c == 'A' { 'B' } else { 'A' } } else { c })
            .collect();
        server.handle(&pe_cloud::Request::post(
            "/Doc",
            &[("docID", &rpc_id)],
            pe_crypto::form::encode_pairs(&[("docContents", tampered.as_str())]),
        ));
        let mut victim = DocsMediator::with_rng(
            Arc::clone(&server),
            MediatorConfig::rpc(7),
            CtrDrbg::from_seed(0xbad),
        );
        victim.register_password(&rpc_id, "rpc-pw");
        if victim.open_document(&rpc_id).is_ok() {
            return Err(bad("tampered document must not open"));
        }

        // --- Flaky transport: the client retry loop rides out 503s. ---
        let flaky_doc = {
            let resp = server.handle(&pe_cloud::Request::post("/Doc", &[("cmd", "create")], ""));
            let body = resp.body_text().unwrap_or("");
            let pairs = pe_crypto::form::parse_pairs(body).unwrap_or_default();
            pe_crypto::form::first_value(&pairs, "docID")
                .ok_or_else(|| bad("create failed"))?
                .to_string()
        };
        // Deterministic seeds; at least one open succeeds.
        let mut flaky_client = None;
        for seed in 0..8 {
            let flaky = FlakyService::new(Arc::clone(&server), 3, seed);
            if let Ok(c) = DocsClient::open(DirectChannel(flaky), &flaky_doc) {
                flaky_client = Some(c);
                break;
            }
        }
        let mut flaky_client = flaky_client.ok_or_else(|| bad("all flaky opens failed"))?;
        for i in 0..10 {
            let len = flaky_client.content().len();
            flaky_client.editor().insert(len, &format!("chunk {i}. "));
            if flaky_client.save_with_retry(10) != SaveOutcome::Saved {
                return Err(bad("retried save failed"));
            }
        }

        // --- Full-document save: the batch encrypt path, wall-timed. ---
        // A ~64 KiB document exercises the same `replace_all` route the
        // docs mediator takes for a browser full save.
        let full_text: String = {
            let alphabet = b"abcdefghijklmnopqrstuvwxyz ABCDEFGHIJKLMNOPQRSTUVWXYZ. ";
            (0..64 * 1024).map(|i| char::from(alphabet[i % alphabet.len()])).collect()
        };
        let mut saver = DocsMediator::with_rng(
            Arc::clone(&server),
            MediatorConfig::recb(8),
            CtrDrbg::from_seed(0xfa57),
        );
        let full_id = saver.create_document("full-pw")?;
        let started = std::time::Instant::now();
        saver.save_full(&full_id, &full_text)?;
        let full_save = started.elapsed();
        saver.open_document(&full_id)?; // and the batch decrypt path back
        pe_observe::static_histogram!("cli.full_save_ns").record(full_save.as_nanos() as u64);
        pe_observe::static_counter!("cli.full_save_bytes").add(full_text.len() as u64);

        // --- Modeled network time for every metered exchange. ---
        let model = NetworkModel::default();
        for exchange in metered.drain() {
            model.round_trip_bytes(exchange.request_bytes, exchange.response_bytes);
        }

        let snapshot = pe_observe::global().snapshot();
        Ok(match format {
            StatsFormat::Text => {
                // The JSON format stays exactly the snapshot (tests
                // round-trip it), so the human-readable wall-time line is
                // text-mode only.
                let mut out = snapshot.render_text();
                out.push_str(&format!(
                    "\nfull save: {} bytes re-encrypted in {:.3} ms (batch path)\n",
                    full_text.len(),
                    full_save.as_secs_f64() * 1e3,
                ));
                out
            }
            StatsFormat::Json => snapshot.render_jsonl(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_create() {
        let options =
            parse_args(&args(&["--store", "s.db", "create", "--password", "pw"])).unwrap();
        assert_eq!(options.store, PathBuf::from("s.db"));
        assert!(!options.rpc);
        assert_eq!(
            options.command,
            Command::Create { auth: Auth::Password("pw".into()) }
        );
    }

    #[test]
    fn parses_rpc_flag_and_numbers() {
        let options = parse_args(&args(&[
            "--store", "s.db", "--rpc", "delete", "--doc", "doc1", "--password", "pw", "--at",
            "3", "--len", "7",
        ]))
        .unwrap();
        assert!(options.rpc);
        assert_eq!(
            options.command,
            Command::Delete {
                doc: "doc1".into(),
                auth: Auth::Password("pw".into()),
                at: 3,
                len: 7
            }
        );
    }

    #[test]
    fn rejects_missing_store_and_bad_flags() {
        assert!(matches!(parse_args(&args(&["create"])), Err(CliError::Usage(_))));
        assert!(matches!(
            parse_args(&args(&["--store", "s", "create"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&args(&["--store", "s", "teleport"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&args(&["--store", "s", "show", "--doc"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parses_tenant_auth_and_user_commands() {
        let options = parse_args(&args(&[
            "--store", "s.db", "show", "--doc", "doc1", "--user", "alice", "--passphrase", "pp",
        ]))
        .unwrap();
        assert_eq!(
            options.command,
            Command::Show {
                doc: "doc1".into(),
                auth: Auth::Tenant { user: "alice".into(), passphrase: "pp".into() },
            }
        );
        // Mixing both credential styles is rejected.
        assert!(matches!(
            parse_args(&args(&[
                "--store", "s", "show", "--doc", "d", "--password", "pw", "--user", "u",
                "--passphrase", "p",
            ])),
            Err(CliError::Usage(_))
        ));
        let options = parse_args(&args(&[
            "--store", "s.db", "user", "register", "--name", "alice", "--passphrase", "pp",
        ]))
        .unwrap();
        assert_eq!(
            options.command,
            Command::UserRegister { name: "alice".into(), passphrase: "pp".into() }
        );
        let options = parse_args(&args(&["--store", "s.db", "user", "list"])).unwrap();
        assert_eq!(options.command, Command::UserList);
        let options = parse_args(&args(&[
            "--store", "s.db", "grant", "--doc", "d", "--user", "alice", "--passphrase", "pp",
            "--to", "bob",
        ]))
        .unwrap();
        assert_eq!(
            options.command,
            Command::Grant {
                doc: "d".into(),
                user: "alice".into(),
                passphrase: "pp".into(),
                to: "bob".into()
            }
        );
        assert!(matches!(
            parse_args(&args(&["--store", "s", "user", "teleport"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&args(&["--store", "s", "user"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parses_kdf_iters_override() {
        let options = parse_args(&args(&[
            "--store", "s.db", "--kdf-iters", "2000", "create", "--password", "pw",
        ]))
        .unwrap();
        assert_eq!(options.kdf_iters, Some(2000));
        assert!(matches!(
            parse_args(&args(&["--store", "s", "--kdf-iters", "0", "list"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&args(&["--store", "s", "--kdf-iters", "many", "list"])),
            Err(CliError::Usage(_))
        ));
        // Default: no override recorded.
        let options = parse_args(&args(&["--store", "s.db", "list"])).unwrap();
        assert_eq!(options.kdf_iters, None);
    }

    #[test]
    fn help_shows_usage() {
        let err = parse_args(&args(&["--help"])).unwrap_err();
        assert!(err.to_string().contains("COMMANDS"));
    }

    #[test]
    fn parses_serve_with_defaults_and_flags() {
        let options = parse_args(&args(&["--store", "s.db", "serve"])).unwrap();
        assert_eq!(
            options.command,
            Command::Serve {
                addr: "127.0.0.1:0".into(),
                workers: None,
                max_conns: None,
                addr_file: None,
                fsync: FsyncPolicy::Always,
                shards: None,
            }
        );
        let options = parse_args(&args(&[
            "--store", "s.db", "serve", "--addr", "127.0.0.1:8080", "--workers", "2",
            "--max-conns", "512", "--addr-file", "/tmp/a", "--fsync", "every=8",
            "--shards", "4",
        ]))
        .unwrap();
        assert_eq!(
            options.command,
            Command::Serve {
                addr: "127.0.0.1:8080".into(),
                workers: Some(2),
                max_conns: Some(512),
                addr_file: Some(PathBuf::from("/tmp/a")),
                fsync: FsyncPolicy::EveryN(8),
                shards: Some(4),
            }
        );
        assert!(matches!(
            parse_args(&args(&["--store", "s", "serve", "--fsync", "sometimes"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parses_fsck_and_compact_as_positional_verbs() {
        // Neither needs --store: the directory is the positional argument.
        let options = parse_args(&args(&["fsck", "some/dir"])).unwrap();
        assert_eq!(options.command, Command::Fsck { dir: PathBuf::from("some/dir") });
        let options = parse_args(&args(&["compact", "some/dir"])).unwrap();
        assert_eq!(
            options.command,
            Command::Compact { dir: PathBuf::from("some/dir"), shards: None }
        );
        let options = parse_args(&args(&["compact", "some/dir", "--shards", "8"])).unwrap();
        assert_eq!(
            options.command,
            Command::Compact { dir: PathBuf::from("some/dir"), shards: Some(8) }
        );
        assert!(matches!(parse_args(&args(&["fsck"])), Err(CliError::Usage(_))));
        assert!(matches!(
            parse_args(&args(&["compact", "a", "b"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&args(&["fsck", "a", "--shards", "2"])),
            Err(CliError::Usage(_)),
        ));
        assert!(matches!(
            parse_args(&args(&["compact", "a", "--shards", "two"])),
            Err(CliError::Usage(_)),
        ));
    }

    #[test]
    fn fsck_reports_missing_directory_as_corrupt() {
        let options = parse_args(&args(&["fsck", "/nonexistent/pedit-store"])).unwrap();
        assert!(matches!(run(&options), Err(CliError::BadStore(_))));
    }

    #[test]
    fn parses_connect_mode_without_store() {
        let options = parse_args(&args(&[
            "--connect", "127.0.0.1:9", "show", "--doc", "d", "--password", "pw",
        ]))
        .unwrap();
        assert_eq!(options.connect.as_deref(), Some("127.0.0.1:9"));
        assert!(options.store.as_os_str().is_empty());
        let options = parse_args(&args(&["--connect", "127.0.0.1:9", "stop"])).unwrap();
        assert_eq!(options.command, Command::Stop);
    }

    #[test]
    fn serve_cannot_combine_with_connect_and_stop_needs_connect() {
        assert!(matches!(
            parse_args(&args(&["--store", "s", "--connect", "h:1", "serve"])),
            Err(CliError::Usage(_))
        ));
        // `stop` parses without --connect but run() rejects it.
        let options = parse_args(&args(&["--store", "s", "stop"])).unwrap();
        assert!(matches!(run(&options), Err(CliError::Usage(_))));
    }
}
