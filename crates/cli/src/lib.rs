//! `pedit`: a command-line private editor.
//!
//! The paper's user story, as a tool: documents live on an untrusted
//! "cloud" (here a file-persisted [`DocsServer`] snapshot — the provider's
//! entire view), and every interaction goes through the privacy mediator,
//! so the store file never contains a byte of plaintext.
//!
//! ```console
//! $ pedit --store cloud.db create --password pw
//! created doc1
//! $ pedit --store cloud.db save --doc doc1 --password pw --text "my plans"
//! $ pedit --store cloud.db show --doc doc1 --password pw
//! my plans
//! $ pedit --store cloud.db raw --doc doc1        # what the provider sees
//! PE1;R;b8;…
//! ```
//!
//! The command layer is a library so the binary stays a thin wrapper and
//! integration tests can drive every command in-process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::path::{Path, PathBuf};

use pe_cloud::docs::DocsServer;
use pe_cloud::Request;
use pe_crypto::form;
use pe_delta::Delta;
use pe_extension::{DocsMediator, ExtensionError, MediatorConfig};

/// A parsed command-line invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliOptions {
    /// Path of the store file holding the provider's state.
    pub store: PathBuf,
    /// Use RPC (integrity) mode for newly created documents.
    pub rpc: bool,
    /// The subcommand.
    pub command: Command,
}

/// One `pedit` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Create a new encrypted document.
    Create {
        /// Document password.
        password: String,
    },
    /// List document ids the provider stores.
    List,
    /// Decrypt and print a document.
    Show {
        /// Document id.
        doc: String,
        /// Document password.
        password: String,
    },
    /// Replace the whole document (full save).
    Save {
        /// Document id.
        doc: String,
        /// Document password.
        password: String,
        /// New content.
        text: String,
    },
    /// Insert text at a byte offset (incremental save).
    Insert {
        /// Document id.
        doc: String,
        /// Document password.
        password: String,
        /// Byte offset.
        at: usize,
        /// Text to insert.
        text: String,
    },
    /// Delete a byte range (incremental save).
    Delete {
        /// Document id.
        doc: String,
        /// Document password.
        password: String,
        /// Byte offset.
        at: usize,
        /// Bytes to delete.
        len: usize,
    },
    /// Show decrypted revision history.
    History {
        /// Document id.
        doc: String,
        /// Document password.
        password: String,
    },
    /// Rotate a document's password.
    Rotate {
        /// Document id.
        doc: String,
        /// Current password.
        old: String,
        /// New password.
        new: String,
    },
    /// Print the raw stored ciphertext (the provider's view).
    Raw {
        /// Document id.
        doc: String,
    },
    /// Run a scripted edit session against an in-memory cloud and print
    /// the observability snapshot for every layer.
    Stats {
        /// Output format for the snapshot.
        format: StatsFormat,
    },
}

/// Output format of the [`Command::Stats`] snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsFormat {
    /// Human-readable report with histogram bars.
    Text,
    /// Line-oriented JSON (one object per metric).
    Json,
}

/// Errors surfaced to the user.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Command line could not be parsed; the string is usage help.
    Usage(String),
    /// The store file could not be read or written.
    Store(std::io::Error),
    /// The store file contents were invalid.
    BadStore(String),
    /// The mediator/crypto layer failed (wrong password, tampering, …).
    Extension(ExtensionError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Store(e) => write!(f, "store i/o error: {e}"),
            CliError::BadStore(msg) => write!(f, "invalid store file: {msg}"),
            CliError::Extension(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ExtensionError> for CliError {
    fn from(e: ExtensionError) -> CliError {
        CliError::Extension(e)
    }
}

/// Usage text shown for parse failures and `--help`.
pub const USAGE: &str = "\
pedit — private editing on an untrusted (file-simulated) cloud

USAGE: pedit --store FILE [--rpc] COMMAND

COMMANDS:
  create  --password PW
  list
  show    --doc ID --password PW
  save    --doc ID --password PW --text TEXT
  insert  --doc ID --password PW --at N --text TEXT
  delete  --doc ID --password PW --at N --len N
  history --doc ID --password PW
  rotate  --doc ID --old PW --new PW
  raw     --doc ID
  stats   [--format text|json]";

/// Parses command-line arguments (excluding `argv[0]`).
///
/// # Errors
///
/// Returns [`CliError::Usage`] with help text for malformed invocations.
pub fn parse_args(args: &[String]) -> Result<CliOptions, CliError> {
    let usage = |msg: &str| CliError::Usage(format!("{msg}\n\n{USAGE}"));
    let mut store: Option<PathBuf> = None;
    let mut rpc = false;
    let mut rest: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--store" => {
                store = Some(PathBuf::from(
                    iter.next().ok_or_else(|| usage("--store needs a value"))?,
                ));
            }
            "--rpc" => rpc = true,
            "--help" | "-h" => return Err(CliError::Usage(USAGE.to_string())),
            _ => rest.push(arg.clone()),
        }
    }
    let mut rest = rest.into_iter();
    let verb = rest.next().ok_or_else(|| usage("missing command"))?;
    // `stats` runs against its own in-memory cloud, so no store is needed.
    let store = match store {
        Some(path) => path,
        None if verb == "stats" => PathBuf::new(),
        None => return Err(usage("missing --store FILE")),
    };
    // Collect remaining flags into key/value pairs.
    let mut flags = std::collections::HashMap::new();
    let remaining: Vec<String> = rest.collect();
    let mut i = 0;
    while i < remaining.len() {
        let key = remaining[i]
            .strip_prefix("--")
            .ok_or_else(|| usage(&format!("unexpected argument {:?}", remaining[i])))?;
        let value = remaining
            .get(i + 1)
            .ok_or_else(|| usage(&format!("--{key} needs a value")))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    let take = |flags: &std::collections::HashMap<String, String>, key: &str| {
        flags
            .get(key)
            .cloned()
            .ok_or_else(|| usage(&format!("{verb} requires --{key}")))
    };
    let number = |flags: &std::collections::HashMap<String, String>, key: &str| {
        take(flags, key)?
            .parse::<usize>()
            .map_err(|_| usage(&format!("--{key} must be a number")))
    };
    let command = match verb.as_str() {
        "create" => Command::Create { password: take(&flags, "password")? },
        "list" => Command::List,
        "show" => Command::Show { doc: take(&flags, "doc")?, password: take(&flags, "password")? },
        "save" => Command::Save {
            doc: take(&flags, "doc")?,
            password: take(&flags, "password")?,
            text: take(&flags, "text")?,
        },
        "insert" => Command::Insert {
            doc: take(&flags, "doc")?,
            password: take(&flags, "password")?,
            at: number(&flags, "at")?,
            text: take(&flags, "text")?,
        },
        "delete" => Command::Delete {
            doc: take(&flags, "doc")?,
            password: take(&flags, "password")?,
            at: number(&flags, "at")?,
            len: number(&flags, "len")?,
        },
        "history" => {
            Command::History { doc: take(&flags, "doc")?, password: take(&flags, "password")? }
        }
        "rotate" => Command::Rotate {
            doc: take(&flags, "doc")?,
            old: take(&flags, "old")?,
            new: take(&flags, "new")?,
        },
        "raw" => Command::Raw { doc: take(&flags, "doc")? },
        "stats" => Command::Stats {
            format: match flags.get("format").map(String::as_str) {
                None | Some("text") => StatsFormat::Text,
                Some("json") => StatsFormat::Json,
                Some(other) => {
                    return Err(usage(&format!("unknown stats format {other:?}")))
                }
            },
        },
        other => return Err(usage(&format!("unknown command {other:?}"))),
    };
    Ok(CliOptions { store, rpc, command })
}

fn load_store(path: &Path) -> Result<DocsServer, CliError> {
    match std::fs::read_to_string(path) {
        Ok(snapshot) => DocsServer::restore(&snapshot).map_err(CliError::BadStore),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(DocsServer::new()),
        Err(e) => Err(CliError::Store(e)),
    }
}

fn persist_store(path: &Path, server: &DocsServer) -> Result<(), CliError> {
    std::fs::write(path, server.snapshot()).map_err(CliError::Store)
}

fn mediator(
    server: std::sync::Arc<DocsServer>,
    rpc: bool,
) -> DocsMediator<std::sync::Arc<DocsServer>> {
    let config = if rpc { MediatorConfig::rpc(7) } else { MediatorConfig::recb(8) };
    DocsMediator::new(server, config)
}

/// Executes a parsed invocation, returning the text to print.
///
/// # Errors
///
/// Returns [`CliError`] for store, password, or integrity failures.
pub fn run(options: &CliOptions) -> Result<String, CliError> {
    if let Command::Stats { format } = &options.command {
        // The stats session runs against its own in-memory cloud; the
        // store file is neither read nor written.
        return stats::run_scripted_session(*format);
    }
    let server = std::sync::Arc::new(load_store(&options.store)?);
    let mut output = String::new();
    match &options.command {
        Command::Create { password } => {
            let mut mediator = mediator(std::sync::Arc::clone(&server), options.rpc);
            let doc_id = mediator.create_document(password)?;
            // An empty full save materializes the encrypted document.
            mediator.save_full(&doc_id, "")?;
            output.push_str(&format!("created {doc_id}"));
        }
        Command::List => {
            let ids = server.list_documents();
            if ids.is_empty() {
                output.push_str("(no documents)");
            } else {
                output.push_str(&ids.join("\n"));
            }
        }
        Command::Show { doc, password } => {
            let mut mediator = mediator(std::sync::Arc::clone(&server), options.rpc);
            mediator.register_password(doc, password);
            output.push_str(&mediator.open_document(doc)?);
        }
        Command::Save { doc, password, text } => {
            let mut mediator = mediator(std::sync::Arc::clone(&server), options.rpc);
            mediator.register_password(doc, password);
            mediator.open_document(doc)?;
            mediator.save_full(doc, text)?;
            output.push_str("saved");
        }
        Command::Insert { doc, password, at, text } => {
            let mut mediator = mediator(std::sync::Arc::clone(&server), options.rpc);
            mediator.register_password(doc, password);
            mediator.open_document(doc)?;
            let mut delta = Delta::builder();
            delta.retain(*at).insert(text);
            mediator.save_delta(doc, &delta.build())?;
            output.push_str("saved (incremental)");
        }
        Command::Delete { doc, password, at, len } => {
            let mut mediator = mediator(std::sync::Arc::clone(&server), options.rpc);
            mediator.register_password(doc, password);
            mediator.open_document(doc)?;
            let mut delta = Delta::builder();
            delta.retain(*at).delete(*len);
            mediator.save_delta(doc, &delta.build())?;
            output.push_str("saved (incremental)");
        }
        Command::History { doc, password } => {
            let mut mediator = mediator(std::sync::Arc::clone(&server), options.rpc);
            mediator.register_password(doc, password);
            mediator.open_document(doc)?;
            let count_resp =
                mediator.intercept(&Request::get("/Doc/revisions", &[("docID", doc)]))?;
            let body = count_resp.response.body_text().unwrap_or("");
            let pairs = form::parse_pairs(body).unwrap_or_default();
            let count: usize = form::first_value(&pairs, "revisionCount")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            output.push_str(&format!("{count} revision(s)"));
            for index in 0..count {
                let idx = index.to_string();
                let rev = mediator.intercept(&Request::get(
                    "/Doc/revisions",
                    &[("docID", doc), ("index", idx.as_str())],
                ))?;
                let body = rev.response.body_text().unwrap_or("");
                let pairs = form::parse_pairs(body).unwrap_or_default();
                let content = form::first_value(&pairs, "content").unwrap_or("");
                let shown: String = content.chars().take(60).collect();
                output.push_str(&format!("\n[{index}] {shown}"));
            }
        }
        Command::Rotate { doc, old, new } => {
            let mut mediator = mediator(std::sync::Arc::clone(&server), options.rpc);
            mediator.register_password(doc, old);
            mediator.change_password(doc, new)?;
            output.push_str("password rotated (note: server-side history keeps old-key ciphertext)");
        }
        Command::Raw { doc } => match server.stored_content(doc) {
            Some(content) => output.push_str(&content),
            None => output.push_str("(no such document)"),
        },
        // Handled by the early return above; never reaches the store.
        Command::Stats { .. } => unreachable!("stats handled before store load"),
    }
    persist_store(&options.store, &server)?;
    Ok(output)
}

mod stats {
    //! The `pedit stats` scripted session: drives every layer of the
    //! stack — client retry loop, privacy mediator, simulated cloud with
    //! injected faults and the modeled network — against an in-memory
    //! server, then prints the global observability snapshot.

    use std::sync::{Arc, Mutex};

    use pe_client::{DirectChannel, DocsClient, PrivateChannel, SaveOutcome};
    use pe_cloud::docs::DocsServer;
    use pe_cloud::fault::FlakyService;
    use pe_cloud::meter::MeteredService;
    use pe_cloud::net::NetworkModel;
    use pe_cloud::CloudService;
    use pe_crypto::CtrDrbg;
    use pe_delta::Delta;
    use pe_extension::{DocsMediator, MediatorConfig};

    use crate::{CliError, StatsFormat};

    /// Serializes sessions so concurrent callers (parallel tests) cannot
    /// reset the global registry out from under each other.
    fn session_lock() -> &'static Mutex<()> {
        static LOCK: std::sync::OnceLock<Mutex<()>> = std::sync::OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    pub(crate) fn run_scripted_session(format: StatsFormat) -> Result<String, CliError> {
        let _guard = session_lock().lock().unwrap_or_else(|e| e.into_inner());
        pe_observe::global().reset();

        let bad = |detail: &str| CliError::BadStore(format!("stats session: {detail}"));
        let server = Arc::new(DocsServer::new());

        // --- rECB document: mediated edits over a metered transport. ---
        let metered = MeteredService::new(Arc::clone(&server));
        let mut mediator = DocsMediator::with_rng(
            metered.clone(),
            MediatorConfig::recb(8),
            CtrDrbg::from_seed(0x57a7),
        );
        let doc_id = mediator.create_document("stats-pw")?;
        mediator.save_full(&doc_id, "the quick brown fox jumps over the lazy dog")?;
        let mut client = DocsClient::open(PrivateChannel(mediator), &doc_id)
            .map_err(|_| bad("open failed"))?;
        for i in 0..6 {
            let len = client.content().len();
            client.editor().insert(len, &format!(" edit {i}."));
            if client.save() != SaveOutcome::Saved {
                return Err(bad("mediated save failed"));
            }
        }
        client.editor().delete(0, 4);
        client.save();

        // --- Two writers on the same document: conflict, then merge. ---
        let reopen = |seed: u64| {
            let mut m = DocsMediator::with_rng(
                Arc::clone(&server),
                MediatorConfig::recb(8),
                CtrDrbg::from_seed(seed),
            );
            m.register_password(&doc_id, "stats-pw");
            DocsClient::open(PrivateChannel(m), &doc_id)
        };
        let mut alice = reopen(1).map_err(|_| bad("alice open failed"))?;
        let mut bob = reopen(2).map_err(|_| bad("bob open failed"))?;
        alice.editor().insert(0, "[alice] ");
        alice.save_merging(4);
        let bob_len = bob.content().len();
        bob.editor().insert(bob_len, " [bob]");
        bob.save_merging(4);

        // --- RPC document: integrity mode, then a tamper attempt. ---
        let mut rpc_mediator = DocsMediator::with_rng(
            Arc::clone(&server),
            MediatorConfig::rpc(7),
            CtrDrbg::from_seed(0x0bc),
        );
        let rpc_id = rpc_mediator.create_document("rpc-pw")?;
        rpc_mediator.save_full(&rpc_id, "integrity protected contents")?;
        let mut delta = Delta::builder();
        delta.retain(9).insert(" fully");
        rpc_mediator.save_delta(&rpc_id, &delta.build())?;
        rpc_mediator.open_document(&rpc_id)?;
        // Tamper with the stored ciphertext and watch verification fail.
        let stored = server.stored_content(&rpc_id).ok_or_else(|| bad("no rpc doc"))?;
        let flip = stored.len() - 2;
        let tampered: String = stored
            .char_indices()
            .map(|(i, c)| if i == flip { if c == 'A' { 'B' } else { 'A' } } else { c })
            .collect();
        server.handle(&pe_cloud::Request::post(
            "/Doc",
            &[("docID", &rpc_id)],
            pe_crypto::form::encode_pairs(&[("docContents", tampered.as_str())]),
        ));
        let mut victim = DocsMediator::with_rng(
            Arc::clone(&server),
            MediatorConfig::rpc(7),
            CtrDrbg::from_seed(0xbad),
        );
        victim.register_password(&rpc_id, "rpc-pw");
        if victim.open_document(&rpc_id).is_ok() {
            return Err(bad("tampered document must not open"));
        }

        // --- Flaky transport: the client retry loop rides out 503s. ---
        let flaky_doc = {
            let resp = server.handle(&pe_cloud::Request::post("/Doc", &[("cmd", "create")], ""));
            let body = resp.body_text().unwrap_or("");
            let pairs = pe_crypto::form::parse_pairs(body).unwrap_or_default();
            pe_crypto::form::first_value(&pairs, "docID")
                .ok_or_else(|| bad("create failed"))?
                .to_string()
        };
        // Deterministic seeds; at least one open succeeds.
        let mut flaky_client = None;
        for seed in 0..8 {
            let flaky = FlakyService::new(Arc::clone(&server), 3, seed);
            if let Ok(c) = DocsClient::open(DirectChannel(flaky), &flaky_doc) {
                flaky_client = Some(c);
                break;
            }
        }
        let mut flaky_client = flaky_client.ok_or_else(|| bad("all flaky opens failed"))?;
        for i in 0..10 {
            let len = flaky_client.content().len();
            flaky_client.editor().insert(len, &format!("chunk {i}. "));
            if flaky_client.save_with_retry(10) != SaveOutcome::Saved {
                return Err(bad("retried save failed"));
            }
        }

        // --- Full-document save: the batch encrypt path, wall-timed. ---
        // A ~64 KiB document exercises the same `replace_all` route the
        // docs mediator takes for a browser full save.
        let full_text: String = {
            let alphabet = b"abcdefghijklmnopqrstuvwxyz ABCDEFGHIJKLMNOPQRSTUVWXYZ. ";
            (0..64 * 1024).map(|i| char::from(alphabet[i % alphabet.len()])).collect()
        };
        let mut saver = DocsMediator::with_rng(
            Arc::clone(&server),
            MediatorConfig::recb(8),
            CtrDrbg::from_seed(0xfa57),
        );
        let full_id = saver.create_document("full-pw")?;
        let started = std::time::Instant::now();
        saver.save_full(&full_id, &full_text)?;
        let full_save = started.elapsed();
        saver.open_document(&full_id)?; // and the batch decrypt path back
        pe_observe::static_histogram!("cli.full_save_ns").record(full_save.as_nanos() as u64);
        pe_observe::static_counter!("cli.full_save_bytes").add(full_text.len() as u64);

        // --- Modeled network time for every metered exchange. ---
        let model = NetworkModel::default();
        for exchange in metered.drain() {
            model.round_trip_bytes(exchange.request_bytes, exchange.response_bytes);
        }

        let snapshot = pe_observe::global().snapshot();
        Ok(match format {
            StatsFormat::Text => {
                // The JSON format stays exactly the snapshot (tests
                // round-trip it), so the human-readable wall-time line is
                // text-mode only.
                let mut out = snapshot.render_text();
                out.push_str(&format!(
                    "\nfull save: {} bytes re-encrypted in {:.3} ms (batch path)\n",
                    full_text.len(),
                    full_save.as_secs_f64() * 1e3,
                ));
                out
            }
            StatsFormat::Json => snapshot.render_jsonl(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_create() {
        let options =
            parse_args(&args(&["--store", "s.db", "create", "--password", "pw"])).unwrap();
        assert_eq!(options.store, PathBuf::from("s.db"));
        assert!(!options.rpc);
        assert_eq!(options.command, Command::Create { password: "pw".into() });
    }

    #[test]
    fn parses_rpc_flag_and_numbers() {
        let options = parse_args(&args(&[
            "--store", "s.db", "--rpc", "delete", "--doc", "doc1", "--password", "pw", "--at",
            "3", "--len", "7",
        ]))
        .unwrap();
        assert!(options.rpc);
        assert_eq!(
            options.command,
            Command::Delete { doc: "doc1".into(), password: "pw".into(), at: 3, len: 7 }
        );
    }

    #[test]
    fn rejects_missing_store_and_bad_flags() {
        assert!(matches!(parse_args(&args(&["create"])), Err(CliError::Usage(_))));
        assert!(matches!(
            parse_args(&args(&["--store", "s", "create"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&args(&["--store", "s", "teleport"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(&args(&["--store", "s", "show", "--doc"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn help_shows_usage() {
        let err = parse_args(&args(&["--help"])).unwrap_err();
        assert!(err.to_string().contains("COMMANDS"));
    }
}
