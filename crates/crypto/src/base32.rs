//! RFC 4648 Base32 encoding.
//!
//! The paper's extension Base32-encodes ciphertext before substituting it
//! into the `docContents`/`delta` fields (Figure 2: `Base32.encode(...)`),
//! because the on-line editor must be able to store and render the bytes as
//! ordinary document text. Base32's alphabet (`A–Z2–7`) survives every
//! text-processing layer of the simulated services.
//!
//! Encoding without padding is also provided: within a ciphertext document
//! each encryption block is encoded independently, and padding characters
//! would waste space (blocks have known size).
//!
//! # Example
//!
//! ```
//! use pe_crypto::base32;
//!
//! assert_eq!(base32::encode(b"foobar"), "MZXW6YTBOI======");
//! assert_eq!(base32::decode("MZXW6YTBOI======")?, b"foobar");
//! # Ok::<(), pe_crypto::CryptoError>(())
//! ```

use crate::error::CryptoError;

const ALPHABET: &[u8; 32] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ234567";

/// Encodes `data` as Base32 with `=` padding (RFC 4648 §6).
pub fn encode(data: &[u8]) -> String {
    let mut out = encode_unpadded(data);
    while !out.len().is_multiple_of(8) {
        out.push('=');
    }
    out
}

/// Encodes `data` as Base32 without padding characters.
pub fn encode_unpadded(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(5) * 8);
    let mut buffer: u64 = 0;
    let mut bits: u32 = 0;
    for &byte in data {
        buffer = (buffer << 8) | u64::from(byte);
        bits += 8;
        while bits >= 5 {
            bits -= 5;
            out.push(ALPHABET[((buffer >> bits) & 0x1f) as usize] as char);
        }
    }
    if bits > 0 {
        out.push(ALPHABET[((buffer << (5 - bits)) & 0x1f) as usize] as char);
    }
    out
}

/// Decodes a padded or unpadded Base32 string.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidCharacter`] for characters outside the
/// RFC 4648 alphabet, and [`CryptoError::InvalidPadding`] if `=` appears
/// anywhere but at the end or if the remainder length is impossible.
pub fn decode(text: &str) -> Result<Vec<u8>, CryptoError> {
    let bytes = text.as_bytes();
    let data_end = bytes.iter().position(|&b| b == b'=').unwrap_or(bytes.len());
    if bytes[data_end..].iter().any(|&b| b != b'=') {
        return Err(CryptoError::InvalidPadding);
    }
    decode_unpadded_bytes(&bytes[..data_end])
}

/// Decodes a Base32 string that carries no padding characters.
///
/// # Errors
///
/// As for [`decode`]; additionally any `=` is treated as an invalid
/// character.
pub fn decode_unpadded(text: &str) -> Result<Vec<u8>, CryptoError> {
    decode_unpadded_bytes(text.as_bytes())
}

fn decode_unpadded_bytes(bytes: &[u8]) -> Result<Vec<u8>, CryptoError> {
    // Remainders of 1, 3, 6 characters cannot arise from whole bytes.
    if matches!(bytes.len() % 8, 1 | 3 | 6) {
        return Err(CryptoError::InvalidLength { length: bytes.len() });
    }
    let mut out = Vec::with_capacity(bytes.len() * 5 / 8);
    let mut buffer: u64 = 0;
    let mut bits: u32 = 0;
    for (position, &c) in bytes.iter().enumerate() {
        let value = match c {
            b'A'..=b'Z' => c - b'A',
            b'a'..=b'z' => c - b'a',
            b'2'..=b'7' => c - b'2' + 26,
            _ => return Err(CryptoError::InvalidCharacter { byte: c, position }),
        };
        buffer = (buffer << 5) | u64::from(value);
        bits += 5;
        if bits >= 8 {
            bits -= 8;
            out.push(((buffer >> bits) & 0xff) as u8);
        }
    }
    // Leftover bits must be zero padding produced by the encoder.
    if bits > 0 && (buffer & ((1 << bits) - 1)) != 0 {
        return Err(CryptoError::InvalidPadding);
    }
    Ok(out)
}

/// Number of Base32 characters needed to encode `n` bytes without padding.
pub const fn encoded_len(n: usize) -> usize {
    (n * 8).div_ceil(5)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 4648 §10 test vectors.
    #[test]
    fn rfc4648_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", ""),
            (b"f", "MY======"),
            (b"fo", "MZXQ===="),
            (b"foo", "MZXW6==="),
            (b"foob", "MZXW6YQ="),
            (b"fooba", "MZXW6YTB"),
            (b"foobar", "MZXW6YTBOI======"),
        ];
        for (input, expect) in cases {
            assert_eq!(encode(input), *expect);
            assert_eq!(decode(expect).unwrap(), *input);
        }
    }

    #[test]
    fn unpadded_roundtrip_all_lengths() {
        for len in 0..64usize {
            let data: Vec<u8> = (0..len as u8).map(|b| b.wrapping_mul(37)).collect();
            let text = encode_unpadded(&data);
            assert!(!text.contains('='));
            assert_eq!(text.len(), encoded_len(len));
            assert_eq!(decode_unpadded(&text).unwrap(), data);
            // The padded decoder must accept unpadded text too.
            assert_eq!(decode(&text).unwrap(), data);
        }
    }

    #[test]
    fn lowercase_accepted() {
        assert_eq!(decode("mzxw6ytboi======").unwrap(), b"foobar");
    }

    #[test]
    fn invalid_character_rejected() {
        assert!(matches!(
            decode("MZ1W6YTB"),
            Err(CryptoError::InvalidCharacter { byte: b'1', position: 2 })
        ));
    }

    #[test]
    fn interior_padding_rejected() {
        assert_eq!(decode("MZ==6YTB"), Err(CryptoError::InvalidPadding));
    }

    #[test]
    fn impossible_remainder_rejected() {
        // A single trailing character can never decode to whole bytes.
        assert!(matches!(decode("MZXW6YTBA"), Err(CryptoError::InvalidLength { length: 9 })));
    }

    #[test]
    fn nonzero_trailing_bits_rejected() {
        // "MZXX" would leave non-zero bits in the buffer: craft one.
        // 'B' = 1 → for 2 chars (10 bits, 1 byte + 2 leftover bits) the
        // leftover bits must be zero; "MB" leaves 01 pending.
        assert_eq!(decode_unpadded("MB"), Err(CryptoError::InvalidPadding));
    }

    #[test]
    fn encoded_len_matches_encoder() {
        for len in 0..100 {
            let data = vec![0u8; len];
            assert_eq!(encode_unpadded(&data).len(), encoded_len(len));
        }
    }
}
