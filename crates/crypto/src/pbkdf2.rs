//! PBKDF2-HMAC-SHA-256 password-based key derivation (RFC 2898 / RFC 8018).
//!
//! The paper's prototype asks the user for a per-document password; the
//! document key is derived from that password. This module provides the
//! derivation step. The salt is stored alongside the ciphertext document
//! header so any client knowing the password can re-derive the key.
//!
//! # Example
//!
//! ```
//! use pe_crypto::pbkdf2::pbkdf2_sha256;
//!
//! let mut key = [0u8; 16];
//! pbkdf2_sha256(b"hunter2", b"doc-salt", 1_000, &mut key);
//! # let _ = key;
//! ```

use crate::hmac::HmacSha256;

/// Derives `out.len()` bytes of key material from `password` and `salt`
/// using `iterations` rounds of HMAC-SHA-256.
///
/// # Panics
///
/// Panics if `iterations` is zero (RFC 2898 requires a positive count).
pub fn pbkdf2_sha256(password: &[u8], salt: &[u8], iterations: u32, out: &mut [u8]) {
    assert!(iterations > 0, "PBKDF2 iteration count must be positive");
    for (block_index, chunk) in (1u32..).zip(out.chunks_mut(32)) {
        let mut mac = HmacSha256::new(password);
        mac.update(salt);
        mac.update(&block_index.to_be_bytes());
        let mut u = mac.finalize();
        let mut t = u;
        for _ in 1..iterations {
            let mut mac = HmacSha256::new(password);
            mac.update(&u);
            u = mac.finalize();
            for (acc, byte) in t.iter_mut().zip(u.iter()) {
                *acc ^= byte;
            }
        }
        chunk.copy_from_slice(&t[..chunk.len()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    /// RFC 7914 §11 PBKDF2-HMAC-SHA-256 test vector 1.
    #[test]
    fn rfc7914_vector_1_iteration() {
        let mut out = [0u8; 64];
        pbkdf2_sha256(b"passwd", b"salt", 1, &mut out);
        assert_eq!(
            hex::encode(&out),
            "55ac046e56e3089fec1691c22544b605f94185216dde0465e68b9d57c20dacbc\
             49ca9cccf179b645991664b39d77ef317c71b845b1e30bd509112041d3a19783"
        );
    }

    /// RFC 7914 §11 PBKDF2-HMAC-SHA-256 test vector 2 (80000 iterations).
    #[test]
    fn rfc7914_vector_80000_iterations() {
        let mut out = [0u8; 64];
        pbkdf2_sha256(b"Password", b"NaCl", 80000, &mut out);
        assert_eq!(
            hex::encode(&out),
            "4ddcd8f60b98be21830cee5ef22701f9641a4418d04c0414aeff08876b34ab56\
             a1d425a1225833549adb841b51c9b3176a272bdebba1d078478f62b397f33c8d"
        );
    }

    #[test]
    fn output_lengths_not_multiple_of_hash_len() {
        let mut short = [0u8; 5];
        let mut long = [0u8; 37];
        pbkdf2_sha256(b"pw", b"salt", 2, &mut short);
        pbkdf2_sha256(b"pw", b"salt", 2, &mut long);
        // The first bytes of both derivations must agree (same T1 block).
        assert_eq!(short, long[..5]);
    }

    #[test]
    fn different_salts_give_different_keys() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        pbkdf2_sha256(b"pw", b"salt-a", 10, &mut a);
        pbkdf2_sha256(b"pw", b"salt-b", 10, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "iteration count must be positive")]
    fn zero_iterations_panics() {
        let mut out = [0u8; 16];
        pbkdf2_sha256(b"pw", b"salt", 0, &mut out);
    }
}
