//! `application/x-www-form-urlencoded` codecs.
//!
//! The paper's extension rewrites form-encoded POST bodies
//! (`docContents=…&delta=…`); these helpers implement the encoding rules
//! the simulated wire protocol uses: unreserved characters pass through,
//! space becomes `+`, and every other byte becomes `%XX`.
//!
//! # Example
//!
//! ```
//! use pe_crypto::form;
//!
//! let body = form::encode_pairs(&[("delta", "=2\t+a b")]);
//! assert_eq!(body, "delta=%3D2%09%2Ba+b");
//! let pairs = form::parse_pairs(&body)?;
//! assert_eq!(pairs, vec![("delta".to_string(), "=2\t+a b".to_string())]);
//! # Ok::<(), pe_crypto::CryptoError>(())
//! ```

use crate::error::CryptoError;

/// Returns `true` for bytes that are passed through unescaped.
fn is_unreserved(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'*')
}

/// Percent-encodes `text` using form-urlencoding rules.
pub fn percent_encode(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for &b in text.as_bytes() {
        if is_unreserved(b) {
            out.push(b as char);
        } else if b == b' ' {
            out.push('+');
        } else {
            out.push('%');
            out.push(char::from_digit(u32::from(b >> 4), 16).unwrap().to_ascii_uppercase());
            out.push(char::from_digit(u32::from(b & 0xf), 16).unwrap().to_ascii_uppercase());
        }
    }
    out
}

/// Decodes a percent-encoded string back into text.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidCharacter`] for malformed `%` escapes and
/// [`CryptoError::InvalidUtf8`] if the decoded bytes are not UTF-8.
pub fn percent_decode(text: &str) -> Result<String, CryptoError> {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                if i + 2 >= bytes.len() {
                    return Err(CryptoError::InvalidCharacter { byte: b'%', position: i });
                }
                let hi = hex_val(bytes[i + 1])
                    .ok_or(CryptoError::InvalidCharacter { byte: bytes[i + 1], position: i + 1 })?;
                let lo = hex_val(bytes[i + 2])
                    .ok_or(CryptoError::InvalidCharacter { byte: bytes[i + 2], position: i + 2 })?;
                out.push((hi << 4) | lo);
                i += 3;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|e| CryptoError::InvalidUtf8 {
        position: e.utf8_error().valid_up_to(),
    })
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

/// Encodes key/value pairs as a form body (`k1=v1&k2=v2`).
pub fn encode_pairs<K: AsRef<str>, V: AsRef<str>>(pairs: &[(K, V)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push('&');
        }
        out.push_str(&percent_encode(k.as_ref()));
        out.push('=');
        out.push_str(&percent_encode(v.as_ref()));
    }
    out
}

/// Parses a form body into its key/value pairs, preserving order and
/// duplicates.
///
/// # Errors
///
/// Propagates decoding errors from [`percent_decode`].
pub fn parse_pairs(body: &str) -> Result<Vec<(String, String)>, CryptoError> {
    if body.is_empty() {
        return Ok(Vec::new());
    }
    let mut pairs = Vec::new();
    for piece in body.split('&') {
        let (k, v) = match piece.split_once('=') {
            Some((k, v)) => (k, v),
            None => (piece, ""),
        };
        pairs.push((percent_decode(k)?, percent_decode(v)?));
    }
    Ok(pairs)
}

/// Looks up the first value for `key` in a parsed form body.
pub fn first_value<'a>(pairs: &'a [(String, String)], key: &str) -> Option<&'a str> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unreserved_passes_through() {
        assert_eq!(percent_encode("AZaz09-_.*"), "AZaz09-_.*");
    }

    #[test]
    fn space_becomes_plus() {
        assert_eq!(percent_encode("a b"), "a+b");
        assert_eq!(percent_decode("a+b").unwrap(), "a b");
    }

    #[test]
    fn reserved_characters_escape() {
        assert_eq!(percent_encode("=&%\t"), "%3D%26%25%09");
        assert_eq!(percent_decode("%3D%26%25%09").unwrap(), "=&%\t");
    }

    #[test]
    fn unicode_roundtrip() {
        let text = "héllo wörld — ≠";
        assert_eq!(percent_decode(&percent_encode(text)).unwrap(), text);
    }

    #[test]
    fn roundtrip_every_ascii_byte() {
        let all: String = (0x20u8..0x7f).map(|b| b as char).collect();
        assert_eq!(percent_decode(&percent_encode(&all)).unwrap(), all);
    }

    #[test]
    fn truncated_escape_rejected() {
        assert!(percent_decode("abc%4").is_err());
        assert!(percent_decode("abc%").is_err());
    }

    #[test]
    fn invalid_hex_rejected() {
        assert!(matches!(
            percent_decode("%zz"),
            Err(CryptoError::InvalidCharacter { byte: b'z', position: 1 })
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        assert!(matches!(percent_decode("%ff%fe"), Err(CryptoError::InvalidUtf8 { .. })));
    }

    #[test]
    fn pairs_roundtrip() {
        let pairs = vec![
            ("docContents".to_string(), "hello world & more".to_string()),
            ("delta".to_string(), "=2\t-5\t+x=y".to_string()),
            ("empty".to_string(), String::new()),
        ];
        let body = encode_pairs(&pairs);
        assert_eq!(parse_pairs(&body).unwrap(), pairs);
    }

    #[test]
    fn key_without_value_parses_as_empty() {
        assert_eq!(
            parse_pairs("flag&k=v").unwrap(),
            vec![("flag".to_string(), String::new()), ("k".to_string(), "v".to_string())]
        );
    }

    #[test]
    fn empty_body_parses_to_no_pairs() {
        assert!(parse_pairs("").unwrap().is_empty());
    }

    #[test]
    fn first_value_finds_first_duplicate() {
        let pairs = parse_pairs("a=1&a=2&b=3").unwrap();
        assert_eq!(first_value(&pairs, "a"), Some("1"));
        assert_eq!(first_value(&pairs, "b"), Some("3"));
        assert_eq!(first_value(&pairs, "c"), None);
    }
}
