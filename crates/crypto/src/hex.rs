//! Hexadecimal encoding and decoding.
//!
//! # Example
//!
//! ```
//! assert_eq!(pe_crypto::hex::encode(&[0xde, 0xad]), "dead");
//! assert_eq!(pe_crypto::hex::decode("dead")?, vec![0xde, 0xad]);
//! # Ok::<(), pe_crypto::CryptoError>(())
//! ```

use crate::error::CryptoError;

const DIGITS: &[u8; 16] = b"0123456789abcdef";

/// Encodes `data` as a lowercase hexadecimal string.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len() * 2);
    for &byte in data {
        out.push(DIGITS[(byte >> 4) as usize] as char);
        out.push(DIGITS[(byte & 0x0f) as usize] as char);
    }
    out
}

/// Decodes a hexadecimal string (either case) into bytes.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidLength`] for odd-length inputs and
/// [`CryptoError::InvalidCharacter`] for non-hex characters.
pub fn decode(text: &str) -> Result<Vec<u8>, CryptoError> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err(CryptoError::InvalidLength { length: bytes.len() });
    }
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for (i, pair) in bytes.chunks_exact(2).enumerate() {
        let hi = nibble(pair[0]).ok_or(CryptoError::InvalidCharacter {
            byte: pair[0],
            position: 2 * i,
        })?;
        let lo = nibble(pair[1]).ok_or(CryptoError::InvalidCharacter {
            byte: pair[1],
            position: 2 * i + 1,
        })?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

fn nibble(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_bytes() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn empty() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn uppercase_accepted() {
        assert_eq!(decode("DEADBEEF").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn odd_length_rejected() {
        assert_eq!(decode("abc"), Err(CryptoError::InvalidLength { length: 3 }));
    }

    #[test]
    fn invalid_character_position_reported() {
        assert_eq!(
            decode("ag"),
            Err(CryptoError::InvalidCharacter { byte: b'g', position: 1 })
        );
    }
}
