//! Error type shared by the codecs in this crate.

use std::error::Error;
use std::fmt;

/// Errors produced by the encoding/decoding routines in `pe-crypto`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// The input contained a byte that is not valid for the codec.
    InvalidCharacter {
        /// Offending byte value.
        byte: u8,
        /// Byte offset of the offending character in the input.
        position: usize,
    },
    /// The input length is not acceptable for the codec (for example, a
    /// Base32 string whose length is not a valid padded quantum, or a hex
    /// string of odd length).
    InvalidLength {
        /// Length that was observed.
        length: usize,
    },
    /// Padding characters appeared in an invalid position or quantity.
    InvalidPadding,
    /// A key of unsupported size was supplied to a cipher.
    InvalidKeyLength {
        /// Length that was observed, in bytes.
        length: usize,
    },
    /// Decoded bytes were not valid UTF-8.
    InvalidUtf8 {
        /// Byte offset where the UTF-8 validation failed.
        position: usize,
    },
    /// An authenticated unwrap/open recovered an integrity check value
    /// that does not match: wrong key, or tampered ciphertext.
    IntegrityCheckFailed,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidCharacter { byte, position } => {
                write!(f, "invalid character {byte:#04x} at position {position}")
            }
            CryptoError::InvalidLength { length } => {
                write!(f, "invalid input length {length}")
            }
            CryptoError::InvalidPadding => write!(f, "invalid padding"),
            CryptoError::InvalidKeyLength { length } => {
                write!(f, "invalid key length {length} bytes")
            }
            CryptoError::InvalidUtf8 { position } => {
                write!(f, "invalid UTF-8 at byte {position}")
            }
            CryptoError::IntegrityCheckFailed => write!(f, "integrity check failed"),
        }
    }
}

impl Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = CryptoError::InvalidCharacter { byte: 0x21, position: 3 };
        assert_eq!(err.to_string(), "invalid character 0x21 at position 3");
        let err = CryptoError::InvalidLength { length: 7 };
        assert_eq!(err.to_string(), "invalid input length 7");
        let err = CryptoError::InvalidKeyLength { length: 5 };
        assert_eq!(err.to_string(), "invalid key length 5 bytes");
        assert_eq!(CryptoError::InvalidPadding.to_string(), "invalid padding");
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<CryptoError>();
    }
}
