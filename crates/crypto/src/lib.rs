//! From-scratch cryptographic primitives for the private-editing system.
//!
//! The paper ("Private Editing Using Untrusted Cloud Services", Huang &
//! Evans, 2011) builds its incremental encryption schemes on top of a block
//! cipher (AES, via the Stanford JavaScript library), a password-based key
//! derivation step, and Base32 text encoding so that ciphertext can be
//! stored in a plain-text document field. This crate provides those
//! substrates, implemented from scratch and validated against the standard
//! test vectors:
//!
//! * [`aes`] — AES-128 / AES-256 block cipher (FIPS-197),
//! * [`sha256`] — SHA-256 hash (FIPS-180-4),
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104 / RFC 4231),
//! * [`pbkdf2`] — PBKDF2-HMAC-SHA-256 password-based key derivation
//!   (RFC 2898),
//! * [`hkdf`] — HKDF-SHA-256 subkey derivation (RFC 5869),
//! * [`drbg`] — a deterministic AES-CTR random generator and the
//!   [`NonceSource`] abstraction used everywhere nonces are needed,
//! * [`kw`] — RFC 3394 AES Key Wrap, used by the multi-tenant layer to
//!   wrap per-document data keys under per-user key-encryption keys,
//! * [`base32`] — RFC 4648 Base32 text encoding,
//! * [`zeroize`] — best-effort wiping of secret material,
//! * [`hex`] — hexadecimal encoding,
//! * [`form`] — percent-encoding and `application/x-www-form-urlencoded`
//!   codecs used by the simulated wire protocol.
//!
//! # Backends
//!
//! AES dispatches over three byte-identical backends, selected once per
//! cipher construction ([`aes::AesBackend::select`]): hardware AES-NI
//! when CPUID reports it, the software T-table path otherwise, and the
//! byte-oriented scalar reference. `PE_CRYPTO_FORCE_BACKEND={scalar,
//! table,aesni}` pins the choice for tests and benchmarks.
//!
//! # Security note
//!
//! These implementations favour clarity and correctness over side-channel
//! resistance (table-based AES is not constant-time; AES-NI is). They are
//! research reproductions, not production cryptography.
//!
//! # Example
//!
//! ```
//! use pe_crypto::aes::Aes128;
//! use pe_crypto::BlockCipher;
//!
//! let key = [0u8; 16];
//! let cipher = Aes128::new(&key);
//! let mut block = *b"sixteen byte msg";
//! let original = block;
//! cipher.encrypt_block(&mut block);
//! assert_ne!(block, original);
//! cipher.decrypt_block(&mut block);
//! assert_eq!(block, original);
//! ```

// `deny` rather than `forbid`: the AES-NI module carries the one scoped
// allow in the crate, with per-call SAFETY comments (see `aesni`).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
pub(crate) mod aesni;
pub mod base32;
pub mod drbg;
pub mod error;
pub mod form;
pub mod hex;
pub mod hkdf;
pub mod hmac;
pub mod kw;
pub mod pbkdf2;
pub mod sha256;
pub mod zeroize;

pub use aes::{Aes128, Aes256, AesBackend};
pub use drbg::{CtrDrbg, NonceSource, SystemRandom};
pub use error::CryptoError;

/// A 128-bit block cipher usable by the incremental encryption modes.
///
/// Implemented by [`Aes128`] and [`Aes256`]. The trait is deliberately
/// narrow: the incremental schemes only ever need in-place single-block
/// encryption and decryption of 16-byte blocks.
pub trait BlockCipher: Send + Sync {
    /// Block width in bytes. Always 16 for the provided AES ciphers.
    const BLOCK_BYTES: usize = 16;

    /// Encrypts one 16-byte block in place.
    fn encrypt_block(&self, block: &mut [u8; 16]);

    /// Decrypts one 16-byte block in place.
    fn decrypt_block(&self, block: &mut [u8; 16]);

    /// Encrypts every block of a slice in place.
    ///
    /// The provided implementation is a plain loop; it exists so batch
    /// callers (full-document seal/open) have a single entry point that a
    /// cipher with hardware or vectorized multi-block support could
    /// override.
    fn encrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        for block in blocks {
            self.encrypt_block(block);
        }
    }

    /// Decrypts every block of a slice in place. See
    /// [`encrypt_blocks`](Self::encrypt_blocks).
    fn decrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        for block in blocks {
            self.decrypt_block(block);
        }
    }
}
