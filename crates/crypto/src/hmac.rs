//! HMAC-SHA-256 message authentication (RFC 2104).
//!
//! Used by [`crate::pbkdf2`] and available to integrity-layer consumers.
//!
//! # Example
//!
//! ```
//! use pe_crypto::hmac::hmac_sha256;
//!
//! let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
//! assert_eq!(
//!     pe_crypto::hex::encode(&tag),
//!     "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8"
//! );
//! ```

use crate::sha256::Sha256;

const BLOCK_LEN: usize = 64;

/// Streaming HMAC-SHA-256.
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    /// Key XORed with the opad, kept to finish the outer hash.
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates an HMAC instance for `key`. Keys longer than the SHA-256
    /// block size are first hashed, per RFC 2104.
    pub fn new(key: &[u8]) -> HmacSha256 {
        let mut padded = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = Sha256::digest(key);
            padded[..32].copy_from_slice(&digest);
        } else {
            padded[..key.len()].copy_from_slice(key);
        }
        let mut ipad_key = [0u8; BLOCK_LEN];
        let mut opad_key = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad_key[i] = padded[i] ^ 0x36;
            opad_key[i] = padded[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad_key);
        HmacSha256 { inner, opad_key }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produces the 32-byte authentication tag.
    pub fn finalize(self) -> [u8; 32] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// One-shot HMAC-SHA-256.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Constant-time comparison of two byte strings.
///
/// Returns `true` only when `a` and `b` have equal length and contents.
/// Used when verifying integrity tags so that the comparison time does not
/// leak the position of the first mismatching byte.
pub fn verify_tags(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    /// RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex::encode(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    /// RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex::encode(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    /// RFC 4231 test case 3 (0xaa key, 0xdd data).
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            hex::encode(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    /// RFC 4231 test case 6: key larger than the block size.
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            hex::encode(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let key = b"some key";
        let msg = b"a message split across several updates";
        let mut mac = HmacSha256::new(key);
        for chunk in msg.chunks(7) {
            mac.update(chunk);
        }
        assert_eq!(mac.finalize(), hmac_sha256(key, msg));
    }

    #[test]
    fn verify_tags_behaviour() {
        assert!(verify_tags(b"abc", b"abc"));
        assert!(!verify_tags(b"abc", b"abd"));
        assert!(!verify_tags(b"abc", b"abcd"));
        assert!(verify_tags(b"", b""));
    }
}
