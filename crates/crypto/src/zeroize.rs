//! Best-effort wiping of secret material.
//!
//! Rust gives no hard guarantee that a plain `for b in buf { *b = 0 }`
//! survives dead-store elimination when the buffer is about to be freed.
//! [`wipe`] writes the zeros and then routes the buffer through
//! [`std::hint::black_box`] plus a compiler fence, which defeats the
//! elimination on every compiler we target without reaching for `unsafe`
//! volatile writes. This is *best-effort* hygiene — it shortens the
//! lifetime of passwords and keys in process memory; it is not a defense
//! against an attacker who can already read the live process.

use std::sync::atomic::{compiler_fence, Ordering};

/// Overwrites `buf` with zeros and discourages the compiler from
/// optimizing the store away.
pub fn wipe(buf: &mut [u8]) {
    for b in buf.iter_mut() {
        *b = 0;
    }
    // An opaque observation of the zeroed bytes: the optimizer must assume
    // `black_box` reads them, so the stores above cannot be elided.
    std::hint::black_box(&*buf);
    compiler_fence(Ordering::SeqCst);
}

/// A `String` wrapper that wipes its bytes on drop.
///
/// Used by the extension keyring so registered passwords do not linger in
/// freed heap memory for the rest of the process lifetime.
#[derive(Default)]
pub struct SecretString(String);

impl SecretString {
    /// Takes ownership of `value`; the backing bytes are wiped when the
    /// wrapper is dropped.
    ///
    /// Note the caller's original copy (if any) is the caller's problem —
    /// pass owned data, not a fresh clone of something kept elsewhere.
    pub fn new(value: String) -> SecretString {
        SecretString(value)
    }

    /// Read access to the secret.
    pub fn expose(&self) -> &str {
        &self.0
    }
}

impl From<&str> for SecretString {
    fn from(value: &str) -> SecretString {
        SecretString(value.to_string())
    }
}

impl Drop for SecretString {
    fn drop(&mut self) {
        // SAFETY-free wipe: take the buffer apart as bytes. `as_mut_vec`
        // is unsafe, so instead replace the string and wipe the extracted
        // byte vector.
        let mut bytes = std::mem::take(&mut self.0).into_bytes();
        wipe(&mut bytes);
    }
}

impl std::fmt::Debug for SecretString {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the secret itself.
        write!(f, "SecretString({} bytes)", self.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wipe_zeroes_every_byte() {
        let mut buf = [0xAAu8; 64];
        wipe(&mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn secret_string_exposes_and_hides() {
        let secret = SecretString::from("hunter2");
        assert_eq!(secret.expose(), "hunter2");
        assert!(!format!("{secret:?}").contains("hunter2"));
    }
}
