//! Random number sources for nonce generation.
//!
//! Every ciphertext block in the paper's schemes carries fresh random
//! nonces, so the encryption layer is parameterized over a [`NonceSource`].
//! Two implementations are provided:
//!
//! * [`SystemRandom`] — backed by the operating system via `rand`, for
//!   real use;
//! * [`CtrDrbg`] — a deterministic AES-128-CTR generator seeded
//!   explicitly, so experiments and property tests are reproducible
//!   bit-for-bit.
//!
//! # Example
//!
//! ```
//! use pe_crypto::drbg::{CtrDrbg, NonceSource};
//!
//! let mut a = CtrDrbg::from_seed(42);
//! let mut b = CtrDrbg::from_seed(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

use rand::Rng as _;

use crate::aes::Aes128;
use crate::BlockCipher;

/// A source of cryptographic-quality (or reproducibly pseudo-random)
/// bytes used for nonces and padding.
pub trait NonceSource {
    /// Fills `buf` with random bytes.
    fn fill_bytes(&mut self, buf: &mut [u8]);

    /// Returns a uniformly random `u32`.
    fn next_u32(&mut self) -> u32 {
        let mut buf = [0u8; 4];
        self.fill_bytes(&mut buf);
        u32::from_le_bytes(buf)
    }

    /// Returns a uniformly random `u64`.
    fn next_u64(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        self.fill_bytes(&mut buf);
        u64::from_le_bytes(buf)
    }

    /// Returns a uniformly random value in `0..bound`.
    ///
    /// Uses rejection sampling, so the result is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection zone: the largest multiple of `bound` that fits in u64.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

impl<T: NonceSource + ?Sized> NonceSource for Box<T> {
    fn fill_bytes(&mut self, buf: &mut [u8]) {
        (**self).fill_bytes(buf);
    }
}

impl<T: NonceSource + ?Sized> NonceSource for &mut T {
    fn fill_bytes(&mut self, buf: &mut [u8]) {
        (**self).fill_bytes(buf);
    }
}

/// Operating-system randomness via the `rand` crate's thread-local
/// generator.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemRandom;

impl SystemRandom {
    /// Creates a system randomness handle.
    pub fn new() -> SystemRandom {
        SystemRandom
    }
}

impl NonceSource for SystemRandom {
    fn fill_bytes(&mut self, buf: &mut [u8]) {
        rand::rng().fill_bytes(buf);
    }
}

/// Deterministic AES-128-CTR generator.
///
/// The generator encrypts an incrementing 128-bit counter under a key
/// derived from the seed; output blocks are the resulting keystream. This
/// is the classic CTR-DRBG construction without reseeding — adequate for
/// reproducible experiments, and indistinguishable from random assuming
/// AES is a PRP.
pub struct CtrDrbg {
    cipher: Aes128,
    counter: u128,
    /// Unused bytes from the most recent keystream block.
    pending: [u8; 16],
    pending_len: usize,
}

impl std::fmt::Debug for CtrDrbg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CtrDrbg").field("counter", &self.counter).finish_non_exhaustive()
    }
}

impl CtrDrbg {
    /// Creates a generator from a full 16-byte key.
    pub fn new(key: [u8; 16]) -> CtrDrbg {
        CtrDrbg { cipher: Aes128::new(&key), counter: 0, pending: [0u8; 16], pending_len: 0 }
    }

    /// Creates a generator from a small integer seed (convenient in tests
    /// and benchmark harnesses).
    pub fn from_seed(seed: u64) -> CtrDrbg {
        let mut key = [0u8; 16];
        key[..8].copy_from_slice(&seed.to_le_bytes());
        key[8..].copy_from_slice(&seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).to_le_bytes());
        CtrDrbg::new(key)
    }

    fn refill(&mut self) {
        let mut block = self.counter.to_le_bytes();
        self.counter = self.counter.wrapping_add(1);
        self.cipher.encrypt_block(&mut block);
        self.pending = block;
        self.pending_len = 16;
    }
}

impl NonceSource for CtrDrbg {
    fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut filled = 0;
        while filled < buf.len() {
            // Whole keystream blocks go straight into the output,
            // encrypted in batches — byte-for-byte the same stream the
            // block-at-a-time path below produces.
            if self.pending_len == 0 && buf.len() - filled >= 16 {
                const BULK: usize = 32;
                let mut counters = [[0u8; 16]; BULK];
                let whole = ((buf.len() - filled) / 16).min(BULK);
                for counter in counters.iter_mut().take(whole) {
                    *counter = self.counter.to_le_bytes();
                    self.counter = self.counter.wrapping_add(1);
                }
                self.cipher.encrypt_blocks(&mut counters[..whole]);
                for counter in counters.iter().take(whole) {
                    buf[filled..filled + 16].copy_from_slice(counter);
                    filled += 16;
                }
                continue;
            }
            if self.pending_len == 0 {
                self.refill();
            }
            let take = (buf.len() - filled).min(self.pending_len);
            let start = 16 - self.pending_len;
            buf[filled..filled + take].copy_from_slice(&self.pending[start..start + take]);
            self.pending_len -= take;
            filled += take;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = CtrDrbg::from_seed(7);
        let mut b = CtrDrbg::from_seed(7);
        let mut buf_a = [0u8; 100];
        let mut buf_b = [0u8; 100];
        a.fill_bytes(&mut buf_a);
        b.fill_bytes(&mut buf_b);
        assert_eq!(buf_a, buf_b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = CtrDrbg::from_seed(1);
        let mut b = CtrDrbg::from_seed(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chunked_reads_match_bulk_read() {
        let mut bulk = CtrDrbg::from_seed(99);
        let mut chunked = CtrDrbg::from_seed(99);
        let mut big = [0u8; 64];
        bulk.fill_bytes(&mut big);
        let mut pieces = Vec::new();
        for size in [1usize, 3, 16, 7, 20, 17] {
            let mut buf = vec![0u8; size];
            chunked.fill_bytes(&mut buf);
            pieces.extend_from_slice(&buf);
        }
        assert_eq!(pieces, big);
    }

    #[test]
    fn next_below_is_in_range() {
        let mut rng = CtrDrbg::from_seed(3);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..50 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut rng = CtrDrbg::from_seed(4);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.next_below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        CtrDrbg::from_seed(0).next_below(0);
    }

    #[test]
    fn system_random_produces_distinct_values() {
        let mut rng = SystemRandom::new();
        // Not a statistical test, just a smoke check that bytes vary.
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn output_is_not_obviously_patterned() {
        let mut rng = CtrDrbg::from_seed(123);
        let mut buf = [0u8; 4096];
        rng.fill_bytes(&mut buf);
        let ones: u32 = buf.iter().map(|b| b.count_ones()).sum();
        let total_bits = buf.len() as u32 * 8;
        // Expect roughly half the bits set; allow a generous ±5 % margin.
        assert!(ones > total_bits * 45 / 100 && ones < total_bits * 55 / 100);
    }
}
