//! Hardware AES via the x86-64 AES-NI instruction set.
//!
//! One `aesenc` retires a full AES round, so a 10-round AES-128 block
//! costs ~10 cycles of latency — against the ~160 table loads of the
//! software path — and the units are pipelined: independent blocks issue
//! back-to-back. The bulk entry points therefore process eight blocks per
//! loop iteration so the round instructions of all lanes are in flight at
//! once, which is where the gigabytes-per-second throughput comes from.
//!
//! Key expansion uses `aeskeygenassist` (FIPS-197 §5.2 with the SubWord /
//! RotWord / Rcon step done in hardware); decryption round keys apply
//! `aesimc` (InvMixColumns) to the inner encryption round keys, exactly
//! the equivalent inverse cipher the software paths use (§5.3.5).
//!
//! # Safety
//!
//! This is the only module in `pe-crypto` that uses `unsafe` (the crate
//! is `#![deny(unsafe_code)]`; this module carries a scoped allow). The
//! contract is narrow and enforced at one spot: [`Schedule::expand`] is
//! the sole constructor and asserts [`supported`] — i.e. CPUID reports
//! the `aes` feature — before touching any intrinsic. Every other unsafe
//! function takes a [`Schedule`], and a `Schedule` existing proves the
//! check passed (CPU features do not vanish at runtime). All loads and
//! stores use the unaligned `loadu`/`storeu` intrinsics, so no alignment
//! obligations exist.
//!
//! Correctness is pinned by the same FIPS-197 / SP 800-38A KATs as the
//! other backends plus cross-backend ciphertext-equality proptests (see
//! `tests/backend_matrix.rs`).

use core::arch::x86_64::{
    __m128i, _mm_aesdec_si128, _mm_aesdeclast_si128, _mm_aesenc_si128, _mm_aesenclast_si128,
    _mm_aesimc_si128, _mm_aeskeygenassist_si128, _mm_loadu_si128, _mm_setzero_si128,
    _mm_shuffle_epi32, _mm_slli_si128, _mm_storeu_si128, _mm_xor_si128,
};

/// Round-key capacity (AES-256: 15 round keys).
const MAX_ROUND_KEYS: usize = 15;

/// Blocks processed per bulk-loop iteration. AES-NI `aesenc` has a few
/// cycles of latency but single-cycle throughput, so eight independent
/// chains keep the unit saturated.
const LANES: usize = 8;

/// Whether this CPU executes the AES-NI instructions.
#[inline]
pub(crate) fn supported() -> bool {
    std::arch::is_x86_feature_detected!("aes")
}

/// Expanded AES-NI round keys for both directions.
///
/// Keys are stored as plain byte arrays (re-loaded with `loadu` at use)
/// so the struct stays `Clone`/`Send`/`Sync` without alignment games; the
/// bulk entry points hoist the loads out of their block loops.
#[derive(Clone)]
pub(crate) struct Schedule {
    rounds: usize,
    enc: [[u8; 16]; MAX_ROUND_KEYS],
    dec: [[u8; 16]; MAX_ROUND_KEYS],
}

impl Schedule {
    /// Expands `key` (16 or 32 bytes) on the hardware key-schedule path.
    ///
    /// # Panics
    ///
    /// Panics if the CPU lacks AES-NI — callers are expected to consult
    /// [`supported`] first (backend selection does).
    pub(crate) fn expand(key: &[u8]) -> Schedule {
        assert!(supported(), "AES-NI schedule built without CPUID support");
        let rounds = match key.len() {
            16 => 10,
            32 => 14,
            other => unreachable!("AES keys are 16 or 32 bytes, got {other}"),
        };
        // SAFETY: `supported()` just confirmed the `aes` (and baseline
        // `sse2`) instructions exist on this CPU.
        let enc = unsafe {
            if rounds == 10 {
                expand128(key.try_into().expect("16-byte key"))
            } else {
                expand256(key.try_into().expect("32-byte key"))
            }
        };
        // SAFETY: as above; `enc` holds `rounds + 1` valid round keys.
        let dec = unsafe { invert_schedule(&enc, rounds) };
        Schedule { rounds, enc, dec }
    }

    /// Encrypts one block in place.
    #[inline]
    pub(crate) fn encrypt_block(&self, block: &mut [u8; 16]) {
        // SAFETY: a `Schedule` can only be built via `expand`, which
        // asserted AES-NI support.
        unsafe { encrypt_one(self, block) }
    }

    /// Decrypts one block in place.
    #[inline]
    pub(crate) fn decrypt_block(&self, block: &mut [u8; 16]) {
        // SAFETY: as in `encrypt_block`.
        unsafe { decrypt_one(self, block) }
    }

    /// Encrypts every block of `blocks` in place, [`LANES`] at a time.
    #[inline]
    pub(crate) fn encrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        // SAFETY: as in `encrypt_block`.
        unsafe { encrypt_many(self, blocks) }
    }

    /// Decrypts every block of `blocks` in place, [`LANES`] at a time.
    #[inline]
    pub(crate) fn decrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        // SAFETY: as in `encrypt_block`.
        unsafe { decrypt_many(self, blocks) }
    }
}

impl std::fmt::Debug for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Schedule").field("rounds", &self.rounds).finish_non_exhaustive()
    }
}

/// Finishes one AES-128 key-schedule round: `assist` carries
/// `SubWord(RotWord(w)) ^ Rcon` in its high word (what
/// `aeskeygenassist` computes); broadcast it and fold in the running
/// prefix XOR of the previous round key's words.
#[inline]
#[target_feature(enable = "aes")]
unsafe fn mix_assist_ff(mut key: __m128i, assist: __m128i) -> __m128i {
    // Register-only intrinsics: safe to call once the enclosing
    // target-feature context establishes `aes`.
    let t = _mm_shuffle_epi32::<0xff>(assist);
    key = _mm_xor_si128(key, _mm_slli_si128::<4>(key));
    key = _mm_xor_si128(key, _mm_slli_si128::<4>(key));
    key = _mm_xor_si128(key, _mm_slli_si128::<4>(key));
    _mm_xor_si128(key, t)
}

/// The AES-256 even-step variant: SubWord without RotWord/Rcon, taken
/// from lane 2 of the assist result (shuffle 0xaa).
#[inline]
#[target_feature(enable = "aes")]
unsafe fn mix_assist_aa(mut key: __m128i, assist: __m128i) -> __m128i {
    // Register-only intrinsics: safe to call once the enclosing
    // target-feature context establishes `aes`.
    let t = _mm_shuffle_epi32::<0xaa>(assist);
    key = _mm_xor_si128(key, _mm_slli_si128::<4>(key));
    key = _mm_xor_si128(key, _mm_slli_si128::<4>(key));
    key = _mm_xor_si128(key, _mm_slli_si128::<4>(key));
    _mm_xor_si128(key, t)
}

/// AES-128 key expansion: 11 round keys via `aeskeygenassist`.
#[target_feature(enable = "aes")]
unsafe fn expand128(key: &[u8; 16]) -> [[u8; 16]; MAX_ROUND_KEYS] {
    let mut out = [[0u8; 16]; MAX_ROUND_KEYS];
    // SAFETY: unaligned intrinsics on in-bounds pointers; `aes` enabled.
    unsafe {
        let mut k = _mm_loadu_si128(key.as_ptr().cast());
        _mm_storeu_si128(out[0].as_mut_ptr().cast(), k);
        // The Rcon immediates are x^(i-1) in GF(2^8): 01,02,04,…,36.
        macro_rules! round {
            ($i:literal, $rcon:literal) => {
                k = mix_assist_ff(k, _mm_aeskeygenassist_si128::<$rcon>(k));
                _mm_storeu_si128(out[$i].as_mut_ptr().cast(), k);
            };
        }
        round!(1, 0x01);
        round!(2, 0x02);
        round!(3, 0x04);
        round!(4, 0x08);
        round!(5, 0x10);
        round!(6, 0x20);
        round!(7, 0x40);
        round!(8, 0x80);
        round!(9, 0x1b);
        round!(10, 0x36);
    }
    out
}

/// AES-256 key expansion: 15 round keys, alternating the Rcon step with
/// the SubWord-only step.
#[target_feature(enable = "aes")]
unsafe fn expand256(key: &[u8; 32]) -> [[u8; 16]; MAX_ROUND_KEYS] {
    let mut out = [[0u8; 16]; MAX_ROUND_KEYS];
    // SAFETY: unaligned intrinsics on in-bounds pointers; `aes` enabled.
    unsafe {
        let mut even = _mm_loadu_si128(key.as_ptr().cast());
        let mut odd = _mm_loadu_si128(key.as_ptr().add(16).cast());
        _mm_storeu_si128(out[0].as_mut_ptr().cast(), even);
        _mm_storeu_si128(out[1].as_mut_ptr().cast(), odd);
        macro_rules! pair {
            ($i:literal, $rcon:literal) => {
                even = mix_assist_ff(even, _mm_aeskeygenassist_si128::<$rcon>(odd));
                _mm_storeu_si128(out[$i].as_mut_ptr().cast(), even);
                odd = mix_assist_aa(odd, _mm_aeskeygenassist_si128::<0x00>(even));
                _mm_storeu_si128(out[$i + 1].as_mut_ptr().cast(), odd);
            };
        }
        pair!(2, 0x01);
        pair!(4, 0x02);
        pair!(6, 0x04);
        pair!(8, 0x08);
        pair!(10, 0x10);
        pair!(12, 0x20);
        // The final Rcon step fills round key 14; the schedule has no
        // odd half past it (15 round keys total).
        even = mix_assist_ff(even, _mm_aeskeygenassist_si128::<0x40>(odd));
        _mm_storeu_si128(out[14].as_mut_ptr().cast(), even);
    }
    out
}

/// Decryption round keys for the equivalent inverse cipher: reverse
/// round order with `aesimc` (InvMixColumns) on the inner rounds.
#[target_feature(enable = "aes")]
unsafe fn invert_schedule(
    enc: &[[u8; 16]; MAX_ROUND_KEYS],
    rounds: usize,
) -> [[u8; 16]; MAX_ROUND_KEYS] {
    let mut dec = [[0u8; 16]; MAX_ROUND_KEYS];
    dec[0] = enc[rounds];
    dec[rounds] = enc[0];
    // SAFETY: unaligned intrinsics on in-bounds pointers; `aes` enabled.
    unsafe {
        for r in 1..rounds {
            let k = _mm_loadu_si128(enc[rounds - r].as_ptr().cast());
            _mm_storeu_si128(dec[r].as_mut_ptr().cast(), _mm_aesimc_si128(k));
        }
    }
    dec
}

/// Loads the round keys into registers once per bulk call.
#[inline]
#[target_feature(enable = "aes")]
unsafe fn load_keys(keys: &[[u8; 16]; MAX_ROUND_KEYS]) -> [__m128i; MAX_ROUND_KEYS] {
    // SAFETY: in-bounds unaligned loads; `sse2` is x86-64 baseline.
    unsafe {
        let mut rk = [_mm_setzero_si128(); MAX_ROUND_KEYS];
        for (slot, key) in rk.iter_mut().zip(keys.iter()) {
            *slot = _mm_loadu_si128(key.as_ptr().cast());
        }
        rk
    }
}

#[target_feature(enable = "aes")]
unsafe fn encrypt_one(sched: &Schedule, block: &mut [u8; 16]) {
    // SAFETY: unaligned load/store of one in-bounds 16-byte block.
    unsafe {
        let rk = load_keys(&sched.enc);
        let mut b = _mm_loadu_si128(block.as_ptr().cast());
        b = _mm_xor_si128(b, rk[0]);
        for key in rk.iter().take(sched.rounds).skip(1) {
            b = _mm_aesenc_si128(b, *key);
        }
        b = _mm_aesenclast_si128(b, rk[sched.rounds]);
        _mm_storeu_si128(block.as_mut_ptr().cast(), b);
    }
}

#[target_feature(enable = "aes")]
unsafe fn decrypt_one(sched: &Schedule, block: &mut [u8; 16]) {
    // SAFETY: unaligned load/store of one in-bounds 16-byte block.
    unsafe {
        let rk = load_keys(&sched.dec);
        let mut b = _mm_loadu_si128(block.as_ptr().cast());
        b = _mm_xor_si128(b, rk[0]);
        for key in rk.iter().take(sched.rounds).skip(1) {
            b = _mm_aesdec_si128(b, *key);
        }
        b = _mm_aesdeclast_si128(b, rk[sched.rounds]);
        _mm_storeu_si128(block.as_mut_ptr().cast(), b);
    }
}

/// Expands to the shared shape of the two bulk loops: load [`LANES`]
/// blocks, whiten, run the pipelined round instruction lane-by-lane so
/// all chains stay independent, finish with the `last` instruction, and
/// handle the remainder one block at a time.
macro_rules! bulk {
    ($sched:expr, $blocks:expr, $keys:expr, $round:ident, $last:ident, $single:ident) => {{
        let sched = $sched;
        let blocks = $blocks;
        // SAFETY (macro expands only inside `aes` target-feature fns):
        // every load/store is an unaligned intrinsic on an in-bounds
        // 16-byte block.
        unsafe {
            let rk = load_keys(&$keys);
            let mut groups = blocks.chunks_exact_mut(LANES);
            for group in &mut groups {
                let mut lanes = [_mm_setzero_si128(); LANES];
                for (lane, block) in lanes.iter_mut().zip(group.iter()) {
                    *lane = _mm_xor_si128(_mm_loadu_si128(block.as_ptr().cast()), rk[0]);
                }
                for key in rk.iter().take(sched.rounds).skip(1) {
                    for lane in lanes.iter_mut() {
                        *lane = $round(*lane, *key);
                    }
                }
                for (lane, block) in lanes.iter_mut().zip(group.iter_mut()) {
                    *lane = $last(*lane, rk[sched.rounds]);
                    _mm_storeu_si128(block.as_mut_ptr().cast(), *lane);
                }
            }
            for block in groups.into_remainder() {
                $single(sched, block);
            }
        }
    }};
}

#[target_feature(enable = "aes")]
unsafe fn encrypt_many(sched: &Schedule, blocks: &mut [[u8; 16]]) {
    bulk!(sched, blocks, sched.enc, _mm_aesenc_si128, _mm_aesenclast_si128, encrypt_one)
}

#[target_feature(enable = "aes")]
unsafe fn decrypt_many(sched: &Schedule, blocks: &mut [[u8; 16]]) {
    bulk!(sched, blocks, sched.dec, _mm_aesdec_si128, _mm_aesdeclast_si128, decrypt_one)
}
