//! RFC 3394 AES Key Wrap.
//!
//! The multi-tenant layer stores one random data key per document and
//! wraps it once per authorized editor under that editor's key-encryption
//! key (KEK). AES Key Wrap is the standard deterministic construction for
//! exactly this job: it needs no nonce (so a wrapped record is a pure
//! function of KEK and key data, convenient for idempotent directory
//! records), expands the payload by only 8 bytes, and its integrity check
//! rejects both a wrong KEK and any ciphertext tampering.
//!
//! The implementation follows RFC 3394 §2.2.1/§2.2.2 (the index-based
//! variant) over any [`BlockCipher`], and is validated against the RFC §4
//! known-answer vectors.
//!
//! # Example
//!
//! ```
//! use pe_crypto::aes::Aes128;
//! use pe_crypto::kw;
//!
//! let kek = Aes128::new(&[7u8; 16]);
//! let data_key = [42u8; 32];
//! let wrapped = kw::wrap(&kek, &data_key)?;
//! assert_eq!(wrapped.len(), data_key.len() + 8);
//! assert_eq!(kw::unwrap(&kek, &wrapped)?, data_key);
//! # Ok::<(), pe_crypto::CryptoError>(())
//! ```

use crate::error::CryptoError;
use crate::BlockCipher;

/// The fixed initial value from RFC 3394 §2.2.3.1; the unwrap side
/// recovering anything else proves the KEK or ciphertext is wrong.
const IV: u64 = 0xA6A6_A6A6_A6A6_A6A6;

/// Smallest wrappable payload: two 64-bit halves (RFC 3394 requires
/// `n >= 2`).
pub const MIN_KEY_BYTES: usize = 16;

fn check_key_len(len: usize) -> Result<usize, CryptoError> {
    if len < MIN_KEY_BYTES || !len.is_multiple_of(8) {
        return Err(CryptoError::InvalidLength { length: len });
    }
    Ok(len / 8)
}

/// Wraps `key_data` under `kek` per RFC 3394 §2.2.1.
///
/// `key_data` must be a multiple of 8 bytes and at least
/// [`MIN_KEY_BYTES`]; the output is 8 bytes longer than the input.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidLength`] for an unacceptable input
/// length.
pub fn wrap<C: BlockCipher>(kek: &C, key_data: &[u8]) -> Result<Vec<u8>, CryptoError> {
    let n = check_key_len(key_data.len())?;
    let mut a = IV;
    let mut r: Vec<u64> = key_data
        .chunks_exact(8)
        .map(|c| u64::from_be_bytes(c.try_into().expect("chunks_exact(8)")))
        .collect();
    let mut block = [0u8; 16];
    for j in 0..6u64 {
        for (i, ri) in r.iter_mut().enumerate() {
            block[..8].copy_from_slice(&a.to_be_bytes());
            block[8..].copy_from_slice(&ri.to_be_bytes());
            kek.encrypt_block(&mut block);
            let t = (n as u64) * j + (i as u64 + 1);
            a = u64::from_be_bytes(block[..8].try_into().expect("8-byte half")) ^ t;
            *ri = u64::from_be_bytes(block[8..].try_into().expect("8-byte half"));
        }
    }
    let mut out = Vec::with_capacity(8 * (n + 1));
    out.extend_from_slice(&a.to_be_bytes());
    for ri in &r {
        out.extend_from_slice(&ri.to_be_bytes());
    }
    Ok(out)
}

/// Unwraps `wrapped` under `kek` per RFC 3394 §2.2.2, verifying the
/// integrity check value.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidLength`] for an unacceptable input
/// length and [`CryptoError::IntegrityCheckFailed`] when the recovered
/// initial value does not match — a wrong KEK, or any corruption of the
/// wrapped bytes.
pub fn unwrap<C: BlockCipher>(kek: &C, wrapped: &[u8]) -> Result<Vec<u8>, CryptoError> {
    if wrapped.len() < MIN_KEY_BYTES + 8 || !wrapped.len().is_multiple_of(8) {
        return Err(CryptoError::InvalidLength { length: wrapped.len() });
    }
    let n = wrapped.len() / 8 - 1;
    let mut a = u64::from_be_bytes(wrapped[..8].try_into().expect("8-byte half"));
    let mut r: Vec<u64> = wrapped[8..]
        .chunks_exact(8)
        .map(|c| u64::from_be_bytes(c.try_into().expect("chunks_exact(8)")))
        .collect();
    let mut block = [0u8; 16];
    for j in (0..6u64).rev() {
        for i in (0..n).rev() {
            let t = (n as u64) * j + (i as u64 + 1);
            block[..8].copy_from_slice(&(a ^ t).to_be_bytes());
            block[8..].copy_from_slice(&r[i].to_be_bytes());
            kek.decrypt_block(&mut block);
            a = u64::from_be_bytes(block[..8].try_into().expect("8-byte half"));
            r[i] = u64::from_be_bytes(block[8..].try_into().expect("8-byte half"));
        }
    }
    if a != IV {
        return Err(CryptoError::IntegrityCheckFailed);
    }
    let mut out = Vec::with_capacity(8 * n);
    for ri in &r {
        out.extend_from_slice(&ri.to_be_bytes());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::{Aes128, Aes256};
    use crate::hex;

    fn kek128(hex_key: &str) -> Aes128 {
        let bytes = hex::decode(hex_key).unwrap();
        Aes128::new(&bytes.try_into().unwrap())
    }

    #[test]
    fn rfc3394_section_4_1_kat() {
        // 4.1 Wrap 128 bits of Key Data with a 128-bit KEK.
        let kek = kek128("000102030405060708090A0B0C0D0E0F");
        let data = hex::decode("00112233445566778899AABBCCDDEEFF").unwrap();
        let wrapped = wrap(&kek, &data).unwrap();
        assert_eq!(
            hex::encode(&wrapped).to_uppercase(),
            "1FA68B0A8112B447AEF34BD8FB5A7B829D3E862371D2CFE5"
        );
        assert_eq!(unwrap(&kek, &wrapped).unwrap(), data);
    }

    #[test]
    fn rfc3394_section_4_6_kat() {
        // 4.6 Wrap 256 bits of Key Data with a 256-bit KEK — the shape the
        // tenant layer uses for its 256-bit document data keys.
        let kek_bytes =
            hex::decode("000102030405060708090A0B0C0D0E0F101112131415161718191A1B1C1D1E1F")
                .unwrap();
        let kek = Aes256::new(&kek_bytes.try_into().unwrap());
        let data =
            hex::decode("00112233445566778899AABBCCDDEEFF000102030405060708090A0B0C0D0E0F")
                .unwrap();
        let wrapped = wrap(&kek, &data).unwrap();
        assert_eq!(
            hex::encode(&wrapped).to_uppercase(),
            "28C9F404C4B810F4CBCCB35CFB87F8263F5786E2D80ED326CBC7F0E71A99F43BFB988B9B7A02DD21"
        );
        assert_eq!(unwrap(&kek, &wrapped).unwrap(), data);
    }

    #[test]
    fn wrong_kek_fails_closed() {
        let kek = kek128("000102030405060708090A0B0C0D0E0F");
        let other = kek128("FF0102030405060708090A0B0C0D0E0F");
        let wrapped = wrap(&kek, &[9u8; 32]).unwrap();
        assert_eq!(unwrap(&other, &wrapped), Err(CryptoError::IntegrityCheckFailed));
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let kek = kek128("000102030405060708090A0B0C0D0E0F");
        let wrapped = wrap(&kek, &[0x5Au8; 32]).unwrap();
        for byte in 0..wrapped.len() {
            for bit in 0..8 {
                let mut tampered = wrapped.clone();
                tampered[byte] ^= 1 << bit;
                assert_eq!(
                    unwrap(&kek, &tampered),
                    Err(CryptoError::IntegrityCheckFailed),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn bad_lengths_rejected() {
        let kek = kek128("000102030405060708090A0B0C0D0E0F");
        for len in [0usize, 7, 8, 12, 15, 17] {
            assert!(matches!(
                wrap(&kek, &vec![0u8; len]),
                Err(CryptoError::InvalidLength { .. })
            ));
        }
        for len in [0usize, 8, 16, 23, 25] {
            assert!(matches!(
                unwrap(&kek, &vec![0u8; len]),
                Err(CryptoError::InvalidLength { .. })
            ));
        }
    }

    #[test]
    fn roundtrip_across_lengths_and_keks() {
        let kek = kek128("00112233445566778899AABBCCDDEEFF");
        for len in [16usize, 24, 32, 40, 64] {
            let data: Vec<u8> = (0..len as u8).collect();
            let wrapped = wrap(&kek, &data).unwrap();
            assert_eq!(wrapped.len(), len + 8);
            assert_eq!(unwrap(&kek, &wrapped).unwrap(), data);
        }
    }

    #[test]
    fn wrap_is_deterministic() {
        let kek = kek128("00112233445566778899AABBCCDDEEFF");
        assert_eq!(wrap(&kek, &[3u8; 32]).unwrap(), wrap(&kek, &[3u8; 32]).unwrap());
    }
}
