//! HKDF-SHA-256 (RFC 5869): extract-and-expand key derivation.
//!
//! The password-derived master secret must serve multiple purposes
//! (the AES document key, the MAC key for the IncMac integrity sidecar).
//! Deriving independent subkeys with HKDF keeps those uses
//! cryptographically separated: compromise of one subkey says nothing
//! about the others.
//!
//! # Example
//!
//! ```
//! use pe_crypto::hkdf;
//!
//! let master = [7u8; 32];
//! let mut aes_key = [0u8; 16];
//! let mut mac_key = [0u8; 32];
//! hkdf::expand(&master, b"pe.aes", &mut aes_key);
//! hkdf::expand(&master, b"pe.mac", &mut mac_key);
//! assert_ne!(&aes_key[..], &mac_key[..16], "labels separate the keys");
//! ```

use crate::hmac::{hmac_sha256, HmacSha256};

/// HKDF-Extract: condenses input keying material into a pseudorandom key.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: derives `okm.len()` bytes from a pseudorandom key and a
/// context/label (`info`).
///
/// # Panics
///
/// Panics if more than `255 * 32` bytes are requested (RFC 5869 limit).
pub fn expand(prk: &[u8], info: &[u8], okm: &mut [u8]) {
    assert!(okm.len() <= 255 * 32, "HKDF output too long");
    let mut previous: Vec<u8> = Vec::new();
    let mut counter: u8 = 1;
    let mut written = 0;
    while written < okm.len() {
        let mut mac = HmacSha256::new(prk);
        mac.update(&previous);
        mac.update(info);
        mac.update(&[counter]);
        let block = mac.finalize();
        let take = (okm.len() - written).min(32);
        okm[written..written + take].copy_from_slice(&block[..take]);
        previous = block.to_vec();
        written += take;
        counter = counter.checked_add(1).expect("length check bounds the counter");
    }
}

/// One-shot extract-then-expand.
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], okm: &mut [u8]) {
    let prk = extract(salt, ikm);
    expand(&prk, info, okm);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    /// RFC 5869 Appendix A.1 test case 1.
    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0bu8; 22];
        let salt = hex::decode("000102030405060708090a0b0c").unwrap();
        let info = hex::decode("f0f1f2f3f4f5f6f7f8f9").unwrap();
        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex::encode(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let mut okm = [0u8; 42];
        expand(&prk, &info, &mut okm);
        assert_eq!(
            hex::encode(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    /// RFC 5869 Appendix A.2 test case 2 (longer inputs/outputs).
    #[test]
    fn rfc5869_case_2() {
        let ikm: Vec<u8> = (0x00..=0x4f).collect();
        let salt: Vec<u8> = (0x60..=0xaf).collect();
        let info: Vec<u8> = (0xb0..=0xff).collect();
        let mut okm = [0u8; 82];
        derive(&salt, &ikm, &info, &mut okm);
        assert_eq!(
            hex::encode(&okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c\
             59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71\
             cc30c58179ec3e87c14c01d5c1f3434f1d87"
        );
    }

    /// RFC 5869 Appendix A.3 test case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case_3() {
        let ikm = [0x0bu8; 22];
        let mut okm = [0u8; 42];
        derive(&[], &ikm, &[], &mut okm);
        assert_eq!(
            hex::encode(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn different_labels_give_independent_keys() {
        let prk = [9u8; 32];
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        expand(&prk, b"label-a", &mut a);
        expand(&prk, b"label-b", &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn expansion_is_prefix_consistent() {
        let prk = [1u8; 32];
        let mut short = [0u8; 16];
        let mut long = [0u8; 48];
        expand(&prk, b"ctx", &mut short);
        expand(&prk, b"ctx", &mut long);
        assert_eq!(short, long[..16]);
    }

    #[test]
    #[should_panic(expected = "HKDF output too long")]
    fn oversized_output_panics() {
        let mut okm = vec![0u8; 255 * 32 + 1];
        expand(&[0u8; 32], b"", &mut okm);
    }
}
