//! AES-128 and AES-256 block ciphers (FIPS-197), T-table fast path.
//!
//! The hot implementation works on four 32-bit column words and drives
//! each round through precomputed T-tables (`SubBytes` ∘ `ShiftRows` ∘
//! `MixColumns` folded into four 256-entry `u32` tables, the classic
//! software AES layout). Decryption uses the *equivalent inverse cipher*
//! (FIPS-197 §5.3.5): inverse T-tables plus decryption round keys that are
//! precomputed once in [`Aes128::new`]/[`Aes256::new`], so the decrypt
//! path never derives anything lazily.
//!
//! All tables — including the inverse S-box — are generated at compile
//! time from the forward S-box, so the tables can never disagree with the
//! standard. Correctness is pinned three ways:
//!
//! * the FIPS-197 Appendix C and SP 800-38A known answer tests,
//! * the byte-oriented scalar implementation retained in [`reference`],
//!   which the test suite uses as an independent oracle (a proptest pins
//!   the two implementations to agree on random keys and blocks),
//! * round-trip tests over random blocks.
//!
//! The paper's prototype used the Stanford JavaScript crypto library's
//! AES; this module plays that role for the Rust reproduction, but at the
//! throughput the incremental schemes need for full-document saves.
//!
//! # Example
//!
//! ```
//! use pe_crypto::aes::Aes128;
//! use pe_crypto::BlockCipher;
//!
//! let cipher = Aes128::new(&[0u8; 16]);
//! let mut block = [0u8; 16];
//! cipher.encrypt_block(&mut block);
//! cipher.decrypt_block(&mut block);
//! assert_eq!(block, [0u8; 16]);
//! ```

use crate::BlockCipher;

/// Environment variable that pins the cipher backend (`scalar`, `table`,
/// or `aesni`), overriding CPUID-based auto-selection.
pub const FORCE_BACKEND_ENV: &str = "PE_CRYPTO_FORCE_BACKEND";

/// Which cipher engine a key schedule was built on.
///
/// Selection happens **once per cipher construction** (`Aes128::new` /
/// `Aes256::new`): [`AesBackend::select`] consults
/// [`FORCE_BACKEND_ENV`], then CPUID. All backends are byte-identical —
/// pinned by the FIPS-197 KATs and cross-backend proptests — so the
/// choice only affects speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AesBackend {
    /// Byte-oriented scalar Rijndael (the [`reference`] oracle).
    Scalar,
    /// Software T-table fast path (4×1 KiB lookup tables).
    Table,
    /// Hardware AES-NI (`aesenc`/`aesdec` x86-64 instructions).
    AesNi,
}

impl AesBackend {
    /// Stable lowercase name (`scalar` / `table` / `aesni`).
    pub fn name(self) -> &'static str {
        match self {
            AesBackend::Scalar => "scalar",
            AesBackend::Table => "table",
            AesBackend::AesNi => "aesni",
        }
    }

    /// Parses a backend name as accepted by [`FORCE_BACKEND_ENV`].
    ///
    /// Case-insensitive; surrounding whitespace and `-`/`_` separators
    /// are ignored, so `AES-NI` and `aesni` both resolve.
    pub fn parse(text: &str) -> Option<AesBackend> {
        let normalized: String = text
            .trim()
            .chars()
            .filter(|c| *c != '-' && *c != '_')
            .map(|c| c.to_ascii_lowercase())
            .collect();
        match normalized.as_str() {
            "scalar" => Some(AesBackend::Scalar),
            "table" => Some(AesBackend::Table),
            "aesni" => Some(AesBackend::AesNi),
            _ => None,
        }
    }

    /// Whether this CPU can run the AES-NI backend (x86-64 with the
    /// `aes` CPUID feature flag).
    pub fn aesni_supported() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            crate::aesni::supported()
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// The backend a fresh cipher will use: the [`FORCE_BACKEND_ENV`]
    /// override when set and valid, otherwise AES-NI when CPUID reports
    /// it, otherwise the T-table path. Forcing `aesni` on hardware
    /// without it falls back to `table` (so test matrices run everywhere);
    /// unrecognized values are ignored.
    pub fn select() -> AesBackend {
        let forced = std::env::var(FORCE_BACKEND_ENV).ok().as_deref().and_then(AesBackend::parse);
        match forced {
            Some(AesBackend::AesNi) | None => {
                if AesBackend::aesni_supported() {
                    AesBackend::AesNi
                } else {
                    AesBackend::Table
                }
            }
            Some(backend) => backend,
        }
    }
}

impl std::fmt::Display for AesBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Counts a cipher construction under `crypto.backend.<name>`, so
/// `pedit stats` shows which engine the process actually ran.
fn record_backend_metric(backend: AesBackend) {
    match backend {
        AesBackend::Scalar => pe_observe::static_counter!("crypto.backend.scalar").inc(),
        AesBackend::Table => pe_observe::static_counter!("crypto.backend.table").inc(),
        AesBackend::AesNi => pe_observe::static_counter!("crypto.backend.aesni").inc(),
    }
}

/// The AES forward substitution box (FIPS-197 Figure 7).
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab,
    0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4,
    0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71,
    0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6,
    0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb,
    0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45,
    0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44,
    0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a,
    0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25,
    0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e,
    0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1,
    0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb,
    0x16,
];

/// Inverse S-box, derived from [`SBOX`] at compile time so the two tables
/// are consistent by construction (this replaces the old lazy `OnceLock`
/// derivation that sat on the decrypt hot path).
const INV_SBOX: [u8; 256] = {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

/// Multiplication by `x` (i.e. `{02}`) in GF(2^8) modulo `x^8+x^4+x^3+x+1`.
#[inline]
const fn xtime(b: u8) -> u8 {
    (b << 1) ^ (if b & 0x80 != 0 { 0x1b } else { 0 })
}

/// General GF(2^8) multiplication (table generation and key-schedule
/// InvMixColumns only — never on the per-block path).
const fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
        i += 1;
    }
    p
}

/// Forward T-tables. `TE[0][x]` packs the MixColumns column
/// `(2·S[x], S[x], S[x], 3·S[x])` big-endian; `TE[k]` is `TE[0]` rotated
/// right by `8k` bits, so one round is 16 loads and 16 XORs.
const TE: [[u32; 256]; 4] = {
    let mut te = [[0u32; 256]; 4];
    let mut x = 0;
    while x < 256 {
        let s = SBOX[x];
        let s2 = xtime(s);
        let s3 = s2 ^ s;
        let w = ((s2 as u32) << 24) | ((s as u32) << 16) | ((s as u32) << 8) | (s3 as u32);
        te[0][x] = w;
        te[1][x] = w.rotate_right(8);
        te[2][x] = w.rotate_right(16);
        te[3][x] = w.rotate_right(24);
        x += 1;
    }
    te
};

/// Inverse T-tables. `TD[0][x]` packs the InvMixColumns column
/// `(14·Si[x], 9·Si[x], 13·Si[x], 11·Si[x])` big-endian.
const TD: [[u32; 256]; 4] = {
    let mut td = [[0u32; 256]; 4];
    let mut x = 0;
    while x < 256 {
        let s = INV_SBOX[x];
        let w = ((gmul(s, 14) as u32) << 24)
            | ((gmul(s, 9) as u32) << 16)
            | ((gmul(s, 13) as u32) << 8)
            | (gmul(s, 11) as u32);
        td[0][x] = w;
        td[1][x] = w.rotate_right(8);
        td[2][x] = w.rotate_right(16);
        td[3][x] = w.rotate_right(24);
        x += 1;
    }
    td
};

/// SubWord: the S-box applied to each byte of a word.
#[inline]
fn sub_word(w: u32) -> u32 {
    (u32::from(SBOX[(w >> 24) as usize]) << 24)
        | (u32::from(SBOX[(w >> 16) as usize & 0xff]) << 16)
        | (u32::from(SBOX[(w >> 8) as usize & 0xff]) << 8)
        | u32::from(SBOX[w as usize & 0xff])
}

/// InvMixColumns applied to one column word (key-schedule use only).
#[inline]
fn inv_mix_word(w: u32) -> u32 {
    let [a, b, c, d] = w.to_be_bytes();
    u32::from_be_bytes([
        gmul(a, 14) ^ gmul(b, 11) ^ gmul(c, 13) ^ gmul(d, 9),
        gmul(a, 9) ^ gmul(b, 14) ^ gmul(c, 11) ^ gmul(d, 13),
        gmul(a, 13) ^ gmul(b, 9) ^ gmul(c, 14) ^ gmul(d, 11),
        gmul(a, 11) ^ gmul(b, 13) ^ gmul(c, 9) ^ gmul(d, 14),
    ])
}

/// Word capacity of the largest schedule (AES-256: 4 × 15 round keys).
const MAX_SCHEDULE_WORDS: usize = 60;

/// Expanded key material for both directions.
///
/// `enc` holds the FIPS-197 §5.2 schedule as big-endian column words.
/// `dec` holds the *decryption* round keys for the equivalent inverse
/// cipher (§5.3.5): the encryption keys in reverse round order with
/// InvMixColumns applied to the inner rounds. Both are computed eagerly at
/// construction so neither direction pays a first-use cost.
#[derive(Clone)]
struct KeySchedule {
    rounds: usize,
    enc: [u32; MAX_SCHEDULE_WORDS],
    dec: [u32; MAX_SCHEDULE_WORDS],
}

impl KeySchedule {
    /// Expands `key` (16 or 32 bytes) into round keys for both directions.
    fn expand(key: &[u8], rounds: usize) -> KeySchedule {
        let nk = key.len() / 4;
        debug_assert!(nk == 4 || nk == 8);
        let total_words = 4 * (rounds + 1);
        let mut enc = [0u32; MAX_SCHEDULE_WORDS];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            enc[i] = u32::from_be_bytes(chunk.try_into().expect("4 bytes"));
        }
        let mut rcon: u8 = 0x01;
        for i in nk..total_words {
            let mut temp = enc[i - 1];
            if i % nk == 0 {
                // RotWord + SubWord + Rcon.
                temp = sub_word(temp.rotate_left(8)) ^ (u32::from(rcon) << 24);
                rcon = xtime(rcon);
            } else if nk > 6 && i % nk == 4 {
                // AES-256 extra SubWord.
                temp = sub_word(temp);
            }
            enc[i] = enc[i - nk] ^ temp;
        }
        // Decryption round keys: reverse round order, InvMixColumns on the
        // inner rounds (the equivalent inverse cipher's AddRoundKey values).
        let mut dec = [0u32; MAX_SCHEDULE_WORDS];
        for j in 0..4 {
            dec[j] = enc[4 * rounds + j];
            dec[4 * rounds + j] = enc[j];
        }
        for r in 1..rounds {
            for j in 0..4 {
                dec[4 * r + j] = inv_mix_word(enc[4 * (rounds - r) + j]);
            }
        }
        KeySchedule { rounds, enc, dec }
    }
}

/// One full T-table encryption (FIPS-197 §5.1).
fn encrypt(ks: &KeySchedule, block: &mut [u8; 16]) {
    let mut s = [0u32; 4];
    for c in 0..4 {
        s[c] = u32::from_be_bytes(block[4 * c..4 * c + 4].try_into().expect("4 bytes"))
            ^ ks.enc[c];
    }
    // One 4-word array view per round instead of four indexed loads, so
    // the round loop carries a single bounds check.
    let mut rounds = ks.enc[4..4 * ks.rounds + 4].chunks_exact(4);
    for _ in 1..ks.rounds {
        let k: &[u32; 4] = rounds.next().expect("round key").try_into().expect("4 words");
        s = [
            TE[0][(s[0] >> 24) as usize]
                ^ TE[1][(s[1] >> 16) as usize & 0xff]
                ^ TE[2][(s[2] >> 8) as usize & 0xff]
                ^ TE[3][s[3] as usize & 0xff]
                ^ k[0],
            TE[0][(s[1] >> 24) as usize]
                ^ TE[1][(s[2] >> 16) as usize & 0xff]
                ^ TE[2][(s[3] >> 8) as usize & 0xff]
                ^ TE[3][s[0] as usize & 0xff]
                ^ k[1],
            TE[0][(s[2] >> 24) as usize]
                ^ TE[1][(s[3] >> 16) as usize & 0xff]
                ^ TE[2][(s[0] >> 8) as usize & 0xff]
                ^ TE[3][s[1] as usize & 0xff]
                ^ k[2],
            TE[0][(s[3] >> 24) as usize]
                ^ TE[1][(s[0] >> 16) as usize & 0xff]
                ^ TE[2][(s[1] >> 8) as usize & 0xff]
                ^ TE[3][s[2] as usize & 0xff]
                ^ k[3],
        ];
    }
    // Final round: SubBytes + ShiftRows only (no MixColumns).
    let k: &[u32; 4] = rounds.next().expect("final key").try_into().expect("4 words");
    for c in 0..4 {
        let w = u32::from_be_bytes([
            SBOX[(s[c] >> 24) as usize],
            SBOX[(s[(c + 1) % 4] >> 16) as usize & 0xff],
            SBOX[(s[(c + 2) % 4] >> 8) as usize & 0xff],
            SBOX[s[(c + 3) % 4] as usize & 0xff],
        ]) ^ k[c];
        block[4 * c..4 * c + 4].copy_from_slice(&w.to_be_bytes());
    }
}

/// One full equivalent-inverse-cipher decryption (FIPS-197 §5.3.5).
fn decrypt(ks: &KeySchedule, block: &mut [u8; 16]) {
    let mut s = [0u32; 4];
    for c in 0..4 {
        s[c] = u32::from_be_bytes(block[4 * c..4 * c + 4].try_into().expect("4 bytes"))
            ^ ks.dec[c];
    }
    let mut rounds = ks.dec[4..4 * ks.rounds + 4].chunks_exact(4);
    for _ in 1..ks.rounds {
        let k: &[u32; 4] = rounds.next().expect("round key").try_into().expect("4 words");
        s = [
            TD[0][(s[0] >> 24) as usize]
                ^ TD[1][(s[3] >> 16) as usize & 0xff]
                ^ TD[2][(s[2] >> 8) as usize & 0xff]
                ^ TD[3][s[1] as usize & 0xff]
                ^ k[0],
            TD[0][(s[1] >> 24) as usize]
                ^ TD[1][(s[0] >> 16) as usize & 0xff]
                ^ TD[2][(s[3] >> 8) as usize & 0xff]
                ^ TD[3][s[2] as usize & 0xff]
                ^ k[1],
            TD[0][(s[2] >> 24) as usize]
                ^ TD[1][(s[1] >> 16) as usize & 0xff]
                ^ TD[2][(s[0] >> 8) as usize & 0xff]
                ^ TD[3][s[3] as usize & 0xff]
                ^ k[2],
            TD[0][(s[3] >> 24) as usize]
                ^ TD[1][(s[2] >> 16) as usize & 0xff]
                ^ TD[2][(s[1] >> 8) as usize & 0xff]
                ^ TD[3][s[0] as usize & 0xff]
                ^ k[3],
        ];
    }
    // Final round: InvSubBytes + InvShiftRows only.
    let k: &[u32; 4] = rounds.next().expect("final key").try_into().expect("4 words");
    for c in 0..4 {
        let w = u32::from_be_bytes([
            INV_SBOX[(s[c] >> 24) as usize],
            INV_SBOX[(s[(c + 3) % 4] >> 16) as usize & 0xff],
            INV_SBOX[(s[(c + 2) % 4] >> 8) as usize & 0xff],
            INV_SBOX[s[(c + 1) % 4] as usize & 0xff],
        ]) ^ k[c];
        block[4 * c..4 * c + 4].copy_from_slice(&w.to_be_bytes());
    }
}

/// Number of blocks processed together by the bulk entry points. Each
/// round's table lookups are independent across blocks, so interleaving
/// lets the loads of all lanes be in flight at once instead of
/// serializing on the previous lookup's result.
const LANES: usize = 4;

/// Encrypts `N` blocks with interleaved rounds (see [`LANES`]).
fn encrypt_batch<const N: usize>(ks: &KeySchedule, blocks: &mut [[u8; 16]; N]) {
    let mut s = [[0u32; 4]; N];
    for (j, block) in blocks.iter().enumerate() {
        for c in 0..4 {
            s[j][c] = u32::from_be_bytes(block[4 * c..4 * c + 4].try_into().expect("4 bytes"))
                ^ ks.enc[c];
        }
    }
    let mut rk = 4;
    for _ in 1..ks.rounds {
        for sj in s.iter_mut() {
            *sj = [
                TE[0][(sj[0] >> 24) as usize]
                    ^ TE[1][(sj[1] >> 16) as usize & 0xff]
                    ^ TE[2][(sj[2] >> 8) as usize & 0xff]
                    ^ TE[3][sj[3] as usize & 0xff]
                    ^ ks.enc[rk],
                TE[0][(sj[1] >> 24) as usize]
                    ^ TE[1][(sj[2] >> 16) as usize & 0xff]
                    ^ TE[2][(sj[3] >> 8) as usize & 0xff]
                    ^ TE[3][sj[0] as usize & 0xff]
                    ^ ks.enc[rk + 1],
                TE[0][(sj[2] >> 24) as usize]
                    ^ TE[1][(sj[3] >> 16) as usize & 0xff]
                    ^ TE[2][(sj[0] >> 8) as usize & 0xff]
                    ^ TE[3][sj[1] as usize & 0xff]
                    ^ ks.enc[rk + 2],
                TE[0][(sj[3] >> 24) as usize]
                    ^ TE[1][(sj[0] >> 16) as usize & 0xff]
                    ^ TE[2][(sj[1] >> 8) as usize & 0xff]
                    ^ TE[3][sj[2] as usize & 0xff]
                    ^ ks.enc[rk + 3],
            ];
        }
        rk += 4;
    }
    for (j, block) in blocks.iter_mut().enumerate() {
        for c in 0..4 {
            let w = u32::from_be_bytes([
                SBOX[(s[j][c] >> 24) as usize],
                SBOX[(s[j][(c + 1) % 4] >> 16) as usize & 0xff],
                SBOX[(s[j][(c + 2) % 4] >> 8) as usize & 0xff],
                SBOX[s[j][(c + 3) % 4] as usize & 0xff],
            ]) ^ ks.enc[rk + c];
            block[4 * c..4 * c + 4].copy_from_slice(&w.to_be_bytes());
        }
    }
}

/// Decrypts `N` blocks with interleaved rounds (see [`LANES`]).
fn decrypt_batch<const N: usize>(ks: &KeySchedule, blocks: &mut [[u8; 16]; N]) {
    let mut s = [[0u32; 4]; N];
    for (j, block) in blocks.iter().enumerate() {
        for c in 0..4 {
            s[j][c] = u32::from_be_bytes(block[4 * c..4 * c + 4].try_into().expect("4 bytes"))
                ^ ks.dec[c];
        }
    }
    let mut rk = 4;
    for _ in 1..ks.rounds {
        for sj in s.iter_mut() {
            *sj = [
                TD[0][(sj[0] >> 24) as usize]
                    ^ TD[1][(sj[3] >> 16) as usize & 0xff]
                    ^ TD[2][(sj[2] >> 8) as usize & 0xff]
                    ^ TD[3][sj[1] as usize & 0xff]
                    ^ ks.dec[rk],
                TD[0][(sj[1] >> 24) as usize]
                    ^ TD[1][(sj[0] >> 16) as usize & 0xff]
                    ^ TD[2][(sj[3] >> 8) as usize & 0xff]
                    ^ TD[3][sj[2] as usize & 0xff]
                    ^ ks.dec[rk + 1],
                TD[0][(sj[2] >> 24) as usize]
                    ^ TD[1][(sj[1] >> 16) as usize & 0xff]
                    ^ TD[2][(sj[0] >> 8) as usize & 0xff]
                    ^ TD[3][sj[3] as usize & 0xff]
                    ^ ks.dec[rk + 2],
                TD[0][(sj[3] >> 24) as usize]
                    ^ TD[1][(sj[2] >> 16) as usize & 0xff]
                    ^ TD[2][(sj[1] >> 8) as usize & 0xff]
                    ^ TD[3][sj[0] as usize & 0xff]
                    ^ ks.dec[rk + 3],
            ];
        }
        rk += 4;
    }
    for (j, block) in blocks.iter_mut().enumerate() {
        for c in 0..4 {
            let w = u32::from_be_bytes([
                INV_SBOX[(s[j][c] >> 24) as usize],
                INV_SBOX[(s[j][(c + 3) % 4] >> 16) as usize & 0xff],
                INV_SBOX[(s[j][(c + 2) % 4] >> 8) as usize & 0xff],
                INV_SBOX[s[j][(c + 1) % 4] as usize & 0xff],
            ]) ^ ks.dec[rk + c];
            block[4 * c..4 * c + 4].copy_from_slice(&w.to_be_bytes());
        }
    }
}

/// Bulk encrypt: full [`LANES`]-wide groups interleaved, remainder one
/// at a time.
fn encrypt_all(ks: &KeySchedule, blocks: &mut [[u8; 16]]) {
    let mut groups = blocks.chunks_exact_mut(LANES);
    for group in &mut groups {
        let group: &mut [[u8; 16]; LANES] = group.try_into().expect("exact chunk");
        encrypt_batch(ks, group);
    }
    for block in groups.into_remainder() {
        encrypt(ks, block);
    }
}

/// Bulk decrypt: full [`LANES`]-wide groups interleaved, remainder one
/// at a time.
fn decrypt_all(ks: &KeySchedule, blocks: &mut [[u8; 16]]) {
    let mut groups = blocks.chunks_exact_mut(LANES);
    for group in &mut groups {
        let group: &mut [[u8; 16]; LANES] = group.try_into().expect("exact chunk");
        decrypt_batch(ks, group);
    }
    for block in groups.into_remainder() {
        decrypt(ks, block);
    }
}

/// The backend-resolved cipher engine: exactly one schedule is expanded
/// per cipher, on the backend chosen at construction.
#[derive(Clone)]
enum Engine {
    Scalar(reference::ByteSchedule),
    Table(KeySchedule),
    #[cfg(target_arch = "x86_64")]
    AesNi(crate::aesni::Schedule),
}

impl Engine {
    /// Expands `key` on `backend`, falling back from AES-NI to T-tables
    /// when the hardware lacks it (see [`AesBackend::select`]).
    fn build(key: &[u8], rounds: usize, backend: AesBackend) -> Engine {
        let backend = match backend {
            AesBackend::AesNi if !AesBackend::aesni_supported() => AesBackend::Table,
            other => other,
        };
        record_backend_metric(backend);
        match backend {
            AesBackend::Scalar => Engine::Scalar(reference::ByteSchedule::expand(key, rounds)),
            #[cfg(target_arch = "x86_64")]
            AesBackend::AesNi => Engine::AesNi(crate::aesni::Schedule::expand(key)),
            #[cfg(not(target_arch = "x86_64"))]
            AesBackend::AesNi => unreachable!("aesni unsupported off x86-64"),
            AesBackend::Table => Engine::Table(KeySchedule::expand(key, rounds)),
        }
    }

    fn backend(&self) -> AesBackend {
        match self {
            Engine::Scalar(_) => AesBackend::Scalar,
            Engine::Table(_) => AesBackend::Table,
            #[cfg(target_arch = "x86_64")]
            Engine::AesNi(_) => AesBackend::AesNi,
        }
    }

    #[inline]
    fn encrypt_block(&self, block: &mut [u8; 16]) {
        match self {
            Engine::Scalar(ks) => reference::encrypt(ks, block),
            Engine::Table(ks) => encrypt(ks, block),
            #[cfg(target_arch = "x86_64")]
            Engine::AesNi(ks) => ks.encrypt_block(block),
        }
    }

    #[inline]
    fn decrypt_block(&self, block: &mut [u8; 16]) {
        match self {
            Engine::Scalar(ks) => reference::decrypt(ks, block),
            Engine::Table(ks) => decrypt(ks, block),
            #[cfg(target_arch = "x86_64")]
            Engine::AesNi(ks) => ks.decrypt_block(block),
        }
    }

    fn encrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        match self {
            Engine::Scalar(ks) => {
                for block in blocks {
                    reference::encrypt(ks, block);
                }
            }
            Engine::Table(ks) => encrypt_all(ks, blocks),
            #[cfg(target_arch = "x86_64")]
            Engine::AesNi(ks) => ks.encrypt_blocks(blocks),
        }
    }

    fn decrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        match self {
            Engine::Scalar(ks) => {
                for block in blocks {
                    reference::decrypt(ks, block);
                }
            }
            Engine::Table(ks) => decrypt_all(ks, blocks),
            #[cfg(target_arch = "x86_64")]
            Engine::AesNi(ks) => ks.decrypt_blocks(blocks),
        }
    }
}

/// AES with a 128-bit key (10 rounds).
#[derive(Clone)]
pub struct Aes128 {
    engine: Engine,
}

impl Aes128 {
    /// Constructs a cipher from a 16-byte key on the auto-selected
    /// backend ([`AesBackend::select`]), expanding both the encryption
    /// and decryption round keys up front.
    ///
    /// # Example
    ///
    /// ```
    /// use pe_crypto::aes::Aes128;
    /// let cipher = Aes128::new(&[7u8; 16]);
    /// # let _ = cipher;
    /// ```
    pub fn new(key: &[u8; 16]) -> Aes128 {
        Aes128::with_backend(key, AesBackend::select())
    }

    /// Constructs a cipher on an explicit backend (tests, benchmarks,
    /// and the forced-backend matrix). AES-NI falls back to the T-table
    /// path when the CPU lacks it.
    pub fn with_backend(key: &[u8; 16], backend: AesBackend) -> Aes128 {
        Aes128 { engine: Engine::build(key, 10, backend) }
    }

    /// The backend this cipher actually runs on (after any fallback).
    pub fn backend(&self) -> AesBackend {
        self.engine.backend()
    }
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Aes128").field("backend", &self.backend()).finish_non_exhaustive()
    }
}

impl BlockCipher for Aes128 {
    fn encrypt_block(&self, block: &mut [u8; 16]) {
        self.engine.encrypt_block(block);
    }

    fn decrypt_block(&self, block: &mut [u8; 16]) {
        self.engine.decrypt_block(block);
    }

    fn encrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        self.engine.encrypt_blocks(blocks);
    }

    fn decrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        self.engine.decrypt_blocks(blocks);
    }
}

/// AES with a 256-bit key (14 rounds).
#[derive(Clone)]
pub struct Aes256 {
    engine: Engine,
}

impl Aes256 {
    /// Constructs a cipher from a 32-byte key on the auto-selected
    /// backend ([`AesBackend::select`]), expanding both the encryption
    /// and decryption round keys up front.
    ///
    /// # Example
    ///
    /// ```
    /// use pe_crypto::aes::Aes256;
    /// let cipher = Aes256::new(&[7u8; 32]);
    /// # let _ = cipher;
    /// ```
    pub fn new(key: &[u8; 32]) -> Aes256 {
        Aes256::with_backend(key, AesBackend::select())
    }

    /// Constructs a cipher on an explicit backend. See
    /// [`Aes128::with_backend`].
    pub fn with_backend(key: &[u8; 32], backend: AesBackend) -> Aes256 {
        Aes256 { engine: Engine::build(key, 14, backend) }
    }

    /// The backend this cipher actually runs on (after any fallback).
    pub fn backend(&self) -> AesBackend {
        self.engine.backend()
    }
}

impl std::fmt::Debug for Aes256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Aes256").field("backend", &self.backend()).finish_non_exhaustive()
    }
}

impl BlockCipher for Aes256 {
    fn encrypt_block(&self, block: &mut [u8; 16]) {
        self.engine.encrypt_block(block);
    }

    fn decrypt_block(&self, block: &mut [u8; 16]) {
        self.engine.decrypt_block(block);
    }

    fn encrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        self.engine.encrypt_blocks(blocks);
    }

    fn decrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        self.engine.decrypt_blocks(blocks);
    }
}

pub mod reference {
    //! The original byte-oriented scalar Rijndael, retained verbatim as a
    //! correctness oracle for the T-table fast path and as the "pre-fast-
    //! path" baseline the `crypto_throughput` benchmark measures against.
    //!
    //! Nothing in the system uses these ciphers on a hot path; the test
    //! suite pins [`Aes128`](super::Aes128)/[`Aes256`](super::Aes256)
    //! against them on random keys and blocks.

    use std::sync::OnceLock;

    use super::SBOX;
    use crate::BlockCipher;

    /// Inverse S-box, derived from [`SBOX`] on first use — the original
    /// code paid this `OnceLock` lookup on every `inv_sub_bytes` call, so
    /// the baseline keeps it rather than borrowing the fast path's
    /// precomputed `INV_SBOX` const.
    fn inv_sbox() -> &'static [u8; 256] {
        static INV: OnceLock<[u8; 256]> = OnceLock::new();
        INV.get_or_init(|| {
            let mut inv = [0u8; 256];
            for (i, &s) in SBOX.iter().enumerate() {
                inv[s as usize] = i as u8;
            }
            inv
        })
    }

    #[inline]
    fn xtime(b: u8) -> u8 {
        super::xtime(b)
    }

    /// General GF(2^8) multiplication (decrypt-path MixColumns
    /// coefficients are 9, 11, 13, 14).
    #[inline]
    fn gmul(a: u8, b: u8) -> u8 {
        super::gmul(a, b)
    }

    /// Round-key schedule shared by both key sizes: `round_keys[r]` is the
    /// 16-byte round key for round `r`. Crate-visible so the `scalar`
    /// backend of the dispatching ciphers can reuse it directly.
    #[derive(Clone)]
    pub(crate) struct ByteSchedule {
        round_keys: Vec<[u8; 16]>,
    }

    impl ByteSchedule {
        /// Expands `key` (16 or 32 bytes) following FIPS-197 §5.2.
        pub(crate) fn expand(key: &[u8], rounds: usize) -> ByteSchedule {
            let nk = key.len() / 4;
            debug_assert!(nk == 4 || nk == 8);
            let total_words = 4 * (rounds + 1);
            let mut w: Vec<[u8; 4]> = Vec::with_capacity(total_words);
            for chunk in key.chunks_exact(4) {
                w.push([chunk[0], chunk[1], chunk[2], chunk[3]]);
            }
            let mut rcon: u8 = 0x01;
            for i in nk..total_words {
                let mut temp = w[i - 1];
                if i % nk == 0 {
                    // RotWord + SubWord + Rcon.
                    temp = [
                        SBOX[temp[1] as usize] ^ rcon,
                        SBOX[temp[2] as usize],
                        SBOX[temp[3] as usize],
                        SBOX[temp[0] as usize],
                    ];
                    rcon = xtime(rcon);
                } else if nk > 6 && i % nk == 4 {
                    // AES-256 extra SubWord.
                    temp = [
                        SBOX[temp[0] as usize],
                        SBOX[temp[1] as usize],
                        SBOX[temp[2] as usize],
                        SBOX[temp[3] as usize],
                    ];
                }
                let prev = w[i - nk];
                w.push([
                    prev[0] ^ temp[0],
                    prev[1] ^ temp[1],
                    prev[2] ^ temp[2],
                    prev[3] ^ temp[3],
                ]);
            }
            let round_keys = w
                .chunks_exact(4)
                .map(|c| {
                    let mut rk = [0u8; 16];
                    for (j, word) in c.iter().enumerate() {
                        rk[4 * j..4 * j + 4].copy_from_slice(word);
                    }
                    rk
                })
                .collect();
            ByteSchedule { round_keys }
        }
    }

    #[inline]
    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk.iter()) {
            *s ^= k;
        }
    }

    #[inline]
    fn sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = SBOX[*b as usize];
        }
    }

    #[inline]
    fn inv_sub_bytes(state: &mut [u8; 16]) {
        let inv = inv_sbox();
        for b in state.iter_mut() {
            *b = inv[*b as usize];
        }
    }

    /// ShiftRows on the column-major state: byte `r + 4c` holds row `r`,
    /// column `c` (FIPS-197 §3.4).
    #[inline]
    fn shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[r + 4 * c] = s[r + 4 * ((c + r) % 4)];
            }
        }
    }

    #[inline]
    fn inv_shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[r + 4 * ((c + r) % 4)] = s[r + 4 * c];
            }
        }
    }

    #[inline]
    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col =
                [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
            let t = col[0] ^ col[1] ^ col[2] ^ col[3];
            state[4 * c] = col[0] ^ t ^ xtime(col[0] ^ col[1]);
            state[4 * c + 1] = col[1] ^ t ^ xtime(col[1] ^ col[2]);
            state[4 * c + 2] = col[2] ^ t ^ xtime(col[2] ^ col[3]);
            state[4 * c + 3] = col[3] ^ t ^ xtime(col[3] ^ col[0]);
        }
    }

    #[inline]
    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col =
                [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
            state[4 * c] =
                gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
            state[4 * c + 1] =
                gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
            state[4 * c + 2] =
                gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
            state[4 * c + 3] =
                gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
        }
    }

    pub(crate) fn encrypt(schedule: &ByteSchedule, block: &mut [u8; 16]) {
        let rounds = schedule.round_keys.len() - 1;
        add_round_key(block, &schedule.round_keys[0]);
        for round in 1..rounds {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &schedule.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &schedule.round_keys[rounds]);
    }

    pub(crate) fn decrypt(schedule: &ByteSchedule, block: &mut [u8; 16]) {
        let rounds = schedule.round_keys.len() - 1;
        add_round_key(block, &schedule.round_keys[rounds]);
        for round in (1..rounds).rev() {
            inv_shift_rows(block);
            inv_sub_bytes(block);
            add_round_key(block, &schedule.round_keys[round]);
            inv_mix_columns(block);
        }
        inv_shift_rows(block);
        inv_sub_bytes(block);
        add_round_key(block, &schedule.round_keys[0]);
    }

    /// Byte-oriented AES-128 (the pre-fast-path implementation).
    #[derive(Clone)]
    pub struct ScalarAes128 {
        schedule: ByteSchedule,
    }

    impl ScalarAes128 {
        /// Constructs a scalar cipher from a 16-byte key.
        pub fn new(key: &[u8; 16]) -> ScalarAes128 {
            ScalarAes128 { schedule: ByteSchedule::expand(key, 10) }
        }
    }

    impl std::fmt::Debug for ScalarAes128 {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("ScalarAes128").finish_non_exhaustive()
        }
    }

    impl BlockCipher for ScalarAes128 {
        fn encrypt_block(&self, block: &mut [u8; 16]) {
            encrypt(&self.schedule, block);
        }

        fn decrypt_block(&self, block: &mut [u8; 16]) {
            decrypt(&self.schedule, block);
        }
    }

    /// Byte-oriented AES-256 (the pre-fast-path implementation).
    #[derive(Clone)]
    pub struct ScalarAes256 {
        schedule: ByteSchedule,
    }

    impl ScalarAes256 {
        /// Constructs a scalar cipher from a 32-byte key.
        pub fn new(key: &[u8; 32]) -> ScalarAes256 {
            ScalarAes256 { schedule: ByteSchedule::expand(key, 14) }
        }
    }

    impl std::fmt::Debug for ScalarAes256 {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("ScalarAes256").finish_non_exhaustive()
        }
    }

    impl BlockCipher for ScalarAes256 {
        fn encrypt_block(&self, block: &mut [u8; 16]) {
            encrypt(&self.schedule, block);
        }

        fn decrypt_block(&self, block: &mut [u8; 16]) {
            decrypt(&self.schedule, block);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::{ScalarAes128, ScalarAes256};
    use super::*;
    use crate::hex;
    use proptest::prelude::*;

    fn hex16(s: &str) -> [u8; 16] {
        hex::decode(s).unwrap().try_into().unwrap()
    }

    /// FIPS-197 Appendix C.1: AES-128 known answer test.
    #[test]
    fn fips197_aes128_kat() {
        let key = hex16("000102030405060708090a0b0c0d0e0f");
        let cipher = Aes128::new(&key);
        let mut block = hex16("00112233445566778899aabbccddeeff");
        cipher.encrypt_block(&mut block);
        assert_eq!(hex::encode(&block), "69c4e0d86a7b0430d8cdb78070b4c55a");
        cipher.decrypt_block(&mut block);
        assert_eq!(hex::encode(&block), "00112233445566778899aabbccddeeff");
    }

    /// FIPS-197 Appendix C.3: AES-256 known answer test.
    #[test]
    fn fips197_aes256_kat() {
        let key: [u8; 32] = hex::decode(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        )
        .unwrap()
        .try_into()
        .unwrap();
        let cipher = Aes256::new(&key);
        let mut block = hex16("00112233445566778899aabbccddeeff");
        cipher.encrypt_block(&mut block);
        assert_eq!(hex::encode(&block), "8ea2b7ca516745bfeafc49904b496089");
        cipher.decrypt_block(&mut block);
        assert_eq!(hex::encode(&block), "00112233445566778899aabbccddeeff");
    }

    /// The reference oracle satisfies the same KATs independently.
    #[test]
    fn fips197_kats_hold_for_reference_oracle() {
        let key = hex16("000102030405060708090a0b0c0d0e0f");
        let cipher = ScalarAes128::new(&key);
        let mut block = hex16("00112233445566778899aabbccddeeff");
        cipher.encrypt_block(&mut block);
        assert_eq!(hex::encode(&block), "69c4e0d86a7b0430d8cdb78070b4c55a");
        cipher.decrypt_block(&mut block);
        assert_eq!(hex::encode(&block), "00112233445566778899aabbccddeeff");

        let key: [u8; 32] = hex::decode(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        )
        .unwrap()
        .try_into()
        .unwrap();
        let cipher = ScalarAes256::new(&key);
        let mut block = hex16("00112233445566778899aabbccddeeff");
        cipher.encrypt_block(&mut block);
        assert_eq!(hex::encode(&block), "8ea2b7ca516745bfeafc49904b496089");
    }

    /// NIST SP 800-38A F.1.1 ECB-AES128 first block.
    #[test]
    fn sp800_38a_ecb_aes128_block1() {
        let key = hex16("2b7e151628aed2a6abf7158809cf4f3c");
        let cipher = Aes128::new(&key);
        let mut block = hex16("6bc1bee22e409f96e93d7e117393172a");
        cipher.encrypt_block(&mut block);
        assert_eq!(hex::encode(&block), "3ad77bb40d7a3660a89ecaf32466ef97");
    }

    /// NIST SP 800-38A F.1.5 ECB-AES256 first block.
    #[test]
    fn sp800_38a_ecb_aes256_block1() {
        let key: [u8; 32] = hex::decode(
            "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4",
        )
        .unwrap()
        .try_into()
        .unwrap();
        let cipher = Aes256::new(&key);
        let mut block = hex16("6bc1bee22e409f96e93d7e117393172a");
        cipher.encrypt_block(&mut block);
        assert_eq!(hex::encode(&block), "f3eed1bdb5d2a03c064b5a7e3db181f8");
    }

    #[test]
    fn roundtrip_many_random_blocks() {
        // A deterministic LCG avoids proptest overhead here.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        let mut key = [0u8; 16];
        key.iter_mut().for_each(|b| *b = next());
        let cipher = Aes128::new(&key);
        for _ in 0..200 {
            let mut block = [0u8; 16];
            block.iter_mut().for_each(|b| *b = next());
            let original = block;
            cipher.encrypt_block(&mut block);
            assert_ne!(block, original, "encryption must change the block");
            cipher.decrypt_block(&mut block);
            assert_eq!(block, original);
        }
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let c1 = Aes128::new(&[0u8; 16]);
        let c2 = Aes128::new(&[1u8; 16]);
        let mut b1 = [0x42u8; 16];
        let mut b2 = [0x42u8; 16];
        c1.encrypt_block(&mut b1);
        c2.encrypt_block(&mut b2);
        assert_ne!(b1, b2);
    }

    #[test]
    fn inv_sbox_inverts_sbox() {
        for i in 0..=255u8 {
            assert_eq!(INV_SBOX[SBOX[i as usize] as usize], i);
        }
    }

    #[test]
    fn gmul_matches_known_products() {
        // {57} . {83} = {c1} from the FIPS-197 §4.2 example.
        assert_eq!(gmul(0x57, 0x83), 0xc1);
        // {57} . {13} = {fe} from the same section.
        assert_eq!(gmul(0x57, 0x13), 0xfe);
    }

    #[test]
    fn batch_helpers_match_single_block_calls() {
        let cipher = Aes128::new(&[0x5au8; 16]);
        let mut blocks = [[0u8; 16]; 9];
        for (i, b) in blocks.iter_mut().enumerate() {
            b.fill(i as u8);
        }
        let mut expected = blocks;
        for b in expected.iter_mut() {
            cipher.encrypt_block(b);
        }
        cipher.encrypt_blocks(&mut blocks);
        assert_eq!(blocks, expected);
        cipher.decrypt_blocks(&mut blocks);
        for (i, b) in blocks.iter().enumerate() {
            assert!(b.iter().all(|&x| x == i as u8));
        }
    }

    proptest! {
        /// The T-table fast path agrees with the byte-oriented reference
        /// oracle on random keys and blocks, both directions, both key
        /// sizes.
        #[test]
        fn ttable_matches_reference_aes128(key in proptest::array::uniform16(any::<u8>()),
                                           block in proptest::array::uniform16(any::<u8>())) {
            let fast = Aes128::new(&key);
            let oracle = ScalarAes128::new(&key);
            let mut a = block;
            let mut b = block;
            fast.encrypt_block(&mut a);
            oracle.encrypt_block(&mut b);
            prop_assert_eq!(a, b, "encrypt mismatch");
            fast.decrypt_block(&mut a);
            oracle.decrypt_block(&mut b);
            prop_assert_eq!(a, block);
            prop_assert_eq!(b, block);
            // Decrypt also agrees on arbitrary (non-ciphertext) input.
            let mut c = block;
            let mut d = block;
            fast.decrypt_block(&mut c);
            oracle.decrypt_block(&mut d);
            prop_assert_eq!(c, d, "decrypt mismatch");
        }

        #[test]
        fn ttable_matches_reference_aes256(key in proptest::array::uniform32(any::<u8>()),
                                           block in proptest::array::uniform16(any::<u8>())) {
            let fast = Aes256::new(&key);
            let oracle = ScalarAes256::new(&key);
            let mut a = block;
            let mut b = block;
            fast.encrypt_block(&mut a);
            oracle.encrypt_block(&mut b);
            prop_assert_eq!(a, b, "encrypt mismatch");
            let mut c = block;
            let mut d = block;
            fast.decrypt_block(&mut c);
            oracle.decrypt_block(&mut d);
            prop_assert_eq!(c, d, "decrypt mismatch");
        }
    }
}
