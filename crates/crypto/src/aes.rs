//! AES-128 and AES-256 block ciphers (FIPS-197).
//!
//! A straightforward byte-oriented implementation of the Rijndael cipher
//! with 128-bit blocks. The forward S-box is hard-coded from the standard;
//! the inverse S-box is derived from it at first use, so the two tables can
//! never disagree. Correctness is pinned by the FIPS-197 Appendix C known
//! answer tests in this module's test suite.
//!
//! The paper's prototype used the Stanford JavaScript crypto library's AES;
//! this module plays that role for the Rust reproduction.
//!
//! # Example
//!
//! ```
//! use pe_crypto::aes::Aes128;
//! use pe_crypto::BlockCipher;
//!
//! let cipher = Aes128::new(&[0u8; 16]);
//! let mut block = [0u8; 16];
//! cipher.encrypt_block(&mut block);
//! cipher.decrypt_block(&mut block);
//! assert_eq!(block, [0u8; 16]);
//! ```

use std::sync::OnceLock;

use crate::BlockCipher;

/// The AES forward substitution box (FIPS-197 Figure 7).
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab,
    0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4,
    0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71,
    0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6,
    0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb,
    0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45,
    0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44,
    0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a,
    0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25,
    0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e,
    0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1,
    0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb,
    0x16,
];

/// Inverse S-box, derived from [`SBOX`] on first use so the two tables are
/// consistent by construction.
fn inv_sbox() -> &'static [u8; 256] {
    static INV: OnceLock<[u8; 256]> = OnceLock::new();
    INV.get_or_init(|| {
        let mut inv = [0u8; 256];
        for (i, &s) in SBOX.iter().enumerate() {
            inv[s as usize] = i as u8;
        }
        inv
    })
}

/// Multiplication by `x` (i.e. `{02}`) in GF(2^8) modulo `x^8+x^4+x^3+x+1`.
#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (if b & 0x80 != 0 { 0x1b } else { 0 })
}

/// General GF(2^8) multiplication (used only on the decrypt path, where the
/// MixColumns coefficients are 9, 11, 13, 14).
#[inline]
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// Round-key schedule shared by both key sizes.
///
/// `round_keys[r]` is the 16-byte round key for round `r`; there are
/// `rounds + 1` of them.
#[derive(Clone)]
struct KeySchedule {
    round_keys: Vec<[u8; 16]>,
}

impl KeySchedule {
    /// Expands `key` (16 or 32 bytes) into `rounds + 1` round keys
    /// following FIPS-197 §5.2.
    fn expand(key: &[u8], rounds: usize) -> KeySchedule {
        let nk = key.len() / 4;
        debug_assert!(nk == 4 || nk == 8);
        let total_words = 4 * (rounds + 1);
        let mut w: Vec<[u8; 4]> = Vec::with_capacity(total_words);
        for chunk in key.chunks_exact(4) {
            w.push([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let mut rcon: u8 = 0x01;
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                // RotWord + SubWord + Rcon.
                temp = [
                    SBOX[temp[1] as usize] ^ rcon,
                    SBOX[temp[2] as usize],
                    SBOX[temp[3] as usize],
                    SBOX[temp[0] as usize],
                ];
                rcon = xtime(rcon);
            } else if nk > 6 && i % nk == 4 {
                // AES-256 extra SubWord.
                temp = [
                    SBOX[temp[0] as usize],
                    SBOX[temp[1] as usize],
                    SBOX[temp[2] as usize],
                    SBOX[temp[3] as usize],
                ];
            }
            let prev = w[i - nk];
            w.push([
                prev[0] ^ temp[0],
                prev[1] ^ temp[1],
                prev[2] ^ temp[2],
                prev[3] ^ temp[3],
            ]);
        }
        let round_keys = w
            .chunks_exact(4)
            .map(|c| {
                let mut rk = [0u8; 16];
                for (j, word) in c.iter().enumerate() {
                    rk[4 * j..4 * j + 4].copy_from_slice(word);
                }
                rk
            })
            .collect();
        KeySchedule { round_keys }
    }
}

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk.iter()) {
        *s ^= k;
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

#[inline]
fn inv_sub_bytes(state: &mut [u8; 16]) {
    let inv = inv_sbox();
    for b in state.iter_mut() {
        *b = inv[*b as usize];
    }
}

/// ShiftRows on the column-major state: byte `r + 4c` holds row `r`,
/// column `c` (FIPS-197 §3.4).
#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[r + 4 * c] = s[r + 4 * ((c + r) % 4)];
        }
    }
}

#[inline]
fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[r + 4 * ((c + r) % 4)] = s[r + 4 * c];
        }
    }
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        let t = col[0] ^ col[1] ^ col[2] ^ col[3];
        state[4 * c] = col[0] ^ t ^ xtime(col[0] ^ col[1]);
        state[4 * c + 1] = col[1] ^ t ^ xtime(col[1] ^ col[2]);
        state[4 * c + 2] = col[2] ^ t ^ xtime(col[2] ^ col[3]);
        state[4 * c + 3] = col[3] ^ t ^ xtime(col[3] ^ col[0]);
    }
}

#[inline]
fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        state[4 * c] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
        state[4 * c + 1] =
            gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
        state[4 * c + 2] =
            gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
        state[4 * c + 3] =
            gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
    }
}

// The FIPS-197 state is column-major: s[r][c] = in[r + 4c]. Storing the
// state as the linear 16-byte block therefore needs no reshaping; the
// helpers above index it as state[r + 4c].

fn encrypt(schedule: &KeySchedule, block: &mut [u8; 16]) {
    let rounds = schedule.round_keys.len() - 1;
    add_round_key(block, &schedule.round_keys[0]);
    for round in 1..rounds {
        sub_bytes(block);
        shift_rows(block);
        mix_columns(block);
        add_round_key(block, &schedule.round_keys[round]);
    }
    sub_bytes(block);
    shift_rows(block);
    add_round_key(block, &schedule.round_keys[rounds]);
}

fn decrypt(schedule: &KeySchedule, block: &mut [u8; 16]) {
    let rounds = schedule.round_keys.len() - 1;
    add_round_key(block, &schedule.round_keys[rounds]);
    for round in (1..rounds).rev() {
        inv_shift_rows(block);
        inv_sub_bytes(block);
        add_round_key(block, &schedule.round_keys[round]);
        inv_mix_columns(block);
    }
    inv_shift_rows(block);
    inv_sub_bytes(block);
    add_round_key(block, &schedule.round_keys[0]);
}

/// AES with a 128-bit key (10 rounds).
#[derive(Clone)]
pub struct Aes128 {
    schedule: KeySchedule,
}

impl Aes128 {
    /// Constructs a cipher from a 16-byte key.
    ///
    /// # Example
    ///
    /// ```
    /// use pe_crypto::aes::Aes128;
    /// let cipher = Aes128::new(&[7u8; 16]);
    /// # let _ = cipher;
    /// ```
    pub fn new(key: &[u8; 16]) -> Aes128 {
        Aes128 { schedule: KeySchedule::expand(key, 10) }
    }
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Aes128").finish_non_exhaustive()
    }
}

impl BlockCipher for Aes128 {
    fn encrypt_block(&self, block: &mut [u8; 16]) {
        encrypt(&self.schedule, block);
    }

    fn decrypt_block(&self, block: &mut [u8; 16]) {
        decrypt(&self.schedule, block);
    }
}

/// AES with a 256-bit key (14 rounds).
#[derive(Clone)]
pub struct Aes256 {
    schedule: KeySchedule,
}

impl Aes256 {
    /// Constructs a cipher from a 32-byte key.
    ///
    /// # Example
    ///
    /// ```
    /// use pe_crypto::aes::Aes256;
    /// let cipher = Aes256::new(&[7u8; 32]);
    /// # let _ = cipher;
    /// ```
    pub fn new(key: &[u8; 32]) -> Aes256 {
        Aes256 { schedule: KeySchedule::expand(key, 14) }
    }
}

impl std::fmt::Debug for Aes256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Aes256").finish_non_exhaustive()
    }
}

impl BlockCipher for Aes256 {
    fn encrypt_block(&self, block: &mut [u8; 16]) {
        encrypt(&self.schedule, block);
    }

    fn decrypt_block(&self, block: &mut [u8; 16]) {
        decrypt(&self.schedule, block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    fn hex16(s: &str) -> [u8; 16] {
        hex::decode(s).unwrap().try_into().unwrap()
    }

    /// FIPS-197 Appendix C.1: AES-128 known answer test.
    #[test]
    fn fips197_aes128_kat() {
        let key = hex16("000102030405060708090a0b0c0d0e0f");
        let cipher = Aes128::new(&key);
        let mut block = hex16("00112233445566778899aabbccddeeff");
        cipher.encrypt_block(&mut block);
        assert_eq!(hex::encode(&block), "69c4e0d86a7b0430d8cdb78070b4c55a");
        cipher.decrypt_block(&mut block);
        assert_eq!(hex::encode(&block), "00112233445566778899aabbccddeeff");
    }

    /// FIPS-197 Appendix C.3: AES-256 known answer test.
    #[test]
    fn fips197_aes256_kat() {
        let key: [u8; 32] = hex::decode(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        )
        .unwrap()
        .try_into()
        .unwrap();
        let cipher = Aes256::new(&key);
        let mut block = hex16("00112233445566778899aabbccddeeff");
        cipher.encrypt_block(&mut block);
        assert_eq!(hex::encode(&block), "8ea2b7ca516745bfeafc49904b496089");
        cipher.decrypt_block(&mut block);
        assert_eq!(hex::encode(&block), "00112233445566778899aabbccddeeff");
    }

    /// NIST SP 800-38A F.1.1 ECB-AES128 first block.
    #[test]
    fn sp800_38a_ecb_aes128_block1() {
        let key = hex16("2b7e151628aed2a6abf7158809cf4f3c");
        let cipher = Aes128::new(&key);
        let mut block = hex16("6bc1bee22e409f96e93d7e117393172a");
        cipher.encrypt_block(&mut block);
        assert_eq!(hex::encode(&block), "3ad77bb40d7a3660a89ecaf32466ef97");
    }

    /// NIST SP 800-38A F.1.5 ECB-AES256 first block.
    #[test]
    fn sp800_38a_ecb_aes256_block1() {
        let key: [u8; 32] = hex::decode(
            "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4",
        )
        .unwrap()
        .try_into()
        .unwrap();
        let cipher = Aes256::new(&key);
        let mut block = hex16("6bc1bee22e409f96e93d7e117393172a");
        cipher.encrypt_block(&mut block);
        assert_eq!(hex::encode(&block), "f3eed1bdb5d2a03c064b5a7e3db181f8");
    }

    #[test]
    fn roundtrip_many_random_blocks() {
        // A deterministic LCG avoids a dev-dependency here.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        let mut key = [0u8; 16];
        key.iter_mut().for_each(|b| *b = next());
        let cipher = Aes128::new(&key);
        for _ in 0..200 {
            let mut block = [0u8; 16];
            block.iter_mut().for_each(|b| *b = next());
            let original = block;
            cipher.encrypt_block(&mut block);
            assert_ne!(block, original, "encryption must change the block");
            cipher.decrypt_block(&mut block);
            assert_eq!(block, original);
        }
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let c1 = Aes128::new(&[0u8; 16]);
        let c2 = Aes128::new(&[1u8; 16]);
        let mut b1 = [0x42u8; 16];
        let mut b2 = [0x42u8; 16];
        c1.encrypt_block(&mut b1);
        c2.encrypt_block(&mut b2);
        assert_ne!(b1, b2);
    }

    #[test]
    fn inv_sbox_inverts_sbox() {
        let inv = inv_sbox();
        for i in 0..=255u8 {
            assert_eq!(inv[SBOX[i as usize] as usize], i);
        }
    }

    #[test]
    fn gmul_matches_known_products() {
        // {57} . {83} = {c1} from the FIPS-197 §4.2 example.
        assert_eq!(gmul(0x57, 0x83), 0xc1);
        // {57} . {13} = {fe} from the same section.
        assert_eq!(gmul(0x57, 0x13), 0xfe);
    }
}
