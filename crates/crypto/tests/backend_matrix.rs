//! Forced-backend matrix: every AES backend must be byte-identical.
//!
//! The dispatch layer (`AesBackend`) selects between the scalar reference,
//! the T-table path, and hardware AES-NI once per cipher construction.
//! These tests pin all three to the FIPS-197 known-answer vectors and to
//! each other under proptest-generated keys and plaintexts, so CI on a
//! non-AES-NI host still exercises the dispatch and fallback code while an
//! AES-NI host proves the hardware schedule bit-for-bit.
//!
//! Backends are forced in-process via [`Aes128::with_backend`] /
//! [`Aes256::with_backend`]; the environment-variable override
//! (`PE_CRYPTO_FORCE_BACKEND`) is exercised by the CI matrix in
//! `scripts/ci.sh`, which re-runs the whole crypto suite once per value.

use pe_crypto::aes::{Aes128, Aes256, AesBackend};
use pe_crypto::BlockCipher;
use proptest::prelude::*;

/// Backends that can actually run on this host. AES-NI is included only
/// when CPUID reports it; the dispatch layer would otherwise silently fall
/// back to the T-table path and the "aesni" row would be a duplicate.
fn runnable_backends() -> Vec<AesBackend> {
    let mut backends = vec![AesBackend::Scalar, AesBackend::Table];
    if AesBackend::aesni_supported() {
        backends.push(AesBackend::AesNi);
    }
    backends
}

// --- FIPS-197 known-answer tests, once per backend -----------------------

/// FIPS-197 Appendix C.1: AES-128 with the 000102…0f key.
const FIPS_KEY_128: [u8; 16] = [
    0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b,
    0x0c, 0x0d, 0x0e, 0x0f,
];
const FIPS_PLAIN: [u8; 16] = [
    0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb,
    0xcc, 0xdd, 0xee, 0xff,
];
const FIPS_CIPHER_128: [u8; 16] = [
    0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80,
    0x70, 0xb4, 0xc5, 0x5a,
];

/// FIPS-197 Appendix C.3: AES-256 with the 000102…1f key.
const FIPS_KEY_256: [u8; 32] = [
    0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b,
    0x0c, 0x0d, 0x0e, 0x0f, 0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17,
    0x18, 0x19, 0x1a, 0x1b, 0x1c, 0x1d, 0x1e, 0x1f,
];
const FIPS_CIPHER_256: [u8; 16] = [
    0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90,
    0x4b, 0x49, 0x60, 0x89,
];

#[test]
fn fips197_kat_aes128_every_backend() {
    for backend in runnable_backends() {
        let cipher = Aes128::with_backend(&FIPS_KEY_128, backend);
        assert_eq!(cipher.backend(), backend, "dispatch honoured {backend}");

        let mut block = FIPS_PLAIN;
        cipher.encrypt_block(&mut block);
        assert_eq!(block, FIPS_CIPHER_128, "encrypt KAT on {backend}");
        cipher.decrypt_block(&mut block);
        assert_eq!(block, FIPS_PLAIN, "decrypt KAT on {backend}");
    }
}

#[test]
fn fips197_kat_aes256_every_backend() {
    for backend in runnable_backends() {
        let cipher = Aes256::with_backend(&FIPS_KEY_256, backend);
        assert_eq!(cipher.backend(), backend, "dispatch honoured {backend}");

        let mut block = FIPS_PLAIN;
        cipher.encrypt_block(&mut block);
        assert_eq!(block, FIPS_CIPHER_256, "encrypt KAT on {backend}");
        cipher.decrypt_block(&mut block);
        assert_eq!(block, FIPS_PLAIN, "decrypt KAT on {backend}");
    }
}

// --- Dispatch / fallback behaviour ---------------------------------------

#[test]
fn aesni_request_falls_back_when_unsupported() {
    let cipher = Aes128::with_backend(&FIPS_KEY_128, AesBackend::AesNi);
    let expected = if AesBackend::aesni_supported() {
        AesBackend::AesNi
    } else {
        AesBackend::Table
    };
    assert_eq!(cipher.backend(), expected);

    // Whatever it resolved to, the answer is still the FIPS-197 one.
    let mut block = FIPS_PLAIN;
    cipher.encrypt_block(&mut block);
    assert_eq!(block, FIPS_CIPHER_128);
}

#[test]
fn backend_parse_accepts_documented_names() {
    assert_eq!(AesBackend::parse("scalar"), Some(AesBackend::Scalar));
    assert_eq!(AesBackend::parse("table"), Some(AesBackend::Table));
    assert_eq!(AesBackend::parse("aesni"), Some(AesBackend::AesNi));
    assert_eq!(AesBackend::parse("AESNI"), Some(AesBackend::AesNi));
    assert_eq!(AesBackend::parse(" table "), Some(AesBackend::Table));
    assert_eq!(AesBackend::parse("aes-ni"), Some(AesBackend::AesNi));
    assert_eq!(AesBackend::parse(""), None);
    assert_eq!(AesBackend::parse("gpu"), None);
}

#[test]
fn backend_names_round_trip_through_parse() {
    for backend in [AesBackend::Scalar, AesBackend::Table, AesBackend::AesNi] {
        assert_eq!(AesBackend::parse(backend.name()), Some(backend));
    }
}

// --- Cross-backend ciphertext equality (proptests) ------------------------

proptest! {
    /// Every backend produces the same AES-128 ciphertext for the same
    /// key/plaintext, and decrypts back to the plaintext.
    #[test]
    fn aes128_backends_byte_identical(key in any::<[u8; 16]>(),
                                      plain in any::<[u8; 16]>()) {
        let backends = runnable_backends();
        let mut ciphertexts = Vec::with_capacity(backends.len());
        for &backend in &backends {
            let cipher = Aes128::with_backend(&key, backend);
            let mut block = plain;
            cipher.encrypt_block(&mut block);
            ciphertexts.push((backend, block));
            cipher.decrypt_block(&mut block);
            prop_assert_eq!(block, plain, "roundtrip on {}", backend);
        }
        for window in ciphertexts.windows(2) {
            let (a, ct_a) = window[0];
            let (b, ct_b) = window[1];
            prop_assert_eq!(ct_a, ct_b, "{} vs {}", a, b);
        }
    }

    /// Same three-way equality for AES-256.
    #[test]
    fn aes256_backends_byte_identical(key in any::<[u8; 32]>(),
                                      plain in any::<[u8; 16]>()) {
        let backends = runnable_backends();
        let mut ciphertexts = Vec::with_capacity(backends.len());
        for &backend in &backends {
            let cipher = Aes256::with_backend(&key, backend);
            let mut block = plain;
            cipher.encrypt_block(&mut block);
            ciphertexts.push((backend, block));
            cipher.decrypt_block(&mut block);
            prop_assert_eq!(block, plain, "roundtrip on {}", backend);
        }
        for window in ciphertexts.windows(2) {
            let (a, ct_a) = window[0];
            let (b, ct_b) = window[1];
            prop_assert_eq!(ct_a, ct_b, "{} vs {}", a, b);
        }
    }

    /// The bulk entry point agrees with the one-at-a-time path on every
    /// backend — this is the path the seal pipeline and the DRBG use, and
    /// on AES-NI it takes the 8-wide pipelined route.
    #[test]
    fn bulk_matches_single_blocks(key in any::<[u8; 16]>(),
                                  blocks in proptest::collection::vec(
                                      any::<[u8; 16]>(), 0..40)) {
        for backend in runnable_backends() {
            let cipher = Aes128::with_backend(&key, backend);

            let mut bulk = blocks.clone();
            cipher.encrypt_blocks(&mut bulk);

            let mut singles = blocks.clone();
            for block in &mut singles {
                cipher.encrypt_block(block);
            }
            prop_assert_eq!(&bulk, &singles, "encrypt_blocks on {}", backend);

            cipher.decrypt_blocks(&mut bulk);
            prop_assert_eq!(&bulk, &blocks, "decrypt_blocks on {}", backend);
        }
    }
}
