//! Property tests for every codec and primitive in `pe-crypto`.

use pe_crypto::aes::{Aes128, Aes256};
use pe_crypto::drbg::{CtrDrbg, NonceSource};
use pe_crypto::{base32, form, hex, BlockCipher};
use proptest::prelude::*;

proptest! {
    #[test]
    fn hex_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(hex::decode(&hex::encode(&data)).unwrap(), data);
    }

    #[test]
    fn base32_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(base32::decode(&base32::encode(&data)).unwrap(), data.clone());
        let unpadded = base32::encode_unpadded(&data);
        prop_assert_eq!(base32::decode_unpadded(&unpadded).unwrap(), data.clone());
        prop_assert_eq!(unpadded.len(), base32::encoded_len(data.len()));
    }

    #[test]
    fn base32_never_decodes_garbage_silently(text in "[A-Z2-7]{0,40}") {
        // Either the decode fails or it re-encodes to the same text.
        if let Ok(bytes) = base32::decode_unpadded(&text) {
            prop_assert_eq!(base32::encode_unpadded(&bytes), text);
        }
    }

    #[test]
    fn percent_roundtrips(text in "\\PC{0,120}") {
        prop_assert_eq!(form::percent_decode(&form::percent_encode(&text)).unwrap(), text);
    }

    #[test]
    fn form_pairs_roundtrip(
        pairs in proptest::collection::vec(("\\PC{0,20}", "\\PC{0,30}"), 0..8)
    ) {
        // Keys must be non-empty for unambiguous parsing.
        let pairs: Vec<(String, String)> = pairs
            .into_iter()
            .enumerate()
            .map(|(i, (k, v))| (format!("k{i}{k}"), v))
            .collect();
        let body = form::encode_pairs(&pairs);
        prop_assert_eq!(form::parse_pairs(&body).unwrap(), pairs);
    }

    #[test]
    fn aes128_roundtrips(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let cipher = Aes128::new(&key);
        let mut data = block;
        cipher.encrypt_block(&mut data);
        cipher.decrypt_block(&mut data);
        prop_assert_eq!(data, block);
    }

    #[test]
    fn aes256_roundtrips(key in any::<[u8; 32]>(), block in any::<[u8; 16]>()) {
        let cipher = Aes256::new(&key);
        let mut data = block;
        cipher.encrypt_block(&mut data);
        cipher.decrypt_block(&mut data);
        prop_assert_eq!(data, block);
    }

    #[test]
    fn aes_is_a_permutation_on_distinct_blocks(
        key in any::<[u8; 16]>(),
        a in any::<[u8; 16]>(),
        b in any::<[u8; 16]>(),
    ) {
        prop_assume!(a != b);
        let cipher = Aes128::new(&key);
        let (mut ca, mut cb) = (a, b);
        cipher.encrypt_block(&mut ca);
        cipher.encrypt_block(&mut cb);
        prop_assert_ne!(ca, cb, "a permutation cannot collide");
    }

    #[test]
    fn drbg_streams_are_prefix_consistent(seed in any::<u64>(), split in 1usize..64) {
        let mut whole = CtrDrbg::from_seed(seed);
        let mut parts = CtrDrbg::from_seed(seed);
        let mut big = vec![0u8; 64];
        whole.fill_bytes(&mut big);
        let mut first = vec![0u8; split];
        let mut second = vec![0u8; 64 - split];
        parts.fill_bytes(&mut first);
        parts.fill_bytes(&mut second);
        first.extend_from_slice(&second);
        prop_assert_eq!(first, big);
    }

    #[test]
    fn sha256_is_deterministic_and_sensitive(
        data in proptest::collection::vec(any::<u8>(), 1..200),
        flip in any::<usize>(),
    ) {
        use pe_crypto::sha256::Sha256;
        let digest = Sha256::digest(&data);
        prop_assert_eq!(Sha256::digest(&data), digest);
        let mut tweaked = data.clone();
        let at = flip % tweaked.len();
        tweaked[at] ^= 1;
        prop_assert_ne!(Sha256::digest(&tweaked), digest);
    }
}

proptest! {
    #[test]
    fn key_wrap_roundtrips(
        kek in proptest::array::uniform16(any::<u8>()),
        blocks in 2usize..9,
        seed in any::<u64>(),
    ) {
        use pe_crypto::kw;
        let mut rng = CtrDrbg::from_seed(seed);
        let mut data = vec![0u8; blocks * 8];
        rng.fill_bytes(&mut data);
        let cipher = Aes128::new(&kek);
        let wrapped = kw::wrap(&cipher, &data).unwrap();
        prop_assert_eq!(wrapped.len(), data.len() + 8);
        prop_assert_eq!(kw::unwrap(&cipher, &wrapped).unwrap(), data);
    }

    #[test]
    fn key_wrap_detects_tampering(
        kek in proptest::array::uniform16(any::<u8>()),
        data in proptest::collection::vec(any::<u8>(), 32..33),
        byte in 0usize..40,
        bit in 0u8..8,
    ) {
        use pe_crypto::kw;
        let cipher = Aes128::new(&kek);
        let mut wrapped = kw::wrap(&cipher, &data).unwrap();
        let at = byte % wrapped.len();
        wrapped[at] ^= 1 << bit;
        prop_assert_eq!(
            kw::unwrap(&cipher, &wrapped),
            Err(pe_crypto::CryptoError::IntegrityCheckFailed)
        );
    }

    #[test]
    fn key_wrap_rejects_wrong_kek(
        kek in proptest::array::uniform16(any::<u8>()),
        flip in 0usize..128,
        data in proptest::collection::vec(any::<u8>(), 16..17),
    ) {
        use pe_crypto::kw;
        let cipher = Aes128::new(&kek);
        let mut other_key = kek;
        other_key[flip / 8] ^= 1 << (flip % 8);
        let other = Aes128::new(&other_key);
        let wrapped = kw::wrap(&cipher, &data).unwrap();
        prop_assert_eq!(
            kw::unwrap(&other, &wrapped),
            Err(pe_crypto::CryptoError::IntegrityCheckFailed)
        );
    }
}
