//! Property tests for the delta protocol's wire format and algebra.

use pe_delta::{diff, Delta, DeltaOp};
use proptest::prelude::*;

fn arbitrary_op() -> impl Strategy<Value = DeltaOp> {
    prop_oneof![
        (0usize..100).prop_map(DeltaOp::Retain),
        (0usize..100).prop_map(DeltaOp::Delete),
        "\\PC{0,20}".prop_map(DeltaOp::Insert),
    ]
}

proptest! {
    /// Wire round-trip preserves arbitrary op sequences exactly —
    /// including redundant ones (required by the covert-channel work).
    #[test]
    fn serialize_parse_roundtrip(ops in proptest::collection::vec(arbitrary_op(), 0..20)) {
        let delta = Delta::from_ops(ops);
        let wire = delta.serialize();
        prop_assert_eq!(Delta::parse(&wire).unwrap(), delta);
    }

    /// diff(a, b) always transforms a into b, for any pair of strings.
    #[test]
    fn diff_is_always_correct(a in "\\PC{0,80}", b in "\\PC{0,80}") {
        let delta = diff(&a, &b);
        prop_assert_eq!(delta.apply(&a).unwrap(), b);
    }

    /// diff is canonical: diffing equal documents gives the identity.
    #[test]
    fn diff_of_equal_is_identity(a in "\\PC{0,80}") {
        prop_assert!(diff(&a, &a).is_identity());
    }

    /// Normalization never changes a delta's effect.
    #[test]
    fn normalized_preserves_semantics(
        doc in "[a-e]{0,60}",
        raw in proptest::collection::vec((any::<u8>(), 0usize..10, "[x-z]{0,5}"), 0..10),
    ) {
        // Build a valid delta against doc.
        let mut remaining = doc.chars().count();
        let mut ops = Vec::new();
        for (kind, n, text) in raw {
            match kind % 3 {
                0 => {
                    let take = n.min(remaining);
                    remaining -= take;
                    ops.push(DeltaOp::Retain(take));
                }
                1 => {
                    let take = n.min(remaining);
                    remaining -= take;
                    ops.push(DeltaOp::Delete(take));
                }
                _ => ops.push(DeltaOp::Insert(text)),
            }
        }
        let delta = Delta::from_ops(ops);
        let normalized = delta.normalized();
        prop_assert_eq!(delta.apply(&doc).unwrap(), normalized.apply(&doc).unwrap());
    }

    /// Canonicalization is idempotent and effect-preserving.
    #[test]
    fn canonicalize_is_idempotent(
        doc in "[a-e]{0,60}",
        raw in proptest::collection::vec((any::<u8>(), 0usize..10, "[x-z]{0,5}"), 0..10),
    ) {
        let mut remaining = doc.chars().count();
        let mut ops = Vec::new();
        for (kind, n, text) in raw {
            match kind % 3 {
                0 => { let t = n.min(remaining); remaining -= t; ops.push(DeltaOp::Retain(t)); }
                1 => { let t = n.min(remaining); remaining -= t; ops.push(DeltaOp::Delete(t)); }
                _ => ops.push(DeltaOp::Insert(text)),
            }
        }
        let delta = Delta::from_ops(ops);
        let once = delta.canonicalize(&doc).unwrap();
        let twice = once.canonicalize(&doc).unwrap();
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(once.apply(&doc).unwrap(), delta.apply(&doc).unwrap());
    }

    /// apply and apply_bytes agree on ASCII documents.
    #[test]
    fn apply_bytes_matches_apply_on_ascii(
        doc in "[ -~]{0,60}",
        at in any::<usize>(),
        text in "[ -~]{0,10}",
    ) {
        let len = doc.len();
        let at = if len == 0 { 0 } else { at % (len + 1) };
        let mut builder = Delta::builder();
        builder.retain(at).insert(&text);
        let delta = builder.build();
        let via_chars = delta.apply(&doc).unwrap();
        let via_bytes = String::from_utf8(delta.apply_bytes(doc.as_bytes()).unwrap()).unwrap();
        prop_assert_eq!(via_chars, via_bytes);
    }
}
