//! Core delta types: operations, parsing, serialization, application.

use std::fmt;
use std::str::FromStr;

use crate::error::DeltaError;

/// One operation of a delta (§IV-A of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DeltaOp {
    /// `=num`: move the cursor forward `num` characters.
    Retain(usize),
    /// `+str`: insert the string at the cursor and advance past it.
    Insert(String),
    /// `-num`: delete `num` characters starting at the cursor.
    Delete(usize),
}

impl DeltaOp {
    /// Number of characters of the *input* document this op consumes.
    pub fn input_len(&self) -> usize {
        match self {
            DeltaOp::Retain(n) | DeltaOp::Delete(n) => *n,
            DeltaOp::Insert(_) => 0,
        }
    }

    /// Number of characters this op contributes to the *output* document.
    pub fn output_len(&self) -> usize {
        match self {
            DeltaOp::Retain(n) => *n,
            DeltaOp::Insert(s) => s.chars().count(),
            DeltaOp::Delete(_) => 0,
        }
    }
}

/// An incremental document update: a sequence of [`DeltaOp`]s applied from
/// the start of the document. Any document content after the last consumed
/// position is implicitly retained.
///
/// Parsing and serialization preserve the exact operation sequence — a
/// redundant sequence such as `+a	-1	+a` is *not* silently simplified,
/// because faithfully representing redundant encodings is what makes the
/// covert-channel experiments of §VI-B possible. Use
/// [`Delta::normalized`] or [`Delta::canonicalize`] for minimal forms.
///
/// # Example
///
/// ```
/// use pe_delta::{Delta, DeltaOp};
///
/// let delta = Delta::from_ops(vec![DeltaOp::Retain(2), DeltaOp::Delete(5)]);
/// assert_eq!(delta.apply("abcdefg")?, "ab");
/// # Ok::<(), pe_delta::DeltaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Delta {
    ops: Vec<DeltaOp>,
}

impl Delta {
    /// The identity delta (no operations).
    pub fn new() -> Delta {
        Delta { ops: Vec::new() }
    }

    /// Creates a delta from explicit operations, preserving their order
    /// and any redundancy.
    pub fn from_ops(ops: Vec<DeltaOp>) -> Delta {
        Delta { ops }
    }

    /// Starts a [`DeltaBuilder`].
    pub fn builder() -> DeltaBuilder {
        DeltaBuilder::new()
    }

    /// The operations of this delta.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// True when applying this delta never changes any document.
    ///
    /// Note this is a *syntactic* check: a delta like `-1	+a` applied to
    /// `a…` is semantically identity but not syntactically.
    pub fn is_identity(&self) -> bool {
        self.ops.iter().all(|op| matches!(op, DeltaOp::Retain(_)))
    }

    /// Minimum number of characters the input document must have.
    pub fn input_len(&self) -> usize {
        self.ops.iter().map(DeltaOp::input_len).sum()
    }

    /// Net change in document length caused by this delta.
    pub fn len_change(&self) -> isize {
        self.ops
            .iter()
            .map(|op| match op {
                DeltaOp::Insert(s) => s.chars().count() as isize,
                DeltaOp::Delete(n) => -(*n as isize),
                DeltaOp::Retain(_) => 0,
            })
            .sum()
    }

    /// Parses the tab-separated wire form.
    ///
    /// # Errors
    ///
    /// Returns [`DeltaError::UnknownOp`] for tokens not starting with
    /// `=`, `+` or `-`; [`DeltaError::InvalidNumber`] for malformed
    /// counts; [`DeltaError::InvalidEscape`] for bad `%` escapes in
    /// inserted text.
    pub fn parse(text: &str) -> Result<Delta, DeltaError> {
        if text.is_empty() {
            return Ok(Delta::new());
        }
        let mut ops = Vec::new();
        for token in text.split('\t') {
            let mut chars = token.chars();
            match chars.next() {
                Some('=') => ops.push(DeltaOp::Retain(parse_count(chars.as_str(), token)?)),
                Some('-') => ops.push(DeltaOp::Delete(parse_count(chars.as_str(), token)?)),
                Some('+') => ops.push(DeltaOp::Insert(unescape(chars.as_str())?)),
                Some(c) => return Err(DeltaError::UnknownOp { op: c }),
                None => return Err(DeltaError::EmptyToken),
            }
        }
        Ok(Delta { ops })
    }

    /// Serializes to the tab-separated wire form.
    ///
    /// Inserted text is escaped so framing survives: `%` becomes `%25` and
    /// the tab character becomes `%09`. [`Delta::parse`] reverses this.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                out.push('\t');
            }
            match op {
                DeltaOp::Retain(n) => {
                    out.push('=');
                    out.push_str(&n.to_string());
                }
                DeltaOp::Delete(n) => {
                    out.push('-');
                    out.push_str(&n.to_string());
                }
                DeltaOp::Insert(s) => {
                    out.push('+');
                    out.push_str(&escape(s));
                }
            }
        }
        out
    }

    /// Applies this delta to `document`, returning the updated document.
    ///
    /// Content beyond the last consumed position is implicitly retained.
    ///
    /// # Errors
    ///
    /// Returns [`DeltaError::PastEnd`] when a retain or delete runs past
    /// the end of the document.
    pub fn apply(&self, document: &str) -> Result<String, DeltaError> {
        let chars: Vec<char> = document.chars().collect();
        let out = self.apply_chars(&chars)?;
        Ok(out.into_iter().collect())
    }

    /// Applies this delta to a character buffer (the form used internally
    /// by the encryption layer, which tracks documents as `Vec<char>`).
    ///
    /// # Errors
    ///
    /// As for [`Delta::apply`].
    pub fn apply_chars(&self, document: &[char]) -> Result<Vec<char>, DeltaError> {
        let mut out = Vec::with_capacity(document.len());
        let mut cursor = 0usize;
        for op in &self.ops {
            match op {
                DeltaOp::Retain(n) => {
                    let end = cursor.checked_add(*n).filter(|&e| e <= document.len()).ok_or(
                        DeltaError::PastEnd { position: cursor, requested: *n, len: document.len() },
                    )?;
                    out.extend_from_slice(&document[cursor..end]);
                    cursor = end;
                }
                DeltaOp::Delete(n) => {
                    let end = cursor.checked_add(*n).filter(|&e| e <= document.len()).ok_or(
                        DeltaError::PastEnd { position: cursor, requested: *n, len: document.len() },
                    )?;
                    cursor = end;
                }
                DeltaOp::Insert(s) => out.extend(s.chars()),
            }
        }
        out.extend_from_slice(&document[cursor..]);
        Ok(out)
    }

    /// Applies this delta to a byte buffer, interpreting all counts as
    /// **byte** counts and inserting the UTF-8 bytes of inserted text.
    ///
    /// The private-editing mediator operates on the byte level (encryption
    /// blocks hold bytes), so its wire protocol counts bytes; for ASCII
    /// documents this coincides with [`Delta::apply`].
    ///
    /// # Errors
    ///
    /// As for [`Delta::apply`].
    pub fn apply_bytes(&self, document: &[u8]) -> Result<Vec<u8>, DeltaError> {
        let mut out = Vec::with_capacity(document.len());
        let mut cursor = 0usize;
        for op in &self.ops {
            match op {
                DeltaOp::Retain(n) => {
                    let end = cursor.checked_add(*n).filter(|&e| e <= document.len()).ok_or(
                        DeltaError::PastEnd { position: cursor, requested: *n, len: document.len() },
                    )?;
                    out.extend_from_slice(&document[cursor..end]);
                    cursor = end;
                }
                DeltaOp::Delete(n) => {
                    let end = cursor.checked_add(*n).filter(|&e| e <= document.len()).ok_or(
                        DeltaError::PastEnd { position: cursor, requested: *n, len: document.len() },
                    )?;
                    cursor = end;
                }
                DeltaOp::Insert(s) => out.extend_from_slice(s.as_bytes()),
            }
        }
        out.extend_from_slice(&document[cursor..]);
        Ok(out)
    }

    /// Returns an equivalent delta with adjacent same-kind operations
    /// merged, zero-length operations removed, and trailing retains
    /// dropped.
    pub fn normalized(&self) -> Delta {
        let mut builder = DeltaBuilder::new();
        for op in &self.ops {
            match op {
                DeltaOp::Retain(n) => {
                    builder.retain(*n);
                }
                DeltaOp::Delete(n) => {
                    builder.delete(*n);
                }
                DeltaOp::Insert(s) => {
                    builder.insert(s);
                }
            }
        }
        builder.build()
    }

    /// Rewrites this delta into the canonical minimal form with respect to
    /// the document `base` it would be applied to: the result of
    /// [`diff`](crate::diff)`(base, self.apply(base))`.
    ///
    /// This is the §VI-B countermeasure against covert channels encoded in
    /// redundant operation sequences: any two deltas with the same effect
    /// on `base` canonicalize to the identical delta, destroying the
    /// encoding.
    ///
    /// # Errors
    ///
    /// Returns an error if this delta does not apply to `base`.
    pub fn canonicalize(&self, base: &str) -> Result<Delta, DeltaError> {
        let updated = self.apply(base)?;
        Ok(crate::diff(base, &updated))
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.serialize())
    }
}

impl FromStr for Delta {
    type Err = DeltaError;

    fn from_str(s: &str) -> Result<Delta, DeltaError> {
        Delta::parse(s)
    }
}

fn parse_count(digits: &str, token: &str) -> Result<usize, DeltaError> {
    digits
        .parse::<usize>()
        .map_err(|_| DeltaError::InvalidNumber { token: token.to_string() })
}

fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '%' => out.push_str("%25"),
            '\t' => out.push_str("%09"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(text: &str) -> Result<String, DeltaError> {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hi = chars.next();
        let lo = chars.next();
        match (hi, lo) {
            (Some('2'), Some('5')) => out.push('%'),
            (Some('0'), Some('9')) => out.push('\t'),
            _ => {
                return Err(DeltaError::InvalidEscape {
                    sequence: format!("%{}{}", hi.unwrap_or(' '), lo.unwrap_or(' ')),
                })
            }
        }
    }
    Ok(out)
}

/// Incremental constructor for [`Delta`] values that merges adjacent
/// operations as they are added (producing normalized deltas).
///
/// # Example
///
/// ```
/// use pe_delta::Delta;
///
/// let mut builder = Delta::builder();
/// builder.retain(2).retain(3).insert("ab").insert("cd");
/// let delta = builder.build();
/// assert_eq!(delta.serialize(), "=5\t+abcd");
/// ```
#[derive(Debug, Default)]
pub struct DeltaBuilder {
    ops: Vec<DeltaOp>,
}

impl DeltaBuilder {
    /// Creates an empty builder.
    pub fn new() -> DeltaBuilder {
        DeltaBuilder { ops: Vec::new() }
    }

    /// Appends a retain of `n` characters (no-op when `n == 0`).
    pub fn retain(&mut self, n: usize) -> &mut DeltaBuilder {
        if n == 0 {
            return self;
        }
        if let Some(DeltaOp::Retain(prev)) = self.ops.last_mut() {
            *prev += n;
        } else {
            self.ops.push(DeltaOp::Retain(n));
        }
        self
    }

    /// Appends an insertion (no-op when `text` is empty).
    pub fn insert(&mut self, text: &str) -> &mut DeltaBuilder {
        if text.is_empty() {
            return self;
        }
        if let Some(DeltaOp::Insert(prev)) = self.ops.last_mut() {
            prev.push_str(text);
        } else {
            self.ops.push(DeltaOp::Insert(text.to_string()));
        }
        self
    }

    /// Appends a deletion of `n` characters (no-op when `n == 0`).
    pub fn delete(&mut self, n: usize) -> &mut DeltaBuilder {
        if n == 0 {
            return self;
        }
        if let Some(DeltaOp::Delete(prev)) = self.ops.last_mut() {
            *prev += n;
        } else {
            self.ops.push(DeltaOp::Delete(n));
        }
        self
    }

    /// Finishes the delta, dropping any trailing retain (the protocol
    /// implicitly retains the rest of the document).
    pub fn build(&self) -> Delta {
        let mut ops = self.ops.clone();
        if let Some(DeltaOp::Retain(_)) = ops.last() {
            ops.pop();
        }
        Delta { ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_one() {
        let delta = Delta::parse("=2\t-5").unwrap();
        assert_eq!(delta.apply("abcdefg").unwrap(), "ab");
    }

    #[test]
    fn paper_example_two() {
        let delta = Delta::parse("=2\t-3\t+uv\t=2\t+w").unwrap();
        assert_eq!(delta.apply("abcdefg").unwrap(), "abuvfgw");
    }

    #[test]
    fn empty_delta_is_identity() {
        let delta = Delta::parse("").unwrap();
        assert!(delta.is_identity());
        assert_eq!(delta.apply("hello").unwrap(), "hello");
        assert_eq!(delta.serialize(), "");
    }

    #[test]
    fn implicit_trailing_retain() {
        let delta = Delta::parse("+X").unwrap();
        assert_eq!(delta.apply("abc").unwrap(), "Xabc");
        let delta = Delta::parse("=1\t-1").unwrap();
        assert_eq!(delta.apply("abc").unwrap(), "ac");
    }

    #[test]
    fn roundtrip_serialization() {
        let cases = ["=2\t-5", "=2\t-3\t+uv\t=2\t+w", "+hello world", "-10", "=0", ""];
        for case in cases {
            let delta = Delta::parse(case).unwrap();
            assert_eq!(delta.serialize(), *case);
        }
    }

    #[test]
    fn escaping_tab_and_percent_in_inserts() {
        let mut builder = Delta::builder();
        builder.insert("a\tb%c");
        let delta = builder.build();
        let wire = delta.serialize();
        assert_eq!(wire, "+a%09b%25c");
        assert_eq!(Delta::parse(&wire).unwrap(), delta);
        assert_eq!(delta.apply("").unwrap(), "a\tb%c");
    }

    #[test]
    fn bad_escape_rejected() {
        assert!(matches!(Delta::parse("+a%zz"), Err(DeltaError::InvalidEscape { .. })));
        assert!(matches!(Delta::parse("+a%2"), Err(DeltaError::InvalidEscape { .. })));
    }

    #[test]
    fn unknown_op_rejected() {
        assert!(matches!(Delta::parse("*5"), Err(DeltaError::UnknownOp { op: '*' })));
    }

    #[test]
    fn empty_token_rejected() {
        assert!(matches!(Delta::parse("=1\t\t=2"), Err(DeltaError::EmptyToken)));
    }

    #[test]
    fn invalid_number_rejected() {
        assert!(matches!(Delta::parse("=abc"), Err(DeltaError::InvalidNumber { .. })));
        assert!(matches!(Delta::parse("-"), Err(DeltaError::InvalidNumber { .. })));
    }

    #[test]
    fn retain_past_end_fails() {
        let delta = Delta::parse("=10").unwrap();
        assert!(matches!(delta.apply("abc"), Err(DeltaError::PastEnd { .. })));
    }

    #[test]
    fn delete_past_end_fails() {
        let delta = Delta::parse("=2\t-5").unwrap();
        assert!(matches!(delta.apply("abc"), Err(DeltaError::PastEnd { .. })));
    }

    #[test]
    fn unicode_documents() {
        let delta = Delta::parse("=2\t+héllo\t-1").unwrap();
        assert_eq!(delta.apply("日本語です").unwrap(), "日本hélloです");
    }

    #[test]
    fn input_len_and_len_change() {
        let delta = Delta::parse("=2\t-3\t+uv\t=2\t+w").unwrap();
        assert_eq!(delta.input_len(), 7);
        assert_eq!(delta.len_change(), 0);
        let delta = Delta::parse("-5\t+ab").unwrap();
        assert_eq!(delta.len_change(), -3);
    }

    #[test]
    fn parse_preserves_redundant_sequences() {
        // The Ord(q) covert channel from §VI-B must survive parse/serialize.
        let wire = "+q\t-1\t+q\t-1\t+q";
        let delta = Delta::parse(wire).unwrap();
        assert_eq!(delta.ops().len(), 5);
        assert_eq!(delta.serialize(), wire);
    }

    #[test]
    fn normalized_merges_and_trims() {
        let delta = Delta::parse("=1\t=2\t+ab\t+cd\t-1\t-2\t=9").unwrap();
        let norm = delta.normalized();
        assert_eq!(norm.serialize(), "=3\t+abcd\t-3");
    }

    #[test]
    fn canonicalize_squashes_covert_encoding() {
        // A malicious encoding of "insert q at 0" using Ord(q)=17 redundant
        // steps must canonicalize to the same delta as the honest client's.
        let base = "hello";
        // Sneaky: 17 separate one-character inserts (the count encodes q).
        let sneaky = Delta::from_ops(vec![DeltaOp::Insert("x".into()); 17]);
        // Honest: one 17-character insert.
        let mut honest = Delta::builder();
        honest.insert(&"x".repeat(17));
        let honest = honest.build();
        assert_ne!(sneaky, honest, "encodings differ on the wire");
        assert_eq!(
            sneaky.canonicalize(base).unwrap(),
            honest.canonicalize(base).unwrap()
        );
    }

    #[test]
    fn builder_chains_and_merges() {
        let mut builder = Delta::builder();
        builder.retain(1).retain(0).insert("").insert("ab").delete(2).delete(3).retain(4);
        let delta = builder.build();
        assert_eq!(delta.serialize(), "=1\t+ab\t-5");
    }

    #[test]
    fn display_and_fromstr() {
        let delta: Delta = "=2\t+hi".parse().unwrap();
        assert_eq!(delta.to_string(), "=2\t+hi");
    }
}
