//! Operational transformation: rebasing one delta over another.
//!
//! The paper's §VII-A finds collaborative editing only *partially*
//! functional under the extension and points at SPORC (Feldman et al.,
//! OSDI 2010) for the full solution. SPORC's core mechanism is
//! **operational transformation** (OT): when two clients edit the same
//! base concurrently, each rebases its delta over the other's so both
//! converge. This module implements OT for the delta language, enabling
//! the client-side merge that upgrades concurrent editing from "partial"
//! to functional (see `DocsClient::save_merging`).
//!
//! The convergence law (OT's TP1 property), verified by property tests:
//!
//! ```text
//! b.transform(a, Right).apply(a.apply(doc))
//!     == a.transform(b, Left).apply(b.apply(doc))
//! ```
//!
//! where [`Side`] breaks the tie when both deltas insert at the same
//! position (the `Left` delta's insertion ends up first).

use crate::error::DeltaError;
use crate::ops::{Delta, DeltaOp};

/// Tie-breaking priority for concurrent insertions at the same position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// This delta's insertions win ties (end up before the other's).
    Left,
    /// The other delta's insertions win ties.
    Right,
}

/// A consumable cursor over a delta's ops with explicit trailing retain.
struct OpStream {
    ops: std::collections::VecDeque<DeltaOp>,
}

impl OpStream {
    fn new(delta: &Delta, base_len: usize) -> Result<OpStream, DeltaError> {
        let consumed = delta.input_len();
        if consumed > base_len {
            return Err(DeltaError::PastEnd {
                position: 0,
                requested: consumed,
                len: base_len,
            });
        }
        let mut ops: std::collections::VecDeque<DeltaOp> = delta.ops().to_vec().into();
        let tail = base_len - consumed;
        if tail > 0 {
            ops.push_back(DeltaOp::Retain(tail));
        }
        Ok(OpStream { ops })
    }

    fn peek(&self) -> Option<&DeltaOp> {
        self.ops.front()
    }

    fn pop(&mut self) -> Option<DeltaOp> {
        self.ops.pop_front()
    }

    /// Consumes up to `n` input characters from the head retain/delete,
    /// returning how many were consumed and whether they were retained.
    fn consume(&mut self, n: usize) -> (usize, bool) {
        match self.ops.pop_front() {
            Some(DeltaOp::Retain(m)) => {
                let take = m.min(n);
                if m > take {
                    self.ops.push_front(DeltaOp::Retain(m - take));
                }
                (take, true)
            }
            Some(DeltaOp::Delete(m)) => {
                let take = m.min(n);
                if m > take {
                    self.ops.push_front(DeltaOp::Delete(m - take));
                }
                (take, false)
            }
            Some(op @ DeltaOp::Insert(_)) => {
                // Inserts consume no input; put it back.
                self.ops.push_front(op);
                (0, true)
            }
            None => (0, true),
        }
    }

    fn head_input_len(&self) -> usize {
        match self.peek() {
            Some(DeltaOp::Retain(n)) | Some(DeltaOp::Delete(n)) => *n,
            _ => 0,
        }
    }
}

impl Delta {
    /// Rebases this delta over `other`: both were produced against the
    /// same base document of `base_len` characters; the result applies to
    /// `other.apply(base)` and preserves this delta's intent.
    ///
    /// `side` breaks insertion ties: with [`Side::Left`], this delta's
    /// insertions at a shared position land before `other`'s.
    ///
    /// # Errors
    ///
    /// Returns [`DeltaError::PastEnd`] when either delta consumes more
    /// than `base_len` characters.
    ///
    /// # Example
    ///
    /// ```
    /// use pe_delta::{Delta, Side};
    ///
    /// let base = "shared text";
    /// let alice = Delta::parse("+A: ")?;                    // prepend
    /// let bob = Delta::parse("=11\t+ (bob)")?;              // append
    /// let bob_rebased = bob.transform(&alice, base.len(), Side::Right)?;
    /// let merged = bob_rebased.apply(&alice.apply(base)?)?;
    /// assert_eq!(merged, "A: shared text (bob)");
    /// # Ok::<(), pe_delta::DeltaError>(())
    /// ```
    pub fn transform(
        &self,
        other: &Delta,
        base_len: usize,
        side: Side,
    ) -> Result<Delta, DeltaError> {
        let mut a = OpStream::new(self, base_len)?;
        let mut b = OpStream::new(other, base_len)?;
        let mut out = Delta::builder();
        loop {
            match (a.peek(), b.peek()) {
                (None, _) => break,
                // This delta inserts: it wins the tie when Left, or when
                // the other is not inserting here.
                (Some(DeltaOp::Insert(_)), peek_b) => {
                    let b_inserting = matches!(peek_b, Some(DeltaOp::Insert(_)));
                    if side == Side::Left || !b_inserting {
                        if let Some(DeltaOp::Insert(s)) = a.pop() {
                            out.insert(&s);
                        }
                    } else if let Some(DeltaOp::Insert(s)) = b.pop() {
                        // The other's insert lands first: retain over it.
                        out.retain(s.chars().count());
                    }
                }
                // The other inserts text this delta must retain over.
                (_, Some(DeltaOp::Insert(_))) => {
                    if let Some(DeltaOp::Insert(s)) = b.pop() {
                        out.retain(s.chars().count());
                    }
                }
                // Both consume base characters.
                (Some(_), Some(_)) => {
                    let n = a.head_input_len().min(b.head_input_len()).max(1);
                    let (taken_a, a_retains) = a.consume(n);
                    let (taken_b, b_retains) = b.consume(taken_a);
                    debug_assert_eq!(taken_a, taken_b, "streams must stay aligned");
                    match (a_retains, b_retains) {
                        // Both keep the characters.
                        (true, true) => {
                            out.retain(taken_a);
                        }
                        // This delta deletes characters the other kept.
                        (false, true) => {
                            out.delete(taken_a);
                        }
                        // The other already deleted them: nothing to do.
                        (true, false) | (false, false) => {}
                    }
                }
                // The other is exhausted (its implicit tail was explicit,
                // so this means both hit base_len): emit the rest of a.
                (Some(_), None) => {
                    while let Some(op) = a.pop() {
                        match op {
                            DeltaOp::Retain(n) => {
                                out.retain(n);
                            }
                            DeltaOp::Delete(n) => {
                                out.delete(n);
                            }
                            DeltaOp::Insert(s) => {
                                out.insert(&s);
                            }
                        }
                    }
                    break;
                }
            }
        }
        Ok(out.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Checks TP1 convergence for a pair of concurrent deltas.
    fn converges(doc: &str, a: &Delta, b: &Delta) -> String {
        let len = doc.chars().count();
        let a_prime = a.transform(b, len, Side::Left).unwrap();
        let b_prime = b.transform(a, len, Side::Right).unwrap();
        let via_a = b_prime.apply(&a.apply(doc).unwrap()).unwrap();
        let via_b = a_prime.apply(&b.apply(doc).unwrap()).unwrap();
        assert_eq!(via_a, via_b, "TP1 violated for {a:?} / {b:?} on {doc:?}");
        via_a
    }

    #[test]
    fn disjoint_edits_merge() {
        let doc = "the quick brown fox";
        let a = Delta::parse("+<< ").unwrap(); // prepend
        let b = Delta::parse("=19\t+ >>").unwrap(); // append
        assert_eq!(converges(doc, &a, &b), "<< the quick brown fox >>");
    }

    #[test]
    fn same_position_inserts_tiebreak() {
        let doc = "ab";
        let a = Delta::parse("=1\t+X").unwrap();
        let b = Delta::parse("=1\t+Y").unwrap();
        // Left's insert lands first.
        assert_eq!(converges(doc, &a, &b), "aXYb");
    }

    #[test]
    fn overlapping_deletes_do_not_double_delete() {
        let doc = "abcdefgh";
        let a = Delta::parse("=2\t-4").unwrap(); // delete cdef
        let b = Delta::parse("=4\t-4").unwrap(); // delete efgh
        assert_eq!(converges(doc, &a, &b), "ab");
    }

    #[test]
    fn delete_vs_insert_inside_range() {
        let doc = "abcdef";
        let a = Delta::parse("=1\t-4").unwrap(); // delete bcde
        let b = Delta::parse("=3\t+XY").unwrap(); // insert inside the range
        // The insert survives; the surrounding deletion still happens.
        assert_eq!(converges(doc, &a, &b), "aXYf");
    }

    #[test]
    fn identity_transforms_to_identity() {
        let doc = "unchanged";
        let id = Delta::new();
        let b = Delta::parse("=3\t+news").unwrap();
        let id_prime = id.transform(&b, doc.len(), Side::Left).unwrap();
        assert!(id_prime.apply(&b.apply(doc).unwrap()).unwrap() == b.apply(doc).unwrap());
    }

    #[test]
    fn transform_rejects_oversized_deltas() {
        let a = Delta::parse("=100").unwrap();
        let b = Delta::new();
        assert!(a.transform(&b, 5, Side::Left).is_err());
        assert!(b.transform(&a, 5, Side::Right).is_err());
    }

    /// Builds a valid random delta for a document of `len` chars.
    fn build(len: usize, raw: &[(u8, u8, char)]) -> Delta {
        let mut remaining = len;
        let mut builder = Delta::builder();
        for &(kind, n, c) in raw {
            let n = n as usize % 7;
            match kind % 3 {
                0 => {
                    let take = n.min(remaining);
                    remaining -= take;
                    builder.retain(take);
                }
                1 => {
                    let take = n.min(remaining);
                    remaining -= take;
                    builder.delete(take);
                }
                _ => {
                    let text: String = std::iter::repeat_n(c, n % 4).collect();
                    builder.insert(&text);
                }
            }
        }
        builder.build()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// TP1: concurrent deltas converge regardless of application order.
        #[test]
        fn tp1_convergence(
            doc in "[a-d]{0,40}",
            raw_a in proptest::collection::vec((any::<u8>(), any::<u8>(), proptest::char::range('w', 'y')), 0..8),
            raw_b in proptest::collection::vec((any::<u8>(), any::<u8>(), proptest::char::range('W', 'Y')), 0..8),
        ) {
            let len = doc.chars().count();
            let a = build(len, &raw_a);
            let b = build(len, &raw_b);
            let a_prime = a.transform(&b, len, Side::Left).unwrap();
            let b_prime = b.transform(&a, len, Side::Right).unwrap();
            let via_a = b_prime.apply(&a.apply(&doc).unwrap()).unwrap();
            let via_b = a_prime.apply(&b.apply(&doc).unwrap()).unwrap();
            prop_assert_eq!(via_a, via_b);
        }

        /// Transforming against the identity changes nothing semantically.
        #[test]
        fn identity_is_neutral(
            doc in "[a-d]{0,30}",
            raw in proptest::collection::vec((any::<u8>(), any::<u8>(), proptest::char::range('p', 'r')), 0..8),
        ) {
            let len = doc.chars().count();
            let a = build(len, &raw);
            let id = Delta::new();
            let a_prime = a.transform(&id, len, Side::Left).unwrap();
            prop_assert_eq!(a_prime.apply(&doc).unwrap(), a.apply(&doc).unwrap());
        }
    }
}
