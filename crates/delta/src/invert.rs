//! Delta inversion: computing the undo of an edit.
//!
//! Editors need undo; the protocol layer supports it by inverting a delta
//! *with respect to the document it was applied to*: `d.invert(base)`
//! produces the delta that transforms `d.apply(base)` back into `base`.
//! Inversion needs the base document because a delete destroys
//! information (the deleted text) that only the base can supply.

use crate::error::DeltaError;
use crate::ops::{Delta, DeltaOp};

impl Delta {
    /// Computes the inverse of this delta with respect to `base`: applying
    /// the result to `self.apply(base)` yields `base` again.
    ///
    /// # Errors
    ///
    /// Returns [`DeltaError::PastEnd`] when this delta does not fit
    /// `base`.
    ///
    /// # Example
    ///
    /// ```
    /// use pe_delta::Delta;
    ///
    /// let edit = Delta::parse("=2\t-3\t+uv")?;
    /// let edited = edit.apply("abcdefg")?;          // "abuvfg" + implicit tail
    /// let undo = edit.invert("abcdefg")?;
    /// assert_eq!(undo.apply(&edited)?, "abcdefg");
    /// # Ok::<(), pe_delta::DeltaError>(())
    /// ```
    pub fn invert(&self, base: &str) -> Result<Delta, DeltaError> {
        let chars: Vec<char> = base.chars().collect();
        let mut cursor = 0usize; // position in base
        let mut inverse = Delta::builder();
        for op in self.ops() {
            match op {
                DeltaOp::Retain(n) => {
                    let end =
                        cursor.checked_add(*n).filter(|&e| e <= chars.len()).ok_or(
                            DeltaError::PastEnd {
                                position: cursor,
                                requested: *n,
                                len: chars.len(),
                            },
                        )?;
                    inverse.retain(*n);
                    cursor = end;
                }
                DeltaOp::Insert(s) => {
                    // Inserted text is deleted by the inverse.
                    inverse.delete(s.chars().count());
                }
                DeltaOp::Delete(n) => {
                    let end =
                        cursor.checked_add(*n).filter(|&e| e <= chars.len()).ok_or(
                            DeltaError::PastEnd {
                                position: cursor,
                                requested: *n,
                                len: chars.len(),
                            },
                        )?;
                    // Deleted text is re-inserted by the inverse.
                    let restored: String = chars[cursor..end].iter().collect();
                    inverse.insert(&restored);
                    cursor = end;
                }
            }
        }
        Ok(inverse.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check(base: &str, wire: &str) {
        let delta = Delta::parse(wire).unwrap();
        let edited = delta.apply(base).unwrap();
        let inverse = delta.invert(base).unwrap();
        assert_eq!(inverse.apply(&edited).unwrap(), base, "invert({wire:?}) on {base:?}");
    }

    #[test]
    fn paper_examples_invert() {
        check("abcdefg", "=2\t-5");
        check("abcdefg", "=2\t-3\t+uv\t=2\t+w");
    }

    #[test]
    fn pure_cases() {
        check("hello", "");
        check("hello", "+prefix ");
        check("hello", "-5");
        check("hello", "=5\t+ suffix");
        check("", "+from nothing");
    }

    #[test]
    fn unicode_restores() {
        check("日本語です", "=1\t-2\t+ABC");
    }

    #[test]
    fn invert_past_end_fails() {
        let delta = Delta::parse("=9").unwrap();
        assert!(delta.invert("abc").is_err());
    }

    #[test]
    fn double_inversion_restores_effect() {
        let base = "double inversion test";
        let delta = Delta::parse("=7\t-9\t+X").unwrap();
        let edited = delta.apply(base).unwrap();
        let inverse = delta.invert(base).unwrap();
        let double = inverse.invert(&edited).unwrap();
        assert_eq!(double.apply(base).unwrap(), edited);
    }

    proptest! {
        /// invert is a true left inverse for arbitrary valid deltas.
        #[test]
        fn inversion_law(
            base in "[a-f ]{0,60}",
            raw in proptest::collection::vec((any::<u8>(), 0usize..12, "[x-z]{0,6}"), 0..10),
        ) {
            let mut remaining = base.chars().count();
            let mut builder = Delta::builder();
            for (kind, n, text) in raw {
                match kind % 3 {
                    0 => { let t = n.min(remaining); remaining -= t; builder.retain(t); }
                    1 => { let t = n.min(remaining); remaining -= t; builder.delete(t); }
                    _ => { builder.insert(&text); }
                }
            }
            let delta = builder.build();
            let edited = delta.apply(&base).unwrap();
            let inverse = delta.invert(&base).unwrap();
            prop_assert_eq!(inverse.apply(&edited).unwrap(), base);
        }
    }
}
