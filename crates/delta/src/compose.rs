//! Delta composition.
//!
//! `a.compose(&b)` produces a single delta equivalent to applying `a` and
//! then `b`. The extension uses composition to merge the client's queued
//! updates before canonicalizing them (§VI-B suggests "maintaining each
//! group of delta updates and merging them into a canonical form before
//! sending an update to the server").

use std::collections::VecDeque;

use crate::ops::{Delta, DeltaOp};

impl Delta {
    /// Composes `self` followed by `other` into one delta such that for
    /// every document `d` where the two-step application succeeds,
    /// `self.compose(&other).apply(d) == other.apply(self.apply(d))`.
    ///
    /// Composition is total: operations of `other` that reach past
    /// `self`'s explicit output operate on the implicitly-retained tail
    /// and pass through unchanged. Whether the composed delta fits a
    /// particular document is still checked at [`Delta::apply`] time.
    pub fn compose(&self, other: &Delta) -> Delta {
        let mut a: VecDeque<DeltaOp> = self.ops().to_vec().into();
        let mut b: VecDeque<DeltaOp> = other.ops().to_vec().into();
        let mut out = Delta::builder();
        loop {
            // Deletions in `a` affect the original document regardless of
            // what `b` does afterwards.
            if let Some(DeltaOp::Delete(n)) = a.front() {
                out.delete(*n);
                a.pop_front();
                continue;
            }
            // Insertions in `b` are independent of `a`'s output.
            if let Some(DeltaOp::Insert(s)) = b.front() {
                out.insert(s);
                b.pop_front();
                continue;
            }
            match (a.pop_front(), b.pop_front()) {
                (None, None) => break,
                // `a` exhausted: the rest of `b` operates on the implicit
                // tail of the original document.
                (None, Some(op)) => {
                    push_op(&mut out, &op);
                    while let Some(op) = b.pop_front() {
                        push_op(&mut out, &op);
                    }
                    break;
                }
                // `b` exhausted: it implicitly retains everything `a`
                // produces.
                (Some(op), None) => {
                    push_op(&mut out, &op);
                    while let Some(op) = a.pop_front() {
                        push_op(&mut out, &op);
                    }
                    break;
                }
                (Some(DeltaOp::Retain(n)), Some(DeltaOp::Retain(m))) => {
                    let take = n.min(m);
                    out.retain(take);
                    requeue_count(&mut a, DeltaOp::Retain(n - take));
                    requeue_count(&mut b, DeltaOp::Retain(m - take));
                }
                (Some(DeltaOp::Retain(n)), Some(DeltaOp::Delete(m))) => {
                    let take = n.min(m);
                    out.delete(take);
                    requeue_count(&mut a, DeltaOp::Retain(n - take));
                    requeue_count(&mut b, DeltaOp::Delete(m - take));
                }
                (Some(DeltaOp::Insert(s)), Some(DeltaOp::Retain(m))) => {
                    let chars: Vec<char> = s.chars().collect();
                    let take = chars.len().min(m);
                    let kept: String = chars[..take].iter().collect();
                    out.insert(&kept);
                    let rest: String = chars[take..].iter().collect();
                    if !rest.is_empty() {
                        a.push_front(DeltaOp::Insert(rest));
                    }
                    requeue_count(&mut b, DeltaOp::Retain(m - take));
                }
                (Some(DeltaOp::Insert(s)), Some(DeltaOp::Delete(m))) => {
                    let chars: Vec<char> = s.chars().collect();
                    let take = chars.len().min(m);
                    let rest: String = chars[take..].iter().collect();
                    if !rest.is_empty() {
                        a.push_front(DeltaOp::Insert(rest));
                    }
                    requeue_count(&mut b, DeltaOp::Delete(m - take));
                }
                // Unreachable: deletes in `a` and inserts in `b` were
                // drained above.
                (Some(DeltaOp::Delete(_)), _) | (_, Some(DeltaOp::Insert(_))) => {
                    unreachable!("drained before the match")
                }
            }
        }
        out.build()
    }
}

/// Pushes an op onto the builder preserving its kind.
fn push_op(out: &mut crate::ops::DeltaBuilder, op: &DeltaOp) {
    match op {
        DeltaOp::Retain(n) => {
            out.retain(*n);
        }
        DeltaOp::Delete(n) => {
            out.delete(*n);
        }
        DeltaOp::Insert(s) => {
            out.insert(s);
        }
    }
}

/// Puts the remainder of a partially-consumed counting op back on the
/// queue front (dropping empty remainders).
fn requeue_count(queue: &mut VecDeque<DeltaOp>, op: DeltaOp) {
    let empty = matches!(&op, DeltaOp::Retain(0) | DeltaOp::Delete(0));
    if !empty {
        queue.push_front(op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn compose_check(doc: &str, a: &str, b: &str) {
        let da = Delta::parse(a).unwrap();
        let db = Delta::parse(b).unwrap();
        let two_step = db.apply(&da.apply(doc).unwrap()).unwrap();
        let composed = da.compose(&db);
        assert_eq!(
            composed.apply(doc).unwrap(),
            two_step,
            "compose({a:?}, {b:?}) on {doc:?} → {composed:?}"
        );
    }

    #[test]
    fn compose_simple_cases() {
        compose_check("abcdefg", "=2\t-5", "+xy");
        compose_check("abcdefg", "=2\t-3\t+uv\t=2\t+w", "=1\t-2\t+Q");
        compose_check("hello", "", "=1\t+i");
        compose_check("hello", "+abc", "");
        compose_check("hello", "-5", "+bye");
        compose_check("hello", "+抹茶", "=1\t-1");
    }

    #[test]
    fn compose_insert_then_delete_cancels() {
        let a = Delta::parse("+abc").unwrap();
        let b = Delta::parse("-3").unwrap();
        let composed = a.compose(&b);
        assert!(composed.is_identity(), "got {composed:?}");
    }

    #[test]
    fn compose_reaches_into_implicit_tail() {
        // `a` touches only the first char; `b` edits beyond a's explicit ops.
        compose_check("abcdef", "=1\t+X", "=4\t-2");
        // `b` consumes past everything `a` explicitly produced.
        compose_check("abcdef", "+P", "=3\t-4");
    }

    #[test]
    fn identity_composes_neutrally() {
        let d = Delta::parse("=2\t+xy\t-1").unwrap();
        let id = Delta::new();
        assert_eq!(id.compose(&d).normalized(), d.normalized());
        assert_eq!(d.compose(&id).normalized(), d.normalized());
    }

    /// Builds a random valid delta for a document of length `len` from a
    /// bag of raw choices.
    fn build_delta(len: usize, raw: &[(u8, u8)]) -> Delta {
        let mut remaining = len;
        let mut builder = Delta::builder();
        for &(kind, amount) in raw {
            let amount = amount as usize;
            match kind % 3 {
                0 => {
                    let take = amount.min(remaining);
                    builder.retain(take);
                    remaining -= take;
                }
                1 => {
                    let take = amount.min(remaining);
                    builder.delete(take);
                    remaining -= take;
                }
                _ => {
                    let text: String =
                        std::iter::repeat_n('i', amount % 5).collect();
                    builder.insert(&text);
                }
            }
        }
        builder.build()
    }

    proptest! {
        /// compose(a, b).apply(d) == b.apply(a.apply(d)) for arbitrary
        /// valid deltas.
        #[test]
        fn compose_equals_sequential_application(
            doc in "[a-d]{0,40}",
            raw_a in proptest::collection::vec((0u8..=255, 0u8..=6), 0..8),
            raw_b in proptest::collection::vec((0u8..=255, 0u8..=6), 0..8),
        ) {
            let a = build_delta(doc.chars().count(), &raw_a);
            let mid = a.apply(&doc).unwrap();
            let b = build_delta(mid.chars().count(), &raw_b);
            let two_step = b.apply(&mid).unwrap();
            let composed = a.compose(&b);
            prop_assert_eq!(composed.apply(&doc).unwrap(), two_step);
        }

        /// Composition is associative in effect.
        #[test]
        fn compose_is_associative_in_effect(
            doc in "[a-c]{0,30}",
            raw_a in proptest::collection::vec((0u8..=255, 0u8..=5), 0..6),
            raw_b in proptest::collection::vec((0u8..=255, 0u8..=5), 0..6),
            raw_c in proptest::collection::vec((0u8..=255, 0u8..=5), 0..6),
        ) {
            let a = build_delta(doc.chars().count(), &raw_a);
            let d1 = a.apply(&doc).unwrap();
            let b = build_delta(d1.chars().count(), &raw_b);
            let d2 = b.apply(&d1).unwrap();
            let c = build_delta(d2.chars().count(), &raw_c);
            let left = a.compose(&b).compose(&c);
            let right = a.compose(&b.compose(&c));
            prop_assert_eq!(left.apply(&doc).unwrap(), right.apply(&doc).unwrap());
        }
    }
}
