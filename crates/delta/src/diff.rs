//! Deriving a delta from two document versions.
//!
//! The micro-benchmark of §VII-B derives, for every random pair
//! `(D, D′)`, "a delta string … such that it transforms D to D′". This
//! module provides that derivation using the common-prefix/common-suffix
//! method: the result is the canonical minimal three-operation delta
//! `retain p, delete m, insert s` (with empty parts omitted).
//!
//! Canonicality is what makes [`Delta::canonicalize`](crate::Delta::canonicalize)
//! an effective covert-channel countermeasure: every pair of equivalent
//! edits maps to the same wire bytes.

use crate::ops::Delta;

/// Computes the canonical delta transforming `old` into `new`.
///
/// # Example
///
/// ```
/// use pe_delta::diff;
///
/// let delta = diff("abcdefg", "abuvfgw");
/// assert_eq!(delta.apply("abcdefg")?, "abuvfgw");
/// # Ok::<(), pe_delta::DeltaError>(())
/// ```
pub fn diff(old: &str, new: &str) -> Delta {
    let old_chars: Vec<char> = old.chars().collect();
    let new_chars: Vec<char> = new.chars().collect();
    diff_chars(&old_chars, &new_chars)
}

/// Character-buffer variant of [`diff`].
pub fn diff_chars(old: &[char], new: &[char]) -> Delta {
    // Longest common prefix.
    let mut prefix = 0;
    while prefix < old.len() && prefix < new.len() && old[prefix] == new[prefix] {
        prefix += 1;
    }
    // Longest common suffix of the remainders (must not overlap prefix).
    let mut suffix = 0;
    while suffix < old.len() - prefix
        && suffix < new.len() - prefix
        && old[old.len() - 1 - suffix] == new[new.len() - 1 - suffix]
    {
        suffix += 1;
    }
    let deleted = old.len() - prefix - suffix;
    let inserted: String = new[prefix..new.len() - suffix].iter().collect();
    let mut builder = Delta::builder();
    builder.retain(prefix).delete(deleted).insert(&inserted);
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(old: &str, new: &str) {
        let delta = diff(old, new);
        assert_eq!(delta.apply(old).unwrap(), new, "diff({old:?}, {new:?})");
    }

    #[test]
    fn identical_documents_give_identity() {
        let delta = diff("same", "same");
        assert!(delta.is_identity());
        assert_eq!(delta.serialize(), "");
    }

    #[test]
    fn simple_cases() {
        check("", "");
        check("", "abc");
        check("abc", "");
        check("abc", "abcd");
        check("abcd", "abc");
        check("abc", "xbc");
        check("abc", "axc");
        check("abc", "abx");
        check("abcdefg", "abuvfgw");
    }

    #[test]
    fn repeated_characters_do_not_overlap_prefix_suffix() {
        // "aaa" -> "aa": prefix would eat everything; suffix must not
        // overlap, so the delta stays valid.
        check("aaa", "aa");
        check("aa", "aaa");
        check("abab", "ababab");
        check("ababab", "abab");
    }

    #[test]
    fn middle_replacement_is_minimal() {
        let delta = diff("hello cruel world", "hello kind world");
        assert_eq!(delta.serialize(), "=6\t-5\t+kind");
    }

    #[test]
    fn unicode_diffs() {
        check("日本語です", "日本語でした");
        check("héllo", "hello");
        check("ωμέγα", "άλφα");
    }

    #[test]
    fn randomized_roundtrips() {
        // Deterministic pseudo-random pairs, mirroring §VII-B's workload
        // at small scale.
        let mut state = 42u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for _ in 0..200 {
            let len_a = (next() % 50) as usize;
            let len_b = (next() % 50) as usize;
            let a: String = (0..len_a).map(|_| (b'a' + (next() % 4) as u8) as char).collect();
            let b: String = (0..len_b).map(|_| (b'a' + (next() % 4) as u8) as char).collect();
            check(&a, &b);
        }
    }
}
