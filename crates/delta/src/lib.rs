// Tab IS the delta wire format's separator; the doc examples keep it
// literal so they read exactly as the protocol does.
#![allow(clippy::tabs_in_doc_comments)]

//! The Google-Documents-style incremental update ("delta") protocol.
//!
//! Section IV-A of the paper describes the wire format the 2011 Google
//! Documents client used for incremental saves: the document is a
//! one-dimensional string with an imaginary cursor starting at position 0,
//! and a *delta* is a tab-separated sequence of operations:
//!
//! * `=num` — move the cursor forward `num` characters (retain),
//! * `+str` — insert `str` at the cursor and advance past it,
//! * `-num` — delete `num` characters starting at the cursor.
//!
//! The paper's examples: applying `=2	-5` to `abcdefg` yields `ab`, and
//! `=2	-3	+uv	=2	+w` yields `abuvfgw`.
//!
//! This crate implements the protocol: [`Delta`] values can be
//! [parsed](Delta::parse), [serialized](Delta::serialize),
//! [applied](Delta::apply) to documents, [composed](Delta::compose),
//! [derived from two document versions](diff), and
//! [canonicalized](Delta::canonicalize) — the §VI-B countermeasure that
//! squashes covert channels hidden in redundant edit sequences.
//!
//! Characters that would collide with the framing (`\t` inside inserted
//! text, and `%`, used as the escape introducer) are percent-escaped in the
//! serialized form; see [`Delta::serialize`].
//!
//! # Example
//!
//! ```
//! use pe_delta::Delta;
//!
//! let delta = Delta::parse("=2\t-3\t+uv\t=2\t+w")?;
//! assert_eq!(delta.apply("abcdefg")?, "abuvfgw");
//! # Ok::<(), pe_delta::DeltaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compose;
mod diff;
mod error;
mod invert;
mod ops;
mod transform;

pub use diff::diff;
pub use error::DeltaError;
pub use ops::{Delta, DeltaBuilder, DeltaOp};
pub use transform::Side;
