//! Error type for delta parsing and application.

use std::error::Error;
use std::fmt;

/// Errors produced when parsing or applying a [`Delta`](crate::Delta).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeltaError {
    /// A token began with a character other than `=`, `+` or `-`.
    UnknownOp {
        /// The unrecognized leading character.
        op: char,
    },
    /// An empty token appeared (two adjacent tab separators).
    EmptyToken,
    /// The count of a retain or delete token was not a valid number.
    InvalidNumber {
        /// The malformed token.
        token: String,
    },
    /// A `%` escape in inserted text was not `%25` or `%09`.
    InvalidEscape {
        /// The malformed escape sequence.
        sequence: String,
    },
    /// A retain or delete ran past the end of the document.
    PastEnd {
        /// Cursor position when the operation was attempted.
        position: usize,
        /// Number of characters the operation asked for.
        requested: usize,
        /// Document length.
        len: usize,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::UnknownOp { op } => write!(f, "unknown delta operation {op:?}"),
            DeltaError::EmptyToken => write!(f, "empty delta token"),
            DeltaError::InvalidNumber { token } => {
                write!(f, "invalid count in delta token {token:?}")
            }
            DeltaError::InvalidEscape { sequence } => {
                write!(f, "invalid escape sequence {sequence:?} in inserted text")
            }
            DeltaError::PastEnd { position, requested, len } => write!(
                f,
                "operation at cursor {position} requests {requested} characters but document has {len}"
            ),
        }
    }
}

impl Error for DeltaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(DeltaError::UnknownOp { op: '*' }.to_string(), "unknown delta operation '*'");
        assert_eq!(DeltaError::EmptyToken.to_string(), "empty delta token");
        assert!(DeltaError::InvalidNumber { token: "=x".into() }.to_string().contains("=x"));
        assert!(DeltaError::PastEnd { position: 2, requested: 5, len: 3 }
            .to_string()
            .contains("document has 3"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<DeltaError>();
    }
}
