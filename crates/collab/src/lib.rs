//! `pe-collab`: real-time collaborative editing over encrypted deltas.
//!
//! The paper's privacy extension makes saves incremental and encrypted;
//! this crate adds the missing half of collaboration — *seeing other
//! people's edits as they happen* — without widening what the untrusted
//! server learns:
//!
//! * [`ChangeBus`] — per-document fan-out of accepted saves, keyed by
//!   the store's durable version counter (the *change sequence*), with a
//!   bounded retention ring and an explicit resync signal for cursors
//!   that fall behind;
//! * [`LiveDocs`] / [`LiveService`] — the server front-end: long-poll
//!   `GET /Doc/changes` that parks subscriber connections in the
//!   `pe-net` event loop (no thread pinned per idle subscriber), woken
//!   by the next accepted save; sealed-presence relay on
//!   `/Doc/presence`;
//! * [`LiveSession`] — the client loop: subscribes from a cursor,
//!   rebases pending local edits over pushed foreign deltas with
//!   operational transformation, skips its own save echoes, falls back
//!   to full-content merge on resync, and publishes its cursor as a
//!   sealed blob the server cannot read.
//!
//! The server fans out exactly the bytes clients upload — ciphertext
//! under the extension — so the fan-out path learns nothing beyond
//! timing and sizes, the same leakage the save path already has.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod live;
pub mod session;

pub use bus::{ChangeBus, Collected, DEFAULT_RING_CAPACITY};
pub use live::{LiveDocs, LiveService, DEFAULT_WAIT, MAX_WAIT};
pub use session::{
    changes_request, parse_changes, ChangesUpdate, CollabError, LiveSession, LiveTransport,
    SharedChannel, StepOutcome, SubscriptionTransport,
};
