//! The live front-end: `/Doc/changes` + `/Doc/presence` over a
//! [`DocsServer`], everything else forwarded untouched.
//!
//! # Change-stream wire protocol
//!
//! `GET /Doc/changes?docID=…&since=SEQ[&waitMs=N]` answers with a
//! form-encoded body:
//!
//! * changes available — `seq=HEAD` plus one `change` field per entry,
//!   each `"{seq}:{kind}:{payload}"` where `kind` is `full` or `delta`
//!   and the payload is exactly what the saver shipped (ciphertext under
//!   the privacy extension; the server cannot read what it fans out);
//! * nothing new before the wait expired — `seq=HEAD&timeout=1`;
//! * cursor unservable (fell off the retention ring, or the server
//!   restarted with an empty ring) — `resync=1&seq=HEAD&content=…&
//!   contentHash=…`: reload from the authoritative content, resume at
//!   `HEAD`.
//!
//! Every variant also carries the document's sealed presence blobs as
//! repeated `presence` fields, `"{client}:{sealed}"`.
//!
//! Two execution modes serve the same protocol:
//!
//! * **In-process / worker-thread** ([`CloudService::handle`]): blocks on
//!   the bus condvar for up to `waitMs` (capped). Fine for direct calls
//!   and tests; would pin a worker under the event-driven server.
//! * **Event-loop** ([`LiveService`], via `call_deferred`): never blocks.
//!   An empty collect registers a waker and *parks* the connection; the
//!   next accepted save re-dispatches it. Idle subscribers cost a slab
//!   slot, not a thread.

use std::sync::Arc;
use std::time::Duration;

use pe_cloud::docs::{DocsServer, SaveChange};
use pe_cloud::{CloudService, Method, Request, Response};
use pe_crypto::form;
use pe_net::{Served, Service, Waker};

use crate::bus::{ChangeBus, Collected};

/// Longest wait honored for the blocking (`handle`) path.
pub const MAX_WAIT: Duration = Duration::from_secs(25);
/// Default long-poll wait when `waitMs` is absent.
pub const DEFAULT_WAIT: Duration = Duration::from_secs(10);

/// A [`DocsServer`] with the live-collaboration endpoints mounted in
/// front (see module docs for the protocol).
pub struct LiveDocs {
    docs: Arc<DocsServer>,
    bus: Arc<ChangeBus>,
}

impl std::fmt::Debug for LiveDocs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveDocs").field("bus", &self.bus).finish()
    }
}

impl LiveDocs {
    /// Wraps `docs`, installing the change bus as its save listener.
    pub fn new(docs: Arc<DocsServer>) -> Arc<LiveDocs> {
        let bus = Arc::new(ChangeBus::default());
        docs.set_save_listener(Arc::clone(&bus) as Arc<dyn pe_cloud::docs::SaveListener>);
        Arc::new(LiveDocs { docs, bus })
    }

    /// The underlying docs server.
    pub fn docs(&self) -> &Arc<DocsServer> {
        &self.docs
    }

    /// The change bus (tests, tooling).
    pub fn bus(&self) -> &Arc<ChangeBus> {
        &self.bus
    }

    /// The store's current version for `doc_id` — the head hint that
    /// seeds the bus after a restart. `None` when the document does not
    /// exist.
    fn head_hint(&self, doc_id: &str) -> Option<u64> {
        self.docs.store().get(doc_id).map(|d| d.version)
    }

    fn parse_cursor(request: &Request) -> Result<(String, u64), Response> {
        let doc_id = match request.query_param("docID") {
            Some(id) if !id.is_empty() => id.to_string(),
            _ => return Err(Response::error(400, "missing docID")),
        };
        let since = match request.query_param("since") {
            Some(s) => match s.parse::<u64>() {
                Ok(n) => n,
                Err(_) => return Err(Response::error(400, "malformed since cursor")),
            },
            None => return Err(Response::error(400, "missing since cursor")),
        };
        Ok((doc_id, since))
    }

    fn wait_of(request: &Request) -> Duration {
        request
            .query_param("waitMs")
            .and_then(|w| w.parse::<u64>().ok())
            .map_or(DEFAULT_WAIT, Duration::from_millis)
            .min(MAX_WAIT)
    }

    /// Renders a [`Collected`] outcome to the wire (see module docs).
    fn render(&self, doc_id: &str, collected: &Collected) -> Response {
        let mut pairs: Vec<(String, String)> = Vec::new();
        match collected {
            Collected::Changes { head, changes } => {
                pairs.push(("seq".into(), head.to_string()));
                for (seq, change) in changes {
                    let (kind, payload) = match change {
                        SaveChange::Full(text) => ("full", text.as_str()),
                        SaveChange::Delta(text) => ("delta", text.as_str()),
                    };
                    pairs.push(("change".into(), format!("{seq}:{kind}:{payload}")));
                }
                pe_observe::static_counter!("collab.changes_served").inc();
            }
            Collected::Empty { head } => {
                pairs.push(("seq".into(), head.to_string()));
                pairs.push(("timeout".into(), "1".into()));
                pe_observe::static_counter!("collab.poll_timeouts").inc();
            }
            Collected::Resync { head } => {
                let Some(content) = self.docs.stored_content(doc_id) else {
                    return Response::error(404, "no such document");
                };
                pairs.push(("resync".into(), "1".into()));
                pairs.push(("seq".into(), head.to_string()));
                pairs.push(("contentHash".into(), DocsServer::content_hash(&content)));
                pairs.push(("content".into(), content));
                pe_observe::static_counter!("collab.resyncs_served").inc();
            }
        }
        for (client, sealed) in self.bus.presence(doc_id) {
            pairs.push(("presence".into(), format!("{client}:{sealed}")));
        }
        Response::ok(form::encode_pairs(&pairs))
    }

    /// Blocking long-poll (worker-thread / in-process path).
    fn changes_blocking(&self, request: &Request) -> Response {
        let (doc_id, since) = match Self::parse_cursor(request) {
            Ok(cursor) => cursor,
            Err(resp) => return resp,
        };
        let Some(hint) = self.head_hint(&doc_id) else {
            return Response::error(404, "no such document");
        };
        let wait = Self::wait_of(request);
        let collected = self.bus.collect_blocking(&doc_id, since, hint, wait);
        self.render(&doc_id, &collected)
    }

    /// Non-blocking subscribe for the event loop: `Ok` responds now,
    /// `Err((doc_id, head))` means "park me" — nothing to report yet and
    /// the waker is registered.
    fn changes_deferred(
        &self,
        request: &Request,
        waker: Waker,
    ) -> Result<Response, (String, u64)> {
        let (doc_id, since) = match Self::parse_cursor(request) {
            Ok(cursor) => cursor,
            Err(resp) => return Ok(resp),
        };
        let Some(hint) = self.head_hint(&doc_id) else {
            return Ok(Response::error(404, "no such document"));
        };
        match self.bus.subscribe(&doc_id, since, hint, waker) {
            Collected::Empty { head } => Err((doc_id, head)),
            collected => Ok(self.render(&doc_id, &collected)),
        }
    }

    fn presence_post(&self, request: &Request) -> Response {
        let doc_id = request.query_param("docID").unwrap_or("");
        if doc_id.is_empty() {
            return Response::error(400, "missing docID");
        }
        if self.head_hint(doc_id).is_none() {
            return Response::error(404, "no such document");
        }
        let Some(body) = request.body_text() else {
            return Response::error(400, "presence body must be UTF-8");
        };
        let Ok(pairs) = form::parse_pairs(body) else {
            return Response::error(400, "malformed presence body");
        };
        let Some(client) = form::first_value(&pairs, "client").filter(|c| !c.is_empty()) else {
            return Response::error(400, "missing client token");
        };
        let Some(sealed) = form::first_value(&pairs, "sealed") else {
            return Response::error(400, "missing sealed blob");
        };
        self.bus.set_presence(doc_id, client, sealed);
        Response::ok("ok=1")
    }

    fn presence_get(&self, request: &Request) -> Response {
        let doc_id = request.query_param("docID").unwrap_or("");
        if doc_id.is_empty() {
            return Response::error(400, "missing docID");
        }
        let pairs: Vec<(&str, String)> = self
            .bus
            .presence(doc_id)
            .into_iter()
            .map(|(client, sealed)| ("presence", format!("{client}:{sealed}")))
            .collect();
        Response::ok(form::encode_pairs(&pairs))
    }
}

impl CloudService for LiveDocs {
    fn handle(&self, request: &Request) -> Response {
        match (request.method, request.path.as_str()) {
            (Method::Get, "/Doc/changes") => self.changes_blocking(request),
            (Method::Post, "/Doc/presence") => self.presence_post(request),
            (Method::Get, "/Doc/presence") => self.presence_get(request),
            _ => self.docs.handle(request),
        }
    }

    fn name(&self) -> &'static str {
        "live-docs"
    }
}

/// [`pe_net::Service`] adapter that parks `/Doc/changes` subscribers in
/// the event loop instead of blocking a worker.
///
/// The blanket `CloudService → Service` impl cannot override
/// `call_deferred`, so mounting a [`LiveDocs`] directly would long-poll
/// on worker threads; mount this wrapper instead.
pub struct LiveService(pub Arc<LiveDocs>);

impl std::fmt::Debug for LiveService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("LiveService")
    }
}

impl Service for LiveService {
    fn call(&self, request: &Request) -> Response {
        self.0.handle(request)
    }

    fn call_deferred(&self, request: &Request, waker: Waker) -> Served {
        if request.method == Method::Get && request.path == "/Doc/changes" {
            match self.0.changes_deferred(request, waker) {
                Ok(response) => Served::Response(response),
                Err((doc_id, head)) => {
                    // Parked: if the requested wait (or the server's
                    // subscription cap, whichever is smaller) beats the
                    // next save, the loop answers with this timeout frame.
                    let on_timeout =
                        self.0.render(&doc_id, &Collected::Empty { head });
                    let wait = LiveDocs::wait_of(request);
                    if wait.is_zero() {
                        // A zero-wait probe never parks; the subscribed
                        // waker goes stale, which the loop tolerates.
                        Served::Response(on_timeout)
                    } else {
                        Served::Parked { on_timeout, wait: Some(wait) }
                    }
                }
            }
        } else {
            Served::Response(self.0.handle(request))
        }
    }

    fn service_name(&self) -> &str {
        "live-docs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_cloud::docs::DocsServer;
    use std::time::Instant;

    fn create_doc(live: &LiveDocs) -> String {
        let resp = live.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
        let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
        form::first_value(&pairs, "docID").unwrap().to_string()
    }

    fn save_contents(live: &LiveDocs, doc: &str, contents: &str) -> Response {
        let body = form::encode_pairs(&[("docContents", contents)]);
        live.handle(&Request::post("/Doc", &[("docID", doc)], body))
    }

    fn changes(live: &LiveDocs, doc: &str, since: u64, wait_ms: u64) -> Vec<(String, String)> {
        let wait = wait_ms.to_string();
        let resp = live.handle(&Request::get(
            "/Doc/changes",
            &[("docID", doc), ("since", &since.to_string()), ("waitMs", &wait)],
        ));
        assert!(resp.is_success(), "changes failed: {}", resp.body_text().unwrap_or(""));
        form::parse_pairs(resp.body_text().unwrap())
            .unwrap()
            .into_iter()
            .collect()
    }

    fn values<'a>(pairs: &'a [(String, String)], key: &str) -> Vec<&'a str> {
        pairs.iter().filter(|(k, _)| k == key).map(|(_, v)| v.as_str()).collect()
    }

    #[test]
    fn changes_reports_saves_after_the_cursor() {
        let live = LiveDocs::new(Arc::new(DocsServer::new()));
        let doc = create_doc(&live);
        save_contents(&live, &doc, "v1");
        save_contents(&live, &doc, "v2");
        let pairs = changes(&live, &doc, 0, 0);
        let got = values(&pairs, "change");
        assert_eq!(got.len(), 2);
        assert!(got[0].starts_with("1:full:"), "got {:?}", got[0]);
        assert!(got[1].starts_with("2:full:"), "got {:?}", got[1]);
        assert_eq!(values(&pairs, "seq"), vec!["2"]);
    }

    #[test]
    fn blocking_poll_wakes_on_a_concurrent_save() {
        let live = LiveDocs::new(Arc::new(DocsServer::new()));
        let doc = create_doc(&live);
        save_contents(&live, &doc, "v1");
        let saver = {
            let live = Arc::clone(&live);
            let doc = doc.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(60));
                save_contents(&live, &doc, "v2");
            })
        };
        let start = Instant::now();
        let pairs = changes(&live, &doc, 1, 5_000);
        assert!(start.elapsed() < Duration::from_secs(4));
        assert_eq!(values(&pairs, "change").len(), 1);
        saver.join().unwrap();
    }

    #[test]
    fn poll_times_out_with_the_head_cursor() {
        let live = LiveDocs::new(Arc::new(DocsServer::new()));
        let doc = create_doc(&live);
        save_contents(&live, &doc, "v1");
        let pairs = changes(&live, &doc, 1, 30);
        assert_eq!(values(&pairs, "timeout"), vec!["1"]);
        assert_eq!(values(&pairs, "seq"), vec!["1"]);
        assert!(values(&pairs, "change").is_empty());
    }

    #[test]
    fn stale_cursor_gets_full_content_resync() {
        let live = LiveDocs::new(Arc::new(DocsServer::new()));
        let doc = create_doc(&live);
        // Overflow the default ring so cursor 0 falls off.
        for i in 0..(crate::bus::DEFAULT_RING_CAPACITY + 4) {
            save_contents(&live, &doc, &format!("v{i}"));
        }
        let pairs = changes(&live, &doc, 0, 0);
        assert_eq!(values(&pairs, "resync"), vec!["1"]);
        let content = values(&pairs, "content");
        assert_eq!(content.len(), 1);
        assert!(content[0].starts_with('v'));
        assert_eq!(
            values(&pairs, "contentHash"),
            vec![DocsServer::content_hash(content[0]).as_str()]
        );
    }

    #[test]
    fn unknown_document_is_a_404() {
        let live = LiveDocs::new(Arc::new(DocsServer::new()));
        let resp = live.handle(&Request::get(
            "/Doc/changes",
            &[("docID", "nope"), ("since", "0"), ("waitMs", "0")],
        ));
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn malformed_cursor_is_a_400() {
        let live = LiveDocs::new(Arc::new(DocsServer::new()));
        let doc = create_doc(&live);
        let resp = live
            .handle(&Request::get("/Doc/changes", &[("docID", &doc), ("since", "later")]));
        assert_eq!(resp.status, 400);
        let resp = live.handle(&Request::get("/Doc/changes", &[("docID", &doc)]));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn presence_round_trips_and_rides_the_change_stream() {
        let live = LiveDocs::new(Arc::new(DocsServer::new()));
        let doc = create_doc(&live);
        save_contents(&live, &doc, "v1");
        let body = form::encode_pairs(&[("client", "c1"), ("sealed", "deadbeef")]);
        let resp = live.handle(&Request::post("/Doc/presence", &[("docID", &doc)], body));
        assert!(resp.is_success());
        // Dedicated endpoint…
        let resp = live.handle(&Request::get("/Doc/presence", &[("docID", &doc)]));
        let pairs: Vec<(String, String)> =
            form::parse_pairs(resp.body_text().unwrap()).unwrap().into_iter().collect();
        assert_eq!(values(&pairs, "presence"), vec!["c1:deadbeef"]);
        // …and piggybacked on every changes answer.
        let pairs = changes(&live, &doc, 0, 0);
        assert_eq!(values(&pairs, "presence"), vec!["c1:deadbeef"]);
    }

    #[test]
    fn other_endpoints_forward_to_the_docs_server() {
        let live = LiveDocs::new(Arc::new(DocsServer::new()));
        let doc = create_doc(&live);
        save_contents(&live, &doc, "hello world");
        let resp = live.handle(&Request::get("/Doc/load", &[("docID", &doc)]));
        assert!(resp.is_success());
        assert!(resp.body_text().unwrap().contains("hello"));
    }
}
