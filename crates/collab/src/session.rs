//! The client side of live collaboration: [`LiveSession`] drives a
//! [`DocsClient`] from a change-stream subscription.
//!
//! A session owns two channels:
//!
//! * the **edit channel** inside the [`DocsClient`] — open/save/load,
//!   pooled and retried like any other traffic;
//! * the **poll channel** — long-poll `/Doc/changes` plus presence. Over
//!   HTTP this must be a dedicated connection ([`SubscriptionTransport`]
//!   over [`SubscriptionConn`]): a parked long-poll would otherwise pin a
//!   pooled connection for up to the subscription timeout and starve the
//!   pool, and the pool's stale-connection grace retry could silently
//!   double-subscribe.
//!
//! Each [`step`](LiveSession::step) long-polls once and folds the answer
//! into the editor: foreign deltas are applied with operational
//! transformation (pending local edits are rebased, [TP1] convergence is
//! the delta crate's guarantee), our own save echoes are skipped by
//! sequence number, and a `resync` frame falls back to merging full
//! content. Presence travels sealed — the session encrypts its own
//! cursor with the document key and can only open peers' blobs if it
//! holds the same key; the server relays opaque hex.
//!
//! [TP1]: pe_delta::Delta::transform

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

use pe_client::{Channel, DocsClient, SaveOutcome};
use pe_cloud::docs::SaveChange;
use pe_cloud::{CloudService, Request, Response};
use pe_core::{Presence, PresenceSealer};
use pe_crypto::form;
use pe_delta::Delta;
use pe_net::{HttpClient, SubscriptionConn};

/// Why a live session could not make progress.
#[derive(Debug)]
pub enum CollabError {
    /// The server (or transport) answered with a failure status.
    Server {
        /// HTTP-ish status code.
        status: u16,
        /// Server-provided message.
        message: String,
    },
    /// The change-stream answer did not parse.
    Protocol(String),
}

impl std::fmt::Display for CollabError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollabError::Server { status, message } => {
                write!(f, "server error {status}: {message}")
            }
            CollabError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for CollabError {}

fn protocol(msg: impl Into<String>) -> CollabError {
    CollabError::Protocol(msg.into())
}

fn server_error(response: &Response) -> CollabError {
    CollabError::Server {
        status: response.status,
        message: response.body_text().unwrap_or("<binary>").to_string(),
    }
}

/// Builds the long-poll request for one subscription round.
pub fn changes_request(doc_id: &str, since: u64, wait: Duration) -> Request {
    Request::get(
        "/Doc/changes",
        &[
            ("docID", doc_id),
            ("since", &since.to_string()),
            ("waitMs", &wait.as_millis().to_string()),
        ],
    )
}

/// One parsed `/Doc/changes` answer (see the wire protocol in
/// [`crate::live`]).
#[derive(Debug, Default)]
pub struct ChangesUpdate {
    /// The server's head sequence after this answer.
    pub head: u64,
    /// The poll expired with nothing new.
    pub timed_out: bool,
    /// Full authoritative content: the cursor was unservable.
    pub resync_content: Option<String>,
    /// `(seq, change)` pairs, ascending.
    pub changes: Vec<(u64, SaveChange)>,
    /// Sealed presence blobs, `(client_token, sealed_hex)`.
    pub presence: Vec<(String, String)>,
}

/// Parses a `/Doc/changes` response body.
///
/// # Errors
///
/// [`CollabError::Protocol`] when a required field is missing or a
/// `change` entry is malformed.
pub fn parse_changes(body: &str) -> Result<ChangesUpdate, CollabError> {
    let pairs = form::parse_pairs(body).map_err(|e| protocol(format!("bad form body: {e}")))?;
    let head = form::first_value(&pairs, "seq")
        .ok_or_else(|| protocol("missing seq"))?
        .parse::<u64>()
        .map_err(|_| protocol("malformed seq"))?;
    let mut update = ChangesUpdate { head, ..ChangesUpdate::default() };
    update.timed_out = form::first_value(&pairs, "timeout") == Some("1");
    if form::first_value(&pairs, "resync") == Some("1") {
        let content =
            form::first_value(&pairs, "content").ok_or_else(|| protocol("resync sans content"))?;
        update.resync_content = Some(content.to_string());
    }
    for (key, value) in &pairs {
        match key.as_str() {
            "change" => {
                let mut parts = value.splitn(3, ':');
                let (seq, kind, payload) = match (parts.next(), parts.next(), parts.next()) {
                    (Some(seq), Some(kind), Some(payload)) => (seq, kind, payload),
                    _ => return Err(protocol(format!("malformed change entry: {value}"))),
                };
                let seq =
                    seq.parse::<u64>().map_err(|_| protocol("malformed change sequence"))?;
                let change = match kind {
                    "full" => SaveChange::Full(payload.to_string()),
                    "delta" => SaveChange::Delta(payload.to_string()),
                    other => return Err(protocol(format!("unknown change kind: {other}"))),
                };
                update.changes.push((seq, change));
            }
            "presence" => {
                if let Some((client, sealed)) = value.split_once(':') {
                    update.presence.push((client.to_string(), sealed.to_string()));
                }
            }
            _ => {}
        }
    }
    Ok(update)
}

/// A [`CloudService`] over a dedicated, pool-exempt
/// [`SubscriptionConn`] — the HTTP poll channel of a [`LiveSession`]
/// (optionally behind a mediator, which then translates the ciphertext
/// stream on this same dedicated socket).
pub struct SubscriptionTransport {
    conn: Mutex<SubscriptionConn>,
}

impl SubscriptionTransport {
    /// Dedicates one connection off `client`'s dial configuration.
    /// `read_timeout` must exceed the server's subscription timeout or
    /// parked polls will be cut off client-side.
    pub fn new(client: &HttpClient, read_timeout: Duration) -> SubscriptionTransport {
        SubscriptionTransport { conn: Mutex::new(client.subscription(read_timeout)) }
    }
}

impl std::fmt::Debug for SubscriptionTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SubscriptionTransport")
    }
}

impl CloudService for SubscriptionTransport {
    fn handle(&self, request: &Request) -> Response {
        let mut conn = self.conn.lock().unwrap_or_else(|p| p.into_inner());
        match conn.poll(request) {
            Ok(response) => response,
            Err(e) => Response::error(503, &format!("subscription transport: {e}")),
        }
    }

    fn name(&self) -> &'static str {
        "subscription-conn"
    }
}

/// One channel shared between a session's edit path and poll path.
///
/// For **private** documents this is mandatory: the mediator keeps a
/// ciphertext mirror of the server, and that mirror must advance on both
/// our own saves *and* the foreign changes translated out of the stream.
/// Two independent mediators would desynchronize the moment a
/// collaborator's delta lands. Wrap the one mediator-backed channel in a
/// `SharedChannel` and hand clones to [`DocsClient::open`] and
/// [`LiveSession::start`].
pub struct SharedChannel<C: Channel>(std::sync::Arc<Mutex<C>>);

impl<C: Channel> SharedChannel<C> {
    /// Shares `inner` between any number of clones.
    pub fn new(inner: C) -> SharedChannel<C> {
        SharedChannel(std::sync::Arc::new(Mutex::new(inner)))
    }

    /// Runs `f` with the inner channel (inspecting a mediator, etc.).
    pub fn with_inner<R>(&self, f: impl FnOnce(&mut C) -> R) -> R {
        f(&mut self.0.lock().unwrap_or_else(|p| p.into_inner()))
    }
}

impl<C: Channel> Clone for SharedChannel<C> {
    fn clone(&self) -> SharedChannel<C> {
        SharedChannel(std::sync::Arc::clone(&self.0))
    }
}

impl<C: Channel> std::fmt::Debug for SharedChannel<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SharedChannel")
    }
}

impl<C: Channel> Channel for SharedChannel<C> {
    fn exchange(&mut self, request: &Request) -> Response {
        self.0.lock().unwrap_or_else(|p| p.into_inner()).exchange(request)
    }
}

/// HTTP transport that routes long-polls onto a dedicated connection and
/// everything else onto the shared pool.
///
/// `GET /Doc/changes` goes over a [`SubscriptionTransport`] (never the
/// pool — a parked poll would pin a pooled connection for the whole
/// subscription timeout); saves, loads, and presence go through the
/// pooled [`HttpClient`] with its usual retry policy. Mount a mediator on
/// top of this to get a private live session over real sockets.
pub struct LiveTransport {
    pooled: HttpClient,
    subscription: SubscriptionTransport,
}

impl LiveTransport {
    /// Builds the routed transport; `subscription_read_timeout` must
    /// exceed the server's subscription timeout.
    pub fn new(pooled: HttpClient, subscription_read_timeout: Duration) -> LiveTransport {
        let subscription = SubscriptionTransport::new(&pooled, subscription_read_timeout);
        LiveTransport { pooled, subscription }
    }
}

impl std::fmt::Debug for LiveTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("LiveTransport")
    }
}

impl CloudService for LiveTransport {
    fn handle(&self, request: &Request) -> Response {
        if request.method == pe_cloud::Method::Get && request.path == "/Doc/changes" {
            self.subscription.handle(request)
        } else {
            self.pooled.handle(request)
        }
    }

    fn name(&self) -> &'static str {
        "live-transport"
    }
}

/// What one [`LiveSession::step`] did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// Foreign changes folded into the editor.
    pub applied: usize,
    /// The session fell back to a full-content merge.
    pub resynced: bool,
    /// The poll expired with nothing new.
    pub timed_out: bool,
    /// Subscription cursor after the step.
    pub head: u64,
}

/// A live collaborative editing session (see module docs).
pub struct LiveSession<C: Channel, P: Channel> {
    client: DocsClient<C>,
    poll: P,
    since: u64,
    editor_name: String,
    client_token: String,
    sealer: Option<PresenceSealer>,
    cursor: usize,
    presence_nonce: u64,
    peers: HashMap<String, Presence>,
    resyncs: usize,
}

impl<C: Channel, P: Channel> std::fmt::Debug for LiveSession<C, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveSession")
            .field("doc_id", &self.client.doc_id())
            .field("editor", &self.editor_name)
            .field("since", &self.since)
            .finish_non_exhaustive()
    }
}

impl<C: Channel, P: Channel> LiveSession<C, P> {
    /// Joins the live session: learns the server's current head through
    /// the poll channel and subscribes from there. Pass a
    /// [`PresenceSealer`] to publish and read sealed presence (peers
    /// without the key see only opaque blobs).
    ///
    /// # Errors
    ///
    /// [`CollabError::Server`] when the initial load fails.
    pub fn start(
        client: DocsClient<C>,
        poll: P,
        editor_name: &str,
        sealer: Option<PresenceSealer>,
    ) -> Result<LiveSession<C, P>, CollabError> {
        let mut session = LiveSession {
            client,
            poll,
            since: 0,
            editor_name: editor_name.to_string(),
            client_token: Self::token_for(editor_name),
            sealer,
            cursor: 0,
            presence_nonce: 0,
            peers: HashMap::new(),
            resyncs: 0,
        };
        // Learn the head *without* disturbing the editor: a session may
        // join mid-edit, and the client already holds the open content.
        let doc_id = session.client.doc_id().to_string();
        let request = Request::get("/Doc/load", &[("docID", doc_id.as_str())]);
        let response = session.poll.exchange(&request);
        if !response.is_success() {
            return Err(server_error(&response));
        }
        let body = response.body_text().ok_or_else(|| protocol("binary load body"))?;
        let pairs =
            form::parse_pairs(body).map_err(|e| protocol(format!("bad load body: {e}")))?;
        session.since = form::first_value(&pairs, "version")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| protocol("load answer lacks a version"))?;
        if let Some(content) = form::first_value(&pairs, "content") {
            session.client.merge_server_content(content);
        }
        // Live sessions are version-aware from the first save: arm the
        // optimistic-concurrency precondition at the head just learned.
        session.client.note_server_version(session.since);
        pe_observe::static_counter!("collab.sessions").inc();
        Ok(session)
    }

    /// Short opaque token identifying this editor on the wire. Derived
    /// by hashing so the raw editor name never appears in server-visible
    /// metadata (the sealed blob carries the real name for key holders).
    fn token_for(editor_name: &str) -> String {
        let digest = pe_crypto::sha256::Sha256::digest(editor_name.as_bytes());
        pe_crypto::hex::encode(&digest[..6])
    }

    /// The editing client (make edits through `client().editor()`).
    pub fn client(&mut self) -> &mut DocsClient<C> {
        &mut self.client
    }

    /// Current document text.
    pub fn content(&self) -> &str {
        self.client.content()
    }

    /// The subscription cursor: every change up to and including this
    /// sequence is folded into the editor.
    pub fn since(&self) -> u64 {
        self.since
    }

    /// How many times this session fell back to a full-content resync.
    pub fn resyncs(&self) -> usize {
        self.resyncs
    }

    /// Peers' latest opened presence, by client token (only populated
    /// when this session holds the document key).
    pub fn peers(&self) -> &HashMap<String, Presence> {
        &self.peers
    }

    /// Moves this editor's advertised cursor (published on the next
    /// [`publish_presence`](LiveSession::publish_presence)).
    pub fn set_cursor(&mut self, cursor: usize) {
        self.cursor = cursor;
    }

    /// Saves local edits, converging on conflict, then advances the
    /// subscription cursor over our own echo so the next poll does not
    /// re-apply what we just wrote.
    pub fn save(&mut self) -> SaveOutcome {
        let outcome = self.client.save_merging(4);
        if outcome == SaveOutcome::Saved {
            if let Some(version) = self.client.last_ack_version() {
                self.since = self.since.max(version);
            }
        }
        outcome
    }

    /// Seals and publishes this editor's presence (name + cursor).
    /// No-op without a sealer.
    ///
    /// # Errors
    ///
    /// [`CollabError::Server`] when the presence post fails.
    pub fn publish_presence(&mut self) -> Result<(), CollabError> {
        let Some(sealer) = &self.sealer else {
            return Ok(());
        };
        let me = Presence { editor: self.editor_name.clone(), cursor: self.cursor };
        self.presence_nonce += 1;
        let sealed = sealer.seal(&me, self.presence_nonce);
        let doc_id = self.client.doc_id().to_string();
        let body =
            form::encode_pairs(&[("client", self.client_token.as_str()), ("sealed", &sealed)]);
        let request = Request::post("/Doc/presence", &[("docID", doc_id.as_str())], body);
        let response = self.poll.exchange(&request);
        if !response.is_success() {
            return Err(server_error(&response));
        }
        Ok(())
    }

    /// One subscription round: long-polls up to `wait`, folds pushed
    /// changes into the editor (rebasing pending local edits), updates
    /// peer presence.
    ///
    /// # Errors
    ///
    /// [`CollabError::Server`] on transport/server failure,
    /// [`CollabError::Protocol`] on an unparseable answer. Both leave
    /// the editor state intact; the caller may retry.
    pub fn step(&mut self, wait: Duration) -> Result<StepOutcome, CollabError> {
        let doc_id = self.client.doc_id().to_string();
        let request = changes_request(&doc_id, self.since, wait);
        let response = self.poll.exchange(&request);
        if !response.is_success() {
            return Err(server_error(&response));
        }
        let body = response.body_text().ok_or_else(|| protocol("binary changes body"))?;
        let update = parse_changes(body)?;
        let mut outcome = StepOutcome { timed_out: update.timed_out, ..StepOutcome::default() };

        if let Some(content) = &update.resync_content {
            self.client.merge_server_content(content);
            self.since = update.head;
            self.resyncs += 1;
            outcome.resynced = true;
        } else {
            for (seq, change) in &update.changes {
                if *seq <= self.since {
                    // Our own echo (or an overlap with the cursor) — the
                    // content is already incorporated.
                    continue;
                }
                let folded = match change {
                    SaveChange::Delta(text) => Delta::parse(text)
                        .ok()
                        .and_then(|delta| self.client.apply_foreign_delta(&delta).ok())
                        .is_some(),
                    SaveChange::Full(content) => {
                        self.client.merge_server_content(content);
                        true
                    }
                };
                if folded {
                    self.since = *seq;
                    outcome.applied += 1;
                    pe_observe::static_counter!("collab.applied").inc();
                } else {
                    // The delta did not fit our sync point: reload the
                    // authoritative content instead of guessing.
                    self.reload()?;
                    self.resyncs += 1;
                    outcome.resynced = true;
                    break;
                }
            }
            if !outcome.resynced {
                self.since = self.since.max(update.head);
            }
        }

        if let Some(sealer) = &self.sealer {
            for (token, sealed) in &update.presence {
                if token == &self.client_token {
                    continue;
                }
                if let Some(presence) = sealer.open(sealed) {
                    self.peers.insert(token.clone(), presence);
                }
            }
        }
        // The sync point now corresponds to sequence `since`: re-arm the
        // client's optimistic-concurrency save precondition with it.
        self.client.note_server_version(self.since);
        outcome.head = self.since;
        Ok(outcome)
    }

    /// Full reload through the poll channel: merge authoritative content
    /// and move the cursor to the served version.
    fn reload(&mut self) -> Result<(), CollabError> {
        let doc_id = self.client.doc_id().to_string();
        let request = Request::get("/Doc/load", &[("docID", doc_id.as_str())]);
        let response = self.poll.exchange(&request);
        if !response.is_success() {
            return Err(server_error(&response));
        }
        let body = response.body_text().ok_or_else(|| protocol("binary load body"))?;
        let pairs =
            form::parse_pairs(body).map_err(|e| protocol(format!("bad load body: {e}")))?;
        let content =
            form::first_value(&pairs, "content").ok_or_else(|| protocol("load sans content"))?;
        let version = form::first_value(&pairs, "version")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| protocol("load answer lacks a version"))?;
        self.client.merge_server_content(content);
        self.since = version;
        self.client.note_server_version(version);
        Ok(())
    }

    /// Ends the session, releasing the client (presence is left to the
    /// server's discretion; blobs are overwritten on the next join).
    pub fn into_client(self) -> DocsClient<C> {
        self.client
    }
}
