//! The change bus: per-document fan-out of accepted saves.
//!
//! One [`ChangeBus`] hangs off a [`DocsServer`](pe_cloud::docs::DocsServer)
//! as its [`SaveListener`]. Every accepted save lands here tagged with the
//! document's post-save version — the *change sequence*. The sequence is
//! the store's own version counter, so it is monotonic per document and
//! durable (it rides the WAL); a client can resume `since=SEQ` across a
//! server `kill -9` and the arithmetic still holds.
//!
//! The bus keeps a bounded ring of recent changes per document. A
//! subscriber whose cursor has fallen off the ring (or who arrives after
//! a restart emptied it) gets told to **resync** from full content
//! instead of silently missing changes — losing a delta would fork the
//! replicas forever, so the gap check is the load-bearing invariant here.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use pe_cloud::docs::{SaveChange, SaveListener};
use pe_net::Waker;

/// Default number of changes retained per document.
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// What a subscriber's `since` cursor resolves to.
#[derive(Debug)]
pub enum Collected {
    /// Changes after `since`, oldest first, plus the new head sequence.
    Changes {
        /// The document's current head sequence.
        head: u64,
        /// `(seq, change)` pairs, strictly ascending, all `> since`.
        changes: Vec<(u64, SaveChange)>,
    },
    /// Nothing new; the caller may wait (long-poll) and retry.
    Empty {
        /// The document's current head sequence.
        head: u64,
    },
    /// The cursor points below the retained window (ring overflow or a
    /// post-restart empty ring): the caller must reload full content and
    /// resume from `head`.
    Resync {
        /// The document's current head sequence.
        head: u64,
    },
}

/// Per-document channel state.
struct DocChannel {
    /// Highest sequence seen (or seeded from the store version).
    head: u64,
    /// Sequence *before* the oldest retained entry: a subscriber needs
    /// `since >= base` to be served incrementally.
    base: u64,
    /// Retained `(seq, change)` ring, ascending and contiguous.
    ring: VecDeque<(u64, SaveChange)>,
    /// Parked subscribers to wake on the next publish.
    wakers: Vec<Waker>,
    /// Latest sealed presence blob per client token. The server never
    /// opens these — editor names and cursor positions stay encrypted.
    presence: HashMap<String, String>,
}

impl DocChannel {
    fn seeded(head: u64) -> DocChannel {
        DocChannel {
            head,
            base: head,
            ring: VecDeque::new(),
            wakers: Vec::new(),
            presence: HashMap::new(),
        }
    }
}

/// Fan-out hub for document change streams (see module docs).
pub struct ChangeBus {
    inner: Mutex<HashMap<String, DocChannel>>,
    changed: Condvar,
    capacity: usize,
}

impl std::fmt::Debug for ChangeBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChangeBus").field("capacity", &self.capacity).finish()
    }
}

impl Default for ChangeBus {
    fn default() -> ChangeBus {
        ChangeBus::new(DEFAULT_RING_CAPACITY)
    }
}

impl ChangeBus {
    /// A bus retaining up to `capacity` changes per document.
    pub fn new(capacity: usize) -> ChangeBus {
        ChangeBus {
            inner: Mutex::new(HashMap::new()),
            changed: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, DocChannel>> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Records one accepted save and wakes every parked subscriber of the
    /// document. Called by the [`SaveListener`] impl; also usable
    /// directly in tests.
    pub fn publish(&self, doc_id: &str, seq: u64, change: &SaveChange) {
        let wakers = {
            let mut inner = self.lock();
            let channel = inner
                .entry(doc_id.to_string())
                .or_insert_with(|| DocChannel::seeded(seq.saturating_sub(1)));
            if seq <= channel.head {
                // Replay of an already-published sequence (idempotent).
                return;
            }
            if seq != channel.head + 1 {
                // A gap we cannot bridge (should not happen — versions
                // advance by one per accepted save): drop the ring so
                // stale cursors resync rather than miss a change.
                channel.ring.clear();
                channel.base = seq - 1;
            }
            channel.ring.push_back((seq, change.clone()));
            channel.head = seq;
            while channel.ring.len() > self.capacity {
                let (evicted, _) = channel.ring.pop_front().expect("non-empty ring");
                channel.base = evicted;
            }
            pe_observe::static_counter!("collab.published").inc();
            std::mem::take(&mut channel.wakers)
        };
        pe_observe::static_counter!("collab.wakes").add(wakers.len() as u64);
        for waker in wakers {
            waker.wake();
        }
        self.changed.notify_all();
    }

    /// Resolves `since` against the retained window. `head_hint` seeds
    /// the channel for a document the bus has not seen yet (pass the
    /// store's current version so post-restart cursors resolve
    /// correctly).
    pub fn collect(&self, doc_id: &str, since: u64, head_hint: u64) -> Collected {
        let mut inner = self.lock();
        let channel = inner
            .entry(doc_id.to_string())
            .or_insert_with(|| DocChannel::seeded(head_hint));
        Self::collect_locked(channel, since)
    }

    fn collect_locked(channel: &DocChannel, since: u64) -> Collected {
        if since > channel.head {
            // The caller knows a future the server does not (e.g. the
            // store was restored from an older snapshot): resync.
            return Collected::Resync { head: channel.head };
        }
        if since == channel.head {
            return Collected::Empty { head: channel.head };
        }
        if since < channel.base {
            pe_observe::static_counter!("collab.resyncs").inc();
            return Collected::Resync { head: channel.head };
        }
        let changes: Vec<(u64, SaveChange)> =
            channel.ring.iter().filter(|(seq, _)| *seq > since).cloned().collect();
        Collected::Changes { head: channel.head, changes }
    }

    /// Like [`collect`](ChangeBus::collect), but when the cursor is
    /// current, registers `waker` to fire on the next publish *before*
    /// releasing the lock — the caller can then park the connection with
    /// no lost-wakeup window.
    pub fn subscribe(&self, doc_id: &str, since: u64, head_hint: u64, waker: Waker) -> Collected {
        let mut inner = self.lock();
        let channel = inner
            .entry(doc_id.to_string())
            .or_insert_with(|| DocChannel::seeded(head_hint));
        let collected = Self::collect_locked(channel, since);
        if let Collected::Empty { .. } = collected {
            channel.wakers.push(waker);
        }
        collected
    }

    /// Blocking variant for in-process callers: waits up to `wait` for
    /// the cursor to fall behind the head, then collects. Never blocks
    /// when there is already something to report.
    pub fn collect_blocking(
        &self,
        doc_id: &str,
        since: u64,
        head_hint: u64,
        wait: Duration,
    ) -> Collected {
        let deadline = Instant::now() + wait;
        let mut inner = self.lock();
        loop {
            let channel = inner
                .entry(doc_id.to_string())
                .or_insert_with(|| DocChannel::seeded(head_hint));
            match Self::collect_locked(channel, since) {
                Collected::Empty { head } => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Collected::Empty { head };
                    }
                    let (guard, _timeout) = self
                        .changed
                        .wait_timeout(inner, deadline - now)
                        .unwrap_or_else(|p| p.into_inner());
                    inner = guard;
                }
                other => return other,
            }
        }
    }

    /// Stores (or refreshes) one client's sealed presence blob and wakes
    /// parked subscribers so peers see cursor moves promptly.
    pub fn set_presence(&self, doc_id: &str, client: &str, sealed: &str) {
        let wakers = {
            let mut inner = self.lock();
            let channel = inner
                .entry(doc_id.to_string())
                .or_insert_with(|| DocChannel::seeded(0));
            channel.presence.insert(client.to_string(), sealed.to_string());
            pe_observe::static_counter!("collab.presence_updates").inc();
            std::mem::take(&mut channel.wakers)
        };
        for waker in wakers {
            waker.wake();
        }
        self.changed.notify_all();
    }

    /// All sealed presence blobs for a document, `(client, sealed)`,
    /// sorted by client token for deterministic wire output.
    pub fn presence(&self, doc_id: &str) -> Vec<(String, String)> {
        let inner = self.lock();
        let Some(channel) = inner.get(doc_id) else {
            return Vec::new();
        };
        let mut out: Vec<(String, String)> =
            channel.presence.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        out.sort();
        out
    }

    /// Drops one client's presence blob (session ended).
    pub fn clear_presence(&self, doc_id: &str, client: &str) {
        let mut inner = self.lock();
        if let Some(channel) = inner.get_mut(doc_id) {
            channel.presence.remove(client);
        }
    }

    /// The head sequence currently known for `doc_id`, if any.
    pub fn head(&self, doc_id: &str) -> Option<u64> {
        self.lock().get(doc_id).map(|c| c.head)
    }
}

impl SaveListener for ChangeBus {
    fn on_save(&self, doc_id: &str, seq: u64, change: &SaveChange) {
        self.publish(doc_id, seq, change);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn full(text: &str) -> SaveChange {
        SaveChange::Full(text.to_string())
    }

    fn changes_of(collected: Collected) -> Vec<(u64, String)> {
        match collected {
            Collected::Changes { changes, .. } => changes
                .into_iter()
                .map(|(seq, c)| {
                    let text = match c {
                        SaveChange::Full(t) => t,
                        SaveChange::Delta(t) => t,
                    };
                    (seq, text)
                })
                .collect(),
            other => panic!("expected changes, got {other:?}"),
        }
    }

    #[test]
    fn collect_returns_changes_after_the_cursor() {
        let bus = ChangeBus::new(8);
        bus.publish("d", 1, &full("a"));
        bus.publish("d", 2, &full("b"));
        bus.publish("d", 3, &full("c"));
        let got = changes_of(bus.collect("d", 1, 0));
        assert_eq!(got, vec![(2, "b".into()), (3, "c".into())]);
        assert!(matches!(bus.collect("d", 3, 0), Collected::Empty { head: 3 }));
    }

    #[test]
    fn cursor_below_the_ring_forces_a_resync() {
        let bus = ChangeBus::new(2);
        for seq in 1..=5 {
            bus.publish("d", seq, &full("x"));
        }
        // Ring holds 4..=5; a cursor at 1 fell off the window.
        assert!(matches!(bus.collect("d", 1, 0), Collected::Resync { head: 5 }));
        // A cursor inside the window is still served incrementally.
        assert_eq!(changes_of(bus.collect("d", 4, 0)).len(), 1);
    }

    #[test]
    fn unknown_document_seeds_from_the_head_hint() {
        let bus = ChangeBus::new(8);
        // Simulates a restart: store is at version 7, the bus is empty.
        assert!(matches!(bus.collect("d", 7, 7), Collected::Empty { head: 7 }));
        assert!(matches!(bus.collect("d", 3, 7), Collected::Resync { head: 7 }));
        // The next save picks up from the seeded head.
        bus.publish("d", 8, &full("y"));
        assert_eq!(changes_of(bus.collect("d", 7, 7)), vec![(8, "y".into())]);
    }

    #[test]
    fn cursor_ahead_of_the_head_resyncs() {
        let bus = ChangeBus::new(8);
        bus.publish("d", 1, &full("a"));
        assert!(matches!(bus.collect("d", 9, 0), Collected::Resync { head: 1 }));
    }

    #[test]
    fn publish_wakes_registered_subscribers_once() {
        let bus = ChangeBus::new(8);
        let fired = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&fired);
        let waker = Waker::from_fn(move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
        assert!(matches!(bus.subscribe("d", 0, 0, waker), Collected::Empty { .. }));
        bus.publish("d", 1, &full("a"));
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        // The waker was consumed; a second publish does not re-fire it.
        bus.publish("d", 2, &full("b"));
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn subscribe_with_pending_changes_does_not_register() {
        let bus = ChangeBus::new(8);
        bus.publish("d", 1, &full("a"));
        let fired = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&fired);
        let waker = Waker::from_fn(move || {
            f.fetch_add(1, Ordering::SeqCst);
        });
        assert!(matches!(bus.subscribe("d", 0, 0, waker), Collected::Changes { .. }));
        bus.publish("d", 2, &full("b"));
        assert_eq!(fired.load(Ordering::SeqCst), 0, "waker must not have been registered");
    }

    #[test]
    fn duplicate_publish_is_idempotent() {
        let bus = ChangeBus::new(8);
        bus.publish("d", 1, &full("a"));
        bus.publish("d", 1, &full("a"));
        assert_eq!(changes_of(bus.collect("d", 0, 0)).len(), 1);
    }

    #[test]
    fn collect_blocking_returns_when_a_save_lands() {
        let bus = Arc::new(ChangeBus::new(8));
        bus.publish("d", 1, &full("a"));
        let publisher = {
            let bus = Arc::clone(&bus);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                bus.publish("d", 2, &full("b"));
            })
        };
        let start = Instant::now();
        let got = bus.collect_blocking("d", 1, 0, Duration::from_secs(5));
        assert_eq!(changes_of(got), vec![(2, "b".into())]);
        assert!(start.elapsed() < Duration::from_secs(4), "must not wait out the full timeout");
        publisher.join().unwrap();
    }

    #[test]
    fn collect_blocking_times_out_empty() {
        let bus = ChangeBus::new(8);
        bus.publish("d", 1, &full("a"));
        let got = bus.collect_blocking("d", 1, 0, Duration::from_millis(30));
        assert!(matches!(got, Collected::Empty { head: 1 }));
    }

    #[test]
    fn presence_is_stored_per_client_and_sorted() {
        let bus = ChangeBus::new(8);
        bus.set_presence("d", "c2", "blob2");
        bus.set_presence("d", "c1", "blob1");
        bus.set_presence("d", "c2", "blob2b");
        assert_eq!(
            bus.presence("d"),
            vec![("c1".into(), "blob1".into()), ("c2".into(), "blob2b".into())]
        );
        bus.clear_presence("d", "c1");
        assert_eq!(bus.presence("d").len(), 1);
    }
}
