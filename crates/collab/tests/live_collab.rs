//! End-to-end live collaboration: multiple sessions over one server —
//! in-process, over real sockets with event-loop parking, and across a
//! durable-store restart (the resume-from-`since` contract).

use std::sync::Arc;
use std::time::{Duration, Instant};

use pe_client::{DirectChannel, DocsClient, PrivateChannel, SaveOutcome};
use pe_cloud::docs::DocsServer;
use pe_cloud::{CloudService, Request};
use pe_collab::{
    LiveDocs, LiveService, LiveSession, LiveTransport, SharedChannel, SubscriptionTransport,
};
use pe_core::PresenceSealer;
use pe_crypto::{form, CtrDrbg};
use pe_extension::{DocsMediator, MediatorConfig};
use pe_net::{HttpClient, HttpServer, ServerConfig};
use pe_store::{ShardedLogStore, StoreConfig};

type InProcSession = LiveSession<DirectChannel<Arc<LiveDocs>>, DirectChannel<Arc<LiveDocs>>>;

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!(
            "pe-collab-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn create_doc(service: &dyn CloudService) -> String {
    let resp = service.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
    let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
    form::first_value(&pairs, "docID").unwrap().to_string()
}

fn join_in_process(live: &Arc<LiveDocs>, doc: &str, name: &str) -> InProcSession {
    let client = DocsClient::open(DirectChannel(Arc::clone(live)), doc).unwrap();
    LiveSession::start(client, DirectChannel(Arc::clone(live)), name, None).unwrap()
}

/// Saves and polls both sessions until neither has pending work, then
/// asserts byte-for-byte convergence.
fn drain_and_assert_converged(a: &mut InProcSession, b: &mut InProcSession) {
    for _ in 0..24 {
        let a_saved = a.save();
        let b_saved = b.save();
        a.step(Duration::ZERO).unwrap();
        b.step(Duration::ZERO).unwrap();
        let quiet = (a_saved == SaveOutcome::Clean || a_saved == SaveOutcome::Saved)
            && (b_saved == SaveOutcome::Clean || b_saved == SaveOutcome::Saved);
        if quiet && a.content() == b.content() && a.since() == b.since() {
            break;
        }
    }
    assert_eq!(a.content(), b.content(), "sessions must converge byte-for-byte");
}

#[test]
fn pushed_deltas_reach_the_second_editor() {
    let live = LiveDocs::new(Arc::new(DocsServer::new()));
    let doc = create_doc(&*live);
    let mut alice = join_in_process(&live, &doc, "alice");
    let mut bob = join_in_process(&live, &doc, "bob");

    alice.client().editor().insert(0, "hello from alice");
    assert_eq!(alice.save(), SaveOutcome::Saved);

    let outcome = bob.step(Duration::ZERO).unwrap();
    assert_eq!(outcome.applied, 1);
    assert!(!outcome.resynced);
    assert_eq!(bob.content(), "hello from alice");

    // Alice's own echo is skipped: her step applies nothing.
    let outcome = alice.step(Duration::ZERO).unwrap();
    assert_eq!(outcome.applied, 0);
    assert_eq!(alice.content(), "hello from alice");
}

#[test]
fn pending_local_edits_are_rebased_over_pushed_changes() {
    let live = LiveDocs::new(Arc::new(DocsServer::new()));
    let doc = create_doc(&*live);
    let mut alice = join_in_process(&live, &doc, "alice");
    let mut bob = join_in_process(&live, &doc, "bob");

    alice.client().editor().insert(0, "the shared line");
    assert_eq!(alice.save(), SaveOutcome::Saved);
    assert_eq!(bob.step(Duration::ZERO).unwrap().applied, 1);

    // Both edit concurrently: Alice prepends, Bob appends — classic OT.
    alice.client().editor().insert(0, "[A] ");
    assert_eq!(alice.save(), SaveOutcome::Saved);
    let bob_len = bob.content().len();
    bob.client().editor().insert(bob_len, " [B]");
    // Bob polls before saving: his pending edit survives the rebase.
    assert_eq!(bob.step(Duration::ZERO).unwrap().applied, 1);
    assert_eq!(bob.content(), "[A] the shared line [B]");
    assert_eq!(bob.save(), SaveOutcome::Saved);
    assert_eq!(alice.step(Duration::ZERO).unwrap().applied, 1);

    assert_eq!(alice.content(), "[A] the shared line [B]");
    drain_and_assert_converged(&mut alice, &mut bob);
}

#[test]
fn stale_cursor_resyncs_without_diverging() {
    let live = LiveDocs::new(Arc::new(DocsServer::new()));
    let doc = create_doc(&*live);
    let mut alice = join_in_process(&live, &doc, "alice");
    let mut bob = join_in_process(&live, &doc, "bob");

    // Alice makes more saves than the ring retains while Bob is away.
    alice.client().editor().insert(0, "seed ");
    assert_eq!(alice.save(), SaveOutcome::Saved);
    for i in 0..(pe_collab::DEFAULT_RING_CAPACITY + 8) {
        alice.client().editor().insert(0, if i % 2 == 0 { "x" } else { "y" });
        assert_eq!(alice.save(), SaveOutcome::Saved);
    }
    let outcome = bob.step(Duration::ZERO).unwrap();
    assert!(outcome.resynced, "cursor far behind the ring must resync");
    assert_eq!(bob.content(), alice.content());
    assert_eq!(bob.since(), alice.since());
}

#[test]
fn sealed_presence_is_opened_only_by_key_holders() {
    let live = LiveDocs::new(Arc::new(DocsServer::new()));
    let doc = create_doc(&*live);
    let sealer = |name: &str| {
        let _ = name;
        PresenceSealer::from_password(&doc, "shared-secret", 64)
    };

    let client = DocsClient::open(DirectChannel(Arc::clone(&live)), &doc).unwrap();
    let mut alice =
        LiveSession::start(client, DirectChannel(Arc::clone(&live)), "alice", Some(sealer("alice")))
            .unwrap();
    let client = DocsClient::open(DirectChannel(Arc::clone(&live)), &doc).unwrap();
    let mut bob =
        LiveSession::start(client, DirectChannel(Arc::clone(&live)), "bob", Some(sealer("bob")))
            .unwrap();

    alice.set_cursor(7);
    alice.publish_presence().unwrap();
    bob.step(Duration::ZERO).unwrap();
    let peers: Vec<_> = bob.peers().values().collect();
    assert_eq!(peers.len(), 1);
    assert_eq!(peers[0].editor, "alice");
    assert_eq!(peers[0].cursor, 7);

    // The server-side blob never contains the editor name or cursor.
    let stored = live.bus().presence(&doc);
    assert_eq!(stored.len(), 1);
    assert!(!stored[0].1.contains("alice"));
    assert!(stored[0].1.chars().all(|c| c.is_ascii_hexdigit()));
}

#[test]
fn parked_subscriber_over_a_real_socket_is_woken_by_a_save() {
    let live = LiveDocs::new(Arc::new(DocsServer::new()));
    let doc = create_doc(&*live);
    let server = HttpServer::bind(
        "127.0.0.1:0",
        Arc::new(LiveService(Arc::clone(&live))),
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();

    // Subscriber: edit channel on the pooled client, poll channel on a
    // dedicated subscription connection.
    let pooled = HttpClient::new(addr);
    let sub_client = DocsClient::open(DirectChannel(HttpClient::new(addr)), &doc).unwrap();
    let poll = DirectChannel(SubscriptionTransport::new(&pooled, Duration::from_secs(60)));
    let mut watcher = LiveSession::start(sub_client, poll, "watcher", None).unwrap();

    let writer_handle = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        let mut writer =
            DocsClient::open(DirectChannel(HttpClient::new(addr)), &doc).unwrap();
        writer.editor().insert(0, "pushed over the wire");
        assert_eq!(writer.save(), SaveOutcome::Saved);
    });

    // The long-poll parks server-side until the save wakes it.
    let start = Instant::now();
    let outcome = watcher.step(Duration::from_secs(10)).unwrap();
    let waited = start.elapsed();
    writer_handle.join().unwrap();

    assert_eq!(outcome.applied, 1, "push must deliver the save");
    assert_eq!(watcher.content(), "pushed over the wire");
    assert!(
        waited < Duration::from_secs(5),
        "woken by publish, not by poll timeout (waited {waited:?})"
    );
    server.shutdown();
}

#[test]
fn resume_from_since_survives_a_server_restart() {
    let dir = TempDir::new("resume");
    let doc;
    let since_before_crash;
    {
        let store: Arc<dyn pe_store::DocStore> =
            Arc::new(ShardedLogStore::open(&dir.0, 4, StoreConfig::default()).unwrap());
        let live = LiveDocs::new(Arc::new(DocsServer::with_store(store)));
        doc = create_doc(&*live);
        let mut writer = join_in_process(&live, &doc, "writer");
        writer.client().editor().insert(0, "first line");
        assert_eq!(writer.save(), SaveOutcome::Saved);
        writer.client().editor().insert(10, " second");
        assert_eq!(writer.save(), SaveOutcome::Saved);
        since_before_crash = writer.since();
        assert!(since_before_crash >= 2);
        // Server "crashes": LiveDocs and its in-memory ring are dropped;
        // only the WAL-backed store survives.
    }

    let store: Arc<dyn pe_store::DocStore> =
        Arc::new(ShardedLogStore::open(&dir.0, 4, StoreConfig::default()).unwrap());
    let live = LiveDocs::new(Arc::new(DocsServer::with_store(store)));

    // A subscriber resuming from its pre-crash cursor: the sequence is
    // store-durable, so "nothing new" is the truthful answer — no lost
    // and no duplicated deltas.
    let mut resumed = join_in_process(&live, &doc, "resumed");
    assert_eq!(resumed.since(), since_before_crash, "version counter survived the restart");
    assert_eq!(resumed.content(), "first line second");
    let outcome = resumed.step(Duration::ZERO).unwrap();
    assert_eq!(outcome.applied, 0);
    assert!(!outcome.resynced);

    // A subscriber whose cursor predates the retained window resyncs
    // from authoritative content instead of silently missing changes.
    let stale_client = DocsClient::open(DirectChannel(Arc::clone(&live)), &doc).unwrap();
    let mut stale =
        LiveSession::start(stale_client, DirectChannel(Arc::clone(&live)), "stale", None).unwrap();
    // Fake a pre-crash cursor by bypassing start()'s load: a fresh
    // session already at head steps cleanly…
    assert!(!stale.step(Duration::ZERO).unwrap().resynced);

    // …and new saves after the restart flow to the resumed subscriber
    // exactly once.
    let mut writer = join_in_process(&live, &doc, "writer2");
    writer.client().editor().insert(0, "post-crash ");
    assert_eq!(writer.save(), SaveOutcome::Saved);
    let outcome = resumed.step(Duration::ZERO).unwrap();
    assert_eq!(outcome.applied, 1);
    assert_eq!(resumed.content(), "post-crash first line second");
    let outcome = resumed.step(Duration::ZERO).unwrap();
    assert_eq!(outcome.applied, 0, "no duplicate delivery");
}

type PrivateInProc =
    LiveSession<SharedChannel<PrivateChannel<Arc<LiveDocs>>>, SharedChannel<PrivateChannel<Arc<LiveDocs>>>>;

/// Joins a *private* session: one mediator shared between the edit and
/// poll paths (its ciphertext mirror must see both directions).
fn join_private(live: &Arc<LiveDocs>, doc: &str, name: &str, seed: [u8; 16]) -> PrivateInProc {
    let mut mediator =
        DocsMediator::with_rng(Arc::clone(live), MediatorConfig::recb(8), CtrDrbg::new(seed));
    mediator.register_password(doc, "collab-pw");
    let channel = SharedChannel::new(PrivateChannel(mediator));
    let client = DocsClient::open(channel.clone(), doc).unwrap();
    let sealer = PresenceSealer::from_password(doc, "collab-pw", 64);
    LiveSession::start(client, channel, name, Some(sealer)).unwrap()
}

#[test]
fn private_sessions_converge_and_the_server_sees_only_ciphertext() {
    let live = LiveDocs::new(Arc::new(DocsServer::new()));
    let doc = create_doc(&*live);
    let mut alice = join_private(&live, &doc, "alice", [1; 16]);
    let mut bob = join_private(&live, &doc, "bob", [2; 16]);

    alice.client().editor().insert(0, "attack at dawn");
    assert_eq!(alice.save(), SaveOutcome::Saved);

    // Bob receives the change decrypted through his mediator…
    let outcome = bob.step(Duration::ZERO).unwrap();
    assert!(outcome.applied >= 1 || outcome.resynced);
    assert_eq!(bob.content(), "attack at dawn");

    // …edits concurrently with Alice, both converge.
    let bob_len = bob.content().len();
    bob.client().editor().insert(bob_len, " (bob)");
    alice.client().editor().insert(0, "(alice) ");
    assert_eq!(alice.save(), SaveOutcome::Saved);
    let outcome = bob.step(Duration::ZERO).unwrap();
    assert!(outcome.applied >= 1 || outcome.resynced);
    assert_eq!(bob.save(), SaveOutcome::Saved);
    let outcome = alice.step(Duration::ZERO).unwrap();
    assert!(outcome.applied >= 1 || outcome.resynced);

    assert_eq!(alice.content(), bob.content());
    assert_eq!(alice.content(), "(alice) attack at dawn (bob)");

    // The provider stored and fanned out only ciphertext.
    let stored = live.docs().stored_content(&doc).unwrap();
    assert!(!stored.contains("attack"));
    assert!(!stored.contains("alice"));

    // Sealed presence round-trips between key holders.
    alice.set_cursor(3);
    alice.publish_presence().unwrap();
    bob.step(Duration::ZERO).unwrap();
    let peers: Vec<_> = bob.peers().values().collect();
    assert_eq!(peers.len(), 1);
    assert_eq!(peers[0].editor, "alice");
    assert_eq!(peers[0].cursor, 3);
}

#[test]
fn private_live_session_works_over_real_sockets() {
    let live = LiveDocs::new(Arc::new(DocsServer::new()));
    let server = HttpServer::bind(
        "127.0.0.1:0",
        Arc::new(LiveService(Arc::clone(&live))),
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();

    // Writer creates the private document over the wire.
    let mut writer_mediator = DocsMediator::with_rng(
        LiveTransport::new(HttpClient::new(addr), Duration::from_secs(60)),
        MediatorConfig::recb(8),
        CtrDrbg::new([3; 16]),
    );
    let doc = writer_mediator.create_document("wire-pw").unwrap();
    let writer_channel = SharedChannel::new(PrivateChannel(writer_mediator));
    let writer_client = DocsClient::open(writer_channel.clone(), &doc).unwrap();
    let mut writer =
        LiveSession::start(writer_client, writer_channel, "writer", None).unwrap();

    // Watcher joins over its own sockets (pool + dedicated subscription).
    let mut watcher_mediator = DocsMediator::with_rng(
        LiveTransport::new(HttpClient::new(addr), Duration::from_secs(60)),
        MediatorConfig::recb(8),
        CtrDrbg::new([4; 16]),
    );
    watcher_mediator.register_password(&doc, "wire-pw");
    let watcher_channel = SharedChannel::new(PrivateChannel(watcher_mediator));
    let watcher_client = DocsClient::open(watcher_channel.clone(), &doc).unwrap();
    let mut watcher =
        LiveSession::start(watcher_client, watcher_channel, "watcher", None).unwrap();

    let writer_handle = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        writer.client().editor().insert(0, "secret meeting at noon");
        assert_eq!(writer.save(), SaveOutcome::Saved);
    });

    let start = Instant::now();
    let outcome = watcher.step(Duration::from_secs(10)).unwrap();
    let waited = start.elapsed();
    writer_handle.join().unwrap();

    assert!(outcome.applied >= 1 || outcome.resynced);
    assert_eq!(watcher.content(), "secret meeting at noon");
    assert!(waited < Duration::from_secs(5), "push beat the poll timeout ({waited:?})");
    assert!(!live.docs().stored_content(&doc).unwrap().contains("secret"));
    server.shutdown();
}

mod convergence_proptest {
    use super::*;
    use proptest::prelude::*;

    /// Applies one scripted edit to a session's editor. Positions are
    /// taken modulo the buffer so every script is valid.
    fn apply_edit(session: &mut InProcSession, kind: u8, pos: u8, ch: char) {
        let len = session.content().len();
        match kind % 3 {
            0 => {
                let at = pos as usize % (len + 1);
                let text: String = std::iter::repeat_n(ch, 1 + (pos as usize % 3)).collect();
                session.client().editor().insert(at, &text);
            }
            1 if len > 0 => {
                let at = pos as usize % len;
                let n = (1 + pos as usize % 4).min(len - at);
                session.client().editor().delete(at, n);
            }
            _ => {
                let at = pos as usize % (len + 1);
                session.client().editor().insert(at, &ch.to_string());
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Collab-level TP1: two live sessions making arbitrary
        /// interleaved edits, saves, and polls always converge.
        #[test]
        fn two_live_sessions_always_converge(
            script_a in proptest::collection::vec(
                (any::<u8>(), any::<u8>(), proptest::char::range('a', 'f'), any::<bool>()), 1..12),
            script_b in proptest::collection::vec(
                (any::<u8>(), any::<u8>(), proptest::char::range('p', 'u'), any::<bool>()), 1..12),
        ) {
            let live = LiveDocs::new(Arc::new(DocsServer::new()));
            let doc = create_doc(&*live);
            let mut alice = join_in_process(&live, &doc, "alice");
            let mut bob = join_in_process(&live, &doc, "bob");

            let rounds = script_a.len().max(script_b.len());
            for i in 0..rounds {
                if let Some(&(kind, pos, ch, save_now)) = script_a.get(i) {
                    apply_edit(&mut alice, kind, pos, ch);
                    if save_now {
                        alice.save();
                        bob.step(Duration::ZERO).unwrap();
                    }
                }
                if let Some(&(kind, pos, ch, save_now)) = script_b.get(i) {
                    apply_edit(&mut bob, kind, pos, ch);
                    if save_now {
                        bob.save();
                        alice.step(Duration::ZERO).unwrap();
                    }
                }
            }
            drain_and_assert_converged(&mut alice, &mut bob);
            // Convergence is to the server's authoritative content.
            prop_assert_eq!(
                alice.content(),
                live.docs().stored_content(&doc).unwrap()
            );
        }
    }
}
