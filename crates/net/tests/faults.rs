//! Connection-fault drills: the server enacts seeded wire faults —
//! refused connections, mid-response stalls, truncated responses — and
//! the client's retry/backoff loop must ride them all out without the
//! application ever noticing.

use std::sync::Arc;
use std::time::Duration;

use pe_cloud::docs::DocsServer;
use pe_cloud::fault::{ConnectionFault, ConnectionFaultSchedule};
use pe_cloud::retry::BackoffPolicy;
use pe_cloud::Request;
use pe_crypto::CtrDrbg;
use pe_extension::{DocsMediator, MediatorConfig};
use pe_net::{ClientConfig, HttpClient, HttpServer, ServerConfig};

fn faulty_server(
    schedule: Arc<ConnectionFaultSchedule>,
) -> (HttpServer, Arc<DocsServer>, Arc<ConnectionFaultSchedule>) {
    let backend = Arc::new(DocsServer::new());
    let server = HttpServer::bind_with_faults(
        "127.0.0.1:0",
        Arc::clone(&backend) as Arc<dyn pe_net::Service>,
        ServerConfig {
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_millis(500),
            ..ServerConfig::default()
        },
        Some(Arc::clone(&schedule)),
    )
    .unwrap();
    (server, backend, schedule)
}

fn patient_config(read_timeout: Duration) -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_millis(500),
        read_timeout,
        write_timeout: Duration::from_millis(500),
        retries: 6,
        backoff: BackoffPolicy::new(Duration::from_millis(1), Duration::from_millis(8), 0.5, 42),
        deadline: Some(Duration::from_secs(20)),
        pool_size: 2,
    }
}

fn patient_client(server: &HttpServer, read_timeout: Duration) -> HttpClient {
    HttpClient::with_config(server.local_addr(), patient_config(read_timeout))
}

#[test]
fn client_rides_out_refused_connections() {
    // Refuse every third connection.
    let (server, _backend, schedule) = faulty_server(Arc::new(
        ConnectionFaultSchedule::new(ConnectionFault::Refuse, 3, 7),
    ));
    // Refusal happens at accept, so force a fresh connection per request
    // (an empty pool) to actually exercise the schedule.
    let client = HttpClient::with_config(
        server.local_addr(),
        ClientConfig { pool_size: 0, ..patient_config(Duration::from_millis(500)) },
    );
    for _ in 0..12 {
        let resp = client.send(&Request::post("/Doc", &[("cmd", "create")], "")).unwrap();
        assert!(resp.is_success());
    }
    assert!(schedule.injected() > 0, "the schedule never fired");
    server.shutdown();
}

#[test]
fn client_rides_out_truncated_responses() {
    // Truncate every third response after 10 bytes: the client sees a
    // premature EOF (retryable) and tries again on a fresh connection.
    let (server, _backend, schedule) = faulty_server(Arc::new(
        ConnectionFaultSchedule::new(ConnectionFault::Truncate(10), 3, 11),
    ));
    let client = patient_client(&server, Duration::from_millis(500));
    for _ in 0..12 {
        let resp = client.send(&Request::post("/Doc", &[("cmd", "create")], "")).unwrap();
        assert!(resp.is_success());
    }
    assert!(schedule.injected() > 0, "the schedule never fired");
    server.shutdown();
}

#[test]
fn client_rides_out_stalled_responses() {
    // Stall every third response for longer than the client's read
    // timeout: the read times out (retryable) and the retry succeeds.
    let (server, _backend, schedule) = faulty_server(Arc::new(
        ConnectionFaultSchedule::new(
            ConnectionFault::Stall(Duration::from_millis(400)),
            3,
            13,
        ),
    ));
    let client = patient_client(&server, Duration::from_millis(100));
    for _ in 0..8 {
        let resp = client.send(&Request::post("/Doc", &[("cmd", "create")], "")).unwrap();
        assert!(resp.is_success());
    }
    assert!(schedule.injected() > 0, "the schedule never fired");
    server.shutdown();
}

#[test]
fn mediated_session_survives_a_faulty_wire_end_to_end() {
    // The full stack — mediator over HttpClient over a truncating wire —
    // finishes a multi-edit session with zero unrecovered errors, and the
    // provider ends up with decryptable ciphertext.
    let (server, backend, schedule) = faulty_server(Arc::new(
        ConnectionFaultSchedule::new(ConnectionFault::Truncate(25), 4, 3),
    ));
    let client = patient_client(&server, Duration::from_millis(500));
    let mut mediator =
        DocsMediator::with_rng(client, MediatorConfig::recb(8), CtrDrbg::from_seed(0xfa))
;
    let doc_id = mediator.create_document("fault-pw").unwrap();
    mediator.save_full(&doc_id, "base text").unwrap();
    for i in 0..6 {
        let current = mediator.open_document(&doc_id).unwrap();
        mediator.save_full(&doc_id, &format!("{current} +{i}")).unwrap();
    }
    let final_text = mediator.open_document(&doc_id).unwrap();
    assert_eq!(final_text, "base text +0 +1 +2 +3 +4 +5");
    assert!(schedule.injected() > 0, "the schedule never fired");
    // The provider never saw plaintext.
    let stored = backend.stored_content(&doc_id).unwrap();
    assert!(!stored.contains("base text"));
    server.shutdown();
}
