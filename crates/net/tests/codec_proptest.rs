//! Property coverage for the hand-rolled HTTP/1.1 codec: arbitrary
//! requests and responses round-trip byte-identically, and malformed
//! input of every flavour produces a typed error — never a panic and
//! never an unbounded allocation.

use bytes::Bytes;
use pe_cloud::{Method, Request, Response};
use pe_net::codec::{
    read_request, read_response, request_bytes, response_bytes, MAX_BODY_BYTES, MAX_HEADERS,
    MAX_LINE_BYTES,
};
use pe_net::NetError;
use proptest::prelude::*;

fn arbitrary_method() -> impl Strategy<Value = Method> {
    prop_oneof![Just(Method::Get), Just(Method::Post), Just(Method::Put)]
}

proptest! {
    /// serialize → parse is the identity on requests, for any method,
    /// any UTF-8 path (percent-escaping covers spaces, '?', '%', and
    /// multi-byte characters), any query pairs, and any binary body.
    #[test]
    fn request_round_trips_byte_identically(
        method in arbitrary_method(),
        path in "/\\PC{0,30}",
        query in prop::collection::vec(("\\PC{0,12}", "\\PC{0,12}"), 0..4),
        body in prop::collection::vec(any::<u8>(), 0..200),
        keep_alive in any::<bool>(),
    ) {
        let request = Request {
            method,
            path,
            query,
            body: Bytes::from(body),
        };
        let wire = request_bytes(&request, keep_alive).unwrap();
        let parsed = read_request(&mut &wire[..]).unwrap().expect("a full request was written");
        prop_assert_eq!(parsed.request, request);
        prop_assert_eq!(parsed.keep_alive, keep_alive);
    }

    /// serialize → parse is the identity on responses, for any status
    /// code and any binary body.
    #[test]
    fn response_round_trips_byte_identically(
        status in 100u16..1000,
        body in prop::collection::vec(any::<u8>(), 0..200),
        keep_alive in any::<bool>(),
    ) {
        let response = Response { status, body: Bytes::from(body) };
        let wire = response_bytes(&response, keep_alive).unwrap();
        let parsed = read_response(&mut &wire[..]).unwrap();
        prop_assert_eq!(parsed.response, response);
        prop_assert_eq!(parsed.keep_alive, keep_alive);
    }

    /// Chopping a valid message anywhere before its last byte yields a
    /// typed error (or, for a cut before byte one, a clean `None`) —
    /// never a panic and never a short read passed off as success.
    #[test]
    fn truncated_requests_error_instead_of_panicking(
        body in prop::collection::vec(any::<u8>(), 1..64),
        cut_seed in any::<u64>(),
    ) {
        let request = Request::post("/Doc", &[("cmd", "save")], body);
        let wire = request_bytes(&request, true).unwrap();
        let cut = (cut_seed % wire.len() as u64) as usize; // 0..wire.len()-1: always short
        match read_request(&mut &wire[..cut]) {
            Ok(None) => prop_assert_eq!(cut, 0, "clean EOF is only legal before any byte"),
            Ok(Some(_)) => prop_assert!(false, "parsed a message from a truncated prefix"),
            Err(_) => {} // typed error: the expected outcome
        }
    }

    /// Arbitrary garbage bytes never panic the request parser.
    #[test]
    fn garbage_input_never_panics(noise in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = read_request(&mut &noise[..]);
        let _ = read_response(&mut &noise[..]);
    }
}

// ---------------------------------------------------------------------
// Malformed-input regressions: one pinned case per error class.
// ---------------------------------------------------------------------

fn expect_request_error(wire: &[u8]) -> NetError {
    read_request(&mut &wire[..]).expect_err("parser accepted malformed input")
}

#[test]
fn oversize_request_line_is_rejected_not_buffered() {
    let mut wire = b"GET /".to_vec();
    wire.extend(std::iter::repeat_n(b'a', MAX_LINE_BYTES + 10));
    wire.extend_from_slice(b" HTTP/1.1\r\n\r\n");
    assert!(matches!(expect_request_error(&wire), NetError::TooLarge { .. }));
}

#[test]
fn unparseable_content_length_is_malformed() {
    let wire = b"GET / HTTP/1.1\r\ncontent-length: banana\r\n\r\n";
    assert!(matches!(expect_request_error(wire), NetError::Malformed { .. }));
}

#[test]
fn conflicting_content_lengths_are_malformed() {
    let wire = b"GET / HTTP/1.1\r\ncontent-length: 3\r\ncontent-length: 5\r\n\r\nabc";
    assert!(matches!(expect_request_error(wire), NetError::Malformed { .. }));
}

#[test]
fn declared_body_over_the_cap_is_rejected_before_allocation() {
    let wire = format!("GET / HTTP/1.1\r\ncontent-length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
    assert!(matches!(expect_request_error(wire.as_bytes()), NetError::TooLarge { .. }));
}

#[test]
fn header_flood_is_cut_off_at_the_cap() {
    let mut wire = b"GET / HTTP/1.1\r\n".to_vec();
    for i in 0..=MAX_HEADERS + 1 {
        wire.extend_from_slice(format!("x-flood-{i}: y\r\n").as_bytes());
    }
    wire.extend_from_slice(b"\r\n");
    assert!(matches!(expect_request_error(&wire), NetError::TooLarge { .. }));
}

#[test]
fn missing_body_bytes_are_an_unexpected_eof() {
    let wire = b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort";
    assert!(matches!(expect_request_error(wire), NetError::UnexpectedEof));
}

#[test]
fn unsupported_method_and_version_are_malformed() {
    assert!(matches!(
        expect_request_error(b"BREW /pot HTTP/1.1\r\n\r\n"),
        NetError::Malformed { .. }
    ));
    assert!(matches!(
        expect_request_error(b"GET /pot HTTP/0.9\r\n\r\n"),
        NetError::Malformed { .. }
    ));
}

#[test]
fn relative_targets_and_broken_escapes_are_malformed() {
    assert!(matches!(
        expect_request_error(b"GET pot HTTP/1.1\r\n\r\n"),
        NetError::Malformed { .. }
    ));
    assert!(matches!(
        expect_request_error(b"GET /pot%2 HTTP/1.1\r\n\r\n"),
        NetError::Malformed { .. }
    ));
    assert!(matches!(
        expect_request_error(b"GET /pot%zz HTTP/1.1\r\n\r\n"),
        NetError::Malformed { .. }
    ));
}

#[test]
fn header_without_a_colon_is_malformed() {
    assert!(matches!(
        expect_request_error(b"GET / HTTP/1.1\r\nnot a header\r\n\r\n"),
        NetError::Malformed { .. }
    ));
}

#[test]
fn serializing_a_relative_path_is_an_error_not_a_panic() {
    let bad = Request { method: Method::Get, path: "oops".into(), query: vec![], body: Bytes::new() };
    assert!(matches!(request_bytes(&bad, true), Err(NetError::Malformed { .. })));
}
