//! The transport-parity acceptance test: the same seeded mediated
//! editing session, run once through in-process function calls and once
//! through `pe-net` over a real loopback socket, must leave the provider
//! holding **byte-identical ciphertext** and give the client **identical
//! plaintext**. That is the whole point of the `Transport` seam — the
//! wire changes nothing but the wire.

use std::sync::Arc;

use pe_cloud::docs::DocsServer;
use pe_cloud::CloudService;
use pe_crypto::CtrDrbg;
use pe_delta::Delta;
use pe_extension::{DocsMediator, MediatorConfig};
use pe_net::{HttpClient, HttpServer, ServerConfig};

/// Runs the scripted session against `service`, returning
/// `(doc_id, plaintext_as_seen_by_a_fresh_reader)`.
fn scripted_session<S: CloudService>(service: S, reopen: S) -> (String, String) {
    let mut mediator =
        DocsMediator::with_rng(service, MediatorConfig::recb(8), CtrDrbg::from_seed(0x10af));
    let doc_id = mediator.create_document("parity-pw").unwrap();
    mediator.save_full(&doc_id, "the quick brown fox").unwrap();
    let mut delta = Delta::builder();
    delta.retain(4).insert("very ");
    mediator.save_delta(&doc_id, &delta.build()).unwrap();
    let mut delta = Delta::builder();
    delta.retain(0).delete(4).insert("one");
    mediator.save_delta(&doc_id, &delta.build()).unwrap();
    mediator.save_full(&doc_id, "rewritten from scratch, still private").unwrap();

    // A fresh mediator (fresh rng) decrypting proves the ciphertext is
    // self-contained, not an artifact of in-memory state.
    let mut reader =
        DocsMediator::with_rng(reopen, MediatorConfig::recb(8), CtrDrbg::from_seed(0x0bb));
    reader.register_password(&doc_id, "parity-pw");
    let plaintext = reader.open_document(&doc_id).unwrap();
    (doc_id, plaintext)
}

#[test]
fn loopback_session_matches_in_process_session_byte_for_byte() {
    // In-process run.
    let direct_backend = Arc::new(DocsServer::new());
    let (direct_doc, direct_text) =
        scripted_session(Arc::clone(&direct_backend), Arc::clone(&direct_backend));

    // Identical run over a real socket.
    let wire_backend = Arc::new(DocsServer::new());
    let server = HttpServer::bind(
        "127.0.0.1:0",
        Arc::clone(&wire_backend) as Arc<dyn pe_net::Service>,
        ServerConfig::default(),
    )
    .unwrap();
    let (wire_doc, wire_text) = scripted_session(
        HttpClient::new(server.local_addr()),
        HttpClient::new(server.local_addr()),
    );
    server.shutdown();

    // Same document id (both backends assign their first id)…
    assert_eq!(direct_doc, wire_doc);
    // …same plaintext back out…
    assert_eq!(direct_text, wire_text);
    assert_eq!(wire_text, "rewritten from scratch, still private");
    // …and the provider's stored ciphertext is byte-identical: the codec
    // and transport are lossless, and the wire added no nondeterminism.
    let direct_stored = direct_backend.stored_content(&direct_doc).unwrap();
    let wire_stored = wire_backend.stored_content(&wire_doc).unwrap();
    assert_eq!(direct_stored, wire_stored);
    // And it is ciphertext.
    assert!(!wire_stored.contains("private"));
    assert!(!wire_stored.contains("fox"));
}

#[test]
fn revision_history_also_survives_the_wire_identically() {
    let direct_backend = Arc::new(DocsServer::new());
    let (doc, _) = scripted_session(Arc::clone(&direct_backend), Arc::clone(&direct_backend));

    let wire_backend = Arc::new(DocsServer::new());
    let server = HttpServer::bind(
        "127.0.0.1:0",
        Arc::clone(&wire_backend) as Arc<dyn pe_net::Service>,
        ServerConfig::default(),
    )
    .unwrap();
    scripted_session(HttpClient::new(server.local_addr()), HttpClient::new(server.local_addr()));
    server.shutdown();

    // Every stored revision matches, not just the head.
    let direct = direct_backend.snapshot();
    let wire = wire_backend.snapshot();
    assert_eq!(direct, wire, "full provider state (incl. history) must match");
    let _ = doc;
}
