//! Event-loop behaviour the thread-pool server could not provide:
//! slow-loris and mid-body stallers are timed out by the loop without
//! ever consuming a worker, and request framing resumes across
//! arbitrary read-boundary splits (property-tested against the
//! accumulator that feeds the loop). Every wire test runs on both
//! poller backends — `epoll` and the portable `poll(2)` fallback.

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pe_cloud::docs::DocsServer;
use pe_cloud::{Request, Response};
use pe_net::codec;
use pe_net::{HttpServer, RequestAccumulator, ServerConfig, Service};
use proptest::prelude::*;

/// A server with one worker and a short read budget: if anything
/// occupied that worker, every other request would visibly stall.
fn tight_server(force_poll: bool) -> HttpServer {
    HttpServer::bind(
        "127.0.0.1:0",
        Arc::new(DocsServer::new()),
        ServerConfig {
            workers: 1,
            read_timeout: Duration::from_millis(300),
            write_timeout: Duration::from_millis(500),
            force_poll,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback")
}

fn quick_request(addr: SocketAddr) -> Response {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let bytes =
        codec::request_bytes(&Request::post("/Doc", &[("cmd", "create")], ""), false).unwrap();
    stream.write_all(&bytes).unwrap();
    let mut reader = BufReader::new(stream);
    codec::read_response(&mut reader).unwrap().response
}

/// Blocks until the server closes `stream`, returning how long it took.
fn wait_for_close(mut stream: TcpStream) -> Duration {
    let started = Instant::now();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut sink = [0u8; 256];
    loop {
        match stream.read(&mut sink) {
            Ok(0) => return started.elapsed(),
            Ok(_) => {}
            // Reset counts as closed; a read timeout means it never was.
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {
                return started.elapsed()
            }
            Err(e) => panic!("server never closed the connection: {e}"),
        }
    }
}

fn backends() -> Vec<bool> {
    if cfg!(target_os = "linux") {
        vec![false, true]
    } else {
        vec![true]
    }
}

#[test]
fn slow_loris_is_closed_on_deadline_without_consuming_the_worker() {
    for force_poll in backends() {
        let server = tight_server(force_poll);
        let addr = server.local_addr();

        // The loris: trickle a request one byte at a time, far slower
        // than the read budget allows.
        let bytes =
            codec::request_bytes(&Request::post("/Doc", &[("cmd", "create")], ""), true).unwrap();
        let loris = TcpStream::connect(addr).unwrap();
        let dribbler = std::thread::spawn({
            let loris = loris.try_clone().unwrap();
            move || {
                let mut loris = loris;
                for chunk in bytes.chunks(1).take(40) {
                    if loris.write_all(chunk).is_err() {
                        return; // server already hung up — expected
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        });

        // While the loris dribbles, the single worker stays available:
        // normal requests complete promptly.
        for _ in 0..3 {
            let started = Instant::now();
            assert!(quick_request(addr).is_success());
            assert!(
                started.elapsed() < Duration::from_secs(1),
                "worker was blocked by the loris ({force_poll})"
            );
        }

        // The loris itself is cut off near the 300 ms read deadline —
        // measured from its first byte, not from its last.
        let elapsed = wait_for_close(loris.try_clone().unwrap());
        assert!(
            elapsed < Duration::from_secs(3),
            "loris survived {elapsed:?} (force_poll={force_poll})"
        );
        let _ = loris.shutdown(std::net::Shutdown::Both);
        dribbler.join().unwrap();
        server.shutdown();
    }
}

#[test]
fn pipelined_requests_before_half_close_are_all_served() {
    for force_poll in backends() {
        let server = tight_server(force_poll);
        let addr = server.local_addr();

        // Pipeline three requests, then half-close: the FIN must not
        // discard the two requests still buffered behind the first.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut burst = Vec::new();
        for _ in 0..3 {
            burst.extend_from_slice(
                &codec::request_bytes(&Request::post("/Doc", &[("cmd", "create")], ""), true)
                    .unwrap(),
            );
        }
        stream.write_all(&burst).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();

        let mut reader = BufReader::new(stream);
        for i in 0..3 {
            let parsed = codec::read_response(&mut reader).unwrap_or_else(|e| {
                panic!("response {i} lost after half-close: {e} (force_poll={force_poll})")
            });
            assert!(
                parsed.response.is_success(),
                "response {i} failed (force_poll={force_poll})"
            );
        }
        // Nothing buffered remains, so the server closes the connection.
        let mut sink = [0u8; 64];
        match reader.read(&mut sink) {
            Ok(0) => {}
            Ok(n) => panic!("unexpected {n} bytes after the final response"),
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {}
            Err(e) => panic!("server never closed after serving the burst: {e}"),
        }
        server.shutdown();
    }
}

#[test]
fn mid_body_staller_is_timed_out() {
    for force_poll in backends() {
        let server = tight_server(force_poll);
        let addr = server.local_addr();

        // Complete head, half the promised body, then silence.
        let full = codec::request_bytes(
            &Request::post("/Doc", &[("cmd", "save")], "docContents=0123456789abcdef"),
            true,
        )
        .unwrap();
        let head_end = full.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
        let partial = &full[..head_end + (full.len() - head_end) / 2];

        let mut staller = TcpStream::connect(addr).unwrap();
        staller.write_all(partial).unwrap();

        // The stalled request must not block a healthy client.
        assert!(quick_request(addr).is_success());

        let elapsed = wait_for_close(staller);
        assert!(
            elapsed < Duration::from_secs(3),
            "mid-body staller survived {elapsed:?} (force_poll={force_poll})"
        );
        server.shutdown();
    }
}

#[test]
fn idle_keep_alive_connections_are_reaped() {
    for force_poll in backends() {
        let server = tight_server(force_poll);
        let addr = server.local_addr();

        // Serve one request with keep-alive, then go quiet.
        let mut stream = TcpStream::connect(addr).unwrap();
        let bytes =
            codec::request_bytes(&Request::post("/Doc", &[("cmd", "create")], ""), true).unwrap();
        stream.write_all(&bytes).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let parsed = codec::read_response(&mut reader).unwrap();
        assert!(parsed.response.is_success());
        assert!(parsed.keep_alive);

        let elapsed = wait_for_close(stream);
        assert!(
            elapsed < Duration::from_secs(3),
            "idle connection survived {elapsed:?} (force_poll={force_poll})"
        );
        server.shutdown();
    }
}

#[test]
fn hundreds_of_open_connections_all_get_served() {
    for force_poll in backends() {
        let server = HttpServer::bind(
            "127.0.0.1:0",
            Arc::new(DocsServer::new()),
            ServerConfig {
                workers: 2,
                read_timeout: Duration::from_secs(5),
                force_poll,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();

        // Open all connections first — far more than there are workers —
        // then exchange on each. Every socket stays open the whole time,
        // so the server genuinely holds 300 concurrent connections.
        let mut streams: Vec<TcpStream> = (0..300)
            .map(|_| {
                let s = TcpStream::connect(addr).unwrap();
                s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                s
            })
            .collect();
        let bytes =
            codec::request_bytes(&Request::post("/Doc", &[("cmd", "create")], ""), true).unwrap();
        for stream in &mut streams {
            stream.write_all(&bytes).unwrap();
        }
        for stream in streams {
            let mut reader = BufReader::new(stream);
            let parsed = codec::read_response(&mut reader).unwrap();
            assert!(parsed.response.is_success(), "force_poll={force_poll}");
        }
        server.shutdown();
    }
}

#[test]
fn responses_resume_across_partial_writes() {
    // A service with a response large enough that a single nonblocking
    // write cannot finish it against an unread socket, forcing the
    // loop's write-interest re-arm path.
    struct Big;
    impl Service for Big {
        fn call(&self, _request: &Request) -> Response {
            Response::ok(vec![0x5a; 4 * 1024 * 1024])
        }
    }
    for force_poll in backends() {
        let server = HttpServer::bind(
            "127.0.0.1:0",
            Arc::new(Big),
            ServerConfig {
                write_timeout: Duration::from_secs(10),
                force_poll,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let bytes = codec::request_bytes(&Request::get("/big", &[]), false).unwrap();
        stream.write_all(&bytes).unwrap();
        // Delay the first read so the server's socket buffer fills and
        // its optimistic write goes partial.
        std::thread::sleep(Duration::from_millis(200));
        let mut reader = BufReader::new(stream);
        let parsed = codec::read_response(&mut reader).unwrap();
        assert_eq!(parsed.response.status, 200);
        assert_eq!(parsed.response.body.len(), 4 * 1024 * 1024);
        server.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Feeding a serialized request to the accumulator in arbitrary
    /// chunks yields exactly the request the blocking codec would parse,
    /// for any split pattern.
    #[test]
    fn accumulator_resumes_across_arbitrary_split_points(
        path in "/\\PC{0,24}",
        body in prop::collection::vec(any::<u8>(), 0..600),
        keep_alive in any::<bool>(),
        splits in prop::collection::vec(1usize..64, 0..12),
    ) {
        let request = Request {
            method: pe_cloud::Method::Post,
            path,
            query: vec![("cmd".into(), "save".into())],
            body: bytes::Bytes::from(body),
        };
        let wire = codec::request_bytes(&request, keep_alive).unwrap();

        // Cut the wire bytes at the accumulated split offsets.
        let mut acc = RequestAccumulator::new();
        let mut fed = 0usize;
        let mut parsed = None;
        for split in splits {
            let next = (fed + split).min(wire.len());
            acc.push(&wire[fed..next]);
            fed = next;
            if let Some(got) = acc.try_next().unwrap() {
                parsed = Some(got);
                break;
            }
            // Incomplete input must never produce a request.
            prop_assert!(fed < wire.len(), "complete wire bytes yielded nothing");
        }
        if parsed.is_none() {
            acc.push(&wire[fed..]);
            parsed = acc.try_next().unwrap();
        }
        let parsed = parsed.expect("complete bytes parse");
        prop_assert_eq!(parsed.request, request);
        prop_assert_eq!(parsed.keep_alive, keep_alive);
        prop_assert!(acc.is_empty(), "no residue after one message");
    }

    /// Two pipelined requests split at an arbitrary byte boundary come
    /// out in order with no bytes lost between them.
    #[test]
    fn pipelined_pair_survives_any_split(
        body_a in prop::collection::vec(any::<u8>(), 0..120),
        body_b in prop::collection::vec(any::<u8>(), 0..120),
        cut_seed in any::<usize>(),
    ) {
        let make = |body: &[u8]| Request {
            method: pe_cloud::Method::Post,
            path: "/Doc".into(),
            query: vec![("cmd".into(), "save".into())],
            body: bytes::Bytes::copy_from_slice(body),
        };
        let (a, b) = (make(&body_a), make(&body_b));
        let mut wire = codec::request_bytes(&a, true).unwrap();
        wire.extend_from_slice(&codec::request_bytes(&b, true).unwrap());

        let cut = cut_seed % (wire.len() + 1);
        let mut acc = RequestAccumulator::new();
        acc.push(&wire[..cut]);
        let mut got = Vec::new();
        while let Some(parsed) = acc.try_next().unwrap() {
            got.push(parsed.request);
        }
        acc.push(&wire[cut..]);
        while let Some(parsed) = acc.try_next().unwrap() {
            got.push(parsed.request);
        }
        prop_assert_eq!(got, vec![a, b]);
        prop_assert!(acc.is_empty());
    }
}
