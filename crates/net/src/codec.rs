//! The hand-rolled HTTP/1.1 codec.
//!
//! Serializes the in-process message model ([`pe_cloud::Request`] /
//! [`pe_cloud::Response`]) to raw bytes and parses it back, speaking the
//! subset of HTTP/1.1 the mediated editing protocol needs:
//!
//! * request line with method, percent-encoded path, and a form-encoded
//!   query string;
//! * `Content-Length`-delimited bodies (arbitrary binary bytes);
//! * `Connection: keep-alive` / `close` negotiation (HTTP/1.1 defaults
//!   to keep-alive; `close` opts out);
//! * hard limits on line length, header count, and body size so a
//!   malformed or malicious peer produces an error, never a panic or an
//!   unbounded allocation.
//!
//! The codec is lossless: `parse(serialize(m)) == m` for every request
//! whose path starts with `/` and every response — the property the
//! proptest suite pins down.

use std::io::{BufRead, Write};

use bytes::Bytes;
use pe_cloud::{Method, Request, Response};
use pe_crypto::form;

use crate::error::NetError;

/// Maximum accepted length of one header or request line, in bytes.
pub const MAX_LINE_BYTES: usize = 16 * 1024;
/// Maximum accepted number of headers per message.
pub const MAX_HEADERS: usize = 64;
/// Maximum accepted `Content-Length`. Plaintext documents cap at 500 KiB
/// ([`pe_cloud::docs::MAX_DOC_BYTES`]); ciphertext blowup plus form
/// encoding stays well under this.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// True for path bytes written without escaping (unreserved + `/`).
fn is_path_safe(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'*' | b'/')
}

/// Percent-encodes a request path (no `+`-for-space rule — that is a
/// form-body convention; in a path, space becomes `%20`).
fn encode_path(path: &str) -> String {
    let mut out = String::with_capacity(path.len());
    for &b in path.as_bytes() {
        if is_path_safe(b) {
            out.push(b as char);
        } else {
            out.push('%');
            out.push(char::from_digit(u32::from(b >> 4), 16).unwrap().to_ascii_uppercase());
            out.push(char::from_digit(u32::from(b & 0xf), 16).unwrap().to_ascii_uppercase());
        }
    }
    out
}

/// Decodes a percent-encoded path (inverse of [`encode_path`]).
fn decode_path(encoded: &str) -> Result<String, NetError> {
    let bytes = encoded.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .ok_or_else(|| NetError::malformed("truncated % escape in path"))?;
            let hi = (hex[0] as char)
                .to_digit(16)
                .ok_or_else(|| NetError::malformed("bad hex in path escape"))?;
            let lo = (hex[1] as char)
                .to_digit(16)
                .ok_or_else(|| NetError::malformed("bad hex in path escape"))?;
            out.push((hi * 16 + lo) as u8);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| NetError::malformed("path is not UTF-8"))
}

/// Serializes `request` into `out`, ready to write to a socket.
///
/// # Errors
///
/// Returns [`NetError::Malformed`] when the path does not start with `/`
/// (the only shape the request line can carry losslessly) and
/// [`NetError::TooLarge`] when the body exceeds [`MAX_BODY_BYTES`].
pub fn write_request(
    request: &Request,
    keep_alive: bool,
    out: &mut Vec<u8>,
) -> Result<(), NetError> {
    if !request.path.starts_with('/') {
        return Err(NetError::malformed(format!(
            "request path must start with '/': {:?}",
            request.path
        )));
    }
    if request.body.len() > MAX_BODY_BYTES {
        return Err(NetError::TooLarge { what: "request body", limit: MAX_BODY_BYTES });
    }
    out.extend_from_slice(request.method.to_string().as_bytes());
    out.push(b' ');
    out.extend_from_slice(encode_path(&request.path).as_bytes());
    if !request.query.is_empty() {
        out.push(b'?');
        out.extend_from_slice(form::encode_pairs(&request.query).as_bytes());
    }
    out.extend_from_slice(b" HTTP/1.1\r\nhost: pe-net\r\n");
    out.extend_from_slice(format!("content-length: {}\r\n", request.body.len()).as_bytes());
    if !keep_alive {
        out.extend_from_slice(b"connection: close\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(&request.body);
    Ok(())
}

/// Serializes `response` into `out`.
///
/// # Errors
///
/// Returns [`NetError::TooLarge`] when the body exceeds [`MAX_BODY_BYTES`].
pub fn write_response(
    response: &Response,
    keep_alive: bool,
    out: &mut Vec<u8>,
) -> Result<(), NetError> {
    if response.body.len() > MAX_BODY_BYTES {
        return Err(NetError::TooLarge { what: "response body", limit: MAX_BODY_BYTES });
    }
    out.extend_from_slice(
        format!("HTTP/1.1 {} {}\r\n", response.status, reason(response.status)).as_bytes(),
    );
    out.extend_from_slice(format!("content-length: {}\r\n", response.body.len()).as_bytes());
    if !keep_alive {
        out.extend_from_slice(b"connection: close\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(&response.body);
    Ok(())
}

/// Canonical reason phrase for the statuses the stack produces.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Status",
    }
}

/// A parsed inbound request plus its connection disposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedRequest {
    /// The decoded request.
    pub request: Request,
    /// Whether the peer wants the connection kept open afterwards.
    pub keep_alive: bool,
}

/// A parsed inbound response plus its connection disposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedResponse {
    /// The decoded response.
    pub response: Response,
    /// Whether the peer will keep the connection open afterwards.
    pub keep_alive: bool,
}

/// Reads one `\r\n`-terminated line, enforcing [`MAX_LINE_BYTES`].
///
/// Returns `Ok(None)` on clean EOF before any byte.
fn read_line<R: BufRead>(reader: &mut R) -> Result<Option<String>, NetError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(NetError::UnexpectedEof);
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| NetError::malformed("header line is not UTF-8"));
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE_BYTES {
                    return Err(NetError::TooLarge { what: "header line", limit: MAX_LINE_BYTES });
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// Headers we act on: `content-length` and `connection`.
struct Headers {
    content_length: usize,
    keep_alive: bool,
}

/// Reads and folds the header block following a start line.
fn read_headers<R: BufRead>(reader: &mut R) -> Result<Headers, NetError> {
    let mut content_length: Option<usize> = None;
    let mut keep_alive = true; // HTTP/1.1 default
    for parsed in 0.. {
        if parsed > MAX_HEADERS {
            return Err(NetError::TooLarge { what: "header count", limit: MAX_HEADERS });
        }
        let line = read_line(reader)?.ok_or(NetError::UnexpectedEof)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| NetError::malformed(format!("header without colon: {line:?}")))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| NetError::malformed(format!("bad content-length {value:?}")))?;
                if n > MAX_BODY_BYTES {
                    return Err(NetError::TooLarge { what: "body", limit: MAX_BODY_BYTES });
                }
                if content_length.replace(n).is_some_and(|old| old != n) {
                    return Err(NetError::malformed("conflicting content-length headers"));
                }
            }
            "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
            _ => {} // tolerated and ignored (host, content-type, …)
        }
    }
    Ok(Headers { content_length: content_length.unwrap_or(0), keep_alive })
}

/// Reads exactly `Headers::content_length` body bytes.
fn read_body<R: BufRead>(reader: &mut R, len: usize) -> Result<Bytes, NetError> {
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(Bytes::from(body))
}

/// Parses one request from `reader`.
///
/// Returns `Ok(None)` when the peer closed the connection cleanly before
/// sending anything (the normal end of a keep-alive session).
///
/// # Errors
///
/// [`NetError::Malformed`] for unparseable bytes, [`NetError::TooLarge`]
/// for limit violations, [`NetError::UnexpectedEof`] for a connection
/// closed mid-message.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<ParsedRequest>, NetError> {
    let Some(line) = read_line(reader)? else {
        return Ok(None);
    };
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(NetError::malformed(format!("bad request line: {line:?}"))),
    };
    if version != "HTTP/1.1" {
        return Err(NetError::malformed(format!("unsupported version {version:?}")));
    }
    let method = match method {
        "GET" => Method::Get,
        "POST" => Method::Post,
        "PUT" => Method::Put,
        other => return Err(NetError::malformed(format!("unsupported method {other:?}"))),
    };
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let path = decode_path(raw_path)?;
    if !path.starts_with('/') {
        return Err(NetError::malformed(format!("request target must be absolute: {target:?}")));
    }
    let query = if raw_query.is_empty() {
        Vec::new()
    } else {
        form::parse_pairs(raw_query)
            .map_err(|e| NetError::malformed(format!("bad query string: {e}")))?
    };
    let headers = read_headers(reader)?;
    let body = read_body(reader, headers.content_length)?;
    Ok(Some(ParsedRequest {
        request: Request { method, path, query, body },
        keep_alive: headers.keep_alive,
    }))
}

/// Parses one response from `reader`.
///
/// # Errors
///
/// Same classes as [`read_request`]; EOF before the status line is
/// [`NetError::UnexpectedEof`] because a response was expected.
pub fn read_response<R: BufRead>(reader: &mut R) -> Result<ParsedResponse, NetError> {
    let line = read_line(reader)?.ok_or(NetError::UnexpectedEof)?;
    let mut parts = line.splitn(3, ' ');
    let (version, status) = match (parts.next(), parts.next()) {
        (Some(v), Some(s)) => (v, s),
        _ => return Err(NetError::malformed(format!("bad status line: {line:?}"))),
    };
    if version != "HTTP/1.1" {
        return Err(NetError::malformed(format!("unsupported version {version:?}")));
    }
    let status: u16 = status
        .parse()
        .map_err(|_| NetError::malformed(format!("bad status code {status:?}")))?;
    let headers = read_headers(reader)?;
    let body = read_body(reader, headers.content_length)?;
    Ok(ParsedResponse { response: Response { status, body }, keep_alive: headers.keep_alive })
}

/// Serializes a request to a fresh buffer (convenience for tests).
pub fn request_bytes(request: &Request, keep_alive: bool) -> Result<Vec<u8>, NetError> {
    let mut out = Vec::new();
    write_request(request, keep_alive, &mut out)?;
    Ok(out)
}

/// Serializes a response to a fresh buffer (convenience for tests).
pub fn response_bytes(response: &Response, keep_alive: bool) -> Result<Vec<u8>, NetError> {
    let mut out = Vec::new();
    write_response(response, keep_alive, &mut out)?;
    Ok(out)
}

/// Writes pre-serialized bytes to a socket in one call.
pub(crate) fn write_all(stream: &mut impl Write, bytes: &[u8]) -> Result<(), NetError> {
    stream.write_all(bytes)?;
    stream.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn roundtrip_request(request: &Request) -> ParsedRequest {
        let bytes = request_bytes(request, true).unwrap();
        read_request(&mut BufReader::new(&bytes[..])).unwrap().unwrap()
    }

    #[test]
    fn simple_request_roundtrips() {
        let request = Request::post(
            "/Doc",
            &[("docID", "doc1"), ("cmd", "open")],
            "docContents=hello+world",
        );
        let parsed = roundtrip_request(&request);
        assert_eq!(parsed.request, request);
        assert!(parsed.keep_alive);
    }

    #[test]
    fn path_and_query_escape_and_decode() {
        let request = Request::get(
            "/Doc load/é…?#",
            &[("k ey", "v&l=ue"), ("", ""), ("中", "🙂")],
        );
        let bytes = request_bytes(&request, true).unwrap();
        let line_end = bytes.iter().position(|&b| b == b'\r').unwrap();
        let line = std::str::from_utf8(&bytes[..line_end]).unwrap();
        // Raw spaces inside the target would split the request line.
        let tokens: Vec<&str> = line.split(' ').collect();
        assert_eq!(tokens.len(), 3, "method, target, version: {line}");
        assert_eq!(tokens[1].matches('?').count(), 1, "exactly the separator: {line}");
        let parsed = read_request(&mut BufReader::new(&bytes[..])).unwrap().unwrap();
        assert_eq!(parsed.request, request);
    }

    #[test]
    fn binary_and_empty_bodies_roundtrip() {
        let binary = Request::new(Method::Put, "/blob", &[], Bytes::from(vec![0u8, 255, 10, 13]));
        assert_eq!(roundtrip_request(&binary).request, binary);
        let empty = Request::get("/", &[]);
        assert_eq!(roundtrip_request(&empty).request, empty);
    }

    #[test]
    fn connection_close_flows_through() {
        let request = Request::get("/x", &[]);
        let bytes = request_bytes(&request, false).unwrap();
        let parsed = read_request(&mut BufReader::new(&bytes[..])).unwrap().unwrap();
        assert!(!parsed.keep_alive);
    }

    #[test]
    fn response_roundtrips() {
        for (status, body) in
            [(200u16, &b"content=hi"[..]), (503, b"unavailable"), (404, b""), (7, b"\x00\xff")]
        {
            let response = Response { status, body: Bytes::copy_from_slice(body) };
            let bytes = response_bytes(&response, true).unwrap();
            let parsed = read_response(&mut BufReader::new(&bytes[..])).unwrap();
            assert_eq!(parsed.response, response);
        }
    }

    #[test]
    fn clean_eof_is_none_for_requests() {
        assert!(read_request(&mut BufReader::new(&b""[..])).unwrap().is_none());
    }

    #[test]
    fn eof_is_an_error_for_responses() {
        assert!(matches!(
            read_response(&mut BufReader::new(&b""[..])),
            Err(NetError::UnexpectedEof)
        ));
    }

    #[test]
    fn premature_body_eof_is_an_error() {
        let mut bytes = request_bytes(&Request::post("/x", &[], "0123456789"), true).unwrap();
        bytes.truncate(bytes.len() - 4);
        assert!(matches!(
            read_request(&mut BufReader::new(&bytes[..])),
            Err(NetError::UnexpectedEof)
        ));
    }

    #[test]
    fn bad_content_length_is_rejected() {
        let raw = b"GET / HTTP/1.1\r\ncontent-length: banana\r\n\r\n";
        assert!(matches!(
            read_request(&mut BufReader::new(&raw[..])),
            Err(NetError::Malformed { .. })
        ));
        let raw = b"GET / HTTP/1.1\r\ncontent-length: 3\r\ncontent-length: 5\r\n\r\nabcde";
        assert!(matches!(
            read_request(&mut BufReader::new(&raw[..])),
            Err(NetError::Malformed { .. })
        ));
    }

    #[test]
    fn oversize_declared_body_is_rejected_without_allocating() {
        let raw = format!("GET / HTTP/1.1\r\ncontent-length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(matches!(
            read_request(&mut BufReader::new(raw.as_bytes())),
            Err(NetError::TooLarge { .. })
        ));
    }

    #[test]
    fn oversize_header_line_is_rejected() {
        let mut raw = b"GET / HTTP/1.1\r\nx: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_LINE_BYTES + 2));
        raw.extend_from_slice(b"\r\n\r\n");
        assert!(matches!(
            read_request(&mut BufReader::new(&raw[..])),
            Err(NetError::TooLarge { .. })
        ));
    }

    #[test]
    fn garbage_request_lines_are_rejected() {
        for raw in [
            &b"FROB / HTTP/1.1\r\n\r\n"[..],
            b"GET / HTTP/1.0\r\n\r\n",
            b"GET /\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"relative HTTP/1.1\r\n\r\n",
            b"\xff\xfe\r\n\r\n",
        ] {
            assert!(
                read_request(&mut BufReader::new(raw)).is_err(),
                "accepted {:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn header_without_colon_is_rejected() {
        let raw = b"GET / HTTP/1.1\r\nnocolonhere\r\n\r\n";
        assert!(matches!(
            read_request(&mut BufReader::new(&raw[..])),
            Err(NetError::Malformed { .. })
        ));
    }

    #[test]
    fn relative_paths_cannot_be_written() {
        let request = Request::get("no-slash", &[]);
        assert!(matches!(request_bytes(&request, true), Err(NetError::Malformed { .. })));
    }
}
