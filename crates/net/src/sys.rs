//! The readiness shim: a zero-dependency syscall layer over `epoll`
//! (Linux) with a portable `poll(2)` fallback, behind one [`Poller`]
//! type.
//!
//! `std::net` gives us nonblocking sockets but no way to *wait* on many
//! of them at once, and this workspace vendors no external crates — so
//! the handful of syscalls the event loop needs are declared here
//! directly against the C ABI that every `std`-using process is already
//! linked with. This is the only module in the workspace that contains
//! `unsafe`; every block carries the invariant that makes it sound.
//!
//! Both backends are **level-triggered**: a readiness flag stays set as
//! long as the condition holds. The event loop relies on that — it reads
//! or writes until `WouldBlock` but never has to drain within a single
//! wakeup, and interest is updated (`modify`) as connections move
//! through their state machines so idle sockets don't spin the loop.
//!
//! The `poll` backend exists for two reasons: portability to non-Linux
//! Unixes, and testability — the parity tests run the same server
//! through both backends ([`Backend::Poll`] is forced via
//! [`ServerConfig::force_poll`](crate::ServerConfig::force_poll)).

use std::collections::HashMap;
use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// What a registration wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub read: bool,
    /// Wake when the fd is writable.
    pub write: bool,
}

impl Interest {
    /// Read-only interest (the common steady state of a connection).
    pub const READ: Interest = Interest { read: true, write: false };
    /// Write-only interest (response flush in progress, reads paused).
    pub const WRITE: Interest = Interest { read: false, write: true };
    /// No wakeups except errors/hangups (request dispatched, output not
    /// yet ready).
    pub const NONE: Interest = Interest { read: false, write: false };
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable (includes pending EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup — the connection is dead or dying; level-triggered
    /// backends report this regardless of requested interest.
    pub hangup: bool,
}

/// Which readiness backend a [`Poller`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Backend {
    /// `epoll(7)` — O(ready) wakeups, Linux only.
    #[cfg(target_os = "linux")]
    Epoll,
    /// `poll(2)` — O(registered) scans, everywhere.
    Poll,
}

/// A readiness multiplexer over raw fds.
///
/// The caller guarantees every registered fd stays open until
/// `deregister` — both backends hold only the integer, so a close-then-
/// reuse race would deliver events for the wrong socket. The event loop
/// upholds this by deregistering in its connection-close path before the
/// `TcpStream` drops.
#[derive(Debug)]
pub(crate) enum Poller {
    #[cfg(target_os = "linux")]
    Epoll(EpollPoller),
    Poll(PollPoller),
}

impl Poller {
    /// Opens a poller, preferring `epoll` on Linux unless `force_poll`.
    pub fn new(force_poll: bool) -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            if !force_poll {
                return Ok(Poller::Epoll(EpollPoller::new()?));
            }
        }
        let _ = force_poll;
        Ok(Poller::Poll(PollPoller::new()))
    }

    /// Which backend this poller runs on.
    pub fn backend(&self) -> Backend {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(_) => Backend::Epoll,
            Poller::Poll(_) => Backend::Poll,
        }
    }

    /// Starts watching `fd` under `token`.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.ctl(linux::EPOLL_CTL_ADD, fd, token, interest),
            Poller::Poll(p) => {
                p.entries.insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    /// Changes the interest set of an already-registered fd.
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.ctl(linux::EPOLL_CTL_MOD, fd, token, interest),
            Poller::Poll(p) => {
                p.entries.insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    /// Stops watching `fd`. Must happen before the fd is closed.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.ctl(linux::EPOLL_CTL_DEL, fd, 0, Interest::NONE),
            Poller::Poll(p) => {
                p.entries.remove(&fd);
                Ok(())
            }
        }
    }

    /// Blocks until at least one event or `timeout`, appending readiness
    /// notifications to `out`. A timeout yields zero events, not an
    /// error; `EINTR` is swallowed the same way.
    pub fn wait(&mut self, timeout: Duration, out: &mut Vec<Event>) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.wait(timeout, out),
            Poller::Poll(p) => p.wait(timeout, out),
        }
    }
}

/// Clamps a duration to a positive C `int` millisecond count for
/// `epoll_wait`/`poll` (both take `-1` for infinite; we never do).
fn timeout_ms(timeout: Duration) -> i32 {
    i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX)
}

// ---------------------------------------------------------------------
// epoll backend (Linux)
// ---------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod linux {
    //! Raw `epoll` ABI. Constants and layout match `<sys/epoll.h>` for
    //! every Linux architecture this workspace targets.

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    /// `struct epoll_event`. On x86-64 the kernel ABI declares it
    /// `__attribute__((packed))` (4-byte aligned `u64`); other
    /// architectures use natural alignment. Getting this wrong corrupts
    /// the token, so both layouts are spelled out.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        /// The user token (we never use the union's ptr/fd arms).
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32)
            -> i32;
        pub fn close(fd: i32) -> i32;
    }
}

/// The `epoll` poller: one epoll instance plus a reusable event buffer.
#[cfg(target_os = "linux")]
#[derive(Debug)]
pub(crate) struct EpollPoller {
    epfd: RawFd,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    fn new() -> io::Result<EpollPoller> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is
        // the only failure mode and is checked before use.
        let epfd = unsafe { linux::epoll_create1(linux::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EpollPoller { epfd })
    }

    fn ctl(&mut self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        // RDHUP rides along with read interest only: it is level-
        // triggered, so arming it on a masked (`Interest::NONE`)
        // registration would spin the loop for the whole time a
        // half-closed peer's request is dispatched or parked.
        let mut events = 0;
        if interest.read {
            events |= linux::EPOLLIN | linux::EPOLLRDHUP;
        }
        if interest.write {
            events |= linux::EPOLLOUT;
        }
        let mut event = linux::EpollEvent { events, data: token };
        // SAFETY: `event` is a live, properly laid-out EpollEvent for the
        // duration of the call (the kernel copies it out before
        // returning); `self.epfd` is a valid epoll fd owned by this
        // poller; `fd` is open per the Poller contract.
        let rc = unsafe { linux::epoll_ctl(self.epfd, op, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn wait(&mut self, timeout: Duration, out: &mut Vec<Event>) -> io::Result<()> {
        const MAX_EVENTS: usize = 1024;
        let mut buf = [linux::EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        // SAFETY: `buf` is a valid writable array of MAX_EVENTS
        // EpollEvents that outlives the call; the kernel writes at most
        // `maxevents` entries and returns how many are initialized.
        let n = unsafe {
            linux::epoll_wait(
                self.epfd,
                buf.as_mut_ptr(),
                MAX_EVENTS as i32,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for event in &buf[..n as usize] {
            // Copy out of the (possibly packed) struct before use.
            let bits = { event.events };
            let token = { event.data };
            out.push(Event {
                token,
                readable: bits & (linux::EPOLLIN | linux::EPOLLRDHUP) != 0,
                writable: bits & linux::EPOLLOUT != 0,
                hangup: bits & (linux::EPOLLERR | linux::EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollPoller {
    fn drop(&mut self) {
        // SAFETY: `epfd` was returned by epoll_create1 and is closed
        // exactly once, here.
        unsafe {
            linux::close(self.epfd);
        }
    }
}

// ---------------------------------------------------------------------
// poll backend (portable fallback)
// ---------------------------------------------------------------------

mod posix {
    //! Raw `poll(2)` ABI, identical across the Unixes we care about.

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy, Debug)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        /// `nfds_t` is `unsigned long` — which is 32-bit on 32-bit
        /// targets, so it must not be declared as a fixed `u64`.
        pub fn poll(fds: *mut PollFd, nfds: core::ffi::c_ulong, timeout: i32) -> i32;
    }
}

/// The portable poller: rebuilds a `pollfd` array from the registration
/// map on every wait. O(n) per wakeup — fine for the fallback role and
/// for tests, not the 10k-connection path.
#[derive(Debug)]
pub(crate) struct PollPoller {
    /// fd → (token, interest).
    entries: HashMap<RawFd, (u64, Interest)>,
    /// Scratch reused across waits.
    fds: Vec<posix::PollFd>,
}

impl PollPoller {
    fn new() -> PollPoller {
        PollPoller { entries: HashMap::new(), fds: Vec::new() }
    }

    fn wait(&mut self, timeout: Duration, out: &mut Vec<Event>) -> io::Result<()> {
        self.fds.clear();
        let mut tokens = Vec::with_capacity(self.entries.len());
        for (&fd, &(token, interest)) in &self.entries {
            let mut events = 0i16;
            if interest.read {
                events |= posix::POLLIN;
            }
            if interest.write {
                events |= posix::POLLOUT;
            }
            self.fds.push(posix::PollFd { fd, events, revents: 0 });
            tokens.push(token);
        }
        if self.fds.is_empty() {
            std::thread::sleep(timeout.min(Duration::from_millis(50)));
            return Ok(());
        }
        // SAFETY: `self.fds` is a live, writable slice of PollFds for the
        // duration of the call and `nfds` is exactly its length; every
        // registered fd is open per the Poller contract.
        let n = unsafe {
            posix::poll(
                self.fds.as_mut_ptr(),
                self.fds.len() as core::ffi::c_ulong,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for (pollfd, &token) in self.fds.iter().zip(&tokens) {
            let bits = pollfd.revents;
            if bits == 0 {
                continue;
            }
            out.push(Event {
                token,
                readable: bits & (posix::POLLIN | posix::POLLHUP) != 0,
                writable: bits & posix::POLLOUT != 0,
                hangup: bits & (posix::POLLERR | posix::POLLHUP) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    /// A connected loopback pair plus the listener that made it.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    fn backends() -> Vec<Poller> {
        let mut pollers = vec![Poller::new(true).unwrap()];
        if cfg!(target_os = "linux") {
            pollers.push(Poller::new(false).unwrap());
        }
        pollers
    }

    #[test]
    fn readable_after_peer_writes() {
        for mut poller in backends() {
            let (mut a, b) = pair();
            b.set_nonblocking(true).unwrap();
            poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();

            let mut events = Vec::new();
            poller.wait(Duration::from_millis(10), &mut events).unwrap();
            assert!(events.is_empty(), "no data yet: {events:?}");

            a.write_all(b"x").unwrap();
            let mut events = Vec::new();
            for _ in 0..100 {
                poller.wait(Duration::from_millis(10), &mut events).unwrap();
                if !events.is_empty() {
                    break;
                }
            }
            assert_eq!(events.len(), 1, "{:?}", poller.backend());
            assert_eq!(events[0].token, 7);
            assert!(events[0].readable);
            poller.deregister(b.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn writable_reported_and_maskable() {
        for mut poller in backends() {
            let (a, _b) = pair();
            a.set_nonblocking(true).unwrap();
            poller.register(a.as_raw_fd(), 1, Interest::WRITE).unwrap();
            let mut events = Vec::new();
            poller.wait(Duration::from_millis(100), &mut events).unwrap();
            assert!(
                events.iter().any(|e| e.token == 1 && e.writable),
                "fresh socket is writable ({:?})",
                poller.backend()
            );
            // Masking write interest silences the (level-triggered) event.
            poller.modify(a.as_raw_fd(), 1, Interest::NONE).unwrap();
            let mut events = Vec::new();
            poller.wait(Duration::from_millis(10), &mut events).unwrap();
            assert!(
                events.iter().all(|e| !e.writable),
                "masked: {events:?} ({:?})",
                poller.backend()
            );
        }
    }

    #[test]
    fn hangup_is_delivered() {
        for mut poller in backends() {
            let (a, mut b) = pair();
            b.set_nonblocking(true).unwrap();
            poller.register(b.as_raw_fd(), 9, Interest::READ).unwrap();
            drop(a);
            let mut events = Vec::new();
            for _ in 0..100 {
                poller.wait(Duration::from_millis(10), &mut events).unwrap();
                if !events.is_empty() {
                    break;
                }
            }
            // A closed peer shows up as readable (EOF) and/or hangup —
            // either lets the loop discover the close on read.
            assert!(
                events.iter().any(|e| e.token == 9 && (e.readable || e.hangup)),
                "close not noticed: {events:?} ({:?})",
                poller.backend()
            );
            // The EOF is really there.
            let mut buf = [0u8; 8];
            assert_eq!(b.read(&mut buf).unwrap(), 0);
        }
    }
}
