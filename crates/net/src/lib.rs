//! `pe-net`: a real TCP/HTTP transport for the private-editing stack.
//!
//! Until this crate, the reproduction passed [`pe_cloud::Request`] /
//! [`pe_cloud::Response`] structs through in-process function calls —
//! there was no wire, so nothing about serving *many concurrent mediated
//! editors* could be measured honestly. `pe-net` adds the wire using
//! only `std::net`:
//!
//! * [`codec`] — a hand-rolled, limit-enforcing HTTP/1.1 codec that
//!   serializes the existing message model to bytes and back, losslessly;
//! * [`HttpServer`] — an event-driven server: one loop thread multiplexes
//!   every socket through a readiness poller (`epoll` on Linux, portable
//!   `poll(2)` fallback), requests assemble incrementally through a
//!   [`RequestAccumulator`], handlers run on a small worker pool with
//!   bounded dispatch, and a timer wheel enforces idle/request/write
//!   deadlines (slow-loris defense). Keep-alive reuse, graceful
//!   draining shutdown, and optional connection-fault injection
//!   ([`pe_cloud::fault::ConnectionFaultSchedule`]) carry over;
//! * [`HttpClient`] — a connection-pooling client with deadline and
//!   seeded exponential backoff ([`pe_cloud::retry::BackoffPolicy`]);
//! * [`Service`] / [`Router`] — what the server mounts: any
//!   [`CloudService`] (DocsServer, BespinServer, BuzzwordServer, or a
//!   whole mediator stack) plugs in directly, and a [`Router`] composes
//!   several under path prefixes;
//! * [`Transport`] — the client-side abstraction: the same mediator and
//!   editing client run over [`InProcess`] (the old function-call path)
//!   or [`HttpClient`] (a live socket) without changing a line, because
//!   `HttpClient` also implements [`CloudService`].
//!
//! Everything is instrumented through `pe-observe` under `net.server.*`
//! and `net.client.*`; EXPERIMENTS.md documents the metric names and the
//! `net_load` harness that drives 1→64 concurrent editors through this
//! stack.
//!
//! # Example: a mediated editor over a loopback socket
//!
//! ```
//! use std::sync::Arc;
//! use pe_cloud::docs::DocsServer;
//! use pe_extension::{DocsMediator, MediatorConfig};
//! use pe_net::{HttpClient, HttpServer, ServerConfig};
//!
//! let backend = Arc::new(DocsServer::new());
//! let server = HttpServer::bind("127.0.0.1:0", backend.clone(), ServerConfig::default())?;
//!
//! // The mediator talks to the server over a real socket…
//! let transport = HttpClient::new(server.local_addr());
//! let mut mediator = DocsMediator::new(transport, MediatorConfig::recb(8));
//! let doc_id = mediator.create_document("password")?;
//! mediator.save_full(&doc_id, "typed over the wire")?;
//!
//! // …and the provider still stores only ciphertext.
//! assert!(!backend.stored_content(&doc_id).unwrap().contains("wire"));
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// Unsafe is denied everywhere except the `sys` readiness shim, whose
// raw `epoll`/`poll` syscalls are each documented with a SAFETY comment.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod client;
mod error;
mod event;
mod server;
#[allow(unsafe_code)]
mod sys;

pub use client::{ClientConfig, HttpClient, SubscriptionConn};
pub use error::NetError;
pub use event::RequestAccumulator;
pub use server::{HttpServer, ServerConfig};

use std::sync::Arc;

use pe_cloud::{CloudService, Request, Response};

/// What an [`HttpServer`] mounts: a handler for decoded requests.
///
/// Every [`CloudService`] is a `Service` via the blanket impl, so the
/// simulated Docs/Bespin/Buzzword servers — and `HttpClient` itself,
/// enabling relays — mount without adapters.
pub trait Service: Send + Sync {
    /// Handles one request.
    fn call(&self, request: &Request) -> Response;

    /// Handles one request with the option to *defer* the response:
    /// returning [`Served::Parked`] tells the event loop to hold the
    /// connection open (Parked state, subscription deadline) until the
    /// provided [`Waker`] fires, at which point the request is
    /// re-dispatched through this method. Long-poll endpoints override
    /// this; everything else inherits the immediate default.
    fn call_deferred(&self, request: &Request, waker: Waker) -> Served {
        let _ = waker;
        Served::Response(self.call(request))
    }

    /// Name for logs and metrics.
    fn service_name(&self) -> &str {
        "service"
    }
}

/// Outcome of [`Service::call_deferred`].
pub enum Served {
    /// Respond now.
    Response(Response),
    /// Park the connection; if the subscription deadline fires before the
    /// waker does, `on_timeout` is sent instead.
    Parked {
        /// Response to send when the subscription deadline expires.
        on_timeout: Response,
        /// How long the caller asked to wait (e.g. a long-poll's
        /// `waitMs`). The park expires after the *smaller* of this and
        /// the server's `subscription_timeout`; `None` means the server
        /// cap alone applies.
        wait: Option<std::time::Duration>,
    },
}

/// Handle a parked service holds to re-dispatch a deferred request.
///
/// Cheap to clone; firing it more than once is harmless (the event loop
/// validates connection identity and state before re-dispatching), and a
/// waker outliving its connection is a no-op.
#[derive(Clone)]
pub struct Waker(Arc<dyn Fn() + Send + Sync>);

impl Waker {
    /// Wraps a wake callback.
    pub fn from_fn(f: impl Fn() + Send + Sync + 'static) -> Waker {
        Waker(Arc::new(f))
    }

    /// A waker that does nothing (in-process callers that never park).
    pub fn noop() -> Waker {
        Waker(Arc::new(|| {}))
    }

    /// Requests re-dispatch of the parked request.
    pub fn wake(&self) {
        (self.0)();
    }
}

impl std::fmt::Debug for Waker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Waker")
    }
}

impl<S: CloudService> Service for S {
    fn call(&self, request: &Request) -> Response {
        self.handle(request)
    }

    fn service_name(&self) -> &str {
        self.name()
    }
}

/// Mounts services under path prefixes; first match wins.
///
/// A request for `/admin/shutdown` against `mount("/admin", svc)` reaches
/// `svc` with path `/shutdown`. The empty prefix is a catch-all that
/// forwards the path unchanged. Unmatched requests get 404.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use pe_cloud::docs::DocsServer;
/// use pe_cloud::{Request, Response};
/// use pe_net::{Router, Service};
///
/// let router = Router::new()
///     .mount("/docs", Arc::new(DocsServer::new()))
///     .mount("", Arc::new(DocsServer::new()));
/// let resp = router.call(&Request::post("/docs/Doc", &[("cmd", "create")], ""));
/// assert!(resp.is_success());
/// assert_eq!(router.call(&Request::get("/docs/nothing/here", &[])).status, 404);
/// ```
#[derive(Default)]
pub struct Router {
    routes: Vec<(String, Arc<dyn Service>)>,
}

impl Router {
    /// An empty router (every request 404s).
    pub fn new() -> Router {
        Router::default()
    }

    /// Adds a service under `prefix` (use `""` for a catch-all).
    #[must_use]
    pub fn mount(mut self, prefix: &str, service: Arc<dyn Service>) -> Router {
        self.routes.push((prefix.trim_end_matches('/').to_string(), service));
        self
    }
}

impl Router {
    /// Resolves a request to its service and the prefix-stripped request.
    fn route<'a>(&'a self, request: &Request) -> Option<(&'a Arc<dyn Service>, Request)> {
        for (prefix, service) in &self.routes {
            if prefix.is_empty() {
                return Some((service, request.clone()));
            }
            let stripped = match request.path.strip_prefix(prefix.as_str()) {
                Some("") => "/",
                Some(rest) if rest.starts_with('/') => rest,
                _ => continue,
            };
            let rewritten = Request {
                method: request.method,
                path: stripped.to_string(),
                query: request.query.clone(),
                body: request.body.clone(),
            };
            return Some((service, rewritten));
        }
        None
    }
}

impl Service for Router {
    fn call(&self, request: &Request) -> Response {
        match self.route(request) {
            Some((service, rewritten)) => service.call(&rewritten),
            None => Response::error(404, "no route"),
        }
    }

    fn call_deferred(&self, request: &Request, waker: Waker) -> Served {
        match self.route(request) {
            Some((service, rewritten)) => service.call_deferred(&rewritten, waker),
            None => Served::Response(Response::error(404, "no route")),
        }
    }

    fn service_name(&self) -> &str {
        "router"
    }
}

/// The client-side transport abstraction: one request/response exchange,
/// fallible. [`InProcess`] gives the old function-call path; `HttpClient`
/// gives a live socket.
pub trait Transport: Send + Sync {
    /// Performs one exchange.
    ///
    /// # Errors
    ///
    /// Transport-level failures only; application errors travel inside
    /// the [`Response`].
    fn exchange(&self, request: &Request) -> Result<Response, NetError>;

    /// Where requests go, for logs.
    fn target(&self) -> String;
}

/// The in-process transport: calls the service directly, never fails.
#[derive(Debug, Clone)]
pub struct InProcess<S>(pub S);

impl<S: CloudService> Transport for InProcess<S> {
    fn exchange(&self, request: &Request) -> Result<Response, NetError> {
        Ok(self.0.handle(request))
    }

    fn target(&self) -> String {
        format!("in-process:{}", self.0.name())
    }
}

impl Transport for HttpClient {
    fn exchange(&self, request: &Request) -> Result<Response, NetError> {
        self.send(request)
    }

    fn target(&self) -> String {
        format!("http://{}", self.addr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_cloud::docs::DocsServer;

    #[test]
    fn blanket_service_impl_covers_cloud_services() {
        let docs = DocsServer::new();
        let resp = Service::call(&docs, &Request::post("/Doc", &[("cmd", "create")], ""));
        assert!(resp.is_success());
        assert_eq!(docs.service_name(), "google-documents");
    }

    #[test]
    fn router_strips_prefixes_and_404s_unmatched() {
        let router = Router::new().mount("/docs", Arc::new(DocsServer::new()));
        assert!(router.call(&Request::post("/docs/Doc", &[("cmd", "create")], "")).is_success());
        assert_eq!(router.call(&Request::post("/Doc", &[("cmd", "create")], "")).status, 404);
        // Prefix match must be on a path boundary.
        assert_eq!(router.call(&Request::get("/docsX", &[])).status, 404);
    }

    #[test]
    fn in_process_transport_is_infallible() {
        let transport = InProcess(DocsServer::new());
        let resp = transport.exchange(&Request::post("/Doc", &[("cmd", "create")], "")).unwrap();
        assert!(resp.is_success());
        assert!(transport.target().contains("in-process"));
    }
}
