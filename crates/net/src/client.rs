//! The resilient HTTP client transport.
//!
//! [`HttpClient`] speaks the `pe-net` codec over real sockets with:
//!
//! * a **connection pool** — keep-alive sockets are reused across
//!   requests, with a stale-connection grace retry (a pooled socket the
//!   server already closed costs one reconnect, not a failed request);
//! * **bounded exponential backoff with jitter** on connect and I/O
//!   errors (policy from [`pe_cloud::retry::BackoffPolicy`], so delays
//!   are deterministic per seed);
//! * a **deadline** bounding the total time spent on one exchange,
//!   including backoff sleeps.
//!
//! `HttpClient` implements [`CloudService`], so a
//! `pe_extension::DocsMediator` or `pe_client::DocsClient` runs over a
//! live socket *unchanged* — the same code path as the in-process
//! simulation, which is what makes the loopback-vs-in-process parity
//! test possible.

use std::io::{BufReader, Read};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use pe_cloud::retry::BackoffPolicy;
use pe_cloud::{CloudService, Request, Response};

use crate::codec;
use crate::error::NetError;

/// Tuning knobs for [`HttpClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Timeout for establishing a TCP connection.
    pub connect_timeout: Duration,
    /// Socket read timeout (bounds a stalled response).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Retries after the first attempt (total attempts = `retries + 1`).
    pub retries: u32,
    /// Backoff schedule between attempts.
    pub backoff: BackoffPolicy,
    /// Total wall-clock budget for one [`HttpClient::send`], including
    /// backoff sleeps. `None` means only the per-socket timeouts bound it.
    pub deadline: Option<Duration>,
    /// Maximum idle keep-alive sockets kept for reuse.
    pub pool_size: usize,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_secs(1),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            retries: 3,
            backoff: BackoffPolicy::client_default(0),
            deadline: Some(Duration::from_secs(30)),
            pool_size: 2,
        }
    }
}

/// A pooling, retrying HTTP/1.1 client bound to one server address.
pub struct HttpClient {
    addr: SocketAddr,
    config: ClientConfig,
    pool: Mutex<Vec<TcpStream>>,
}

impl std::fmt::Debug for HttpClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpClient")
            .field("addr", &self.addr)
            .field("pooled", &self.pool.lock().map(|p| p.len()).unwrap_or(0))
            .finish_non_exhaustive()
    }
}

impl HttpClient {
    /// A client for `addr` with default configuration.
    pub fn new(addr: SocketAddr) -> HttpClient {
        HttpClient::with_config(addr, ClientConfig::default())
    }

    /// A client for `addr` with explicit configuration.
    pub fn with_config(addr: SocketAddr, config: ClientConfig) -> HttpClient {
        HttpClient { addr, config, pool: Mutex::new(Vec::new()) }
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sends one request, retrying transient transport failures with
    /// backoff until success, retry exhaustion, or the deadline.
    ///
    /// Retried sends are **at-least-once**: an I/O error after the bytes
    /// left this host cannot distinguish "never processed" from
    /// "processed, response lost". The mediated editing protocol
    /// tolerates this (saves are full-state or rebased deltas and the
    /// client checks the Ack), matching the paper's reliable-storage
    /// assumption.
    ///
    /// # Errors
    ///
    /// [`NetError::RetriesExhausted`] after the final transient failure,
    /// [`NetError::DeadlineExceeded`] when the budget runs out, or the
    /// first non-retryable error.
    pub fn send(&self, request: &Request) -> Result<Response, NetError> {
        let started = Instant::now();
        let _timed = pe_observe::static_histogram!("net.client.request_ns").span();
        let bytes = codec::request_bytes(request, true)?;
        let mut last: Option<NetError> = None;
        for attempt in 0..=self.config.retries {
            if attempt > 0 {
                pe_observe::static_counter!("net.client.retries").inc();
                let delay = self.config.backoff.delay(attempt - 1);
                let delay = match self.remaining(started) {
                    Some(remaining) if remaining.is_zero() => break,
                    Some(remaining) => delay.min(remaining),
                    None => delay,
                };
                if !delay.is_zero() {
                    pe_observe::static_histogram!("net.client.backoff_ns")
                        .record(delay.as_nanos() as u64);
                    std::thread::sleep(delay);
                }
            }
            if self.remaining(started).is_some_and(|r| r.is_zero()) {
                break;
            }
            match self.try_once(&bytes) {
                Ok(response) => {
                    pe_observe::static_counter!("net.client.requests").inc();
                    return Ok(response);
                }
                Err(e) if e.is_retryable() => last = Some(e),
                Err(e) => {
                    pe_observe::static_counter!("net.client.errors").inc();
                    return Err(e);
                }
            }
        }
        pe_observe::static_counter!("net.client.errors").inc();
        if self.remaining(started).is_some_and(|r| r.is_zero()) {
            return Err(NetError::DeadlineExceeded);
        }
        match last {
            Some(e) => Err(NetError::RetriesExhausted {
                attempts: self.config.retries + 1,
                last: e.to_string(),
            }),
            None => Err(NetError::DeadlineExceeded),
        }
    }

    fn remaining(&self, started: Instant) -> Option<Duration> {
        self.config.deadline.map(|d| d.saturating_sub(started.elapsed()))
    }

    /// One attempt: a pooled socket first (with a fresh-connect grace
    /// retry if it turns out stale), else a new connection.
    ///
    /// The grace retry applies only to the *stale class* of failures —
    /// EOF or a reset **before any response byte arrived** — which is
    /// exactly what a keep-alive socket the server closed while it sat
    /// in the pool looks like. A failure after response bytes started
    /// flowing is a real exchange failure and consumes a retry attempt
    /// like any other; without that distinction a fault mid-response
    /// would silently double-send.
    fn try_once(&self, bytes: &[u8]) -> Result<Response, NetError> {
        // Bind the pop separately: in an `if let` scrutinee the MutexGuard
        // temporary would live through the body, deadlocking against the
        // re-lock in `exchange_on`.
        let pooled = self.pool.lock().unwrap_or_else(|e| e.into_inner()).pop();
        if let Some(stream) = pooled {
            pe_observe::static_counter!("net.client.pool_reuses").inc();
            match self.exchange_on(stream, bytes) {
                Ok(response) => return Ok(response),
                Err(failure) if failure.is_stale_class() => {
                    pe_observe::static_counter!("net.client.stale_pool_drops").inc();
                }
                Err(failure) => return Err(failure.error),
            }
        }
        let stream = self.connect()?;
        self.exchange_on(stream, bytes).map_err(|failure| failure.error)
    }

    fn connect(&self) -> Result<TcpStream, NetError> {
        pe_observe::static_counter!("net.client.connects").inc();
        let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)?;
        stream.set_read_timeout(Some(self.config.read_timeout))?;
        stream.set_write_timeout(Some(self.config.write_timeout))?;
        let _ = stream.set_nodelay(true);
        Ok(stream)
    }

    fn exchange_on(&self, stream: TcpStream, bytes: &[u8]) -> Result<Response, ExchangeFailure> {
        let fail = |error: NetError, response_started: bool| ExchangeFailure {
            error,
            response_started,
        };
        let mut writer = stream.try_clone().map_err(|e| fail(NetError::Io(e), false))?;
        codec::write_all(&mut writer, bytes).map_err(|e| fail(e, false))?;
        let mut reader = BufReader::new(ResponseTracking { inner: stream, seen: false });
        match codec::read_response(&mut reader) {
            Ok(parsed) => {
                if parsed.keep_alive {
                    let stream = reader.into_inner().inner;
                    let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
                    if pool.len() < self.config.pool_size {
                        pool.push(stream);
                    }
                }
                Ok(parsed.response)
            }
            Err(error) => Err(fail(error, reader.get_ref().seen)),
        }
    }
}

impl HttpClient {
    /// Opens a dedicated long-poll subscription channel to the same
    /// server.
    ///
    /// A parked `/Doc/changes` long-poll can hold its connection for the
    /// whole subscription timeout. Running it through [`send`] would pin
    /// a pooled keep-alive slot for that long — starving concurrent
    /// saves — and its silent-by-design wait is indistinguishable from
    /// the stale-pool failure class, so the grace-retry path could
    /// double-subscribe. A [`SubscriptionConn`] therefore owns a private
    /// socket: never pooled, never grace-retried, with a read timeout
    /// sized for long-polling (`wait` plus slack).
    ///
    /// [`send`]: HttpClient::send
    pub fn subscription(&self, read_timeout: Duration) -> SubscriptionConn {
        pe_observe::static_counter!("net.client.subscriptions").inc();
        SubscriptionConn {
            addr: self.addr,
            connect_timeout: self.config.connect_timeout,
            read_timeout,
            write_timeout: self.config.write_timeout,
            stream: None,
        }
    }
}

/// A dedicated connection for one long-poll subscription — deliberately
/// outside the [`HttpClient`] pool (see [`HttpClient::subscription`]).
///
/// The socket is kept across polls (the server keeps the connection
/// alive through poll timeouts) and re-dialed transparently after a
/// transport failure; each [`poll`](SubscriptionConn::poll) is a single
/// attempt with no backoff — the subscriber's own loop is the retry.
pub struct SubscriptionConn {
    addr: SocketAddr,
    connect_timeout: Duration,
    read_timeout: Duration,
    write_timeout: Duration,
    stream: Option<TcpStream>,
}

impl std::fmt::Debug for SubscriptionConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubscriptionConn")
            .field("addr", &self.addr)
            .field("connected", &self.stream.is_some())
            .finish_non_exhaustive()
    }
}

impl SubscriptionConn {
    /// Sends one long-poll request and blocks until the server responds
    /// (data, or its poll-timeout answer).
    ///
    /// On a transport failure the cached socket is dropped and one fresh
    /// dial is attempted for the same request — reconnect-and-resubscribe
    /// is idempotent (the `since` cursor makes re-asking safe), unlike
    /// the pooled client's grace retry which must classify failures.
    ///
    /// # Errors
    ///
    /// Connect or exchange failure on the fresh socket.
    pub fn poll(&mut self, request: &Request) -> Result<Response, NetError> {
        let bytes = codec::request_bytes(request, true)?;
        if let Some(stream) = self.stream.take() {
            if let Ok(response) = self.exchange(stream, &bytes) {
                return Ok(response);
            }
            pe_observe::static_counter!("net.client.subscription_redials").inc();
        }
        let stream = self.dial()?;
        self.exchange(stream, &bytes)
    }

    fn dial(&self) -> Result<TcpStream, NetError> {
        pe_observe::static_counter!("net.client.connects").inc();
        let stream = TcpStream::connect_timeout(&self.addr, self.connect_timeout)?;
        stream.set_read_timeout(Some(self.read_timeout))?;
        stream.set_write_timeout(Some(self.write_timeout))?;
        let _ = stream.set_nodelay(true);
        Ok(stream)
    }

    fn exchange(&mut self, stream: TcpStream, bytes: &[u8]) -> Result<Response, NetError> {
        let mut writer = stream.try_clone().map_err(NetError::Io)?;
        codec::write_all(&mut writer, bytes)?;
        let mut reader = BufReader::new(stream);
        let parsed = codec::read_response(&mut reader)?;
        if parsed.keep_alive {
            self.stream = Some(reader.into_inner());
        }
        Ok(parsed.response)
    }
}

/// A failed exchange, annotated with whether any response byte arrived
/// before the failure — the bit that separates a stale pooled socket
/// from a live exchange going wrong.
struct ExchangeFailure {
    error: NetError,
    response_started: bool,
}

impl ExchangeFailure {
    /// True when this looks like reusing a keep-alive socket the server
    /// had already closed: the connection died before a single response
    /// byte, with an EOF/reset-shaped error.
    fn is_stale_class(&self) -> bool {
        if self.response_started {
            return false;
        }
        match &self.error {
            NetError::UnexpectedEof => true,
            NetError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::BrokenPipe
            ),
            _ => false,
        }
    }
}

/// Flags when the first response byte arrives, so exchange failures can
/// be classified as before-response (stale pooled socket) or after.
struct ResponseTracking {
    inner: TcpStream,
    seen: bool,
}

impl Read for ResponseTracking {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        if n > 0 {
            self.seen = true;
        }
        Ok(n)
    }
}

/// Running the mediator/client stack over a socket unchanged: transport
/// failures surface as 503 responses, which the editing client's retry
/// loop already treats as transient.
impl CloudService for HttpClient {
    fn handle(&self, request: &Request) -> Response {
        match self.send(request) {
            Ok(response) => response,
            Err(e) => Response::error(503, &format!("transport failure: {e}")),
        }
    }

    fn name(&self) -> &'static str {
        "http-client"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{HttpServer, ServerConfig};
    use pe_cloud::docs::DocsServer;
    use std::sync::Arc;

    fn test_config() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_millis(500),
            retries: 2,
            backoff: BackoffPolicy::new(
                Duration::from_millis(1),
                Duration::from_millis(4),
                0.5,
                7,
            ),
            deadline: Some(Duration::from_secs(5)),
            pool_size: 2,
        }
    }

    #[test]
    fn exchanges_and_reuses_the_connection() {
        let server =
            HttpServer::bind("127.0.0.1:0", Arc::new(DocsServer::new()), ServerConfig::default())
                .unwrap();
        let client = HttpClient::with_config(server.local_addr(), test_config());
        for _ in 0..3 {
            let resp = client.send(&Request::post("/Doc", &[("cmd", "create")], "")).unwrap();
            assert!(resp.is_success());
        }
        assert!(!client.pool.lock().unwrap().is_empty(), "keep-alive socket pooled");
        server.shutdown();
    }

    #[test]
    fn connection_refused_fails_cleanly_after_retries() {
        // Bind then drop a listener to find a port with nothing on it.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let client = HttpClient::with_config(addr, test_config());
        let err = client.send(&Request::get("/x", &[])).unwrap_err();
        assert!(
            matches!(err, NetError::RetriesExhausted { attempts: 3, .. }),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn cloud_service_impl_degrades_errors_to_503() {
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let client = HttpClient::with_config(
            addr,
            ClientConfig { retries: 0, ..test_config() },
        );
        let resp = client.handle(&Request::get("/x", &[]));
        assert_eq!(resp.status, 503);
        assert!(resp.body_text().unwrap().contains("transport failure"));
    }

    /// A server that advertises keep-alive but closes every connection
    /// after serving `per_conn` requests — the shape that used to poison
    /// the client pool.
    fn idle_closing_server(per_conn: usize) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            // Serve a bounded number of connections, then exit.
            for _ in 0..16 {
                let Ok((stream, _)) = listener.accept() else { return };
                let mut writer = stream.try_clone().unwrap();
                let mut reader = BufReader::new(stream);
                for _ in 0..per_conn {
                    let Ok(Some(_)) = codec::read_request(&mut reader) else { return };
                    let mut bytes = Vec::new();
                    codec::write_response(&Response::ok("pong"), true, &mut bytes).unwrap();
                    std::io::Write::write_all(&mut writer, &bytes).unwrap();
                }
                // Connection dropped here despite the keep-alive promise.
            }
        });
        (addr, handle)
    }

    #[test]
    fn stale_pooled_connection_is_replaced_without_consuming_a_retry() {
        let (addr, server) = idle_closing_server(1);
        // retries: 0 — any failure that consumed an attempt would surface.
        let client =
            HttpClient::with_config(addr, ClientConfig { retries: 0, ..test_config() });
        for round in 0..4 {
            let resp = client.send(&Request::get("/ping", &[])).unwrap_or_else(|e| {
                panic!("round {round} failed instead of grace-retrying: {e}")
            });
            assert!(resp.is_success());
        }
        drop(client);
        drop(server);
    }

    #[test]
    fn failure_after_response_bytes_is_not_grace_retried() {
        // A server that serves one good exchange (poisoning the pool with
        // a keep-alive socket), then answers the next request with half a
        // response before closing.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            let _ = codec::read_request(&mut reader).unwrap();
            let mut bytes = Vec::new();
            codec::write_response(&Response::ok("pong"), true, &mut bytes).unwrap();
            std::io::Write::write_all(&mut writer, &bytes).unwrap();
            // Second request: cut the response off mid-flight.
            let _ = codec::read_request(&mut reader).unwrap();
            std::io::Write::write_all(&mut writer, &bytes[..bytes.len() / 2]).unwrap();
            // Socket closes here.
        });
        let client =
            HttpClient::with_config(addr, ClientConfig { retries: 0, ..test_config() });
        assert!(client.send(&Request::get("/ping", &[])).unwrap().is_success());
        let err = client.send(&Request::get("/ping", &[])).unwrap_err();
        assert!(
            matches!(err, NetError::RetriesExhausted { attempts: 1, .. }),
            "mid-response truncation must consume the attempt, got: {err}"
        );
        server.join().unwrap();
    }

    #[test]
    fn subscription_conn_never_touches_the_pool_and_survives_redial() {
        let server =
            HttpServer::bind("127.0.0.1:0", Arc::new(DocsServer::new()), ServerConfig::default())
                .unwrap();
        let client = HttpClient::with_config(server.local_addr(), test_config());
        let mut sub = client.subscription(Duration::from_secs(2));
        let req = Request::post("/Doc", &[("cmd", "create")], "");
        assert!(sub.poll(&req).unwrap().is_success());
        assert!(sub.poll(&req).unwrap().is_success(), "socket reused across polls");
        assert!(
            client.pool.lock().unwrap().is_empty(),
            "subscription socket must never enter the shared pool"
        );
        // Kill the cached socket server-side: restart the server on a new
        // listener and point a fresh poll at it via the same conn shape.
        server.shutdown();
        assert!(sub.poll(&req).is_err(), "server gone: poll reports the failure");
        drop(client);
    }

    #[test]
    fn deadline_bounds_total_time() {
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let client = HttpClient::with_config(
            addr,
            ClientConfig {
                retries: 1000,
                deadline: Some(Duration::from_millis(200)),
                backoff: BackoffPolicy::new(
                    Duration::from_millis(10),
                    Duration::from_millis(10),
                    0.0,
                    0,
                ),
                ..test_config()
            },
        );
        let started = Instant::now();
        let err = client.send(&Request::get("/x", &[])).unwrap_err();
        assert!(matches!(err, NetError::DeadlineExceeded), "unexpected error: {err}");
        assert!(started.elapsed() < Duration::from_secs(3), "deadline ignored");
    }
}
