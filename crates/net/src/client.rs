//! The resilient HTTP client transport.
//!
//! [`HttpClient`] speaks the `pe-net` codec over real sockets with:
//!
//! * a **connection pool** — keep-alive sockets are reused across
//!   requests, with a stale-connection grace retry (a pooled socket the
//!   server already closed costs one reconnect, not a failed request);
//! * **bounded exponential backoff with jitter** on connect and I/O
//!   errors (policy from [`pe_cloud::retry::BackoffPolicy`], so delays
//!   are deterministic per seed);
//! * a **deadline** bounding the total time spent on one exchange,
//!   including backoff sleeps.
//!
//! `HttpClient` implements [`CloudService`], so a
//! `pe_extension::DocsMediator` or `pe_client::DocsClient` runs over a
//! live socket *unchanged* — the same code path as the in-process
//! simulation, which is what makes the loopback-vs-in-process parity
//! test possible.

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use pe_cloud::retry::BackoffPolicy;
use pe_cloud::{CloudService, Request, Response};

use crate::codec;
use crate::error::NetError;

/// Tuning knobs for [`HttpClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Timeout for establishing a TCP connection.
    pub connect_timeout: Duration,
    /// Socket read timeout (bounds a stalled response).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Retries after the first attempt (total attempts = `retries + 1`).
    pub retries: u32,
    /// Backoff schedule between attempts.
    pub backoff: BackoffPolicy,
    /// Total wall-clock budget for one [`HttpClient::send`], including
    /// backoff sleeps. `None` means only the per-socket timeouts bound it.
    pub deadline: Option<Duration>,
    /// Maximum idle keep-alive sockets kept for reuse.
    pub pool_size: usize,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_secs(1),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            retries: 3,
            backoff: BackoffPolicy::client_default(0),
            deadline: Some(Duration::from_secs(30)),
            pool_size: 2,
        }
    }
}

/// A pooling, retrying HTTP/1.1 client bound to one server address.
pub struct HttpClient {
    addr: SocketAddr,
    config: ClientConfig,
    pool: Mutex<Vec<TcpStream>>,
}

impl std::fmt::Debug for HttpClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpClient")
            .field("addr", &self.addr)
            .field("pooled", &self.pool.lock().map(|p| p.len()).unwrap_or(0))
            .finish_non_exhaustive()
    }
}

impl HttpClient {
    /// A client for `addr` with default configuration.
    pub fn new(addr: SocketAddr) -> HttpClient {
        HttpClient::with_config(addr, ClientConfig::default())
    }

    /// A client for `addr` with explicit configuration.
    pub fn with_config(addr: SocketAddr, config: ClientConfig) -> HttpClient {
        HttpClient { addr, config, pool: Mutex::new(Vec::new()) }
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sends one request, retrying transient transport failures with
    /// backoff until success, retry exhaustion, or the deadline.
    ///
    /// Retried sends are **at-least-once**: an I/O error after the bytes
    /// left this host cannot distinguish "never processed" from
    /// "processed, response lost". The mediated editing protocol
    /// tolerates this (saves are full-state or rebased deltas and the
    /// client checks the Ack), matching the paper's reliable-storage
    /// assumption.
    ///
    /// # Errors
    ///
    /// [`NetError::RetriesExhausted`] after the final transient failure,
    /// [`NetError::DeadlineExceeded`] when the budget runs out, or the
    /// first non-retryable error.
    pub fn send(&self, request: &Request) -> Result<Response, NetError> {
        let started = Instant::now();
        let _timed = pe_observe::static_histogram!("net.client.request_ns").span();
        let bytes = codec::request_bytes(request, true)?;
        let mut last: Option<NetError> = None;
        for attempt in 0..=self.config.retries {
            if attempt > 0 {
                pe_observe::static_counter!("net.client.retries").inc();
                let delay = self.config.backoff.delay(attempt - 1);
                let delay = match self.remaining(started) {
                    Some(remaining) if remaining.is_zero() => break,
                    Some(remaining) => delay.min(remaining),
                    None => delay,
                };
                if !delay.is_zero() {
                    pe_observe::static_histogram!("net.client.backoff_ns")
                        .record(delay.as_nanos() as u64);
                    std::thread::sleep(delay);
                }
            }
            if self.remaining(started).is_some_and(|r| r.is_zero()) {
                break;
            }
            match self.try_once(&bytes) {
                Ok(response) => {
                    pe_observe::static_counter!("net.client.requests").inc();
                    return Ok(response);
                }
                Err(e) if e.is_retryable() => last = Some(e),
                Err(e) => {
                    pe_observe::static_counter!("net.client.errors").inc();
                    return Err(e);
                }
            }
        }
        pe_observe::static_counter!("net.client.errors").inc();
        if self.remaining(started).is_some_and(|r| r.is_zero()) {
            return Err(NetError::DeadlineExceeded);
        }
        match last {
            Some(e) => Err(NetError::RetriesExhausted {
                attempts: self.config.retries + 1,
                last: e.to_string(),
            }),
            None => Err(NetError::DeadlineExceeded),
        }
    }

    fn remaining(&self, started: Instant) -> Option<Duration> {
        self.config.deadline.map(|d| d.saturating_sub(started.elapsed()))
    }

    /// One attempt: a pooled socket first (with a fresh-connect grace
    /// retry if it turns out stale), else a new connection.
    fn try_once(&self, bytes: &[u8]) -> Result<Response, NetError> {
        // Bind the pop separately: in an `if let` scrutinee the MutexGuard
        // temporary would live through the body, deadlocking against the
        // re-lock in `exchange_on`.
        let pooled = self.pool.lock().unwrap_or_else(|e| e.into_inner()).pop();
        if let Some(stream) = pooled {
            pe_observe::static_counter!("net.client.pool_reuses").inc();
            match self.exchange_on(stream, bytes) {
                Ok(response) => return Ok(response),
                // The server may have closed the idle socket; one fresh
                // connection covers that without consuming a retry.
                Err(_) => pe_observe::static_counter!("net.client.stale_pool_drops").inc(),
            }
        }
        let stream = self.connect()?;
        self.exchange_on(stream, bytes)
    }

    fn connect(&self) -> Result<TcpStream, NetError> {
        pe_observe::static_counter!("net.client.connects").inc();
        let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)?;
        stream.set_read_timeout(Some(self.config.read_timeout))?;
        stream.set_write_timeout(Some(self.config.write_timeout))?;
        let _ = stream.set_nodelay(true);
        Ok(stream)
    }

    fn exchange_on(&self, stream: TcpStream, bytes: &[u8]) -> Result<Response, NetError> {
        let mut writer = stream.try_clone().map_err(NetError::Io)?;
        codec::write_all(&mut writer, bytes)?;
        let mut reader = BufReader::new(stream);
        let parsed = codec::read_response(&mut reader)?;
        if parsed.keep_alive {
            let stream = reader.into_inner();
            let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
            if pool.len() < self.config.pool_size {
                pool.push(stream);
            }
        }
        Ok(parsed.response)
    }
}

/// Running the mediator/client stack over a socket unchanged: transport
/// failures surface as 503 responses, which the editing client's retry
/// loop already treats as transient.
impl CloudService for HttpClient {
    fn handle(&self, request: &Request) -> Response {
        match self.send(request) {
            Ok(response) => response,
            Err(e) => Response::error(503, &format!("transport failure: {e}")),
        }
    }

    fn name(&self) -> &'static str {
        "http-client"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{HttpServer, ServerConfig};
    use pe_cloud::docs::DocsServer;
    use std::sync::Arc;

    fn test_config() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_millis(500),
            retries: 2,
            backoff: BackoffPolicy::new(
                Duration::from_millis(1),
                Duration::from_millis(4),
                0.5,
                7,
            ),
            deadline: Some(Duration::from_secs(5)),
            pool_size: 2,
        }
    }

    #[test]
    fn exchanges_and_reuses_the_connection() {
        let server =
            HttpServer::bind("127.0.0.1:0", Arc::new(DocsServer::new()), ServerConfig::default())
                .unwrap();
        let client = HttpClient::with_config(server.local_addr(), test_config());
        for _ in 0..3 {
            let resp = client.send(&Request::post("/Doc", &[("cmd", "create")], "")).unwrap();
            assert!(resp.is_success());
        }
        assert!(!client.pool.lock().unwrap().is_empty(), "keep-alive socket pooled");
        server.shutdown();
    }

    #[test]
    fn connection_refused_fails_cleanly_after_retries() {
        // Bind then drop a listener to find a port with nothing on it.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let client = HttpClient::with_config(addr, test_config());
        let err = client.send(&Request::get("/x", &[])).unwrap_err();
        assert!(
            matches!(err, NetError::RetriesExhausted { attempts: 3, .. }),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn cloud_service_impl_degrades_errors_to_503() {
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let client = HttpClient::with_config(
            addr,
            ClientConfig { retries: 0, ..test_config() },
        );
        let resp = client.handle(&Request::get("/x", &[]));
        assert_eq!(resp.status, 503);
        assert!(resp.body_text().unwrap().contains("transport failure"));
    }

    #[test]
    fn deadline_bounds_total_time() {
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let client = HttpClient::with_config(
            addr,
            ClientConfig {
                retries: 1000,
                deadline: Some(Duration::from_millis(200)),
                backoff: BackoffPolicy::new(
                    Duration::from_millis(10),
                    Duration::from_millis(10),
                    0.0,
                    0,
                ),
                ..test_config()
            },
        );
        let started = Instant::now();
        let err = client.send(&Request::get("/x", &[])).unwrap_err();
        assert!(matches!(err, NetError::DeadlineExceeded), "unexpected error: {err}");
        assert!(started.elapsed() < Duration::from_secs(3), "deadline ignored");
    }
}
